#!/usr/bin/env python3
"""Communication-aware balancing — the paper's § VII future work.

Balances a hotspot over the EMPIRE mesh colors twice: plain TemperedLB,
then TemperedLB wrapped in the locality refinement that pulls tasks
toward their halo-exchange partners within an imbalance budget. Prints
the balance/traffic trade.

Run:  python examples/comm_aware.py
"""

import numpy as np

from repro.core.comm import CommAwareLB
from repro.core.distribution import Distribution
from repro.core.tempered import TemperedLB
from repro.empire.mesh import Mesh2D


def main() -> None:
    mesh = Mesh2D(64, colors_per_rank=8)
    graph = mesh.neighbor_comm_graph(bytes_per_boundary=1.0)
    centers = mesh.color_centers()
    loads = 0.2 + 10.0 * np.exp(
        -((centers[:, 0] - 0.25) ** 2 + (centers[:, 1] - 0.4) ** 2) / (2 * 0.12**2)
    )
    dist = Distribution(loads, mesh.home_assignment(), mesh.n_ranks)
    print(f"{mesh.n_colors} colors on {mesh.n_ranks} ranks, I0 = {dist.imbalance():.2f}")
    print(f"halo volume: {graph.total_volume:.0f} units, "
          f"{graph.off_rank_volume(dist.assignment):.0f} off-rank initially\n")

    inner = TemperedLB(n_trials=2, n_iters=6)
    plain = inner.rebalance(dist, rng=np.random.default_rng(0))
    aware = CommAwareLB(graph, inner=inner, imbalance_slack=0.15).rebalance(
        dist, rng=np.random.default_rng(0)
    )

    print(f"{'strategy':<24} {'final I':>8} {'off-rank volume':>16} {'migrations':>11}")
    print("-" * 63)
    print(f"{'TemperedLB':<24} {plain.final_imbalance:>8.3f} "
          f"{graph.off_rank_volume(plain.assignment):>16.0f} {plain.n_migrations:>11}")
    print(f"{'CommAware(TemperedLB)':<24} {aware.final_imbalance:>8.3f} "
          f"{aware.extra['off_rank_volume_after']:>16.0f} {aware.n_migrations:>11}")
    print(f"\nlocality pass moved {aware.extra['locality_moves']} tasks, trading "
          f"{aware.final_imbalance - plain.final_imbalance:+.3f} imbalance for "
          f"{graph.off_rank_volume(plain.assignment) - aware.extra['off_rank_volume_after']:.0f} "
          "units of halo traffic kept on-rank")


if __name__ == "__main__":
    main()
