#!/usr/bin/env python3
"""AMR with an expanding refinement front (the § II workload class).

Drives the quadtree mini-app: a circular front sweeps outward, blocks
refine near it (with 2:1 balance) and coarsen behind it, and the block
population — and its distribution across ranks — changes every phase.
Compares the space-filling-curve mapping against incremental TemperedLB.

Run:  python examples/amr_front.py
"""

import numpy as np

from repro.amr import AMRConfig, AMRSimulation
from repro.analysis.plot import sparkline


def main() -> None:
    kw = dict(n_ranks=16, base_level=3, max_level=5, n_phases=24, lb_period=4, load_noise=0.5)
    for mapping in ("sfc", "balancer"):
        sim = AMRSimulation(AMRConfig(mapping=mapping, **kw))
        records = sim.run()
        blocks = sim.series.series("n_blocks")
        imbalance = sim.series.series("imbalance")
        label = "SFC curve re-cut" if mapping == "sfc" else "incremental TemperedLB"
        print(f"{label}:")
        print(f"  blocks     {sparkline(blocks)}  ({int(blocks[0])} -> {int(blocks[-1])})")
        print(f"  imbalance  {sparkline(imbalance)}  "
              f"(mean at LB steps: {np.mean([r.imbalance for r in records if r.phase % 4 == 0]):.3f})")
        print(f"  total migrations: {sum(r.migrations for r in records)}")
        print(f"  refinements: {sum(r.refined for r in records)}, "
              f"coarsenings: {sum(r.coarsened for r in records)}\n")
    print("Both mappings keep the imbalance bounded; the incremental balancer")
    print("does it while moving a fraction of the blocks the curve re-cut moves.")


if __name__ == "__main__":
    main()
