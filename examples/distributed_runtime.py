#!/usr/bin/env python3
"""Event-level demo: a full LB episode inside the simulated AMT runtime.

Everything here happens as timestamped messages over a network model:
the statistics all-reduce, the asynchronous gossip (with Safra's
termination detector establishing quiescence), the transfer decisions,
and the per-task migrations. The script prints the protocol's simulated
costs — the microscope behind the EMPIRE runs' analytic LB cost model.

Run:  python examples/distributed_runtime.py
"""

import numpy as np

from repro.core.tempered import TemperedConfig
from repro.runtime import AMTRuntime, LBManager


def main() -> None:
    n_ranks, tasks_per_rank = 64, 8
    rng = np.random.default_rng(0)
    n_tasks = n_ranks * tasks_per_rank
    task_loads = rng.gamma(4.0, 0.25, size=n_tasks)
    assignment = np.zeros(n_tasks, dtype=np.int64)  # everything on rank 0

    runtime = AMTRuntime(n_ranks, task_loads, assignment, task_overhead=1e-3)

    before = runtime.execute_phase()
    print(f"phase 0 (imbalanced): makespan {before.makespan:.3f}s, "
          f"wall {before.duration:.3f}s, I = {before.imbalance():.2f}")

    manager = LBManager(
        runtime,
        TemperedConfig(n_trials=1, n_iters=4, fanout=4, rounds=6),
        seed=1,
        bytes_per_unit_load=5e6,
    )
    episode = manager.run_episode()
    print(f"\nLB episode (simulated): t_lb = {episode.t_lb * 1e3:.3f} ms")
    print(f"  gossip: {episode.gossip_messages} messages, "
          f"{episode.gossip_bytes} bytes, {episode.gossip_time * 1e3:.3f} ms")
    if episode.migration is not None:
        print(f"  migration: {episode.n_migrations} tasks, "
              f"{episode.migration.bytes_moved / 1e6:.1f} MB, "
              f"{episode.migration.duration * 1e3:.3f} ms")
    print(f"  imbalance: {episode.initial_imbalance:.2f} -> {episode.final_imbalance:.2f}")

    after = runtime.execute_phase()
    print(f"\nphase 1 (balanced): makespan {after.makespan:.3f}s, "
          f"wall {after.duration:.3f}s, I = {after.imbalance():.2f}")
    print(f"speedup from balancing: {before.makespan / after.makespan:.2f}x")

    print("\nper-iteration decisions:")
    for r in episode.records:
        print(f"  trial {r.trial} iter {r.iteration}: {r.transfers} transfers, "
              f"{r.rejections} rejected, I = {r.imbalance:.3f}")


if __name__ == "__main__":
    main()
