#!/usr/bin/env python3
"""Reproduce the paper's § V-B / § V-D criterion analysis (scaled down).

The full-scale version (10^4 tasks on 2^4 of 2^12 ranks) is regenerated
by ``benchmarks/bench_table1_original_criterion.py`` and friends; this
example runs the same study at 1/8 scale in a few seconds and prints the
three tables of § V: the original criterion stalling at a high
imbalance with ~100% rejection, the relaxed criterion collapsing the
imbalance, and the side-by-side comparison.

Run:  python examples/criterion_analysis.py
"""

from repro.analysis import (
    criterion_comparison,
    format_comparison_table,
    format_iteration_table,
)
from repro.workloads import paper_analysis_scenario


def main() -> None:
    dist = paper_analysis_scenario(
        n_tasks=2500, n_loaded_ranks=8, n_ranks=512, seed=3
    )
    print(f"scenario: {dist.n_tasks} tasks on 8 of {dist.n_ranks} ranks, I0 = {dist.imbalance():.1f}\n")

    studies = criterion_comparison(dist, n_iters=10, seed=7)

    print(
        format_iteration_table(
            studies["original"].records,
            studies["original"].initial_imbalance,
            title="Original criterion (Alg. 2 l.35) — GrapevineLB",
        )
    )
    print()
    print(
        format_iteration_table(
            studies["relaxed"].records,
            studies["relaxed"].initial_imbalance,
            title="Relaxed criterion (Alg. 2 l.37) — TemperedLB",
        )
    )
    print()
    print(
        format_comparison_table(
            {"Criterion 35": studies["original"], "Criterion 37": studies["relaxed"]},
            title="Imbalance per iteration (cf. § V-D comparison table)",
        )
    )


if __name__ == "__main__":
    main()
