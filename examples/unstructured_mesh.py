#!/usr/bin/env python3
"""EMPIRE's real mesh type: PIC on an unstructured triangulation.

Builds a Delaunay mesh of the unit square, partitions its dual graph
into ranks (the Zoltan role), colors each rank's triangles into
migratable chunks, and runs the B-Dot plume over it with TemperedLB.
Shows that the balancer is agnostic to the mesh structure — only the
per-color loads matter — and reports the halo locality the nested
partitioning preserves.

Run:  python examples/unstructured_mesh.py
"""

import numpy as np

from repro.analysis.plot import sparkline
from repro.core.tempered import TemperedLB
from repro.empire.bdot import BDotScenario
from repro.empire.pic import PICSimulation, default_lb_schedule
from repro.empire.unstructured import UnstructuredMesh2D


def main() -> None:
    mesh = UnstructuredMesh2D(25, colors_per_rank=8, n_points=3000, seed=0)
    print(f"unstructured mesh: {mesh.n_cells} triangles, {mesh.n_ranks} ranks, "
          f"{mesh.n_colors} colors")
    print(f"triangles per color: {mesh.cells_per_color.min()}-{mesh.cells_per_color.max()} "
          f"(mean {mesh.cells_per_color.mean():.1f})")
    graph = mesh.neighbor_comm_graph()
    home = mesh.home_assignment()
    print(f"halo locality of the nested partitioning: "
          f"{1 - graph.off_rank_volume(home) / graph.total_volume:.0%} on-rank\n")

    scenario = BDotScenario(initial_particles=10_000, injection_per_step=80, seed=1)
    for balanced in (False, True):
        sim = PICSimulation(
            mesh,
            scenario_copy(scenario),
            mode="amt",
            balancer=TemperedLB(n_trials=1, n_iters=5, fanout=4, rounds=5) if balanced else None,
            lb_schedule=default_lb_schedule(period=25, first=2),
            seed=2,
        )
        series = sim.run(100)
        label = "TemperedLB" if balanced else "no LB     "
        imb = series.series("imbalance")
        print(f"{label}  I: {sparkline(imb)}  "
              f"({imb[1]:.1f} -> {imb[-1]:.1f}), "
              f"particle time {series.series('t_particle').sum():.1f}s")


def scenario_copy(template: BDotScenario) -> BDotScenario:
    """A fresh scenario with the same parameters (same seed, same run)."""
    return BDotScenario(
        initial_particles=template.initial_particles,
        injection_per_step=template.injection_per_step,
        seed=1,
    )


if __name__ == "__main__":
    main()
