#!/usr/bin/env python3
"""Run the EMPIRE PIC surrogate in all five paper configurations.

A scaled-down version of Fig. 2 / Fig. 3: 100 ranks, 200 timesteps.
Prints the execution-time breakdown table and the speedup multipliers
against the SPMD baseline.

Run:  python examples/empire_pic.py
"""

from repro.analysis import format_rows
from repro.empire import EmpireConfig, run_empire


def main() -> None:
    base = EmpireConfig(
        n_ranks=100,
        n_steps=200,
        lb_period=50,
        initial_particles=10_000,
        injection_per_step=100,
        n_trials=1,
        n_iters=6,
    )
    configs = ["spmd", "amt", "grapevine", "greedy", "hier", "tempered"]
    runs = {}
    for name in configs:
        print(f"running {name} ...", flush=True)
        runs[name] = run_empire(base.with_configuration(name))

    rows = [runs[name].breakdown() for name in configs]
    print()
    print(format_rows(rows, ["Type", "t_n", "t_p", "t_lb", "t_total"], title="Execution time breakdown (cf. Fig. 3)"))

    spmd = runs["spmd"]
    print("\nSpeedups vs SPMD (cf. Fig. 2 multipliers):")
    for name in configs:
        run = runs[name]
        print(
            f"  {run.config.label:<20} particle: {spmd.t_particle / run.t_particle:5.2f}x"
            f"   total: {spmd.t_total / run.t_total:5.2f}x"
        )

    nolb = runs["amt"].series.series("imbalance")
    tmp = runs["tempered"].series.series("imbalance")
    print("\nImbalance trajectory (cf. Fig. 4c), sampled every 40 steps:")
    print("  step:      " + "  ".join(f"{s:6d}" for s in range(0, 200, 40)))
    print("  no LB:     " + "  ".join(f"{nolb[s]:6.2f}" for s in range(0, 200, 40)))
    print("  tempered:  " + "  ".join(f"{tmp[s]:6.2f}" for s in range(0, 200, 40)))


if __name__ == "__main__":
    main()
