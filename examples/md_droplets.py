#!/usr/bin/env python3
"""The MD mini-app: drifting droplets with n^2 cell costs.

Molecular dynamics concentrates load quadratically — a cell with twice
the atoms costs four times the force work — so droplets are sharp
hotspots. Runs the droplet scenario under no balancing, TemperedLB, and
communication-aware TemperedLB, and prints the balance/traffic trade.

Run:  python examples/md_droplets.py
"""

import numpy as np

from repro.analysis.plot import sparkline
from repro.core.tempered import TemperedLB
from repro.md import MDConfig, MDSimulation


def main() -> None:
    base = dict(n_ranks=16, gx=24, gy=24, n_phases=30, lb_period=5, n_particles=8000)
    configs = {
        "no LB": MDConfig(lb_period=10_000, **{k: v for k, v in base.items() if k != "lb_period"}),
        "TemperedLB": MDConfig(**base),
        "TemperedLB+comm": MDConfig(comm_aware=True, **base),
    }
    print("MD droplets: 576 cells on 16 ranks, force cost ~ n^2 per cell\n")
    for label, cfg in configs.items():
        sim = MDSimulation(cfg, balancer=TemperedLB(n_trials=1, n_iters=5, fanout=4, rounds=5))
        series = sim.run()
        imb = series.series("imbalance")
        off = series.series("off_rank_volume") / series.series("total_volume")
        print(f"{label:<16} I: {sparkline(imb)}  "
              f"(steady mean {np.mean(imb[10:]):.2f}), "
              f"off-rank ghost traffic {np.mean(off[10:]):.0%}")
    print("\nThe comm-aware variant trades a little balance for keeping most")
    print("ghost-atom exchange on-rank — the § VII objective.")


if __name__ == "__main__":
    main()
