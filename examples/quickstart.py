#!/usr/bin/env python3
"""Quickstart: balance a badly skewed task distribution with TemperedLB.

Builds the paper's § V-B analysis scenario at a laptop-friendly scale
(all tasks crammed onto 16 of 512 ranks), runs TemperedLB, and compares
it against the original GrapevineLB and the centralized GreedyLB.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import GrapevineLB, GreedyLB, TemperedLB
from repro.workloads import paper_analysis_scenario


def main() -> None:
    dist = paper_analysis_scenario(
        n_tasks=2000, n_loaded_ranks=16, n_ranks=512, seed=42
    )
    print(f"initial distribution: {dist.n_tasks} tasks on {dist.n_ranks} ranks")
    print(f"initial imbalance I = {dist.imbalance():.2f}\n")

    strategies = [
        TemperedLB(n_trials=2, n_iters=8),
        GrapevineLB(n_iters=8),
        GreedyLB(),
    ]
    print(f"{'strategy':<14} {'final I':>10} {'migrations':>12}")
    print("-" * 38)
    for lb in strategies:
        result = lb.rebalance(dist, rng=np.random.default_rng(0))
        print(f"{result.strategy:<14} {result.final_imbalance:>10.3f} {result.n_migrations:>12}")

    print("\nTemperedLB per-iteration history (trial 1):")
    result = TemperedLB(n_trials=1, n_iters=8).rebalance(dist, rng=np.random.default_rng(0))
    for r in result.records:
        print(
            f"  iter {r.iteration}: {r.transfers:5d} transfers, "
            f"{r.rejections:5d} rejected ({r.rejection_rate:5.1f}%), I = {r.imbalance:.3f}"
        )


if __name__ == "__main__":
    main()
