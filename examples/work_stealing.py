#!/usr/bin/env python3
"""Work stealing vs persistence-based balancing (the § II alternatives).

Runs four phases of a persistent workload three ways in the event-level
runtime: retentive work stealing, plain (restart-every-phase) work
stealing, and TemperedLB reacting between phases. Shows the paper's
framing: stealing reacts *within* a phase (good first phase), retention
or persistence-based LB makes later phases cheap.

Run:  python examples/work_stealing.py
"""

import numpy as np

from repro.core.distribution import Distribution
from repro.core.tempered import TemperedLB
from repro.runtime.work_stealing import RetentiveWorkStealing
from repro.sim.process import System

N_RANKS, N_TASKS, N_PHASES = 16, 160, 4


def main() -> None:
    rng = np.random.default_rng(0)
    loads = rng.gamma(4.0, 0.05, size=N_TASKS)
    ideal = loads.sum() / N_RANKS
    print(f"{N_TASKS} tasks on {N_RANKS} ranks; perfectly parallel makespan = {ideal:.3f}s\n")

    for retentive in (True, False):
        sys_ = System(N_RANKS)
        ws = RetentiveWorkStealing(
            sys_, np.zeros(N_TASKS, dtype=np.int64), seed=1, retentive=retentive
        )
        label = "retentive stealing" if retentive else "plain stealing"
        print(label)
        for phase in range(N_PHASES):
            r = ws.run_phase(loads)
            print(f"  phase {phase}: makespan {r.makespan:.3f}s, "
                  f"{r.tasks_stolen} tasks stolen ({r.successful_steals} steals, "
                  f"{r.failed_steals} failed probes)")
        print()

    print("persistence-based (TemperedLB between phases)")
    lb = TemperedLB(n_trials=1, n_iters=4, fanout=4, rounds=5)
    assignment = np.zeros(N_TASKS, dtype=np.int64)
    for phase in range(N_PHASES):
        rank_loads = np.bincount(assignment, weights=loads, minlength=N_RANKS)
        print(f"  phase {phase}: makespan {rank_loads.max():.3f}s")
        dist = Distribution(loads, assignment, N_RANKS)
        assignment = lb.rebalance(dist, rng=np.random.default_rng(phase)).assignment


if __name__ == "__main__":
    main()
