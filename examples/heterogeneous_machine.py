#!/usr/bin/env python3
"""Balancing a heterogeneous machine without knowing the speeds.

Half the ranks run at 50% speed. The placement is perfectly balanced in
*load*, but the runtime instruments measured durations, so TemperedLB
drains work off the slow ranks over a few measure/balance rounds. The
tracer's Gantt chart makes the effect visible: before balancing the
fast ranks idle half the phase; after, everyone finishes together.

Run:  python examples/heterogeneous_machine.py
"""

import numpy as np

from repro.core.tempered import TemperedConfig
from repro.runtime import AMTRuntime, LBManager
from repro.sim.trace import Tracer


def main() -> None:
    n_ranks, tasks_per_rank = 12, 8
    rng = np.random.default_rng(0)
    loads = rng.uniform(0.9, 1.1, n_ranks * tasks_per_rank)
    assignment = np.repeat(np.arange(n_ranks), tasks_per_rank)
    speeds = np.where(np.arange(n_ranks) < n_ranks // 2, 1.0, 0.5)

    runtime = AMTRuntime(n_ranks, loads, assignment, rank_speeds=speeds)
    tracer = Tracer(runtime.system)
    manager = LBManager(
        runtime, TemperedConfig(n_trials=2, n_iters=6, fanout=4, rounds=5), seed=1
    )

    ideal = loads.sum() / speeds.sum()
    print(f"{n_ranks} ranks, ranks {n_ranks // 2}-{n_ranks - 1} at 0.5x speed; "
          f"speed-weighted ideal makespan = {ideal:.2f}s\n")

    before = runtime.execute_phase()
    print(f"phase 0 (load-balanced placement): makespan {before.makespan:.2f}s "
          f"= {before.makespan / ideal:.2f}x ideal")
    for round_index in range(1, 4):
        manager.run_episode()
        phase = runtime.execute_phase()
        print(f"after balance round {round_index}: makespan {phase.makespan:.2f}s "
              f"= {phase.makespan / ideal:.2f}x ideal")

    fast_share = runtime.rank_loads()[: n_ranks // 2].sum() / loads.sum()
    print(f"\nfast ranks now hold {fast_share:.0%} of the load "
          f"(their speed share: {speeds[:n_ranks // 2].sum() / speeds.sum():.0%})")
    print("\nCPU activity over the whole run (# = busy):")
    print(tracer.gantt(width=64))


if __name__ == "__main__":
    main()
