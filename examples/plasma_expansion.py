#!/usr/bin/env python3
"""A real electrostatic PIC run: plasma expansion under space charge.

Unlike the calibrated B-Dot scenario, this example uses the actual PIC
physics loop (charge deposition -> periodic Poisson solve -> field push):
a dense blob expands under its own repulsion while an emitter keeps
injecting, so the workload's imbalance decays *because of the physics*.
Runs the loop with and without TemperedLB and prints both trajectories.

Run:  python examples/plasma_expansion.py
"""

from repro.analysis.plot import sparkline
from repro.core.tempered import TemperedLB
from repro.empire.electrostatic import ElectrostaticScenario
from repro.empire.mesh import Mesh2D
from repro.empire.pic import PICSimulation, default_lb_schedule


def run(balanced: bool):
    mesh = Mesh2D(36, colors_per_rank=6)
    scenario = ElectrostaticScenario(
        initial_particles=8000,
        injection_per_step=60,
        blob_sigma=0.07,
        nx=48,
        ny=48,
        mobility=8e-4,
        seed=0,
    )
    sim = PICSimulation(
        mesh,
        scenario,
        mode="amt",
        balancer=TemperedLB(n_trials=1, n_iters=5, fanout=4, rounds=5) if balanced else None,
        lb_schedule=default_lb_schedule(period=15, first=2),
        seed=1,
    )
    return sim.run(75)


def main() -> None:
    plain = run(balanced=False)
    balanced = run(balanced=True)
    print("electrostatic plasma expansion, 36 ranks, 75 steps\n")
    print("imbalance over time:")
    print(f"  no LB       {sparkline(plain.series('imbalance'))}"
          f"  (I: {plain.series('imbalance')[0]:.1f} -> {plain.series('imbalance')[-1]:.1f})")
    print(f"  TemperedLB  {sparkline(balanced.series('imbalance'))}"
          f"  (I: {balanced.series('imbalance')[0]:.1f} -> {balanced.series('imbalance')[-1]:.1f})")
    t_plain = plain.series("t_particle").sum()
    t_bal = balanced.series("t_particle").sum() + balanced.series("t_lb").sum()
    print(f"\nparticle time: {t_plain:.1f}s without LB, "
          f"{t_bal:.1f}s with TemperedLB (incl. LB cost) -> {t_plain/t_bal:.2f}x")
    print("\nThe physics spreads the plasma on its own — imbalance decays even")
    print("without balancing — but the balancer wins throughout the transient.")


if __name__ == "__main__":
    main()
