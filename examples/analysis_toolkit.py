#!/usr/bin/env python3
"""Tour of the analysis toolkit: traces, reports, sweeps, plots.

Synthesizes a dynamic load trace, measures its persistence, balances
one phase and prints the full LB diagnostic report, then replays the
trace under three strategies and renders the executed-imbalance
comparison as a strip chart.

Run:  python examples/analysis_toolkit.py
"""

import numpy as np

from repro.analysis import format_rows, lb_report, strip_chart
from repro.core.distribution import Distribution
from repro.core.registry import make_balancer
from repro.workloads import synthesize_trace

STRATEGIES = {
    "tempered": {"n_trials": 1, "n_iters": 5, "fanout": 4, "rounds": 5},
    "greedy": {},
    "grapevine": {"n_iters": 5},
}


def main() -> None:
    trace = synthesize_trace("hotspot", n_phases=24, n_tasks=256)
    print(f"synthesized trace: {trace.n_phases} phases x {trace.n_tasks} tasks, "
          f"mean persistence {trace.mean_persistence():.3f}\n")

    # One balancing decision, dissected with the "+LBDebug"-style report.
    dist = Distribution(
        trace.phase(0), (np.arange(256) * 16 // 256).astype(np.int64), 16
    )
    lb = make_balancer("tempered", **STRATEGIES["tempered"])
    result = lb.rebalance(dist, rng=np.random.default_rng(0))
    print(lb_report(dist, result))

    # Replay the whole trace under three strategies.
    print("\nreplaying the trace (LB every 2 phases, deciding on stale loads):")
    series = {}
    rows = []
    for name, kwargs in STRATEGIES.items():
        replay = trace.replay(make_balancer(name, **kwargs), n_ranks=16, lb_period=2)
        series[name] = [imb for _, imb, _ in replay]
        rows.append(
            {
                "strategy": name,
                "mean executed I (steady)": float(np.mean(series[name][8:])),
                "migrations": sum(m for _, _, m in replay),
            }
        )
    print(format_rows(rows, ["strategy", "mean executed I (steady)", "migrations"]))
    print()
    print(strip_chart(series, width=60, height=10))


if __name__ == "__main__":
    main()
