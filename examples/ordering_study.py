#!/usr/bin/env python3
"""Compare the § V-E task traversal orderings (cf. Fig. 4d).

Runs TemperedLB with each of the four orderings on the same workloads
and reports final imbalance and migration counts. *Fewest Migrations*
should need the fewest moves for comparable quality — the paper's
reason for using it as the flagship configuration.

Run:  python examples/ordering_study.py
"""

import numpy as np

from repro import TemperedLB
from repro.core.ordering import ORDERINGS
from repro.workloads import paper_analysis_scenario, skewed_distribution


def study(dist, label: str) -> None:
    print(f"\n{label}: I0 = {dist.imbalance():.2f}")
    print(f"  {'ordering':<20} {'final I':>9} {'migrations':>11} {'transfers':>10}")
    for name in ORDERINGS:
        lb = TemperedLB(n_trials=2, n_iters=6, ordering=name)
        result = lb.rebalance(dist, rng=np.random.default_rng(7))
        transfers = sum(r.transfers for r in result.records)
        print(
            f"  {name:<20} {result.final_imbalance:>9.3f} "
            f"{result.n_migrations:>11} {transfers:>10}"
        )


def main() -> None:
    study(
        paper_analysis_scenario(n_tasks=2000, n_loaded_ranks=16, n_ranks=256, seed=1),
        "concentrated scenario (tasks on 16 of 256 ranks)",
    )
    study(
        skewed_distribution(4000, 256, skew=1.2, seed=2),
        "zipf-skewed scenario",
    )


if __name__ == "__main__":
    main()
