"""Report/plumbing tests for the perf bench and its scale ladder.

Timing itself is covered by ``benchmarks/`` and the CI gates; here we
pin the cheap contracts: the report prints each row's own scale rung
and knowledge backend (rows are no longer all at one scale), the rung
table is well-formed, and the ladder rejects unknown rungs without
spawning anything.
"""

import pytest

from repro.perf import SCALE_RSS_BUDGET_MB, SCALE_RUNGS, format_report
from repro.perf.bench import LADDER_MAX_KNOWN, run_scale_ladder


def _payload():
    return {
        "meta": {
            "quick": True,
            "repeats": 1,
            "scale": {"n_tasks": 2000, "n_loaded_ranks": 8, "n_ranks": 512},
        },
        "benchmarks": [
            {
                "name": "inform/batched",
                "seconds": 0.02,
                "repeats": 1,
                "knowledge": "packed",
            },
            {
                "name": "inform/sparse",
                "seconds": 2.5,
                "repeats": 1,
                "scale": "32k",
                "knowledge": "sparse",
                "n_ranks": 32768,
            },
        ],
        "speedups": {"inform_backend_auto_vs_alt_32k": 6.5},
        "scale_ladder": [
            {
                "scale": "32k",
                "n_ranks": 32768,
                "n_tasks": 100000,
                "auto_backend": "sparse",
                "peak_rss_mb": 740.0,
                "peak_rss_budget_mb": 4096,
                "subprocess": True,
            }
        ],
        "wall_timers": {},
    }


class TestFormatReport:
    def test_rows_lead_with_their_own_rung(self):
        report = format_report(_payload())
        lines = report.splitlines()
        classic = next(l for l in lines if "inform/batched" in l)
        ladder = next(l for l in lines if "inform/sparse" in l)
        # Classic rows carry the meta scale, ladder rows their rung
        # (labels are right-justified to a common width).
        assert "512r]" in classic
        assert "32k]" in ladder

    def test_knowledge_backend_printed_per_row(self):
        report = format_report(_payload())
        lines = report.splitlines()
        assert "knowledge=packed" in next(l for l in lines if "inform/batched" in l)
        assert "knowledge=sparse" in next(l for l in lines if "inform/sparse" in l)

    def test_rung_summary_includes_rss_and_budget(self):
        report = format_report(_payload())
        rung = next(l for l in report.splitlines() if l.strip().startswith("rung"))
        assert "740" in rung and "4096" in rung and "auto=sparse" in rung

    def test_rung_summary_includes_knowledge_memory(self):
        payload = _payload()
        payload["scale_ladder"][0]["knowledge_memory_mb"] = {
            "packed": 128.0,
            "sparse": 1.9,
        }
        rung = next(
            l for l in format_report(payload).splitlines()
            if l.strip().startswith("rung")
        )
        assert "packed=128.0MB" in rung and "sparse=1.9MB" in rung

    def test_rung_episode_line_prints_stage_walls(self):
        payload = _payload()
        payload["scale_ladder"][0]["refinement"] = {
            "seconds": 21.5,
            "n_trials": 1,
            "n_iters": 2,
            "stage_walls": {"wall.inform": 17.0, "wall.transfer": 3.1},
        }
        report = format_report(payload)
        episode = next(
            l for l in report.splitlines() if l.strip().startswith("episode")
        )
        assert "1x2" in episode
        assert "21.50s total" in episode
        assert "inform 17.00s" in episode and "transfer 3.10s" in episode

    def test_in_process_rss_is_flagged(self):
        payload = _payload()
        payload["scale_ladder"][0]["subprocess"] = False
        report = format_report(payload)
        assert "upper bound" in report

    def test_report_without_ladder_still_renders(self):
        payload = _payload()
        del payload["scale_ladder"]
        report = format_report(payload)
        assert "rung" not in report
        assert "inform/batched" in report


class TestLadderPlumbing:
    def test_unknown_rung_rejected(self):
        with pytest.raises(ValueError, match="scale must be one of"):
            run_scale_ladder("64k")

    def test_rung_table_is_consistent(self):
        assert set(SCALE_RSS_BUDGET_MB) == set(SCALE_RUNGS)
        assert LADDER_MAX_KNOWN > 0
        for name, spec in SCALE_RUNGS.items():
            assert spec["tasks_quick"] <= spec["tasks_full"]
            assert spec["n_loaded"] < spec["n_ranks"]
            # Rung rank counts are exact powers of two (2^12..2^17).
            assert spec["n_ranks"] & (spec["n_ranks"] - 1) == 0
        # The acceptance budget: the 131k rung must fit in 8 GiB.
        assert SCALE_RSS_BUDGET_MB["131k"] == 8192
