"""Profile artifacts must survive failing benchmark cases.

Profiling is diagnostics riding along a bench run: a case that raises
mid-profile must neither abort the run (crashing the JSON writer with
the payload half-built) nor leave a truncated ``profile_<case>.txt``
behind to be mistaken for a complete listing.
"""

import os

import pytest

from repro.cli import write_profiles
from repro.perf.bench import _profile_text


class TestProfileText:
    def test_failing_case_yields_annotated_listing(self):
        def boom():
            raise RuntimeError("synthetic bench failure")

        text = _profile_text(boom)
        assert "PROFILED CASE FAILED" in text
        assert "synthetic bench failure" in text
        # The partial profile still renders as a pstats listing.
        assert "cumulative" in text

    def test_passing_case_unchanged(self):
        text = _profile_text(lambda: sum(range(100)))
        assert "PROFILED CASE FAILED" not in text
        assert "function calls" in text


class TestWriteProfiles:
    def test_writes_are_atomic_and_complete(self, tmp_path):
        profiles = {"caseA": "listing A\n", "caseB": "listing B\n"}
        written = write_profiles(profiles, outdir=tmp_path)
        assert sorted(p.name for p in written) == [
            "profile_caseA.txt",
            "profile_caseB.txt",
        ]
        for path in written:
            assert path.read_text().startswith("listing ")
        assert not list(tmp_path.glob("*.tmp"))

    def test_empty_profiles_write_nothing(self, tmp_path):
        assert write_profiles({}, outdir=tmp_path) == []
        assert not any(tmp_path.iterdir())

    def test_failed_write_leaves_no_truncated_artifact(
        self, tmp_path, monkeypatch
    ):
        real_replace = os.replace

        def failing_replace(src, dst):
            if "caseB" in str(dst):
                raise OSError("disk full")
            return real_replace(src, dst)

        monkeypatch.setattr(os, "replace", failing_replace)
        with pytest.raises(OSError):
            write_profiles(
                {"caseA": "A\n", "caseB": "B\n"}, outdir=tmp_path
            )
        # caseA (sorted first) landed whole; caseB left nothing — no
        # target file, no temp debris.
        assert (tmp_path / "profile_caseA.txt").read_text() == "A\n"
        assert not (tmp_path / "profile_caseB.txt").exists()
        assert not list(tmp_path.glob("*.tmp"))
