"""Integration tests for the AMR mini-app (front + tree + mapping)."""

import numpy as np
import pytest

from repro.amr import AMRConfig, AMRSimulation, CircularFront
from repro.amr.quadtree import Block, QuadTree


def small_config(**kw):
    defaults = dict(
        n_ranks=8, base_level=2, max_level=4, n_phases=12, lb_period=3
    )
    defaults.update(kw)
    return AMRConfig(**defaults)


class TestCircularFront:
    def test_desired_level_peaks_at_front(self):
        front = CircularFront(
            center=(0.5, 0.5), initial_radius=0.2, base_level=2, max_level=5
        )
        blocks = [Block(4, i, j) for i in range(16) for j in range(16)]
        nearest = min(blocks, key=lambda b: front.distance_to_front(b, 0))
        farthest = max(blocks, key=lambda b: front.distance_to_front(b, 0))
        assert front.desired_level(nearest, 0) == 5
        assert front.desired_level(farthest, 0) < front.desired_level(nearest, 0)

    def test_front_expands(self):
        front = CircularFront(initial_radius=0.1, speed=0.01)
        assert front.radius(10) == pytest.approx(0.2)

    def test_validation(self):
        with pytest.raises(ValueError):
            CircularFront(band=0.0)
        with pytest.raises(ValueError):
            CircularFront(base_level=5, max_level=3)


class TestAMRSimulation:
    def test_runs_and_adapts(self):
        sim = AMRSimulation(small_config())
        records = sim.run()
        assert len(records) == 12
        # The expanding front grows the block population.
        assert records[-1].n_blocks > records[0].n_blocks
        sim.tree.check_invariants()

    def test_ownership_covers_all_leaves(self):
        sim = AMRSimulation(small_config())
        sim.run()
        leaves = set(sim.tree.leaves())
        assert set(sim.ownership) == leaves
        assert all(0 <= r < 8 for r in sim.ownership.values())

    def test_lb_steps_reduce_imbalance(self):
        sim = AMRSimulation(small_config(n_phases=13))
        records = sim.run()
        lb_steps = [r.imbalance for r in records if r.phase % 3 == 0]
        other = [r.imbalance for r in records if r.phase % 3 == 1 and r.phase > 0]
        assert np.mean(lb_steps) <= np.mean(other) + 0.3

    def test_sfc_mapping_runs(self):
        sim = AMRSimulation(small_config(mapping="sfc"))
        records = sim.run()
        assert all(r.imbalance < 2.0 for r in records if r.phase % 3 == 0)

    def test_balancer_migrates_less_than_sfc(self):
        kwargs = dict(n_ranks=16, n_phases=20, lb_period=4, load_noise=0.5)
        sfc = AMRSimulation(AMRConfig(mapping="sfc", **kwargs))
        bal = AMRSimulation(AMRConfig(mapping="balancer", **kwargs))
        sfc_mig = sum(r.migrations for r in sfc.run())
        bal_mig = sum(r.migrations for r in bal.run())
        assert bal_mig < sfc_mig

    def test_load_noise_is_stable_per_block(self):
        cfg = small_config(load_noise=1.0)
        sim = AMRSimulation(cfg)
        block = sim.tree.leaves()[5]
        assert sim.block_load(block) == sim.block_load(block)

    def test_subcycling_load_model(self):
        sim = AMRSimulation(small_config())
        coarse = Block(2, 0, 0)
        fine = Block(4, 0, 0)
        assert sim.block_load(fine) == pytest.approx(4 * sim.block_load(coarse))

    def test_series_recorded(self):
        sim = AMRSimulation(small_config())
        sim.run()
        assert sim.series.n_phases == 12
        assert "makespan" in sim.series.keys()

    def test_deterministic(self):
        a = AMRSimulation(small_config(load_noise=0.5)).run()
        b = AMRSimulation(small_config(load_noise=0.5)).run()
        assert [r.imbalance for r in a] == [r.imbalance for r in b]

    def test_invalid_mapping(self):
        with pytest.raises(ValueError, match="mapping"):
            AMRConfig(mapping="teleport")
