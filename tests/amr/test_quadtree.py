"""Unit tests for repro.amr.quadtree."""

import pytest

from repro.amr.quadtree import Block, QuadTree


class TestBlock:
    def test_geometry(self):
        b = Block(1, 1, 0)
        assert b.size == 0.5
        assert b.center() == (0.75, 0.25)

    def test_children_cover_parent(self):
        b = Block(1, 0, 1)
        kids = b.children()
        assert len(kids) == 4
        assert all(k.parent() == b for k in kids)
        assert sum(k.size**2 for k in kids) == pytest.approx(b.size**2)

    def test_root_has_no_parent(self):
        with pytest.raises(ValueError):
            Block(0, 0, 0).parent()

    def test_validation(self):
        with pytest.raises(ValueError):
            Block(1, 2, 0)
        with pytest.raises(ValueError):
            Block(-1, 0, 0)


class TestQuadTree:
    def test_initial_uniform_grid(self):
        tree = QuadTree(2, 4)
        assert tree.n_leaves == 16
        assert tree.total_area() == pytest.approx(1.0)

    def test_refine_and_coarsen_roundtrip(self):
        tree = QuadTree(1, 3)
        block = tree.leaves()[0]
        children = tree.refine(block)
        assert tree.n_leaves == 7
        assert not tree.is_leaf(block)
        tree.coarsen(block)
        assert tree.n_leaves == 4
        assert tree.is_leaf(block)

    def test_refine_non_leaf_rejected(self):
        tree = QuadTree(1, 3)
        block = tree.leaves()[0]
        tree.refine(block)
        with pytest.raises(ValueError, match="not a leaf"):
            tree.refine(block)

    def test_refine_beyond_max_rejected(self):
        tree = QuadTree(1, 1)
        with pytest.raises(ValueError, match="max_level"):
            tree.refine(tree.leaves()[0])

    def test_coarsen_below_base_rejected(self):
        tree = QuadTree(1, 2)
        with pytest.raises(ValueError, match="base level"):
            tree.coarsen(Block(0, 0, 0))

    def test_neighbors_uniform(self):
        tree = QuadTree(2, 4)
        corner = Block(2, 0, 0)
        middle = Block(2, 1, 1)
        assert len(tree.neighbors(corner)) == 2
        assert len(tree.neighbors(middle)) == 4

    def test_neighbors_across_levels(self):
        tree = QuadTree(1, 3)
        tree.refine(Block(1, 0, 0))
        # The coarse block right of the refined one sees two finer
        # face neighbors.
        nbs = tree.neighbors(Block(1, 1, 0))
        finer = [b for b in nbs if b.level == 2]
        assert len(finer) == 2

    def test_two_to_one_enforcement(self):
        tree = QuadTree(1, 4)
        # Refine one corner twice: its coarse neighbours now violate 2:1.
        (c0, *_rest) = tree.refine(Block(1, 0, 0))
        tree.refine(c0)
        tree.enforce_two_to_one()
        tree.check_invariants()

    def test_adapt_refines_toward_target(self):
        tree = QuadTree(2, 4)
        hot = Block(2, 0, 0)
        # Want depth 4 in the corner containing the origin (the (0, 0)
        # block at every level), base elsewhere.
        tree.adapt(lambda b: 4 if (b.i == 0 and b.j == 0) else 2)
        assert not tree.is_leaf(hot)  # it refined
        tree.check_invariants()

    def test_adapt_coarsens_when_unneeded(self):
        tree = QuadTree(1, 3)
        tree.refine(Block(1, 0, 0))
        ops = tree.adapt(lambda b: 1)
        assert ops["coarsened"] >= 1
        assert tree.n_leaves == 4
        tree.check_invariants()

    def test_area_conserved_through_adaptation(self):
        tree = QuadTree(2, 5)
        for phase in range(5):
            tree.adapt(lambda b, p=phase: min(2 + (b.i + p) % 3, 5))
            assert tree.total_area() == pytest.approx(1.0)
            tree.check_invariants()

    def test_covering_leaf(self):
        tree = QuadTree(1, 3)
        tree.refine(Block(1, 0, 0))
        # A level-2 probe inside the unrefined block resolves coarser.
        assert tree.covering_leaf(2, 3, 0) == Block(1, 1, 0)
        # Inside the refined block it resolves at level 2.
        assert tree.covering_leaf(2, 0, 0) == Block(2, 0, 0)
