"""Unit tests for repro.amr.morton."""

import numpy as np
import pytest

from repro.amr.morton import morton_key, morton_order, sfc_partition


class TestMortonKey:
    def test_z_order_at_one_level(self):
        # Level-1 Z order: (0,0), (1,0), (0,1), (1,1).
        keys = [morton_key(1, i, j) for (i, j) in [(0, 0), (1, 0), (0, 1), (1, 1)]]
        assert keys == sorted(keys)

    def test_parent_sorts_before_children(self):
        parent = morton_key(1, 0, 0)
        children = [morton_key(2, i, j) for i in (0, 1) for j in (0, 1)]
        assert parent < min(children)

    def test_children_contiguous(self):
        # All of a parent's descendants sort between the parent and the
        # next sibling at the parent's level.
        next_sibling = morton_key(1, 1, 0)
        children = [morton_key(2, i, j) for i in (0, 1) for j in (0, 1)]
        assert max(children) < next_sibling

    def test_distinct(self):
        keys = {morton_key(3, i, j) for i in range(8) for j in range(8)}
        assert len(keys) == 64

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            morton_key(1, 2, 0)
        with pytest.raises(ValueError):
            morton_key(30, 0, 0)


class TestMortonOrder:
    def test_orders_by_key(self):
        blocks = [(1, 1, 1), (1, 0, 0), (1, 1, 0)]
        order = morton_order(blocks)
        assert [blocks[k] for k in order] == [(1, 0, 0), (1, 1, 0), (1, 1, 1)]

    def test_locality(self):
        # Consecutive blocks along the curve are spatially close on
        # average (the locality property SFC mapping relies on).
        blocks = [(4, i, j) for i in range(16) for j in range(16)]
        order = morton_order(blocks)
        dist = 0.0
        for a, b in zip(order, order[1:]):
            (_, i1, j1), (_, i2, j2) = blocks[a], blocks[b]
            dist += abs(i1 - i2) + abs(j1 - j2)
        assert dist / (len(order) - 1) < 3.0


class TestSfcPartition:
    def test_balanced_uniform_weights(self):
        blocks = [(4, i, j) for i in range(16) for j in range(16)]
        parts = sfc_partition(blocks, np.ones(256), 8)
        counts = np.bincount(parts, minlength=8)
        assert counts.min() >= 24 and counts.max() <= 40

    def test_weighted_cut(self):
        blocks = [(2, i, j) for i in range(4) for j in range(4)]
        rng = np.random.default_rng(0)
        weights = rng.random(16) + 0.1
        parts = sfc_partition(blocks, weights, 4)
        per = np.bincount(parts, weights=weights, minlength=4)
        assert per.max() / per.mean() - 1 < 0.8  # coarse atoms: loose bound

    def test_segments_contiguous_on_curve(self):
        blocks = [(3, i, j) for i in range(8) for j in range(8)]
        parts = sfc_partition(blocks, np.ones(64), 5)
        order = morton_order(blocks)
        seq = [parts[k] for k in order]
        # Part ids are non-decreasing along the curve.
        assert seq == sorted(seq)

    def test_all_parts_used(self):
        blocks = [(3, i, j) for i in range(8) for j in range(8)]
        parts = sfc_partition(blocks, np.ones(64), 8)
        assert set(parts) == set(range(8))

    def test_zero_weights(self):
        blocks = [(1, i, j) for i in (0, 1) for j in (0, 1)]
        parts = sfc_partition(blocks, np.zeros(4), 2)
        assert set(parts) <= {0, 1}

    def test_validation(self):
        with pytest.raises(ValueError, match="one weight"):
            sfc_partition([(1, 0, 0)], np.ones(2), 2)
        with pytest.raises(ValueError):
            sfc_partition([(1, 0, 0)], np.ones(1), 0)
