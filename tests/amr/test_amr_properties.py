"""Property-based tests for the AMR quadtree and SFC utilities."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.amr.morton import morton_order, sfc_partition
from repro.amr.quadtree import Block, QuadTree


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n_steps=st.integers(min_value=1, max_value=4),
)
@settings(max_examples=25, deadline=None)
def test_random_adaptation_preserves_invariants(seed, n_steps):
    """Random desired-level fields never break coverage or 2:1 balance."""
    rng = np.random.default_rng(seed)
    tree = QuadTree(base_level=1, max_level=4)
    for _ in range(n_steps):
        wanted = {}

        def desired(block, wanted=wanted):
            key = (block.level, block.i, block.j)
            if key not in wanted:
                wanted[key] = int(rng.integers(1, 5))
            return wanted[key]

        tree.adapt(desired)
        tree.check_invariants()
        assert tree.n_leaves >= 4


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=25, deadline=None)
def test_leaves_unique_and_morton_sorted(seed):
    rng = np.random.default_rng(seed)
    tree = QuadTree(base_level=2, max_level=4)
    tree.adapt(lambda b: int(rng.integers(2, 5)))
    leaves = tree.leaves()
    assert len(set(leaves)) == len(leaves)
    keys = [b.key() for b in leaves]
    assert keys == sorted(keys)


@given(
    n_parts=st.integers(min_value=1, max_value=16),
    seed=st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=30, deadline=None)
def test_sfc_partition_contiguity_and_coverage(n_parts, seed):
    """Curve segments are contiguous and part ids stay in range."""
    rng = np.random.default_rng(seed)
    level = 3
    blocks = [(level, i, j) for i in range(8) for j in range(8)]
    weights = rng.random(64) + 1e-3
    parts = sfc_partition(blocks, weights, n_parts)
    assert parts.min() >= 0 and parts.max() < n_parts
    seq = [parts[k] for k in morton_order(blocks)]
    assert seq == sorted(seq)


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n_parts=st.integers(min_value=2, max_value=8),
)
@settings(max_examples=30, deadline=None)
def test_sfc_partition_weight_balance_bound(seed, n_parts):
    """No part exceeds the average by more than one maximal block."""
    rng = np.random.default_rng(seed)
    blocks = [(3, i, j) for i in range(8) for j in range(8)]
    weights = rng.random(64) + 1e-3
    parts = sfc_partition(blocks, weights, n_parts)
    per = np.bincount(parts, weights=weights, minlength=n_parts)
    assert per.max() <= weights.sum() / n_parts + weights.max() + 1e-9
