"""Unit tests for repro.runtime.amt."""

import numpy as np
import pytest

from repro.runtime.amt import AMTRuntime


def make_runtime(**kw):
    # 4 ranks, 8 tasks, two per rank
    loads = np.array([1.0, 2.0, 3.0, 4.0, 1.0, 1.0, 1.0, 1.0])
    assignment = np.array([0, 0, 1, 1, 2, 2, 3, 3])
    return AMTRuntime(4, loads, assignment, **kw)


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ValueError, match="equal length"):
            AMTRuntime(2, np.ones(3), np.zeros(2, dtype=int))
        with pytest.raises(ValueError, match="lie in"):
            AMTRuntime(2, np.ones(2), np.array([0, 5]))

    def test_rank_loads(self):
        rt = make_runtime()
        np.testing.assert_allclose(rt.rank_loads(), [3.0, 7.0, 2.0, 2.0])


class TestPhaseExecution:
    def test_phase_duration_tracks_makespan(self):
        rt = make_runtime()
        result = rt.execute_phase()
        # Slowest rank has 7.0 of work; barrier adds small network time.
        assert result.makespan == pytest.approx(7.0)
        assert result.duration >= 7.0
        assert result.duration < 7.1

    def test_task_overhead_increases_time(self):
        plain = make_runtime().execute_phase()
        with_oh = make_runtime(task_overhead=0.5).execute_phase()
        # Rank 1 has 2 tasks: makespan 7.0 + 2*0.5 = 8.0
        assert with_oh.makespan == pytest.approx(8.0)
        assert with_oh.duration > plain.duration

    def test_phase_imbalance(self):
        rt = make_runtime()
        result = rt.execute_phase()
        # loads [3,7,2,2]: ave 3.5, max 7 -> I = 1.0
        assert result.imbalance() == pytest.approx(1.0)

    def test_phases_accumulate_clock(self):
        rt = make_runtime()
        r1 = rt.execute_phase()
        r2 = rt.execute_phase()
        assert r2.start_time >= r1.end_time
        assert r2.phase_index == 1

    def test_instrumentation_observed(self):
        rt = make_runtime()
        rt.execute_phase()
        np.testing.assert_array_equal(rt.instrumentation.latest(), rt.task_loads)

    def test_set_task_loads_changes_next_phase(self):
        rt = make_runtime()
        rt.execute_phase()
        rt.set_task_loads(np.ones(8) * 2.0)
        result = rt.execute_phase()
        assert result.makespan == pytest.approx(4.0)  # 2 tasks * 2.0

    def test_set_task_loads_rejects_resize(self):
        rt = make_runtime()
        with pytest.raises(ValueError, match="number of tasks"):
            rt.set_task_loads(np.ones(5))


class TestAssignment:
    def test_apply_assignment_counts_migrations(self):
        rt = make_runtime()
        new = rt.assignment.copy()
        new[0] = 3
        new[3] = 2
        assert rt.apply_assignment(new) == 2
        np.testing.assert_array_equal(rt.assignment, new)

    def test_apply_rebalanced_assignment_lowers_makespan(self):
        rt = make_runtime()
        before = rt.execute_phase().makespan
        # move the 4.0 task off rank 1 to rank 3
        new = rt.assignment.copy()
        new[3] = 2
        rt.apply_assignment(new)
        after = rt.execute_phase().makespan
        assert after < before

    def test_apply_assignment_length_check(self):
        rt = make_runtime()
        with pytest.raises(ValueError, match="mismatch"):
            rt.apply_assignment(np.zeros(3, dtype=int))
