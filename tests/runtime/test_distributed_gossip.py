"""Unit tests for repro.runtime.distributed_gossip."""

import numpy as np
import pytest

from repro.core.gossip import GossipConfig, run_inform_stage
from repro.runtime.distributed_gossip import DistributedGossip
from repro.sim.process import System
from repro.sim.rng import RankStreams


def loads_two_hot(n=16):
    loads = np.ones(n)
    loads[0] = loads[1] = 10.0
    return loads


class TestDistributedGossip:
    def test_knowledge_covers_underloaded(self):
        sys_ = System(16)
        g = DistributedGossip(sys_, loads_two_hot(), fanout=4, rounds=5)
        out = g.run()
        assert out.knowledge.coverage(out.underloaded) > 0.8

    def test_overloaded_never_advertised(self):
        sys_ = System(16)
        out = DistributedGossip(sys_, loads_two_hot(), fanout=3, rounds=4).run()
        assert not out.knowledge.rows[:, 0].any()
        assert not out.knowledge.rows[:, 1].any()

    def test_elapsed_time_positive_and_small(self):
        sys_ = System(16)
        out = DistributedGossip(sys_, loads_two_hot(), fanout=3, rounds=4).run()
        # Gossip is a lightweight protocol: microseconds to milliseconds.
        assert 0 < out.elapsed < 0.1

    def test_message_bound(self):
        n = 32
        sys_ = System(n)
        out = DistributedGossip(sys_, loads_two_hot(n), fanout=3, rounds=4).run()
        # Coalesced per (rank, round): at most P*k forwards of f messages
        # plus the U initiator sends.
        assert out.n_messages <= n * 4 * 3 + (n - 2) * 3

    def test_no_underloaded_is_quiet(self):
        sys_ = System(8)
        out = DistributedGossip(sys_, np.ones(8)).run()
        assert out.n_messages == 0
        assert out.knowledge.counts().sum() == 0

    def test_deterministic_given_streams(self):
        def run():
            sys_ = System(16)
            g = DistributedGossip(
                sys_, loads_two_hot(), fanout=3, rounds=4, streams=RankStreams(16, seed=5)
            )
            return g.run()

        a, b = run(), run()
        np.testing.assert_array_equal(a.knowledge.rows, b.knowledge.rows)
        assert a.n_messages == b.n_messages
        assert a.elapsed == b.elapsed

    def test_to_gossip_result_roundtrip(self):
        sys_ = System(16)
        out = DistributedGossip(sys_, loads_two_hot(), fanout=3, rounds=4).run()
        res = out.to_gossip_result()
        assert res.average_load == out.average_load
        np.testing.assert_array_equal(res.load_snapshot, out.load_snapshot)

    def test_coverage_comparable_to_phase_level(self):
        # Event-level and phase-level gossip should reach similar
        # knowledge coverage for the same (f, k).
        loads = loads_two_hot(64)
        sys_ = System(64)
        event = DistributedGossip(sys_, loads, fanout=4, rounds=6).run()
        phase = run_inform_stage(loads, GossipConfig(fanout=4, rounds=6), rng=0)
        assert abs(event.knowledge.coverage(event.underloaded) - phase.coverage()) < 0.3

    def test_wrong_load_count(self):
        sys_ = System(4)
        with pytest.raises(ValueError, match="one load per rank"):
            DistributedGossip(sys_, np.ones(3))
