"""Unit tests for repro.runtime.distributed_gossip."""

import numpy as np
import pytest

from repro.core.gossip import SPARSE_AUTO_MIN_RANKS_FAST, GossipConfig, run_inform_stage
from repro.core.knowledge import PackedKnowledgeBitmap, SparseKnowledge
from repro.core.tempered import TemperedConfig
from repro.obs import StatsRegistry
from repro.runtime.amt import AMTRuntime
from repro.runtime.distributed_gossip import DistributedGossip
from repro.runtime.lbmanager import LBManager
from repro.sim.process import System
from repro.sim.rng import RankStreams


def loads_two_hot(n=16):
    loads = np.ones(n)
    loads[0] = loads[1] = 10.0
    return loads


class TestDistributedGossip:
    def test_knowledge_covers_underloaded(self):
        sys_ = System(16)
        g = DistributedGossip(sys_, loads_two_hot(), fanout=4, rounds=5)
        out = g.run()
        assert out.knowledge.coverage(out.underloaded) > 0.8

    def test_overloaded_never_advertised(self):
        sys_ = System(16)
        out = DistributedGossip(sys_, loads_two_hot(), fanout=3, rounds=4).run()
        assert not out.knowledge.rows[:, 0].any()
        assert not out.knowledge.rows[:, 1].any()

    def test_elapsed_time_positive_and_small(self):
        sys_ = System(16)
        out = DistributedGossip(sys_, loads_two_hot(), fanout=3, rounds=4).run()
        # Gossip is a lightweight protocol: microseconds to milliseconds.
        assert 0 < out.elapsed < 0.1

    def test_message_bound(self):
        n = 32
        sys_ = System(n)
        out = DistributedGossip(sys_, loads_two_hot(n), fanout=3, rounds=4).run()
        # Coalesced per (rank, round): at most P*k forwards of f messages
        # plus the U initiator sends.
        assert out.n_messages <= n * 4 * 3 + (n - 2) * 3

    def test_no_underloaded_is_quiet(self):
        sys_ = System(8)
        out = DistributedGossip(sys_, np.ones(8)).run()
        assert out.n_messages == 0
        assert out.knowledge.counts().sum() == 0

    def test_deterministic_given_streams(self):
        def run():
            sys_ = System(16)
            g = DistributedGossip(
                sys_, loads_two_hot(), fanout=3, rounds=4, streams=RankStreams(16, seed=5)
            )
            return g.run()

        a, b = run(), run()
        np.testing.assert_array_equal(a.knowledge.rows, b.knowledge.rows)
        assert a.n_messages == b.n_messages
        assert a.elapsed == b.elapsed

    def test_to_gossip_result_roundtrip(self):
        sys_ = System(16)
        out = DistributedGossip(sys_, loads_two_hot(), fanout=3, rounds=4).run()
        res = out.to_gossip_result()
        assert res.average_load == out.average_load
        np.testing.assert_array_equal(res.load_snapshot, out.load_snapshot)

    def test_coverage_comparable_to_phase_level(self):
        # Event-level and phase-level gossip should reach similar
        # knowledge coverage for the same (f, k).
        loads = loads_two_hot(64)
        sys_ = System(64)
        event = DistributedGossip(sys_, loads, fanout=4, rounds=6).run()
        phase = run_inform_stage(loads, GossipConfig(fanout=4, rounds=6), rng=0)
        assert abs(event.knowledge.coverage(event.underloaded) - phase.coverage()) < 0.3

    def test_wrong_load_count(self):
        sys_ = System(4)
        with pytest.raises(ValueError, match="one load per rank"):
            DistributedGossip(sys_, np.ones(3))


class TestSparseEventLevel:
    """The event-level pipeline on the sparse knowledge backend.

    The message-level protocol exchanges sorted rank-id arrays and all
    backends answer ``unknown_targets`` / ``known`` identically, so a
    zero-fault stage must be bit-identical across packed and sparse —
    down to the RNG stream and the registry counters of a full LB
    episode.
    """

    def test_knowledge_knob_validated(self):
        sys_ = System(8)
        with pytest.raises(ValueError, match="knowledge"):
            DistributedGossip(sys_, np.ones(8), knowledge="csr")

    def test_backend_selection(self):
        loads = loads_two_hot(16)
        explicit = DistributedGossip(System(16), loads, knowledge="sparse").run()
        assert isinstance(explicit.knowledge, SparseKnowledge)
        # Auto mirrors the phase-level threshold; event-level rank
        # counts sit far below it, so auto resolves to packed.
        assert 16 < SPARSE_AUTO_MIN_RANKS_FAST
        auto = DistributedGossip(System(16), loads, knowledge="auto").run()
        assert isinstance(auto.knowledge, PackedKnowledgeBitmap)

    def test_packed_sparse_bit_identity_20_seeds(self):
        n = 24
        for seed in range(20):
            rng = np.random.default_rng(seed)
            loads = rng.gamma(3.0, 0.5, size=n)
            loads[: n // 8] *= 20.0
            outs = {}
            for backend in ("packed", "sparse"):
                out = DistributedGossip(
                    System(n),
                    loads,
                    fanout=3,
                    rounds=4,
                    streams=RankStreams(n, seed=seed + 1),
                    knowledge=backend,
                ).run()
                outs[backend] = out
            ref, new = outs["packed"], outs["sparse"]
            np.testing.assert_array_equal(new.knowledge.rows, ref.knowledge.rows)
            np.testing.assert_array_equal(new.underloaded, ref.underloaded)
            assert new.n_messages == ref.n_messages
            assert new.bytes_sent == ref.bytes_sent
            assert new.elapsed == ref.elapsed

    def test_lb_episode_bit_identity_including_registry(self):
        def episode(backend):
            rng = np.random.default_rng(7)
            n_ranks, n_tasks = 8, 48
            task_loads = rng.gamma(4.0, 0.25, size=n_tasks)
            rt = AMTRuntime(
                n_ranks,
                task_loads,
                np.zeros(n_tasks, dtype=np.int64),
                task_overhead=0.001,
            )
            rt.execute_phase()
            registry = StatsRegistry()
            cfg = TemperedConfig(
                n_trials=2, n_iters=2, fanout=3, rounds=4, knowledge=backend
            )
            res = LBManager(rt, cfg, seed=3, registry=registry).run_episode()
            return res, registry

        res_p, reg_p = episode("packed")
        res_s, reg_s = episode("sparse")
        np.testing.assert_array_equal(res_s.assignment, res_p.assignment)
        assert res_s.final_imbalance == res_p.final_imbalance
        assert res_s.t_lb == res_p.t_lb
        assert reg_s.counters == reg_p.counters
