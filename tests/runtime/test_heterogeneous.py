"""Heterogeneous hardware: measured-duration balancing.

§ I motivates AMT balancing with "potentially non-uniform (e.g., NUMA or
heterogeneous) hardware resources". With per-rank speeds the runtime's
instrumentation reports measured durations (load / speed), so the
balancer organically shifts work off slow ranks without knowing speeds.
"""

import numpy as np
import pytest

from repro.core.tempered import TemperedConfig
from repro.runtime.amt import AMTRuntime
from repro.runtime.lbmanager import LBManager


def heterogeneous_runtime(seed=0):
    """16 ranks, half running at 50% speed; balanced *load* placement."""
    n_ranks, tasks_per_rank = 16, 8
    rng = np.random.default_rng(seed)
    loads = rng.uniform(0.9, 1.1, n_ranks * tasks_per_rank)
    assignment = np.repeat(np.arange(n_ranks), tasks_per_rank)
    speeds = np.where(np.arange(n_ranks) < 8, 1.0, 0.5)
    return AMTRuntime(n_ranks, loads, assignment, rank_speeds=speeds)


class TestSpeeds:
    def test_validation(self):
        with pytest.raises(ValueError, match="one speed per rank"):
            AMTRuntime(2, np.ones(2), np.array([0, 1]), rank_speeds=np.ones(3))
        with pytest.raises(ValueError, match="positive"):
            AMTRuntime(2, np.ones(2), np.array([0, 1]), rank_speeds=np.array([1.0, 0.0]))

    def test_slow_ranks_take_longer(self):
        rt = heterogeneous_runtime()
        phase = rt.execute_phase()
        fast = phase.rank_task_time[:8]
        slow = phase.rank_task_time[8:]
        assert slow.mean() == pytest.approx(2 * fast.mean(), rel=0.15)

    def test_instrumentation_reports_measured_durations(self):
        rt = heterogeneous_runtime()
        rt.execute_phase()
        measured = rt.instrumentation.latest()
        # Tasks on slow ranks measure twice as heavy.
        on_fast = measured[rt.assignment < 8]
        on_slow = measured[rt.assignment >= 8]
        assert on_slow.mean() == pytest.approx(2 * on_fast.mean(), rel=0.15)

    def test_default_speeds_uniform(self):
        rt = AMTRuntime(4, np.ones(8), np.repeat(np.arange(4), 2))
        np.testing.assert_array_equal(rt.rank_speeds, 1.0)


class TestBalancingCompensatesHeterogeneity:
    def test_lb_shifts_work_to_fast_ranks(self):
        rt = heterogeneous_runtime()
        before = rt.execute_phase()
        mgr = LBManager(
            rt, TemperedConfig(n_trials=2, n_iters=6, fanout=4, rounds=5), seed=1
        )
        # A couple of measure/balance rounds: the first episode balances
        # measured durations; re-measuring after migration corrects the
        # speed mispredictions.
        for _ in range(3):
            mgr.run_episode()
            after = rt.execute_phase()
        assert after.makespan < 0.8 * before.makespan
        # Fast ranks hold more load than slow ranks now.
        loads = rt.rank_loads()
        assert loads[:8].mean() > 1.2 * loads[8:].mean()
