"""Unit tests for repro.runtime.work_stealing."""

import numpy as np
import pytest

from repro.runtime.work_stealing import RetentiveWorkStealing, WorkStealingScheduler
from repro.sim.process import System


def hot_rank_setup(n_ranks=8, n_tasks=64, seed=0):
    rng = np.random.default_rng(seed)
    loads = rng.gamma(4.0, 0.05, size=n_tasks)
    assignment = np.zeros(n_tasks, dtype=np.int64)  # all on rank 0
    return System(n_ranks), loads, assignment


class TestWorkStealingScheduler:
    def test_every_task_executed_exactly_once(self):
        sys_, loads, assignment = hot_rank_setup()
        result = WorkStealingScheduler(sys_, loads, assignment, seed=1).run()
        assert result.tasks_executed == 64
        assert (result.final_location >= 0).all()
        assert result.executed_per_rank.sum() == 64

    def test_stealing_beats_serial_execution(self):
        sys_, loads, assignment = hot_rank_setup()
        result = WorkStealingScheduler(sys_, loads, assignment, seed=1).run()
        serial = loads.sum()
        # Distributed execution should be well below the serial makespan
        # and above the perfect-parallel bound.
        assert result.makespan < 0.5 * serial
        assert result.makespan >= serial / 8 - 1e-9
        assert result.successful_steals > 0

    def test_balanced_input_steals_little(self):
        sys_ = System(8)
        rng = np.random.default_rng(2)
        loads = rng.uniform(0.9, 1.1, 64)
        assignment = np.repeat(np.arange(8), 8)
        result = WorkStealingScheduler(sys_, loads, assignment, seed=2).run()
        # Already balanced: some failed probes at the end, few tasks move.
        assert result.tasks_stolen < 16

    def test_single_rank(self):
        sys_ = System(1)
        loads = np.ones(5)
        result = WorkStealingScheduler(sys_, loads, np.zeros(5, dtype=int), seed=0).run()
        assert result.tasks_executed == 5
        assert result.makespan == pytest.approx(5.0, rel=1e-6)

    def test_no_tasks(self):
        sys_ = System(4)
        result = WorkStealingScheduler(
            sys_, np.empty(0), np.empty(0, dtype=int), seed=0
        ).run()
        assert result.tasks_executed == 0

    def test_deterministic(self):
        def run():
            sys_, loads, assignment = hot_rank_setup(seed=3)
            return WorkStealingScheduler(sys_, loads, assignment, seed=3).run()

        a, b = run(), run()
        assert a.makespan == b.makespan
        np.testing.assert_array_equal(a.final_location, b.final_location)

    def test_validation(self):
        sys_ = System(2)
        with pytest.raises(ValueError, match="equal length"):
            WorkStealingScheduler(sys_, np.ones(3), np.zeros(2, dtype=int))
        with pytest.raises(ValueError, match="out of range"):
            WorkStealingScheduler(sys_, np.ones(2), np.array([0, 7]))
        with pytest.raises(ValueError):
            WorkStealingScheduler(sys_, np.ones(2), np.zeros(2, dtype=int), max_attempts=0)


class TestRetentiveWorkStealing:
    def test_retention_reduces_steals_on_persistent_workload(self):
        n_ranks, n_tasks = 8, 64
        rng = np.random.default_rng(4)
        loads = rng.gamma(4.0, 0.05, size=n_tasks)
        sys_ = System(n_ranks)
        ws = RetentiveWorkStealing(sys_, np.zeros(n_tasks, dtype=np.int64), seed=4)
        first = ws.run_phase(loads)
        later = ws.run_phase(loads)  # identical loads: perfect persistence
        assert later.tasks_stolen < first.tasks_stolen
        assert later.makespan <= first.makespan + 1e-9

    def test_non_retentive_resteals_more_than_retentive(self):
        n_tasks = 48
        rng = np.random.default_rng(5)
        loads = rng.gamma(4.0, 0.05, size=n_tasks)

        def second_phase_steals(retentive):
            sys_ = System(6)
            ws = RetentiveWorkStealing(
                sys_, np.zeros(n_tasks, dtype=np.int64), seed=5, retentive=retentive
            )
            ws.run_phase(loads)
            return ws.run_phase(loads).tasks_stolen

        # With identical phase seeds, retention means phase 2 starts
        # from the balanced end state and steals strictly less.
        assert second_phase_steals(True) < second_phase_steals(False)

    def test_history_recorded(self):
        sys_ = System(4)
        ws = RetentiveWorkStealing(sys_, np.zeros(16, dtype=np.int64), seed=0)
        ws.run_phase(np.ones(16))
        ws.run_phase(np.ones(16))
        assert len(ws.history) == 2
        assert ws.phases_run == 2
