"""Unit tests for repro.runtime.lbmanager (full simulated LB episodes)."""

import numpy as np
import pytest

from repro.core.tempered import TemperedConfig
from repro.runtime.amt import AMTRuntime
from repro.runtime.lbmanager import LBManager


def imbalanced_runtime(n_ranks=8, tasks_per_rank=6, seed=0):
    """All tasks initially on rank 0."""
    rng = np.random.default_rng(seed)
    n_tasks = n_ranks * tasks_per_rank
    loads = rng.gamma(4.0, 0.25, size=n_tasks)
    assignment = np.zeros(n_tasks, dtype=np.int64)
    return AMTRuntime(n_ranks, loads, assignment, task_overhead=0.001)


def small_config(**kw):
    defaults = dict(n_trials=1, n_iters=2, fanout=3, rounds=4)
    defaults.update(kw)
    return TemperedConfig(**defaults)


class TestLBEpisode:
    def test_improves_imbalance(self):
        rt = imbalanced_runtime()
        rt.execute_phase()
        mgr = LBManager(rt, small_config(), seed=1)
        res = mgr.run_episode()
        assert res.final_imbalance < res.initial_imbalance
        np.testing.assert_array_equal(rt.assignment, res.assignment)

    def test_episode_advances_clock(self):
        rt = imbalanced_runtime()
        rt.execute_phase()
        before = rt.system.engine.now
        res = LBManager(rt, small_config(), seed=1).run_episode()
        assert rt.system.engine.now == pytest.approx(before + res.t_lb)
        assert res.t_lb > 0

    def test_migration_dominates_t_lb(self):
        # With a realistic bytes-per-load, migration should be the bulk
        # of the LB cost (the paper's Fig. 3 observation).
        rt = imbalanced_runtime()
        rt.execute_phase()
        mgr = LBManager(rt, small_config(), seed=1, bytes_per_unit_load=1e8)
        res = mgr.run_episode()
        assert res.migration is not None
        assert res.migration.duration > 0.25 * res.t_lb

    def test_uses_instrumented_loads_by_default(self):
        rt = imbalanced_runtime()
        rt.execute_phase()
        res = LBManager(rt, small_config(), seed=2).run_episode()
        assert res.n_migrations > 0

    def test_explicit_prediction(self):
        rt = imbalanced_runtime()
        res = LBManager(rt, small_config(), seed=2).run_episode(
            predicted_loads=rt.task_loads
        )
        assert res.n_migrations > 0

    def test_prediction_shape_checked(self):
        rt = imbalanced_runtime()
        rt.execute_phase()
        with pytest.raises(ValueError, match="match the task count"):
            LBManager(rt, small_config()).run_episode(predicted_loads=np.ones(3))

    def test_balanced_system_no_migrations(self):
        rng = np.random.default_rng(0)
        loads = np.ones(32)
        assignment = np.repeat(np.arange(8), 4)
        rt = AMTRuntime(8, loads, assignment)
        rt.execute_phase()
        res = LBManager(rt, small_config(), seed=0).run_episode()
        assert res.n_migrations == 0
        assert res.migration is None
        assert res.final_imbalance == pytest.approx(0.0)

    def test_records_per_trial_iteration(self):
        rt = imbalanced_runtime()
        rt.execute_phase()
        res = LBManager(rt, small_config(n_trials=2, n_iters=3), seed=1).run_episode()
        assert len(res.records) == 6
        assert res.gossip_messages == sum(r.gossip_messages for r in res.records)

    def test_multi_episode_determinism(self):
        def run():
            rt = imbalanced_runtime(seed=11)
            rt.execute_phase()
            mgr = LBManager(rt, small_config(), seed=5)
            totals = []
            for _ in range(3):
                episode = mgr.run_episode()
                totals.append((episode.t_lb, episode.final_imbalance))
                rt.execute_phase()
            return totals

        assert run() == run()

    def test_repeated_episodes_converge(self):
        rt = imbalanced_runtime(n_ranks=8, tasks_per_rank=10, seed=12)
        rt.execute_phase()
        mgr = LBManager(rt, small_config(n_iters=3), seed=6)
        finals = []
        for _ in range(3):
            finals.append(mgr.run_episode().final_imbalance)
            rt.execute_phase()
        # Static loads: once balanced, later episodes stay balanced and
        # propose (almost) nothing.
        assert finals[-1] <= finals[0]
        assert finals[-1] < 0.5

    def test_subsequent_phase_faster_after_lb(self):
        rt = imbalanced_runtime(n_ranks=8, tasks_per_rank=8)
        before = rt.execute_phase()
        LBManager(rt, small_config(n_iters=4), seed=3).run_episode()
        after = rt.execute_phase()
        assert after.makespan < 0.7 * before.makespan
