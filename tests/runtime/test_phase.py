"""Unit tests for repro.runtime.phase."""

import numpy as np
import pytest

from repro.runtime.phase import PhaseBarrier, PhaseInstrumentation
from repro.sim.process import System


class TestPhaseBarrier:
    def test_releases_every_rank(self):
        sys_ = System(8)
        released = {}
        barrier = PhaseBarrier(sys_, lambda r, t: released.__setitem__(r, t))
        barrier.start()
        sys_.run()
        assert set(released) == set(range(8))

    def test_release_waits_for_slowest_rank(self):
        sys_ = System(4)
        sys_.processes[2].compute(5.0)  # rank 2 is busy until t=5
        released = {}
        barrier = PhaseBarrier(sys_, lambda r, t: released.__setitem__(r, t))
        barrier.start()
        sys_.run()
        assert min(released.values()) >= 5.0

    def test_single_rank(self):
        sys_ = System(1)
        released = {}
        barrier = PhaseBarrier(sys_, lambda r, t: released.__setitem__(r, t))
        barrier.start()
        sys_.run()
        assert released == {0: pytest.approx(0.0, abs=1e-6)}

    def test_two_sequential_barriers(self):
        sys_ = System(4)
        first, second = {}, {}
        b1 = PhaseBarrier(sys_, lambda r, t: first.__setitem__(r, t))
        b1.start()
        sys_.run()
        sys_.processes[0].compute(1.0)
        b2 = PhaseBarrier(sys_, lambda r, t: second.__setitem__(r, t))
        b2.start()
        sys_.run()
        assert min(second.values()) >= max(first.values())
        assert min(second.values()) >= 1.0


class TestPhaseInstrumentation:
    def test_latest(self):
        inst = PhaseInstrumentation()
        inst.observe(np.array([1.0, 2.0]))
        inst.observe(np.array([3.0, 4.0]))
        np.testing.assert_array_equal(inst.latest(), [3.0, 4.0])
        assert inst.n_phases == 2

    def test_latest_is_a_copy(self):
        inst = PhaseInstrumentation()
        loads = np.array([1.0])
        inst.observe(loads)
        loads[0] = 99.0
        assert inst.latest()[0] == 1.0

    def test_smoothed(self):
        inst = PhaseInstrumentation()
        inst.observe(np.array([1.0]))
        inst.observe(np.array([3.0]))
        np.testing.assert_allclose(inst.smoothed(window=2), [2.0])

    def test_history_bounded(self):
        inst = PhaseInstrumentation(max_phases_kept=3)
        for i in range(10):
            inst.observe(np.array([float(i)]))
        assert inst.n_phases == 3
        assert inst.latest()[0] == 9.0

    def test_empty_raises(self):
        inst = PhaseInstrumentation()
        with pytest.raises(RuntimeError, match="no phase"):
            inst.latest()
        with pytest.raises(RuntimeError, match="no phase"):
            inst.smoothed()
