"""Unit tests for repro.runtime.epochs (scoped termination)."""

import pytest

from repro.runtime.epochs import EpochManager
from repro.sim.process import System


def ripple(sys_, tag, hops, start_rank=0):
    """Register a forwarding handler under `tag` and kick it off."""

    def handler(proc, msg):
        if msg.payload > 0:
            proc.send((proc.rank + 1) % sys_.n_ranks, tag, payload=msg.payload - 1)

    for p in sys_.processes:
        p.register(tag, handler)
    sys_.processes[start_rank].send((start_rank + 1) % sys_.n_ranks, tag, payload=hops)


class TestEpoch:
    def test_tag_scoping(self):
        sys_ = System(2)
        mgr = EpochManager(sys_)
        a, b = mgr.new_epoch("a"), mgr.new_epoch("b")
        assert a.tag("work") != b.tag("work")
        assert a.owns(a.tag("work"))
        assert not a.owns(b.tag("work"))

    def test_control_tags_rejected(self):
        epoch = EpochManager(System(2)).new_epoch()
        with pytest.raises(ValueError, match="control"):
            epoch.tag("__secret")

    def test_single_epoch_terminates(self):
        sys_ = System(4)
        epoch = EpochManager(sys_).new_epoch()
        ripple(sys_, epoch.tag("work"), hops=6)
        epoch.detect_termination()
        sys_.run()
        assert epoch.terminated
        assert epoch.finish_time > 0

    def test_concurrent_epochs_terminate_independently(self):
        # Epoch A is short; epoch B keeps rippling long after. A's
        # detector must fire while B is still in flight.
        sys_ = System(4)
        mgr = EpochManager(sys_)
        a, b = mgr.new_epoch("short"), mgr.new_epoch("long")
        ripple(sys_, a.tag("work"), hops=3)
        ripple(sys_, b.tag("work"), hops=400)
        a.detect_termination()
        b.detect_termination()
        sys_.run()
        assert a.terminated and b.terminated
        assert a.finish_time < b.finish_time

    def test_unscoped_traffic_does_not_block_epoch(self):
        sys_ = System(4)
        epoch = EpochManager(sys_).new_epoch()
        ripple(sys_, epoch.tag("work"), hops=2)
        # Plain (epoch-less) traffic running much longer.
        ripple(sys_, "background", hops=300)
        epoch.detect_termination()
        sys_.run()
        assert epoch.terminated

    def test_double_arm_rejected(self):
        sys_ = System(2)
        epoch = EpochManager(sys_).new_epoch()
        epoch.detect_termination()
        with pytest.raises(RuntimeError, match="already armed"):
            epoch.detect_termination()

    def test_finish_time_before_termination_raises(self):
        epoch = EpochManager(System(2)).new_epoch()
        with pytest.raises(RuntimeError, match="not terminated"):
            epoch.finish_time

    def test_manager_tracks_epochs(self):
        mgr = EpochManager(System(2))
        mgr.new_epoch()
        mgr.new_epoch()
        assert len(mgr.epochs) == 2
        assert mgr.epochs[0].epoch_id != mgr.epochs[1].epoch_id
