"""Unit tests for repro.runtime.migration."""

import numpy as np
import pytest

from repro.runtime.migration import migrate_tasks
from repro.sim.process import System


class TestMigration:
    def test_basic_episode(self):
        sys_ = System(4)
        loads = np.array([1.0, 2.0, 0.5])
        res = migrate_tasks(sys_, [(0, 0, 1), (1, 0, 2)], loads, bytes_per_unit_load=1000)
        assert res.n_migrations == 2
        assert res.bytes_moved == (2048 + 1000) + (2048 + 2000)
        assert res.duration > 0

    def test_no_moves(self):
        sys_ = System(4)
        res = migrate_tasks(sys_, [], np.array([1.0]))
        assert res.n_migrations == 0
        assert res.bytes_moved == 0

    def test_multi_hop_collapsed(self):
        # Task 0 proposed 0->1 then 1->2: shipped once, 0->2.
        sys_ = System(4)
        res = migrate_tasks(sys_, [(0, 0, 1), (0, 1, 2)], np.array([1.0]))
        assert res.n_migrations == 1

    def test_roundtrip_move_is_free(self):
        # 0->1 then 1->0: final destination equals origin; nothing ships.
        sys_ = System(4)
        res = migrate_tasks(sys_, [(0, 0, 1), (0, 1, 0)], np.array([1.0]))
        assert res.n_migrations == 0

    def test_heavier_tasks_cost_more_time(self):
        def run(load):
            sys_ = System(2)
            res = migrate_tasks(
                sys_, [(0, 0, 1)], np.array([load]), bytes_per_unit_load=1e9
            )
            return res.duration

        assert run(10.0) > run(0.1)

    def test_clock_advances(self):
        sys_ = System(4)
        before = sys_.engine.now
        migrate_tasks(sys_, [(0, 0, 3)], np.array([5.0]))
        assert sys_.engine.now > before

    def test_many_migrations_terminate(self):
        sys_ = System(8)
        rng = np.random.default_rng(0)
        loads = rng.random(100)
        moves = [
            (t, int(rng.integers(0, 8)), int(rng.integers(0, 8))) for t in range(100)
        ]
        res = migrate_tasks(sys_, moves, loads)
        assert res.n_migrations <= 100
        assert res.end_time >= res.start_time
