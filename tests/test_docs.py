"""Documentation consistency guards.

The README, DESIGN.md and docs/ reference bench files, example scripts
and modules by name; these tests keep those references from rotting.
"""

import re
from pathlib import Path

import pytest

ROOT = Path(__file__).parent.parent


def read(name: str) -> str:
    return (ROOT / name).read_text()


class TestReadme:
    def test_referenced_benches_exist(self):
        names = re.findall(r"`(bench_\w+\.py)`", read("README.md"))
        assert names, "README should reference bench files"
        for name in names:
            assert (ROOT / "benchmarks" / name).is_file(), name

    def test_referenced_examples_exist(self):
        names = re.findall(r"`examples/(\w+\.py)`", read("README.md"))
        assert names
        for name in names:
            assert (ROOT / "examples" / name).is_file(), name

    def test_quickstart_code_runs(self):
        # The README quickstart block must execute as written.
        text = read("README.md")
        block = re.search(r"## Quickstart\s+```python\n(.*?)```", text, re.DOTALL)
        assert block, "README quickstart code block missing"
        code = block.group(1)
        scope: dict = {}
        exec(compile(code, "README-quickstart", "exec"), scope)  # noqa: S102

    def test_version_consistency(self):
        import repro

        assert repro.__version__ in read("CHANGELOG.md")


class TestDesign:
    def test_experiment_index_benches_exist(self):
        names = re.findall(r"`benchmarks/(bench_\w+\.py)`", read("DESIGN.md"))
        assert len(set(names)) >= 15
        for name in set(names):
            assert (ROOT / "benchmarks" / name).is_file(), name

    def test_module_map_files_exist(self):
        text = read("DESIGN.md")
        block = re.search(r"```\nsrc/repro/\n(.*?)```", text, re.DOTALL)
        assert block
        current_pkg = ""
        for line in block.group(1).splitlines():
            pkg = re.match(r"  (\w+)/", line)
            if pkg:
                current_pkg = pkg.group(1)
                continue
            mod = re.match(r"    (\w+\.py)", line)
            if mod and current_pkg:
                path = ROOT / "src" / "repro" / current_pkg / mod.group(1)
                assert path.is_file(), path
            top = re.match(r"  (\w+\.py)", line)
            if top:
                assert (ROOT / "src" / "repro" / top.group(1)).is_file()

    def test_paper_identity_check_present(self):
        assert "CLUSTER 2021" in read("DESIGN.md")
        assert "TemperedLB" in read("DESIGN.md")


class TestDocsDir:
    @pytest.mark.parametrize(
        "name",
        [
            "algorithms.md",
            "simulation.md",
            "reproducing.md",
            "api.md",
            "observability.md",
            "fault_tolerance.md",
        ],
    )
    def test_docs_exist_and_substantial(self, name):
        text = read(f"docs/{name}")
        assert len(text) > 1500

    def test_experiments_covers_all_paper_artifacts(self):
        text = read("EXPERIMENTS.md")
        for artifact in ("T1", "T2", "T3", "F2", "F3", "F4a", "F4b", "F4c", "F4d"):
            assert f"## {artifact} " in text, artifact
