"""Smoke tests for the example scripts.

Every example must at least byte-compile; the fast ones also execute
end to end (with their output captured) so a broken public API surfaces
here rather than in a user's terminal.
"""

import py_compile
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"
ALL_EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))

#: Examples fast enough to execute in the suite (a few seconds each).
FAST_EXAMPLES = ["quickstart.py", "ordering_study.py", "work_stealing.py"]


@pytest.mark.parametrize("path", ALL_EXAMPLES, ids=lambda p: p.name)
def test_example_compiles(path):
    py_compile.compile(str(path), doraise=True)


def test_examples_directory_populated():
    names = {p.name for p in ALL_EXAMPLES}
    assert "quickstart.py" in names
    assert len(names) >= 8


@pytest.mark.parametrize("name", FAST_EXAMPLES)
def test_fast_example_runs(name):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip()
