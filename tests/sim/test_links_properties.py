"""Property-based tests for the fault-injection link stack.

The abstractions promise textbook guarantees (Cachin–Guerraoui–
Rodrigues layering): stubborn links deliver eventually for any loss
probability < 1, dedup restores at-most-once on top of duplication,
arrivals farther apart than the reorder window keep their order, and
the heartbeat detector is complete (crashed ranks get suspected) and
eventually accurate (live ranks do not stay suspected).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.faults import (
    ChurnEvent,
    FaultConfig,
    FaultyLink,
    HeartbeatFailureDetector,
    StubbornLink,
    parse_churn,
)
from repro.sim.process import System


def test_parse_churn_roundtrip():
    events = parse_churn("crash:3@2e-3, restart:3@4e-3")
    assert events == (
        ChurnEvent(2e-3, "crash", 3),
        ChurnEvent(4e-3, "restart", 3),
    )
    assert events[0].down and not events[1].down
    with pytest.raises(ValueError):
        parse_churn("explode:1@0.5")
    with pytest.raises(ValueError):
        parse_churn("crash-1")


@settings(max_examples=25, deadline=None)
@given(
    loss=st.floats(min_value=0.0, max_value=0.9),
    n_messages=st.integers(min_value=1, max_value=30),
    seed=st.integers(min_value=0, max_value=2**20),
)
def test_stubborn_eventual_delivery(loss, n_messages, seed):
    """Unbounded retries beat any loss probability < 1: every payload
    is handed to the application exactly once."""
    config = FaultConfig(loss_rate=loss, seed=seed, max_retries=None, rto=1e-5)
    sys_ = System(4)
    FaultyLink(sys_, config)
    link = StubbornLink(sys_, config)
    delivered = []
    link.register("data", lambda proc, msg: delivered.append(msg.payload))
    for i in range(n_messages):
        link.send(0, 1 + i % 3, "data", payload=i)
    sys_.run()
    assert sorted(delivered) == list(range(n_messages))


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**20),
    n_messages=st.integers(min_value=1, max_value=20),
)
def test_no_duplication_after_dedup(seed, n_messages):
    """duplicate_rate=1 delivers every copy twice on the wire; the
    stubborn layer's sequence dedup hands each to the app once."""
    config = FaultConfig(duplicate_rate=1.0, seed=seed, max_retries=0)
    sys_ = System(3)
    link_layer = FaultyLink(sys_, config)
    link = StubbornLink(sys_, config)
    delivered = []
    link.register("data", lambda proc, msg: delivered.append(msg.payload))
    for i in range(n_messages):
        link.send(0, 1 + i % 2, "data", payload=i)
    sys_.run()
    assert sorted(delivered) == list(range(n_messages))
    assert link_layer.duplicates == n_messages
    assert link.deduped >= n_messages


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**20),
    window=st.floats(min_value=1e-7, max_value=1e-5),
)
def test_fifo_outside_reorder_window(seed, window):
    """Messages whose nominal arrivals are farther apart than the
    reorder window cannot swap: the extra latency is < window."""
    config = FaultConfig(reorder_window=window, seed=seed)
    sys_ = System(2)
    FaultyLink(sys_, config)
    order = []
    sys_.processes[1].register("data", lambda proc, msg: order.append(msg.payload))
    spacing = window * 1.5 + 1e-6

    def send(i):
        sys_.processes[0].send(1, "data", payload=i, size=8)
        if i + 1 < 5:
            sys_.engine.schedule(spacing, send, i + 1)

    send(0)
    sys_.run()
    assert order == sorted(order)


def test_reorder_window_can_swap_adjacent():
    """Back-to-back messages inside the window do swap for some seed —
    the fault path is not secretly FIFO."""
    for seed in range(50):
        config = FaultConfig(reorder_window=5e-5, seed=seed)
        sys_ = System(2)
        FaultyLink(sys_, config)
        order = []
        sys_.processes[1].register(
            "data", lambda proc, msg: order.append(msg.payload)
        )
        sys_.processes[0].send(1, "data", payload=0, size=8)
        sys_.processes[0].send(1, "data", payload=1, size=8)
        sys_.run()
        if order == [1, 0]:
            return
    pytest.fail("no seed produced a reorder inside the window")


def test_detector_completeness_crash_then_quiet():
    """A crashed rank is eventually suspected and stays suspected."""
    config = FaultConfig(
        churn=(ChurnEvent(5e-4, "crash", 2),),
        heartbeat_period=1e-4,
        suspect_timeout=4e-4,
    )
    sys_ = System(4)
    link = FaultyLink(sys_, config)
    detector = HeartbeatFailureDetector(sys_, config)
    detector.start()
    sys_.run(until=5e-3)
    detector.stop()
    assert not link.is_alive(2)
    assert detector.is_suspected(2)
    assert all(not detector.is_suspected(r) for r in (0, 1, 3))


def test_detector_eventual_accuracy_no_crash():
    """With everyone alive and heartbeating, nobody stays suspected."""
    config = FaultConfig(
        loss_rate=1e-6,  # keep the layer active without real loss
        heartbeat_period=1e-4,
        suspect_timeout=5e-4,
    )
    sys_ = System(4)
    FaultyLink(sys_, config)
    detector = HeartbeatFailureDetector(sys_, config)
    detector.start()
    sys_.run(until=5e-3)
    detector.stop()
    assert not detector.suspected


def test_detector_unsuspects_after_restart():
    """A restarted rank's first heartbeat clears the suspicion and
    backs its timeout off (eventual accuracy under churn)."""
    config = FaultConfig(
        churn=(ChurnEvent(5e-4, "crash", 1), ChurnEvent(3e-3, "restart", 1)),
        heartbeat_period=1e-4,
        suspect_timeout=4e-4,
    )
    sys_ = System(3)
    FaultyLink(sys_, config)
    detector = HeartbeatFailureDetector(sys_, config)
    detector.start()
    sys_.run(until=2.5e-3)
    assert detector.is_suspected(1)
    timeout_before = float(detector.timeouts[1])
    sys_.run(until=6e-3)
    detector.stop()
    assert not detector.is_suspected(1)
    assert float(detector.timeouts[1]) > timeout_before


def test_stubborn_gives_up_after_max_retries():
    config = FaultConfig(loss_rate=1.0, seed=1, max_retries=3, rto=1e-5)
    sys_ = System(2)
    FaultyLink(sys_, config)
    link = StubbornLink(sys_, config)
    delivered = []
    link.register("data", lambda proc, msg: delivered.append(msg.payload))
    link.send(0, 1, "data", payload=0)
    sys_.run()
    assert delivered == []
    assert link.giveups == 1
    assert link.retransmits == 3
