"""Membership churn and the degradation envelope.

Crash/restart events land inside live LB episodes; the invariants are
conservation (no task is ever lost — failover restarts orphaned work
on live ranks), recovery (a restarted rank rejoins empty and the
balancer converges it back), and a seed-pinned ceiling on how much
imbalance quality gossip loss is allowed to cost.
"""

import numpy as np
import pytest

from repro.core.tempered import TemperedConfig, TemperedLB
from repro.obs import StatsRegistry
from repro.runtime.amt import AMTRuntime
from repro.runtime.lbmanager import LBManager, failover_assignment
from repro.sim.faults import FaultConfig, FaultyLink, parse_churn
from repro.workloads import paper_analysis_scenario

N_RANKS = 16
N_TASKS = 256


def _runtime(fault_config, seed=5, registry=None):
    rng = np.random.default_rng(seed)
    task_loads = rng.gamma(2.0, 1.0, size=N_TASKS)
    assignment = rng.integers(0, N_RANKS, size=N_TASKS)
    runtime = AMTRuntime(N_RANKS, task_loads, assignment, registry=registry)
    link = None
    if fault_config is not None:
        link = FaultyLink(runtime.system, fault_config, registry=registry)
    return runtime, link, task_loads


def _rank_loads(runtime, task_loads):
    return np.bincount(runtime.assignment, weights=task_loads, minlength=N_RANKS)


def test_failover_assignment_conserves_and_empties_dead_ranks():
    rng = np.random.default_rng(0)
    task_loads = rng.gamma(2.0, 1.0, size=64)
    assignment = rng.integers(0, 8, size=64)
    alive = np.ones(8, dtype=bool)
    alive[[2, 5]] = False
    repaired, moved = failover_assignment(assignment, task_loads, alive)
    assert moved == int(np.isin(assignment, [2, 5]).sum()) > 0
    assert not np.isin(repaired, [2, 5]).any()
    assert np.isclose(
        np.bincount(repaired, weights=task_loads, minlength=8).sum(),
        task_loads.sum(),
    )
    # Untouched tasks stay put; all-alive is the identity.
    alive_mask = alive[assignment]
    assert np.array_equal(repaired[alive_mask], assignment[alive_mask])
    same, zero = failover_assignment(assignment, task_loads, np.ones(8, dtype=bool))
    assert zero == 0 and np.array_equal(same, assignment)
    with pytest.raises(ValueError):
        failover_assignment(assignment, task_loads, np.zeros(8, dtype=bool))


def test_crash_mid_episode_conserves_load_every_phase():
    """A rank dies inside the first episode's gossip window: the
    episode still completes (stage timeout replaces the broken
    barrier), total load is conserved at every phase boundary, and the
    next episode's failover leaves nothing on the dead rank."""
    registry = StatsRegistry()
    fc = FaultConfig(
        churn=parse_churn("crash:3@1e-4"),
        loss_rate=0.01,
        stage_timeout=2e-3,
    )
    runtime, link, task_loads = _runtime(fc, registry=registry)
    total = task_loads.sum()
    manager = LBManager(
        runtime, TemperedConfig(n_trials=1, n_iters=3), seed=7, registry=registry
    )

    first = manager.run_episode(task_loads)
    assert link.crashes == 1 and not link.is_alive(3)
    assert np.isclose(_rank_loads(runtime, task_loads).sum(), total)

    # Second episode starts with rank 3 known-dead: checkpoint failover
    # moves its tasks to live ranks before balancing.
    second = manager.run_episode(task_loads)
    assert not (runtime.assignment == 3).any()
    assert np.isclose(_rank_loads(runtime, task_loads).sum(), total)
    assert registry.counters.get("faults.failover_tasks", 0) > 0
    assert np.isfinite(first.final_imbalance) and np.isfinite(second.final_imbalance)


def test_restarted_rank_rejoins_empty_and_converges():
    """Crash, fail over, restart: the rank comes back with zero load
    and the next episodes migrate work onto it again."""
    fc = FaultConfig(churn=parse_churn("crash:2@1e-4"))
    runtime, link, task_loads = _runtime(fc)
    manager = LBManager(runtime, TemperedConfig(n_trials=1, n_iters=3), seed=7)
    manager.run_episode(task_loads)  # crash lands in here
    manager.run_episode(task_loads)  # failover empties rank 2
    assert not (runtime.assignment == 2).any()

    link.restart(2)
    assert link.is_alive(2)
    # The runtime's phase barrier needs the full membership; a restart
    # must make execute_phase work again.
    runtime.execute_phase()
    rebalanced = manager.run_episode(task_loads)
    assert (runtime.assignment == 2).any(), "restarted rank got no work back"
    balanced_loads = _rank_loads(runtime, task_loads)
    assert np.isclose(balanced_loads.sum(), task_loads.sum())
    assert rebalanced.final_imbalance <= rebalanced.initial_imbalance


#: Seed-pinned degradation ceilings for the phase-level pipeline at
#: quick scale (seed=0, fault_seed=0). The fault-free run refines to
#: ~0.47; lossy gossip may cost quality but must stay under these.
LOSS_CEILINGS = {0.01: 0.75, 0.05: 0.75, 0.10: 0.80}


@pytest.mark.parametrize("loss_rate", sorted(LOSS_CEILINGS))
def test_imbalance_ceiling_under_loss(loss_rate):
    dist = paper_analysis_scenario(
        n_tasks=2000, n_loaded_ranks=8, n_ranks=256, seed=0
    )
    lb = TemperedLB(
        TemperedConfig(
            n_trials=2,
            n_iters=4,
            faults=FaultConfig(loss_rate=loss_rate, seed=0),
        )
    )
    result = lb.rebalance(dist, rng=np.random.default_rng(0))
    assert result.final_imbalance < result.initial_imbalance
    assert result.final_imbalance <= LOSS_CEILINGS[loss_rate], (
        f"loss={loss_rate}: imbalance {result.final_imbalance:.4f} above "
        f"the pinned ceiling {LOSS_CEILINGS[loss_rate]}"
    )
