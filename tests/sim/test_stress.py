"""Stress tests: random message storms with tracing invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.process import System
from repro.sim.termination import SafraDetector
from repro.sim.trace import Tracer


@given(
    n_ranks=st.integers(min_value=2, max_value=10),
    n_seeds=st.integers(min_value=1, max_value=5),
    depth=st.integers(min_value=0, max_value=4),
    seed=st.integers(min_value=0, max_value=5000),
)
@settings(max_examples=25, deadline=None)
def test_storm_invariants(n_ranks, n_seeds, depth, seed):
    """Under a random storm: utilization stays in [0, 1], the traced
    communication matrix matches the system's byte counter, and the
    detector still fires exactly once."""
    rng = np.random.default_rng(seed)
    sys_ = System(n_ranks)
    tracer = Tracer(sys_)

    def handler(proc, msg):
        proc.compute(float(rng.random()) * 1e-3)
        if msg.payload > 0:
            for _ in range(int(rng.integers(0, 3))):
                proc.send(
                    int(rng.integers(0, n_ranks)),
                    "storm",
                    payload=msg.payload - 1,
                    size=int(rng.integers(16, 4096)),
                )

    for p in sys_.processes:
        p.register("storm", handler)
    detected = []
    det = SafraDetector(sys_, on_terminate=detected.append)
    for _ in range(n_seeds):
        sys_.processes[0].send(int(rng.integers(0, n_ranks)), "storm", payload=depth)
    det.start()
    sys_.run()

    assert len(detected) == 1
    util = tracer.utilization()
    assert (util >= 0).all() and (util <= 1.0 + 1e-12).all()
    # Tracer's matrix covers exactly the application bytes (control
    # traffic — token ring — is excluded from the tracer by default).
    matrix = tracer.communication_matrix()
    app_bytes = sum(r.size for r in tracer.sends)
    assert matrix.sum() == pytest.approx(app_bytes)
    assert app_bytes <= sys_.bytes_sent  # control traffic on top
    # Busy time equals what the processes accumulated.
    np.testing.assert_allclose(
        tracer.busy_time(), [p.compute_time for p in sys_.processes], rtol=1e-9
    )
