"""Stage-timeout envelope of the event-level inform stage.

The faulty branch of :meth:`DistributedGossip.run` bounds the stage by
``start + stage_timeout`` with a peek/step loop, then advances the
clock with ``Engine.run(until=deadline)``. Both treat an event landing
exactly on the deadline as inside the budget, so the seam between them
cannot double-dispatch or skip an event. These tests pin the envelope
— including the degenerate budget that expires before the first
delivery matures — so a future driver change that drifts either side
of the seam fails a seeded regression, not a debugging session.
"""

import numpy as np
import pytest

from repro.runtime.distributed_gossip import DistributedGossip
from repro.sim.faults import FaultConfig, FaultyLink, parse_churn
from repro.sim.process import System

N_RANKS = 16
SEED = 3


def _loads():
    return np.random.default_rng(SEED).gamma(2.0, 1.0, size=N_RANKS)


def _system(stage_timeout):
    """A system whose only active fault source is a far-future crash —
    it flips the driver onto the timeout-bounded branch without ever
    perturbing a message inside the stage."""
    system = System(N_RANKS)
    FaultyLink(
        system,
        FaultConfig(churn=parse_churn("crash:3@5.0"), stage_timeout=stage_timeout),
    )
    return system


def _run(stage_timeout):
    system = _system(stage_timeout)
    start = system.engine.now
    outcome = DistributedGossip(system, _loads()).run()
    return system, start, outcome


class TestStageTimeout:
    def test_zero_remaining_budget_yields_seeds_only(self):
        """A budget that expires before the first delivery matures:
        the stage returns seed self-knowledge, charges exactly the
        budget, and does not crash or hang."""
        system, start, outcome = _run(1e-12)
        assert outcome.elapsed == pytest.approx(1e-12)
        assert system.engine.now == pytest.approx(start + 1e-12)
        # Round-1 sends happened (they are charged at send time) but
        # nothing was delivered, so coverage is the seeds' own bits.
        assert outcome.n_messages > 0
        # Each seed knows exactly itself out of U underloaded ranks and
        # everyone else knows nothing: mean coverage is U*(1/U)/P = 1/P.
        assert outcome.underloaded.sum() > 0
        assert outcome.to_gossip_result().coverage() == pytest.approx(
            1.0 / N_RANKS
        )

    def test_timeout_charges_exactly_the_budget(self):
        """When quiescence beats the deadline, elapsed is the detection
        time; the clock never overshoots the deadline either way."""
        timeout = 2e-3
        system, start, outcome = _run(timeout)
        assert 0.0 < outcome.elapsed <= timeout
        assert system.engine.now - start <= timeout

    def test_envelope_is_seed_deterministic(self):
        """Same seed, same budget -> bit-identical stage outcome."""
        for timeout in (1e-12, 2e-3):
            a = _run(timeout)[2]
            b = _run(timeout)[2]
            assert a.n_messages == b.n_messages
            assert a.bytes_sent == b.bytes_sent
            assert a.elapsed == b.elapsed
            for rank in range(N_RANKS):
                np.testing.assert_array_equal(
                    a.knowledge.known(rank), b.knowledge.known(rank)
                )

    def test_expired_stage_does_not_poison_the_next(self):
        """Deliveries stranded past the deadline must be inert: a
        second stage on the same system runs to normal quiescence with
        its own accounting, never consuming the stale messages."""
        system, _, first = _run(1e-12)
        stranded = system.engine.pending
        assert stranded > 1  # the undelivered round-1 sends + the churn event
        # Restore a workable budget for the follow-up stage; the first
        # stage's closed-flag must keep its stranded deliveries inert.
        system.faults.config = FaultConfig(
            churn=parse_churn("crash:3@5.0"), stage_timeout=2e-3
        )
        second = DistributedGossip(system, _loads()).run()
        assert second.n_messages > first.n_messages
        assert second.to_gossip_result().coverage() > 0.9
