"""Unit tests for repro.sim.network."""

import pytest

from repro.sim.network import NetworkModel


class TestTopology:
    def test_node_block_mapping(self):
        net = NetworkModel(ranks_per_node=4)
        assert net.node_of(0) == 0
        assert net.node_of(3) == 0
        assert net.node_of(4) == 1

    def test_self_message_cheapest(self):
        net = NetworkModel()
        assert net.latency(0, 0, 100) < net.latency(0, 1, 100)

    def test_intra_node_cheaper_than_inter(self):
        net = NetworkModel(ranks_per_node=4)
        assert net.latency(0, 1, 1000) < net.latency(0, 5, 1000)

    def test_latency_grows_with_size(self):
        net = NetworkModel()
        assert net.latency(0, 5, 10**6) > net.latency(0, 5, 10)

    def test_alpha_beta_decomposition(self):
        net = NetworkModel(ranks_per_node=1, inter_latency=1e-6, inter_bandwidth=1e9)
        assert net.latency(0, 1, 0) == pytest.approx(1e-6)
        assert net.latency(0, 1, 10**9) == pytest.approx(1.0 + 1e-6)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            NetworkModel().latency(0, 1, -5)

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            NetworkModel(ranks_per_node=0)
        with pytest.raises(ValueError):
            NetworkModel(inter_bandwidth=0.0)
