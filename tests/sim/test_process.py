"""Unit tests for repro.sim.process (System / Process)."""

import pytest

from repro.sim.network import NetworkModel
from repro.sim.process import System


def make_system(n=4, **kw):
    return System(n, network=NetworkModel(ranks_per_node=2), **kw)


class TestMessaging:
    def test_message_delivered_to_handler(self):
        sys_ = make_system()
        got = []
        sys_.processes[1].register("ping", lambda proc, msg: got.append(msg.payload))
        sys_.processes[0].send(1, "ping", payload="hello", size=32)
        sys_.run()
        assert got == ["hello"]

    def test_missing_handler_raises(self):
        sys_ = make_system()
        sys_.processes[0].send(1, "nope")
        with pytest.raises(KeyError, match="no handler"):
            sys_.run()

    def test_duplicate_handler_rejected(self):
        sys_ = make_system()
        sys_.processes[0].register("t", lambda p, m: None)
        with pytest.raises(ValueError, match="already registered"):
            sys_.processes[0].register("t", lambda p, m: None)

    def test_out_of_range_destination(self):
        sys_ = make_system()
        with pytest.raises(ValueError, match="out of range"):
            sys_.processes[0].send(17, "t")

    def test_reply_chain(self):
        sys_ = make_system()
        trace = []

        def ping(proc, msg):
            trace.append(("ping", proc.rank))
            proc.send(msg.src, "pong")

        def pong(proc, msg):
            trace.append(("pong", proc.rank))

        sys_.processes[1].register("ping", ping)
        sys_.processes[0].register("pong", pong)
        sys_.processes[0].send(1, "ping")
        sys_.run()
        assert trace == [("ping", 1), ("pong", 0)]

    def test_accounting(self):
        sys_ = make_system()
        sys_.processes[1].register("t", lambda p, m: None)
        sys_.processes[0].send(1, "t", size=100)
        sys_.processes[0].send(1, "t", size=50)
        sys_.run()
        assert sys_.messages_sent == 2
        assert sys_.bytes_sent == 150
        assert sys_.processes[0].sent == 2
        assert sys_.processes[1].received == 2


class TestTiming:
    def test_inter_node_slower_than_intra(self):
        times = {}

        def receiver(key):
            def handler(proc, msg):
                times[key] = proc.system.engine.now

            return handler

        sys_ = make_system()  # ranks_per_node=2: 0,1 on node 0; 2,3 on node 1
        sys_.processes[1].register("t", receiver("intra"))
        sys_.processes[2].register("t", receiver("inter"))
        sys_.processes[0].send(1, "t", size=1000)
        sys_.processes[0].send(2, "t", size=1000)
        sys_.run()
        assert times["intra"] < times["inter"]

    def test_handlers_serialized_on_one_rank(self):
        # Two messages arriving nearly simultaneously execute back to
        # back, separated by the handler overhead + compute time.
        sys_ = System(2, handler_overhead=1e-3)
        starts = []

        def slow(proc, msg):
            starts.append(proc.system.engine.now)
            proc.compute(0.5)

        sys_.processes[1].register("t", slow)
        sys_.processes[0].send(1, "t")
        sys_.processes[0].send(1, "t")
        sys_.run()
        assert len(starts) == 2
        assert starts[1] - starts[0] >= 0.5

    def test_nic_serializes_concurrent_sends(self):
        # Two large messages from one rank to different peers cannot
        # overlap their transmission time.
        from repro.sim.network import NetworkModel

        net = NetworkModel(ranks_per_node=1, inter_latency=0.0, inter_bandwidth=1e6)
        sys_ = System(3, network=net)
        arrivals = {}

        def receiver(proc, msg):
            arrivals[proc.rank] = proc.system.engine.now

        sys_.processes[1].register("t", receiver)
        sys_.processes[2].register("t", receiver)
        sys_.processes[0].send(1, "t", size=10**6)  # 1 second of tx
        sys_.processes[0].send(2, "t", size=10**6)
        sys_.run()
        assert arrivals[1] == pytest.approx(1.0, rel=1e-6)
        assert arrivals[2] == pytest.approx(2.0, rel=1e-6)

    def test_incast_serializes_at_receiver(self):
        # Two large messages from different senders to one receiver
        # cannot complete their reception simultaneously.
        from repro.sim.network import NetworkModel

        net = NetworkModel(ranks_per_node=1, inter_latency=0.0, inter_bandwidth=1e6)
        sys_ = System(3, network=net)
        arrivals = []

        sys_.processes[2].register("t", lambda p, m: arrivals.append(p.system.engine.now))
        sys_.processes[0].send(2, "t", size=10**6)  # 1 second of tx
        sys_.processes[1].send(2, "t", size=10**6)
        sys_.run()
        assert arrivals[0] == pytest.approx(1.0, rel=1e-6)
        assert arrivals[1] == pytest.approx(2.0, rel=1e-6)

    def test_self_messages_do_not_occupy_nic(self):
        sys_ = System(2)
        sys_.processes[0].register("t", lambda p, m: None)
        sys_.processes[0].send(0, "t", size=10**9)
        t = sys_.run()
        assert t < 1e-3  # only the local-delivery latency

    def test_compute_accumulates(self):
        sys_ = make_system()
        sys_.processes[0].compute(1.0)
        sys_.processes[0].compute(2.0)
        assert sys_.processes[0].compute_time == pytest.approx(3.0)
        assert sys_.processes[0].busy_until == pytest.approx(3.0)

    def test_negative_compute_rejected(self):
        sys_ = make_system()
        with pytest.raises(ValueError):
            sys_.processes[0].compute(-1.0)


class TestHooks:
    def test_transmit_and_post_execute_hooks(self):
        sys_ = make_system()
        events = []
        sys_.add_transmit_hook(lambda m: events.append(("tx", m.tag)))
        sys_.add_post_execute_hook(lambda p, m: events.append(("done", p.rank)))
        sys_.processes[1].register("t", lambda p, m: None)
        sys_.processes[0].send(1, "t")
        sys_.run()
        assert events == [("tx", "t"), ("done", 1)]

    def test_deliver_hook(self):
        sys_ = make_system()
        seen = []
        sys_.add_deliver_hook(lambda m: seen.append(m.msg_id))
        sys_.processes[1].register("t", lambda p, m: None)
        sys_.processes[0].send(1, "t")
        sys_.run()
        assert len(seen) == 1
