"""Unit tests for repro.sim.engine."""

import pytest

from repro.sim.engine import Engine


class TestScheduling:
    def test_events_run_in_time_order(self):
        e = Engine()
        log = []
        e.schedule(2.0, log.append, "b")
        e.schedule(1.0, log.append, "a")
        e.schedule(3.0, log.append, "c")
        e.run()
        assert log == ["a", "b", "c"]

    def test_ties_run_in_schedule_order(self):
        e = Engine()
        log = []
        for name in "abc":
            e.schedule(1.0, log.append, name)
        e.run()
        assert log == ["a", "b", "c"]

    def test_clock_advances_to_event_time(self):
        e = Engine()
        seen = []
        e.schedule(5.0, lambda: seen.append(e.now))
        e.run()
        assert seen == [5.0]
        assert e.now == 5.0

    def test_nested_scheduling(self):
        e = Engine()
        log = []

        def first():
            log.append(("first", e.now))
            e.schedule(1.0, second)

        def second():
            log.append(("second", e.now))

        e.schedule(1.0, first)
        e.run()
        assert log == [("first", 1.0), ("second", 2.0)]

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Engine().schedule(-1.0, lambda: None)

    def test_schedule_at_absolute(self):
        e = Engine()
        seen = []
        e.schedule_at(4.0, lambda: seen.append(e.now))
        e.run()
        assert seen == [4.0]

    def test_schedule_at_past_rejected(self):
        e = Engine()
        e.schedule(1.0, lambda: None)
        e.run()
        with pytest.raises(ValueError, match="past"):
            e.schedule_at(0.5, lambda: None)


class TestRunControl:
    def test_run_until_stops_clock_exactly(self):
        e = Engine()
        log = []
        e.schedule(1.0, log.append, "a")
        e.schedule(10.0, log.append, "b")
        e.run(until=5.0)
        assert log == ["a"]
        assert e.now == 5.0
        assert e.pending == 1

    def test_resume_after_until(self):
        e = Engine()
        log = []
        e.schedule(10.0, log.append, "b")
        e.run(until=5.0)
        e.run()
        assert log == ["b"]

    def test_max_events(self):
        e = Engine()
        log = []
        for i in range(5):
            e.schedule(float(i + 1), log.append, i)
        e.run(max_events=3)
        assert log == [0, 1, 2]
        assert e.events_processed == 3

    def test_step(self):
        e = Engine()
        log = []
        e.schedule(1.0, log.append, "x")
        assert e.step() is True
        assert e.step() is False
        assert log == ["x"]

    def test_run_until_with_empty_queue_advances_clock(self):
        e = Engine()
        e.run(until=7.0)
        assert e.now == 7.0
