"""Zero-fault invisibility: the fault layer at loss=0/delay=0/no-churn
is bit-identical to not installing it.

This is the contract that lets the fault subsystem ride along in the
default build: every decision, migration count and telemetry counter
must match the undecorated pipeline exactly — same RNG draws, same
message timestamps, same registry keys — across seeds and both gossip
engines.
"""

import re

import numpy as np
import pytest

from repro.core.distribution import Distribution
from repro.core.gossip import GossipConfig, run_inform_stage
from repro.core.tempered import TemperedConfig, TemperedLB
from repro.obs import StatsRegistry
from repro.runtime.amt import AMTRuntime
from repro.runtime.lbmanager import LBManager
from repro.sim.faults import FaultConfig, FaultyLink
from repro.workloads import paper_analysis_scenario

SEEDS = list(range(20))

INACTIVE = FaultConfig()  # every knob at zero


def _normalize_counters(counters):
    """Registry counters with protocol-instance suffixes folded away
    (tags like ``inform_7`` are numbered per process, not per run)."""
    out = {}
    for key, value in counters.items():
        key = re.sub(r"_\d+$", "", key)
        out[key] = out.get(key, 0) + value
    return out


def test_inactive_config_is_inactive():
    assert not INACTIVE.active
    assert FaultConfig(loss_rate=0.1).active
    assert FaultConfig(delay_rate=0.1).active
    assert FaultConfig(duplicate_rate=0.1).active
    assert FaultConfig(reorder_window=1e-6).active


@pytest.mark.parametrize("engine", ["loop", "batched"])
@pytest.mark.parametrize("seed", SEEDS)
def test_phase_gossip_bit_identical(engine, seed):
    rng = np.random.default_rng(seed)
    loads = rng.gamma(2.0, 1.0, size=96)
    bare = run_inform_stage(
        loads, GossipConfig(fanout=3, rounds=4, engine=engine), rng=seed
    )
    wrapped = run_inform_stage(
        loads,
        GossipConfig(fanout=3, rounds=4, engine=engine, faults=INACTIVE),
        rng=seed,
    )
    assert np.array_equal(bare.knowledge.rows, wrapped.knowledge.rows)
    assert bare.n_messages == wrapped.n_messages
    assert bare.bytes_sent == wrapped.bytes_sent
    assert bare.per_round_messages == wrapped.per_round_messages
    assert wrapped.dropped == wrapped.delayed == wrapped.duplicated == 0


@pytest.mark.parametrize("engine", ["loop", "batched"])
@pytest.mark.parametrize("seed", SEEDS)
def test_phase_rebalance_bit_identical(engine, seed):
    dist = paper_analysis_scenario(
        n_tasks=400, n_loaded_ranks=4, n_ranks=48, seed=seed
    )

    def run(faults):
        registry = StatsRegistry()
        lb = TemperedLB(
            TemperedConfig(
                n_trials=1, n_iters=2, fanout=3, rounds=4,
                gossip_engine=engine, faults=faults,
            )
        )
        lb.instrument(registry)
        result = lb.rebalance(dist, rng=np.random.default_rng(seed))
        return result, registry

    bare, reg_bare = run(None)
    wrapped, reg_wrapped = run(INACTIVE)
    assert np.array_equal(bare.assignment, wrapped.assignment)
    assert bare.final_imbalance == wrapped.final_imbalance
    assert bare.n_migrations == wrapped.n_migrations
    assert reg_bare.counters == reg_wrapped.counters


@pytest.mark.parametrize("seed", SEEDS[:6])
def test_event_episode_bit_identical(seed):
    def episode(install_layer):
        rng = np.random.default_rng(seed)
        task_loads = rng.gamma(2.0, 1.0, size=192)
        assignment = rng.integers(0, 12, size=192)
        registry = StatsRegistry()
        runtime = AMTRuntime(12, task_loads, assignment, registry=registry)
        if install_layer:
            link = FaultyLink(runtime.system, INACTIVE, registry=registry)
            assert not link.enabled
        manager = LBManager(
            runtime,
            TemperedConfig(n_trials=1, n_iters=2, fanout=3, rounds=4),
            seed=seed,
            registry=registry,
        )
        return manager.run_episode(task_loads), registry

    bare, reg_bare = episode(False)
    wrapped, reg_wrapped = episode(True)
    assert np.array_equal(bare.assignment, wrapped.assignment)
    assert bare.final_imbalance == wrapped.final_imbalance
    assert bare.t_lb == wrapped.t_lb
    assert bare.n_migrations == wrapped.n_migrations
    assert _normalize_counters(reg_bare.counters) == _normalize_counters(
        reg_wrapped.counters
    )
    # The inactive layer never wrote a fault counter.
    assert not any(k.startswith("faults.") for k in reg_wrapped.counters)


@pytest.mark.parametrize("engine", ["loop", "batched"])
def test_active_faults_are_deterministic(engine):
    """Active fault injection is seeded: the same (sampling seed,
    fault seed) pair reproduces the exact degraded outcome."""
    rng = np.random.default_rng(3)
    loads = rng.gamma(2.0, 1.0, size=96)
    faulty_cfg = GossipConfig(
        fanout=3, rounds=4, engine=engine,
        faults=FaultConfig(loss_rate=0.3, seed=5),
    )
    first = run_inform_stage(loads, faulty_cfg, rng=11)
    second = run_inform_stage(loads, faulty_cfg, rng=11)
    assert first.dropped > 0
    assert first.dropped == second.dropped
    assert np.array_equal(first.knowledge.rows, second.knowledge.rows)
    assert first.n_messages == second.n_messages
