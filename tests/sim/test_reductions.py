"""Unit tests for repro.sim.reductions."""

import pytest

from repro.sim.process import System
from repro.sim.reductions import allreduce, binomial_children, binomial_parent


class TestTreeShape:
    def test_parent_clears_lowest_bit(self):
        assert binomial_parent(1) == 0
        assert binomial_parent(6) == 4
        assert binomial_parent(7) == 6
        assert binomial_parent(12) == 8

    def test_root_has_no_parent(self):
        with pytest.raises(ValueError):
            binomial_parent(0)

    def test_children_of_root(self):
        assert binomial_children(0, 8) == [1, 2, 4]
        assert binomial_children(0, 6) == [1, 2, 4]
        assert binomial_children(0, 1) == []

    def test_children_of_internal_node(self):
        assert binomial_children(4, 8) == [5, 6]
        assert binomial_children(6, 8) == [7]
        assert binomial_children(5, 8) == []

    def test_tree_is_consistent(self):
        # Every non-root vrank's parent lists it as a child.
        for n in (2, 3, 5, 8, 13, 16):
            for v in range(1, n):
                assert v in binomial_children(binomial_parent(v), n)

    def test_tree_spans_all_ranks(self):
        for n in (1, 2, 7, 16):
            reached = {0}
            frontier = [0]
            while frontier:
                v = frontier.pop()
                for c in binomial_children(v, n):
                    assert c not in reached
                    reached.add(c)
                    frontier.append(c)
            assert reached == set(range(n))

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            binomial_children(8, 8)


class TestAllreduce:
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 7, 8, 16])
    def test_sum_reaches_every_rank(self, n):
        sys_ = System(n)
        results = {}
        allreduce(
            sys_,
            list(range(n)),
            combine=lambda a, b: a + b,
            on_complete=lambda rank, v: results.__setitem__(rank, v),
        )
        sys_.run()
        expected = n * (n - 1) // 2
        assert results == {r: expected for r in range(n)}

    def test_max_reduction(self):
        sys_ = System(5)
        results = {}
        allreduce(
            sys_,
            [3, 9, 1, 7, 5],
            combine=max,
            on_complete=lambda rank, v: results.__setitem__(rank, v),
        )
        sys_.run()
        assert set(results.values()) == {9}

    def test_nonzero_root(self):
        sys_ = System(6)
        results = {}
        allreduce(
            sys_,
            [1] * 6,
            combine=lambda a, b: a + b,
            on_complete=lambda rank, v: results.__setitem__(rank, v),
            root=3,
        )
        sys_.run()
        assert results == {r: 6 for r in range(6)}

    def test_completion_time_scales_logarithmically(self):
        def run(n):
            sys_ = System(n)
            t = {}
            allreduce(
                sys_,
                [0] * n,
                combine=lambda a, b: a + b,
                on_complete=lambda rank, v: t.__setitem__(rank, sys_.engine.now),
            )
            sys_.run()
            return max(t.values())

        t16, t256 = run(16), run(256)
        # 256 ranks is 2x the tree depth of 16 ranks, not 16x the time.
        assert t256 < 4 * t16

    def test_wrong_contribution_count(self):
        sys_ = System(4)
        with pytest.raises(ValueError, match="contribution"):
            allreduce(sys_, [1, 2], combine=max, on_complete=lambda r, v: None)

    def test_bad_root(self):
        sys_ = System(4)
        with pytest.raises(ValueError, match="root"):
            allreduce(sys_, [1] * 4, combine=max, on_complete=lambda r, v: None, root=9)

    def test_two_concurrent_allreduces_do_not_interfere(self):
        sys_ = System(4)
        res_a, res_b = {}, {}
        allreduce(sys_, [1] * 4, lambda a, b: a + b, lambda r, v: res_a.__setitem__(r, v))
        allreduce(sys_, [2] * 4, lambda a, b: a + b, lambda r, v: res_b.__setitem__(r, v))
        sys_.run()
        assert set(res_a.values()) == {4}
        assert set(res_b.values()) == {8}


class TestRankStreams:
    def test_streams_independent_and_deterministic(self):
        from repro.sim.rng import RankStreams

        a = RankStreams(4, seed=1)
        b = RankStreams(4, seed=1)
        assert a[0].random() == b[0].random()
        assert a[1].random() != a[2].random()
        assert len(a) == 4
