"""Property-based tests for the simulation substrate.

Random message graphs drive the termination detectors and reductions;
the invariants checked are the ones the protocols promise:
detection fires exactly once, never before the app quiesces, and
reductions compute the same value as a serial fold.
"""

import functools
import operator

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.process import System
from repro.sim.reductions import allreduce
from repro.sim.termination import DijkstraScholten, SafraDetector


def random_app(sys_, rng, n_seeds, depth, fanout_max):
    """An app where each message spawns a random number of children
    until depth exhausts. Returns the completion log."""
    log = []

    def handler(proc, msg):
        d = msg.payload
        log.append(sys_.engine.now)
        if d > 0:
            for _ in range(int(rng.integers(0, fanout_max + 1))):
                proc.send(int(rng.integers(0, sys_.n_ranks)), "app", payload=d - 1)

    for p in sys_.processes:
        p.register("app", handler)
    return log


@given(
    n_ranks=st.integers(min_value=2, max_value=12),
    n_seeds=st.integers(min_value=0, max_value=4),
    depth=st.integers(min_value=0, max_value=4),
    fanout_max=st.integers(min_value=0, max_value=3),
    seed=st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=40, deadline=None)
def test_safra_fires_once_and_not_prematurely(n_ranks, n_seeds, depth, fanout_max, seed):
    rng = np.random.default_rng(seed)
    sys_ = System(n_ranks)
    log = random_app(sys_, rng, n_seeds, depth, fanout_max)
    detected = []
    detector = SafraDetector(sys_, on_terminate=detected.append)
    for _ in range(n_seeds):
        sys_.processes[0].send(int(rng.integers(0, n_ranks)), "app", payload=depth)
    detector.start()
    sys_.run()
    assert detector.terminated
    assert len(detected) == 1
    if log:
        assert detected[0] >= max(log)


@given(
    n_ranks=st.integers(min_value=2, max_value=12),
    n_seeds=st.integers(min_value=0, max_value=4),
    depth=st.integers(min_value=0, max_value=4),
    fanout_max=st.integers(min_value=0, max_value=3),
    seed=st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=40, deadline=None)
def test_dijkstra_scholten_rooted(n_ranks, n_seeds, depth, fanout_max, seed):
    rng = np.random.default_rng(seed)
    sys_ = System(n_ranks)
    log = random_app(sys_, rng, n_seeds, depth, fanout_max)
    detected = []
    detector = DijkstraScholten(sys_, root=0, on_terminate=detected.append)
    for _ in range(n_seeds):
        sys_.processes[0].send(int(rng.integers(0, n_ranks)), "app", payload=depth)
    detector.start()
    sys_.run()
    assert detector.terminated
    assert len(detected) == 1
    if log:
        assert detected[0] >= max(log)


@given(
    n_ranks=st.integers(min_value=1, max_value=20),
    values=st.data(),
    op=st.sampled_from([operator.add, max, min]),
)
@settings(max_examples=40, deadline=None)
def test_allreduce_matches_serial_fold(n_ranks, values, op):
    contributions = values.draw(
        st.lists(
            st.integers(min_value=-1000, max_value=1000),
            min_size=n_ranks,
            max_size=n_ranks,
        )
    )
    sys_ = System(n_ranks)
    results = {}
    allreduce(
        sys_,
        contributions,
        combine=op,
        on_complete=lambda rank, v: results.__setitem__(rank, v),
    )
    sys_.run()
    expected = functools.reduce(op, contributions)
    assert set(results) == set(range(n_ranks))
    # add is associative-commutative over ints: exact equality holds.
    assert all(v == expected for v in results.values())


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=20, deadline=None)
def test_engine_time_monotone_under_random_scheduling(seed):
    from repro.sim.engine import Engine

    rng = np.random.default_rng(seed)
    engine = Engine()
    times = []

    def record():
        times.append(engine.now)
        if len(times) < 50:
            engine.schedule(float(rng.random()), record)

    engine.schedule(0.0, record)
    engine.run()
    assert times == sorted(times)
