"""Unit tests for repro.sim.trace."""

import numpy as np
import pytest

from repro.sim.process import System
from repro.sim.trace import Tracer


class TestSendTracing:
    def test_records_application_sends(self):
        sys_ = System(4)
        tracer = Tracer(sys_)
        sys_.processes[1].register("work", lambda p, m: None)
        sys_.processes[0].send(1, "work", size=128)
        sys_.run()
        assert len(tracer.sends) == 1
        record = tracer.sends[0]
        assert (record.src, record.dst, record.tag, record.size) == (0, 1, "work", 128)

    def test_control_traffic_hidden_by_default(self):
        from repro.sim.termination import SafraDetector

        sys_ = System(4)
        tracer = Tracer(sys_)
        det = SafraDetector(sys_, on_terminate=lambda t: None)
        det.start()
        sys_.run()
        assert tracer.sends == []

    def test_control_traffic_optionally_visible(self):
        from repro.sim.termination import SafraDetector

        sys_ = System(4)
        tracer = Tracer(sys_, trace_control=True)
        det = SafraDetector(sys_, on_terminate=lambda t: None)
        det.start()
        sys_.run()
        assert len(tracer.sends) > 0

    def test_messages_and_bytes_by_tag(self):
        sys_ = System(3)
        tracer = Tracer(sys_)
        sys_.processes[2].register("a", lambda p, m: None)
        sys_.processes[2].register("b", lambda p, m: None)
        sys_.processes[0].send(2, "a", size=10)
        sys_.processes[0].send(2, "a", size=20)
        sys_.processes[1].send(2, "b", size=5)
        sys_.run()
        assert tracer.messages_by_tag() == {"a": 2, "b": 1}
        assert tracer.bytes_by_tag() == {"a": 30, "b": 5}

    def test_communication_matrix(self):
        sys_ = System(3)
        tracer = Tracer(sys_)
        sys_.processes[1].register("t", lambda p, m: None)
        sys_.processes[0].send(1, "t", size=100)
        sys_.processes[0].send(1, "t", size=50)
        sys_.run()
        matrix = tracer.communication_matrix()
        assert matrix[0, 1] == 150
        assert matrix.sum() == 150


class TestBusyTracking:
    def test_busy_time_matches_compute(self):
        sys_ = System(2)
        tracer = Tracer(sys_)
        sys_.processes[0].compute(2.0)
        sys_.processes[0].compute(1.0)
        sys_.processes[1].compute(0.5)
        np.testing.assert_allclose(tracer.busy_time(), [3.0, 0.5])

    def test_back_to_back_intervals_coalesced(self):
        sys_ = System(1)
        tracer = Tracer(sys_)
        sys_.processes[0].compute(1.0)
        sys_.processes[0].compute(1.0)
        assert len(tracer.busy[0]) == 1
        assert tracer.busy[0][0] == (0.0, 2.0)

    def test_utilization(self):
        sys_ = System(2)
        tracer = Tracer(sys_)
        sys_.processes[0].compute(1.0)
        util = tracer.utilization(until=2.0)
        np.testing.assert_allclose(util, [0.5, 0.0])

    def test_utilization_zero_horizon(self):
        sys_ = System(2)
        tracer = Tracer(sys_)
        assert (tracer.utilization() == 0).all()


class TestGantt:
    def test_shape(self):
        sys_ = System(3)
        tracer = Tracer(sys_)
        sys_.processes[1].compute(1.0)
        out = tracer.gantt(width=20, until=2.0)
        lines = out.splitlines()
        assert len(lines) == 3
        assert all(len(l) == len(lines[0]) for l in lines)

    def test_busy_rank_shows_hashes(self):
        sys_ = System(2)
        tracer = Tracer(sys_)
        sys_.processes[0].compute(1.0)
        out = tracer.gantt(width=10, until=1.0)
        lines = out.splitlines()
        assert "#" * 10 in lines[0]
        assert "#" not in lines[1]

    def test_empty_trace(self):
        sys_ = System(2)
        tracer = Tracer(sys_)
        out = tracer.gantt(width=5)
        assert "#" not in out
