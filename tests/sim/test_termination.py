"""Unit tests for repro.sim.termination (Safra + Dijkstra-Scholten)."""

import numpy as np
import pytest

from repro.sim.process import System
from repro.sim.termination import DijkstraScholten, SafraDetector


def ripple_app(sys_, hops):
    """An app where each message forwards to the next rank `hops` times."""

    def handler(proc, msg):
        remaining = msg.payload
        if remaining > 0:
            proc.send((proc.rank + 1) % sys_.n_ranks, "ripple", payload=remaining - 1)

    for p in sys_.processes:
        p.register("ripple", handler)


class TestSafra:
    def test_detects_quiescence_of_simple_app(self):
        sys_ = System(4)
        ripple_app(sys_, 10)
        detected = []
        det = SafraDetector(sys_, on_terminate=detected.append)
        sys_.processes[0].send(1, "ripple", payload=10)
        det.start()
        sys_.run()
        assert det.terminated
        assert len(detected) == 1

    def test_detection_not_premature(self):
        # The app finishes at some simulated time t_app; Safra must not
        # announce before every application handler has executed.
        sys_ = System(6)
        finished = []

        def handler(proc, msg):
            if msg.payload > 0:
                proc.compute(0.01)  # slow handlers
                proc.send((proc.rank + 3) % 6, "work", payload=msg.payload - 1)
            else:
                finished.append(sys_.engine.now)

        for p in sys_.processes:
            p.register("work", handler)
        detected = []
        det = SafraDetector(sys_, on_terminate=detected.append)
        sys_.processes[0].send(1, "work", payload=20)
        det.start()
        sys_.run()
        assert det.terminated
        assert detected[0] >= finished[0]

    def test_no_app_messages_terminates_immediately(self):
        sys_ = System(4)
        detected = []
        det = SafraDetector(sys_, on_terminate=detected.append)
        det.start()
        sys_.run()
        assert det.terminated

    def test_single_rank(self):
        sys_ = System(1)
        detected = []
        det = SafraDetector(sys_, on_terminate=detected.append)
        det.start()
        assert det.terminated

    def test_multiple_rounds_counted(self):
        sys_ = System(4)
        ripple_app(sys_, 0)
        det = SafraDetector(sys_, on_terminate=lambda t: None)
        # Kick off work *after* starting the token so at least one round
        # is poisoned and a second is needed.
        det.start()
        sys_.processes[0].send(1, "ripple", payload=8)
        sys_.run()
        assert det.terminated
        assert det.rounds >= 1

    def test_fanout_app(self):
        # Each message spawns two more until depth exhausts (tree traffic).
        sys_ = System(8)
        rng = np.random.default_rng(0)

        def handler(proc, msg):
            depth = msg.payload
            if depth > 0:
                for _ in range(2):
                    proc.send(int(rng.integers(0, 8)), "fan", payload=depth - 1)

        for p in sys_.processes:
            p.register("fan", handler)
        det = SafraDetector(sys_, on_terminate=lambda t: None)
        sys_.processes[0].send(1, "fan", payload=5)
        det.start()
        sys_.run()
        assert det.terminated


class TestDijkstraScholten:
    def test_detects_diffusing_computation(self):
        sys_ = System(4)
        ripple_app(sys_, 6)
        detected = []
        det = DijkstraScholten(sys_, root=0, on_terminate=detected.append)
        sys_.processes[0].send(1, "ripple", payload=6)
        det.start()
        sys_.run()
        assert det.terminated
        assert len(detected) == 1

    def test_trivial_computation(self):
        sys_ = System(4)
        det = DijkstraScholten(sys_, root=0, on_terminate=lambda t: None)
        det.start()
        assert det.terminated

    def test_detection_after_all_work(self):
        sys_ = System(5)
        done_times = []

        def handler(proc, msg):
            proc.compute(0.1)
            if msg.payload > 0:
                proc.send((proc.rank + 2) % 5, "w", payload=msg.payload - 1)
            done_times.append(sys_.engine.now)

        for p in sys_.processes:
            p.register("w", handler)
        detected = []
        det = DijkstraScholten(sys_, root=0, on_terminate=detected.append)
        sys_.processes[0].send(1, "w", payload=7)
        det.start()
        sys_.run()
        assert det.terminated
        assert detected[0] >= max(done_times)

    def test_tree_fanout_computation(self):
        sys_ = System(16)

        def handler(proc, msg):
            depth = msg.payload
            if depth > 0:
                proc.send((2 * proc.rank + 1) % 16, "tree", payload=depth - 1)
                proc.send((2 * proc.rank + 2) % 16, "tree", payload=depth - 1)

        for p in sys_.processes:
            p.register("tree", handler)
        det = DijkstraScholten(sys_, root=0, on_terminate=lambda t: None)
        sys_.processes[0].send(1, "tree", payload=4)
        sys_.processes[0].send(2, "tree", payload=4)
        det.start()
        sys_.run()
        assert det.terminated

    def test_reengagement(self):
        # A rank that detaches and is engaged again must still be counted.
        sys_ = System(3)
        log = []

        def handler(proc, msg):
            log.append((proc.rank, msg.payload))
            if msg.payload == "first":
                proc.send(2, "w2", payload=None)

        def handler2(proc, msg):
            log.append((proc.rank, "w2"))

        for p in sys_.processes:
            p.register("w", handler)
            p.register("w2", handler2)
        det = DijkstraScholten(sys_, root=0, on_terminate=lambda t: None)
        sys_.processes[0].send(1, "w", payload="first")
        sys_.processes[0].send(1, "w", payload="second")
        det.start()
        sys_.run()
        assert det.terminated
        assert len(log) == 3
