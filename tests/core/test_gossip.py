"""Unit tests for repro.core.gossip (Algorithm 1, phase level)."""

import numpy as np
import pytest

from repro.core.gossip import (
    GossipConfig,
    GossipExplosionError,
    run_inform_stage,
)


def loads_with_two_overloaded(n=16):
    """Ranks 0 and 1 heavily loaded; the rest light."""
    loads = np.ones(n)
    loads[0] = loads[1] = 10.0
    return loads


class TestConfigValidation:
    def test_bad_mode(self):
        with pytest.raises(ValueError, match="mode"):
            GossipConfig(mode="nope")

    def test_bad_fanout(self):
        with pytest.raises(ValueError):
            GossipConfig(fanout=0)

    def test_bad_rounds(self):
        with pytest.raises(ValueError):
            GossipConfig(rounds=-1)


class TestInformStage:
    def test_underloaded_mask(self):
        loads = loads_with_two_overloaded()
        res = run_inform_stage(loads, GossipConfig(), rng=0)
        assert not res.underloaded[0] and not res.underloaded[1]
        assert res.underloaded[2:].all()

    def test_self_knowledge_seeded(self):
        loads = loads_with_two_overloaded()
        res = run_inform_stage(loads, GossipConfig(rounds=1, fanout=1), rng=0)
        for r in range(2, 16):
            assert res.knowledge.knows(r, r)

    def test_overloaded_ranks_not_advertised(self):
        loads = loads_with_two_overloaded()
        res = run_inform_stage(loads, GossipConfig(), rng=0)
        # No rank should ever learn that rank 0 or 1 is underloaded.
        assert not res.knowledge.rows[:, 0].any()
        assert not res.knowledge.rows[:, 1].any()

    def test_knowledge_subset_of_underloaded(self):
        loads = np.arange(32, dtype=float)
        res = run_inform_stage(loads, GossipConfig(), rng=1)
        under = np.flatnonzero(res.underloaded)
        for p in range(32):
            assert set(res.knowledge.known(p)) <= set(under)

    def test_full_coverage_with_enough_rounds(self):
        # k >= log_f P with healthy fanout: coverage should be ~1.
        loads = loads_with_two_overloaded(64)
        res = run_inform_stage(loads, GossipConfig(fanout=4, rounds=8), rng=2)
        assert res.coverage() > 0.9

    def test_fewer_rounds_less_coverage(self):
        loads = loads_with_two_overloaded(256)
        few = run_inform_stage(loads, GossipConfig(fanout=2, rounds=1), rng=3)
        many = run_inform_stage(loads, GossipConfig(fanout=2, rounds=8), rng=3)
        assert few.coverage() < many.coverage()

    def test_message_count_bounded_coalesced(self):
        loads = loads_with_two_overloaded(64)
        cfg = GossipConfig(fanout=3, rounds=4)
        res = run_inform_stage(loads, cfg, rng=0)
        # At most P senders * f messages per round.
        assert res.n_messages <= 64 * 3 * 4
        assert res.rounds_run <= 4
        assert sum(res.per_round_messages) == res.n_messages

    def test_bytes_accounting_positive(self):
        loads = loads_with_two_overloaded()
        res = run_inform_stage(loads, GossipConfig(rounds=2, fanout=2), rng=0)
        assert res.bytes_sent > res.n_messages  # headers + payload

    def test_no_underloaded_ranks(self):
        res = run_inform_stage(np.ones(8), GossipConfig(), rng=0)
        assert res.n_messages == 0
        assert res.knowledge.counts().sum() == 0

    def test_average_load_override(self):
        loads = np.ones(8)
        res = run_inform_stage(loads, GossipConfig(), rng=0, average_load=2.0)
        assert res.underloaded.all()

    def test_empty_loads_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            run_inform_stage(np.array([]), GossipConfig(), rng=0)

    def test_deterministic_given_seed(self):
        loads = loads_with_two_overloaded(32)
        a = run_inform_stage(loads, GossipConfig(), rng=42)
        b = run_inform_stage(loads, GossipConfig(), rng=42)
        np.testing.assert_array_equal(a.knowledge.rows, b.knowledge.rows)
        assert a.n_messages == b.n_messages


class TestPerMessageMode:
    def test_runs_at_small_scale(self):
        loads = loads_with_two_overloaded(8)
        cfg = GossipConfig(fanout=2, rounds=2, mode="per_message")
        res = run_inform_stage(loads, cfg, rng=0)
        assert res.n_messages > 0
        # Bounded by the geometric series of forwards.
        assert res.n_messages <= 6 * (2 + 4)

    def test_explosion_guard(self):
        loads = loads_with_two_overloaded(64)
        cfg = GossipConfig(fanout=6, rounds=10, mode="per_message", max_messages=500)
        with pytest.raises(GossipExplosionError):
            run_inform_stage(loads, cfg, rng=0)

    def test_coverage_comparable_to_coalesced(self):
        loads = loads_with_two_overloaded(16)
        pm = run_inform_stage(
            loads, GossipConfig(fanout=2, rounds=3, mode="per_message"), rng=5
        )
        assert pm.coverage() > 0.5
