"""The batched inform engine vs the per-sender loop reference.

The batched engine reorders RNG draws, so it cannot be bit-identical to
the loop; equivalence is contractual instead:

* both engines obey the ``f x |senders|`` message model exactly
  whenever candidate sets suffice;
* coverage distributions over many seeds are statistically
  indistinguishable;
* every structural invariant of the inform stage (self-seeding,
  underloaded-only knowledge, trailing-round semantics, the knowledge
  cap) holds identically.
"""

import numpy as np
import pytest

from repro.core.gossip import GossipConfig, run_inform_stage
from repro.core.knowledge import KnowledgeBitmap, PackedKnowledgeBitmap

ENGINES = ("loop", "batched")


def loads_mixed(n, n_over=2, seed=0):
    """``n_over`` heavy ranks, the rest light (underloaded)."""
    loads = np.ones(n)
    loads[:n_over] = 10.0
    return loads


def run(loads, seed=0, **kw):
    return run_inform_stage(
        loads, GossipConfig(**kw), np.random.default_rng(seed)
    )


class TestEngineSelection:
    def test_bad_engine_rejected(self):
        with pytest.raises(ValueError, match="engine"):
            GossipConfig(engine="vectorised")

    def test_batched_is_default_and_packed(self):
        result = run(loads_mixed(32))
        assert isinstance(result.knowledge, PackedKnowledgeBitmap)

    def test_loop_engine_uses_boolean_reference(self):
        result = run(loads_mixed(32), engine="loop")
        assert isinstance(result.knowledge, KnowledgeBitmap)

    def test_per_message_mode_ignores_engine(self):
        result = run(loads_mixed(8), mode="per_message", fanout=2, rounds=2)
        assert isinstance(result.knowledge, KnowledgeBitmap)


class TestBatchedInvariants:
    """The TestInformStage invariants, re-run on the batched engine."""

    def test_deterministic_given_seed(self):
        a = run(loads_mixed(64), seed=5)
        b = run(loads_mixed(64), seed=5)
        np.testing.assert_array_equal(a.knowledge.rows, b.knowledge.rows)
        assert a.n_messages == b.n_messages
        assert a.per_round_messages == b.per_round_messages

    def test_self_knowledge_seeded(self):
        result = run(loads_mixed(32))
        for rank in np.flatnonzero(result.underloaded):
            assert result.knowledge.knows(rank, rank)

    def test_knowledge_subset_of_underloaded(self):
        result = run(loads_mixed(48, n_over=5))
        known_any = result.knowledge.rows.any(axis=0)
        assert not known_any[~result.underloaded].any()

    def test_full_coverage_with_enough_rounds(self):
        # k >= log_f P with healthy fanout: coverage should be ~1.
        result = run(loads_mixed(64), fanout=4, rounds=8)
        assert result.coverage() > 0.9

    def test_no_underloaded_ranks(self):
        result = run(np.ones(16))  # all at average: nobody is underloaded
        assert result.n_messages == 0
        assert result.coverage() == 1.0

    def test_message_count_bounded(self):
        n, f, k = 64, 4, 6
        result = run(loads_mixed(n), fanout=f, rounds=k)
        assert 0 < result.n_messages <= n * f * k

    def test_max_known_cap_respected(self):
        for policy in ("random", "lowest"):
            result = run(
                loads_mixed(64), fanout=4, rounds=6,
                max_known=5, trim_policy=policy,
            )
            assert result.knowledge.counts().max() <= 5

    def test_topology_bias_keeps_messages_local(self):
        kw = dict(fanout=4, rounds=4, ranks_per_node=8)
        flat = run(loads_mixed(64), seed=3, intra_node_bias=0.0, **kw)
        biased = run(loads_mixed(64), seed=3, intra_node_bias=0.9, **kw)
        assert biased.n_messages > 0
        assert (
            biased.inter_node_messages / biased.n_messages
            < flat.inter_node_messages / flat.n_messages
        )


class TestMessageModel:
    """Both engines emit exactly ``f * |senders|`` messages per round
    whenever every sender has at least ``f`` candidates."""

    @pytest.mark.parametrize("engine", ENGINES)
    def test_saturating_regime_is_exact(self, engine):
        # avoid_known off keeps candidate sets at P-1 >= f forever.
        f = 4
        result = run(
            loads_mixed(32), fanout=f, rounds=5, avoid_known=False,
            engine=engine,
        )
        assert len(result.per_round_messages) == len(result.per_round_senders)
        for msgs, senders in zip(
            result.per_round_messages, result.per_round_senders
        ):
            assert msgs == f * senders

    @pytest.mark.parametrize("engine", ENGINES)
    def test_general_regime_is_bounded(self, engine):
        # With avoid_known, late-round candidate sets can drop below f:
        # the model becomes an upper bound per round.
        f = 6
        result = run(loads_mixed(24), fanout=f, rounds=8, engine=engine)
        for msgs, senders in zip(
            result.per_round_messages, result.per_round_senders
        ):
            assert 0 < msgs <= f * senders

    def test_first_round_counts_agree_exactly(self):
        # Round 1 is deterministic in size: every seed sends f messages
        # under both engines, before any RNG-dependent receiver sets
        # can diverge.
        kw = dict(fanout=3, rounds=4)
        loop = run(loads_mixed(40), seed=1, engine="loop", **kw)
        batched = run(loads_mixed(40), seed=1, engine="batched", **kw)
        assert loop.per_round_messages[0] == batched.per_round_messages[0]
        assert loop.per_round_senders[0] == batched.per_round_senders[0]


class TestCoverageEquivalence:
    """Coverage distributions over >= 20 seeds match across engines."""

    @pytest.mark.parametrize(
        "n_ranks,fanout,rounds",
        [(64, 4, 6), (256, 6, 6)],
        ids=["small", "medium"],
    )
    def test_distributions_match(self, n_ranks, fanout, rounds):
        loads = loads_mixed(n_ranks, n_over=max(2, n_ranks // 16))
        cov = {engine: [] for engine in ENGINES}
        for seed in range(20):
            for engine in ENGINES:
                result = run(
                    loads, seed=seed, fanout=fanout, rounds=rounds,
                    engine=engine,
                )
                cov[engine].append(result.coverage())
        means = {e: np.mean(c) for e, c in cov.items()}
        stds = {e: np.std(c) for e, c in cov.items()}
        # Same regime: high coverage, means within a combined standard
        # error's reach, spreads of the same order.
        assert means["loop"] > 0.9 and means["batched"] > 0.9
        sem = np.hypot(*(stds[e] / np.sqrt(20) for e in ENGINES))
        assert abs(means["loop"] - means["batched"]) < max(3 * sem, 0.01)

    def test_message_totals_match_statistically_over_seeds(self):
        # |senders| per round is itself stochastic (the set of distinct
        # receivers), so totals agree in distribution, not seed by
        # seed: compare means over 20 seeds.
        loads = loads_mixed(64)
        totals = {e: [] for e in ENGINES}
        for seed in range(20):
            for e in ENGINES:
                totals[e].append(
                    run(
                        loads, seed=seed, fanout=4, rounds=5,
                        avoid_known=False, engine=e,
                    ).n_messages
                )
        means = {e: np.mean(t) for e, t in totals.items()}
        assert abs(means["loop"] - means["batched"]) / means["loop"] < 0.02


class TestRoundSemantics:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_seeding_round_ignores_avoid_known(self, engine):
        # Alg. 1 l.10: a seed's knowledge is exactly itself, so P \ S^p
        # and P \ {p} coincide — with rounds=1 the avoid_known knob must
        # not change anything, draw for draw.
        loads = loads_mixed(32)
        on = run(loads, seed=9, rounds=1, avoid_known=True, engine=engine)
        off = run(loads, seed=9, rounds=1, avoid_known=False, engine=engine)
        np.testing.assert_array_equal(on.knowledge.rows, off.knowledge.rows)
        assert on.n_messages == off.n_messages

    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("mode", ["coalesced", "per_message"])
    def test_no_trailing_empty_rounds(self, engine, mode):
        # P=2: the single underloaded rank saturates knowledge in one
        # round; later rounds carry nothing and must not be recorded.
        loads = np.array([10.0, 1.0])
        result = run(loads, fanout=2, rounds=6, mode=mode, engine=engine)
        assert result.per_round_messages, "the seeding round must remain"
        assert result.per_round_messages[-1] > 0
        assert result.rounds_run == len(result.per_round_messages)
        assert len(result.per_round_senders) == len(result.per_round_messages)
