"""Property-based invariants for the refinement-family strategies."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.baselines import RandomLB, RotateLB
from repro.core.distribution import Distribution
from repro.core.greedy import GreedyLB
from repro.core.hier import HierLB
from repro.core.refine import GreedyRefineLB, RefineLB

loads_strategy = st.lists(
    st.floats(min_value=1e-3, max_value=100.0, allow_nan=False),
    min_size=2,
    max_size=60,
)


def make_dist(loads, n_ranks, seed):
    rng = np.random.default_rng(seed)
    assignment = rng.integers(0, n_ranks, size=len(loads))
    return Distribution(np.asarray(loads), assignment, n_ranks)


@given(
    loads=loads_strategy,
    n_ranks=st.integers(min_value=1, max_value=10),
    seed=st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=50, deadline=None)
def test_refine_never_increases_max_load(loads, n_ranks, seed):
    dist = make_dist(loads, n_ranks, seed)
    res = RefineLB().rebalance(dist)
    after = np.bincount(res.assignment, weights=dist.task_loads, minlength=n_ranks)
    assert after.max() <= dist.rank_loads().max() + 1e-9


@given(
    loads=loads_strategy,
    n_ranks=st.integers(min_value=1, max_value=10),
    seed=st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=50, deadline=None)
def test_greedy_refine_respects_lpt_quality_class(loads, n_ranks, seed):
    """GreedyRefine's makespan is within (4/3 + tolerance) of the LPT
    lower bound — it only deviates from LPT inside its slack."""
    dist = make_dist(loads, n_ranks, seed)
    tol = 0.1
    res = GreedyRefineLB(tolerance=tol).rebalance(dist)
    after = np.bincount(res.assignment, weights=dist.task_loads, minlength=n_ranks)
    lower = max(dist.average_load, float(dist.task_loads.max()))
    if dist.task_loads.size > n_ranks:
        # Pairing bound: two of the n_ranks+1 heaviest tasks must share a
        # rank, so the optimum is at least the cheapest such pair.
        desc = np.sort(dist.task_loads)[::-1]
        lower = max(lower, float(desc[n_ranks - 1] + desc[n_ranks]))
    assert after.max() <= (4 / 3 + tol) * lower + 1e-9


@given(
    loads=loads_strategy,
    n_ranks=st.integers(min_value=1, max_value=8),
    seed=st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=50, deadline=None)
def test_hier_never_worse_and_conserves(loads, n_ranks, seed):
    dist = make_dist(loads, n_ranks, seed)
    res = HierLB(branching=2).rebalance(dist)
    after = np.bincount(res.assignment, weights=dist.task_loads, minlength=n_ranks)
    assert after.sum() == pytest.approx(dist.total_load)
    assert after.max() <= dist.rank_loads().max() + 1e-9


@given(
    loads=loads_strategy,
    n_ranks=st.integers(min_value=1, max_value=8),
    seed=st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=40, deadline=None)
def test_rotate_preserves_load_multiset(loads, n_ranks, seed):
    dist = make_dist(loads, n_ranks, seed)
    res = RotateLB().rebalance(dist)
    after = np.bincount(res.assignment, weights=dist.task_loads, minlength=n_ranks)
    np.testing.assert_allclose(np.sort(after), np.sort(dist.rank_loads()), rtol=1e-12)


@given(
    loads=loads_strategy,
    seed=st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=40, deadline=None)
def test_random_lb_valid_assignment(loads, seed):
    dist = make_dist(loads, 6, seed)
    res = RandomLB().rebalance(dist, rng=seed)
    assert (res.assignment >= 0).all() and (res.assignment < 6).all()
    assert res.assignment.shape == dist.assignment.shape
