"""Unit tests for repro.core.transfer (Algorithm 2)."""

import numpy as np
import pytest

from repro.core.gossip import GossipConfig, run_inform_stage
from repro.core.transfer import TransferConfig, TransferStats, transfer_stage


def one_hot_scenario(n_ranks=8, tasks_per_rank=12, seed=0):
    """All tasks on rank 0; returns (assignment, task_loads, gossip)."""
    rng = np.random.default_rng(seed)
    n_tasks = tasks_per_rank * n_ranks
    task_loads = rng.gamma(4.0, 0.25, size=n_tasks)
    assignment = np.zeros(n_tasks, dtype=np.int64)
    rank_loads = np.bincount(assignment, weights=task_loads, minlength=n_ranks)
    gossip = run_inform_stage(rank_loads, GossipConfig(fanout=3, rounds=4), rng=seed)
    return assignment, task_loads, gossip


class TestConfigValidation:
    def test_bad_view(self):
        with pytest.raises(ValueError, match="view"):
            TransferConfig(view="psychic")

    def test_bad_passes(self):
        with pytest.raises(ValueError):
            TransferConfig(max_passes=0)

    def test_none_passes_allowed(self):
        assert TransferConfig(max_passes=None).max_passes is None


class TestBasicTransfer:
    def test_reduces_imbalance(self):
        assignment, task_loads, gossip = one_hot_scenario()
        before = np.bincount(assignment, weights=task_loads, minlength=8)
        stats = transfer_stage(assignment, task_loads, gossip, rng=1)
        after = np.bincount(assignment, weights=task_loads, minlength=8)
        assert after.max() < before.max()
        assert stats.transfers > 0

    def test_conserves_tasks_and_load(self):
        assignment, task_loads, gossip = one_hot_scenario()
        total_before = task_loads.sum()
        transfer_stage(assignment, task_loads, gossip, rng=1)
        after = np.bincount(assignment, weights=task_loads, minlength=8)
        assert after.sum() == pytest.approx(total_before)
        assert (assignment >= 0).all() and (assignment < 8).all()

    def test_moves_match_assignment(self):
        assignment, task_loads, gossip = one_hot_scenario()
        original = assignment.copy()
        stats = transfer_stage(assignment, task_loads, gossip, rng=1)
        # Replay the moves on the original assignment: must agree.
        replay = original.copy()
        for task, src, dst in stats.moves:
            assert replay[task] == src
            replay[task] = dst
        np.testing.assert_array_equal(replay, assignment)

    def test_no_overloaded_ranks_is_noop(self):
        task_loads = np.ones(8)
        assignment = np.arange(8, dtype=np.int64)
        loads = np.bincount(assignment, weights=task_loads, minlength=8)
        gossip = run_inform_stage(loads, GossipConfig(), rng=0)
        stats = transfer_stage(assignment, task_loads, gossip, rng=0)
        assert stats.transfers == 0 and stats.overloaded_ranks == 0

    def test_transfers_only_to_known_ranks(self):
        assignment, task_loads, gossip = one_hot_scenario()
        known = set(gossip.knowledge.known(0))
        stats = transfer_stage(assignment, task_loads, gossip, rng=2)
        destinations = {dst for _, _, dst in stats.moves}
        assert destinations <= known

    def test_deterministic_given_seed(self):
        a1, task_loads, gossip = one_hot_scenario()
        a2 = a1.copy()
        transfer_stage(a1, task_loads, gossip, rng=7)
        transfer_stage(a2, task_loads, gossip, rng=7)
        np.testing.assert_array_equal(a1, a2)


class TestCriterionBehaviour:
    def test_original_strands_heavy_tasks(self):
        # One task heavier than l_ave can never move under the original
        # criterion but moves under the relaxed one.
        task_loads = np.array([10.0, 0.1, 0.1, 0.1])
        assignment = np.zeros(4, dtype=np.int64)
        n_ranks = 4
        loads = np.bincount(assignment, weights=task_loads, minlength=n_ranks)
        gossip = run_inform_stage(loads, GossipConfig(fanout=3, rounds=3), rng=0)

        strict = assignment.copy()
        transfer_stage(
            strict,
            task_loads,
            gossip,
            TransferConfig(criterion="original", cmf="original", recompute_cmf=False),
            rng=1,
        )
        assert strict[0] == 0  # heavy task stuck

        relaxed = assignment.copy()
        transfer_stage(relaxed, task_loads, gossip, TransferConfig(), rng=1)
        assert relaxed[0] != 0  # heavy task moved

    def test_relaxed_never_overfills_past_sender(self):
        # Lemma 1 consequence: a recipient's (known) load after transfer
        # is strictly below the sender's load just before it.
        assignment, task_loads, gossip = one_hot_scenario(n_ranks=6, seed=3)
        stats = transfer_stage(assignment, task_loads, gossip, rng=4)
        # With a single sender, snapshot knowledge equals true loads, so
        # the final max is at most the initial sender load.
        after = np.bincount(assignment, weights=task_loads, minlength=6)
        assert after.max() <= gossip.load_snapshot.max() + 1e-12


class TestViews:
    def test_shared_view_avoids_overfill_by_concurrent_senders(self):
        # Two heavily loaded senders, one underloaded rank. In snapshot
        # view both senders believe the recipient is nearly empty and
        # overfill it; the shared view coordinates them.
        task_loads = np.ones(40)
        assignment = np.array([0] * 20 + [1] * 20, dtype=np.int64)
        loads = np.bincount(assignment, weights=task_loads, minlength=3)
        gossip = run_inform_stage(loads, GossipConfig(fanout=2, rounds=3), rng=0)

        snap = assignment.copy()
        transfer_stage(snap, task_loads, gossip, TransferConfig(view="snapshot"), rng=5)
        shared = assignment.copy()
        transfer_stage(shared, task_loads, gossip, TransferConfig(view="shared"), rng=5)

        snap_recipient = np.bincount(snap, weights=task_loads, minlength=3)[2]
        shared_recipient = np.bincount(shared, weights=task_loads, minlength=3)[2]
        assert shared_recipient <= snap_recipient

    def test_cascade_processes_overfilled_recipients(self):
        # Without cascade a recipient overloaded mid-stage keeps its
        # surplus; with cascade it sheds again within the same stage.
        rng = np.random.default_rng(8)
        task_loads = rng.gamma(2.0, 0.5, size=60)
        assignment = np.zeros(60, dtype=np.int64)
        loads = np.bincount(assignment, weights=task_loads, minlength=16)
        gossip = run_inform_stage(loads, GossipConfig(fanout=3, rounds=4), rng=0)

        no_casc = assignment.copy()
        s1 = transfer_stage(
            no_casc,
            task_loads,
            gossip,
            TransferConfig(view="shared", max_passes=None, cascade=False),
            rng=9,
        )
        casc = assignment.copy()
        s2 = transfer_stage(
            casc,
            task_loads,
            gossip,
            TransferConfig(view="shared", max_passes=None, cascade=True),
            rng=9,
        )
        assert s2.rank_processings >= s1.rank_processings

    def test_multipass_attempts_exceed_single_pass(self):
        assignment, task_loads, gossip = one_hot_scenario(n_ranks=4, tasks_per_rank=30)
        single = assignment.copy()
        s1 = transfer_stage(
            single, task_loads, gossip, TransferConfig(max_passes=1), rng=3
        )
        multi = assignment.copy()
        s2 = transfer_stage(
            multi, task_loads, gossip, TransferConfig(max_passes=None), rng=3
        )
        assert s2.transfers + s2.rejections >= s1.transfers + s1.rejections


class TestTransferFromRank:
    def test_single_rank_api_matches_stage_semantics(self):
        from repro.core.transfer import transfer_from_rank

        assignment, task_loads, gossip = one_hot_scenario()
        a = assignment.copy()
        stats = transfer_from_rank(0, a, task_loads, gossip, rng=3)
        assert stats.overloaded_ranks == 1
        assert stats.transfers > 0
        # Moves all originate at rank 0.
        assert {src for _, src, _ in stats.moves} == {0}
        after = np.bincount(a, weights=task_loads, minlength=8)
        assert after.sum() == pytest.approx(task_loads.sum())

    def test_underloaded_rank_is_noop(self):
        from repro.core.transfer import transfer_from_rank

        assignment, task_loads, gossip = one_hot_scenario()
        a = assignment.copy()
        stats = transfer_from_rank(3, a, task_loads, gossip, rng=3)
        assert stats.transfers == 0 and stats.overloaded_ranks == 0
        np.testing.assert_array_equal(a, assignment)


class TestStats:
    def test_rejection_rate_bounds(self):
        s = TransferStats(transfers=3, rejections=1)
        assert s.rejection_rate == pytest.approx(0.25)
        assert TransferStats().rejection_rate == 0.0

    def test_merge(self):
        a = TransferStats(transfers=1, rejections=2, moves=[(0, 0, 1)])
        b = TransferStats(transfers=3, rejections=4, moves=[(1, 0, 2)])
        a.merge(b)
        assert a.transfers == 4 and a.rejections == 6
        assert len(a.moves) == 2

    def test_stalled_rank_without_candidates(self):
        # Overloaded rank with empty knowledge: counted as stalled.
        task_loads = np.ones(4)
        assignment = np.zeros(4, dtype=np.int64)
        loads = np.bincount(assignment, weights=task_loads, minlength=2)
        gossip = run_inform_stage(loads, GossipConfig(fanout=1, rounds=1), rng=0)
        gossip.knowledge.clear()  # wipe knowledge
        stats = transfer_stage(assignment, task_loads, gossip, rng=0)
        assert stats.stalled_ranks == 1
        assert stats.transfers == 0
