"""Gossip-fidelity tests: message counts follow the ``f*k`` model.

The paper bounds inform-stage traffic at ``f`` messages per
participating rank per round for ``k`` rounds, i.e. ``f*k`` per rank
per iteration and ``f*k*n_iters`` across a refinement run. In the
saturating regime (every rank forwards every round) the count is exact;
in general each active sender emits exactly ``min(f, |candidates|)``
messages per round, bounding the stage at ``P*f*k``.
"""

import numpy as np
import pytest

from repro import StatsRegistry
from repro.core.gossip import GossipConfig, run_inform_stage
from repro.core.refinement import iterative_refinement
from repro.workloads import paper_analysis_scenario

P = 12  #: ranks in the saturating-regime tests
K = 4  #: gossip rounds


def _one_hot_loads(n_ranks: int) -> np.ndarray:
    """One overloaded rank; all others underloaded (seeds = P - 1)."""
    loads = np.ones(n_ranks)
    loads[0] = 30.0
    return loads


def _saturating_config(rounds: int = K) -> GossipConfig:
    # fanout >= P-1 makes every sender hit all other ranks; with
    # avoid_known off, every rank keeps forwarding every round.
    return GossipConfig(fanout=P - 1, rounds=rounds, avoid_known=False)


class TestPerRankMessageModel:
    def test_saturated_count_is_exact_f_times_k(self):
        """seeds*f messages in round 1, then P*f per round: the f*k law."""
        result = run_inform_stage(
            _one_hot_loads(P), _saturating_config(), rng=np.random.default_rng(0)
        )
        f = P - 1
        seeds = int(result.underloaded.sum())
        assert seeds == P - 1
        assert result.per_round_messages[0] == seeds * f
        for per_round in result.per_round_messages[1:]:
            assert per_round == P * f  # every rank sends exactly f
        assert result.n_messages == seeds * f + (K - 1) * P * f
        assert result.rounds_run == K

    def test_each_sender_emits_at_most_fanout_per_round(self):
        loads = _one_hot_loads(64)
        config = GossipConfig(fanout=3, rounds=6)
        result = run_inform_stage(loads, config, rng=np.random.default_rng(1))
        n_ranks = loads.size
        for per_round in result.per_round_messages:
            assert per_round <= n_ranks * config.fanout
        assert result.n_messages == sum(result.per_round_messages)
        assert result.n_messages <= n_ranks * config.fanout * config.rounds

    def test_message_count_scales_linearly_in_rounds(self):
        totals = []
        for rounds in (1, 2, 3):
            result = run_inform_stage(
                _one_hot_loads(P),
                _saturating_config(rounds=rounds),
                rng=np.random.default_rng(0),
            )
            totals.append(result.n_messages)
        f = P - 1
        assert np.diff(totals).tolist() == [P * f, P * f]  # +f per rank per round


class TestRefinementAccounting:
    def test_total_messages_equal_f_k_n_iters(self):
        """Across a refinement run the registry total is exactly the sum
        of n_iters identical inform stages: the f*k*n_iters model."""
        n_iters = 3
        loads = _one_hot_loads(P)
        per_stage = run_inform_stage(
            loads, _saturating_config(), rng=np.random.default_rng(0)
        ).n_messages

        # A distribution realizing those rank loads: one heavy task per
        # rank plus the extra load on rank 0, split into unmovable-ish
        # chunks. Simpler: tasks of load 1 on every rank, 30 on rank 0.
        from repro.core.distribution import Distribution

        task_loads = np.ones(P + 29)
        assignment = np.concatenate(
            [np.arange(P), np.zeros(29, dtype=np.int64)]
        ).astype(np.int64)
        dist = Distribution(task_loads, assignment, P)

        registry = StatsRegistry()
        result = iterative_refinement(
            dist,
            n_trials=1,
            n_iters=n_iters,
            gossip=_saturating_config(),
            rng=np.random.default_rng(0),
            registry=registry,
        )
        assert registry.counter("gossip.stages") == n_iters
        assert registry.counter("gossip.messages") == result.total_gossip_messages
        assert result.total_gossip_messages == sum(
            r.gossip_messages for r in result.records
        )
        # Every stage of this workload keeps >= 1 underloaded seed and the
        # saturating fanout, so each stage is bounded by the f*k law:
        f = P - 1
        for record in result.records:
            assert record.gossip_messages <= f * (1 + (K - 1) * P) + (P - 2) * f
            assert record.gossip_messages >= f * (1 + (K - 1) * P)

    def test_registry_totals_on_paper_scenario(self):
        dist = paper_analysis_scenario(n_tasks=300, n_loaded_ranks=4, n_ranks=64, seed=2)
        registry = StatsRegistry()
        gossip = GossipConfig(fanout=4, rounds=5)
        result = iterative_refinement(
            dist,
            n_trials=2,
            n_iters=3,
            gossip=gossip,
            rng=np.random.default_rng(3),
            registry=registry,
        )
        assert registry.counter("gossip.stages") == 6
        assert registry.counter("gossip.messages") == result.total_gossip_messages
        assert registry.counter("gossip.bytes") == result.total_gossip_bytes
        assert result.total_gossip_messages <= 6 * 64 * gossip.fanout * gossip.rounds


class TestKnowledgePropagation:
    def test_saturated_coverage_is_complete(self):
        result = run_inform_stage(
            _one_hot_loads(P), _saturating_config(), rng=np.random.default_rng(0)
        )
        assert result.coverage() == 1.0
        counts = result.knowledge.counts()
        assert counts.min() == counts.max() == P - 1  # everyone knows all seeds

    def test_paper_parameters_reach_near_full_coverage(self):
        """f=6, k=10 (the paper's defaults) spread knowledge essentially
        everywhere on 64 ranks."""
        loads = np.ones(64)
        loads[:4] = 20.0
        result = run_inform_stage(
            loads, GossipConfig(fanout=6, rounds=10), rng=np.random.default_rng(0)
        )
        assert result.coverage() >= 0.95

    def test_coverage_grows_with_rounds(self):
        loads = np.ones(128)
        loads[:8] = 20.0
        coverages = [
            run_inform_stage(
                loads,
                GossipConfig(fanout=2, rounds=rounds),
                rng=np.random.default_rng(4),
            ).coverage()
            for rounds in (1, 3, 10)
        ]
        assert coverages[0] < coverages[1] <= coverages[2]
        assert coverages[2] > 0.8  # f=2 saturates |S^p| slowly; see max_known docs
