"""Unit tests for repro.core.comm (communication-aware balancing)."""

import numpy as np
import pytest

from repro.core.comm import CommAwareLB, CommGraph
from repro.core.distribution import Distribution
from repro.core.greedy import GreedyLB
from repro.core.tempered import TemperedLB
from repro.empire.mesh import Mesh2D
from repro.workloads import paper_analysis_scenario


class TestCommGraph:
    def test_validation(self):
        with pytest.raises(ValueError, match="equal length"):
            CommGraph(np.array([0]), np.array([1, 2]), np.array([1.0]), 4)
        with pytest.raises(ValueError, match="out of range"):
            CommGraph(np.array([0]), np.array([9]), np.array([1.0]), 4)
        with pytest.raises(ValueError, match="self-edges"):
            CommGraph(np.array([1]), np.array([1]), np.array([1.0]), 4)
        with pytest.raises(ValueError, match="non-negative"):
            CommGraph(np.array([0]), np.array([1]), np.array([-1.0]), 4)

    def test_off_rank_volume(self):
        g = CommGraph(np.array([0, 1]), np.array([1, 2]), np.array([3.0, 5.0]), 3)
        # tasks 0,1 together; task 2 elsewhere: only edge (1,2) crosses.
        assert g.off_rank_volume(np.array([0, 0, 1])) == 5.0
        # all co-located: nothing crosses
        assert g.off_rank_volume(np.array([2, 2, 2])) == 0.0
        # all separated: everything crosses
        assert g.off_rank_volume(np.array([0, 1, 2])) == 8.0

    def test_off_node_volume(self):
        g = CommGraph(np.array([0]), np.array([1]), np.array([7.0]), 2)
        # ranks 0 and 1 share node 0 with 2 ranks/node: no node crossing.
        assert g.off_node_volume(np.array([0, 1]), ranks_per_node=2) == 0.0
        assert g.off_node_volume(np.array([0, 2]), ranks_per_node=2) == 7.0

    def test_neighbors_symmetric(self):
        g = CommGraph(np.array([0]), np.array([1]), np.array([2.0]), 3)
        assert g.neighbors(0) == [(1, 2.0)]
        assert g.neighbors(1) == [(0, 2.0)]
        assert g.neighbors(2) == []

    def test_ring(self):
        g = CommGraph.ring(5, volume=2.0)
        assert g.n_edges == 5
        assert g.total_volume == 10.0
        # Fully co-located ring: zero crossing.
        assert g.off_rank_volume(np.zeros(5, dtype=int)) == 0.0

    def test_ring_trivial(self):
        assert CommGraph.ring(1).n_edges == 0

    def test_random_no_self_edges(self):
        g = CommGraph.random(20, 200, seed=0)
        assert (g.src != g.dst).all()
        assert g.n_tasks == 20

    def test_mesh_neighbor_graph(self):
        mesh = Mesh2D(4, colors_per_rank=4)
        g = mesh.neighbor_comm_graph()
        # 4x4 lattice of colors: 2 * 4 * 3 = 24 internal boundaries.
        assert g.n_edges == 24
        # The home (blocked) assignment keeps most traffic on-rank:
        home = mesh.home_assignment()
        scattered = np.arange(mesh.n_colors) % mesh.n_ranks
        assert g.off_rank_volume(home) < g.off_rank_volume(scattered)


class TestCommAwareLB:
    def make_workload(self, seed=0):
        # Balanced loads, ring communication, scattered initial layout.
        n_tasks, n_ranks = 64, 8
        rng = np.random.default_rng(seed)
        loads = rng.uniform(0.9, 1.1, n_tasks)
        assignment = rng.integers(0, n_ranks, n_tasks)
        return Distribution(loads, assignment, n_ranks), CommGraph.ring(n_tasks)

    def test_reduces_off_rank_volume(self):
        dist, graph = self.make_workload()
        lb = CommAwareLB(graph, inner=GreedyLB(), imbalance_slack=0.3)
        result = lb.rebalance(dist, rng=1)
        assert result.extra["off_rank_volume_after"] < result.extra["off_rank_volume_before"]

    def test_imbalance_stays_within_budget(self):
        dist, graph = self.make_workload()
        inner = GreedyLB()
        slack = 0.2
        result = CommAwareLB(graph, inner=inner, imbalance_slack=slack).rebalance(dist, rng=1)
        inner_i = inner.rebalance(dist).final_imbalance
        assert result.final_imbalance <= inner_i * (1 + slack) + slack + 1e-9

    def test_conserves_tasks(self):
        dist, graph = self.make_workload()
        result = CommAwareLB(graph).rebalance(dist, rng=2)
        loads = np.bincount(result.assignment, weights=dist.task_loads, minlength=dist.n_ranks)
        assert loads.sum() == pytest.approx(dist.total_load)

    def test_graph_size_checked(self):
        dist, _ = self.make_workload()
        with pytest.raises(ValueError, match="does not match"):
            CommAwareLB(CommGraph.ring(10)).rebalance(dist)

    def test_no_edges_is_identity_refinement(self):
        dist, _ = self.make_workload()
        empty = CommGraph(np.empty(0), np.empty(0), np.empty(0), dist.n_tasks)
        inner = GreedyLB()
        aware = CommAwareLB(empty, inner=inner).rebalance(dist, rng=3)
        plain = inner.rebalance(dist)
        np.testing.assert_array_equal(aware.assignment, plain.assignment)
        assert aware.extra["locality_moves"] == 0

    def test_default_inner_is_tempered(self):
        dist = paper_analysis_scenario(n_tasks=200, n_loaded_ranks=4, n_ranks=16, seed=1)
        graph = CommGraph.ring(200)
        result = CommAwareLB(graph).rebalance(dist, rng=4)
        assert result.extra["inner_strategy"] == "TemperedLB"
        assert result.final_imbalance < result.initial_imbalance

    def test_validation(self):
        graph = CommGraph.ring(4)
        with pytest.raises(ValueError):
            CommAwareLB(graph, imbalance_slack=-0.1)
        with pytest.raises(ValueError):
            CommAwareLB(graph, max_sweeps=0)
