"""Unit tests for repro.core.baselines (RandomLB, RotateLB)."""

import numpy as np
import pytest

from repro.core.baselines import RandomLB, RotateLB
from repro.core.distribution import Distribution
from repro.core.greedy import GreedyLB
from repro.workloads import paper_analysis_scenario


class TestRandomLB:
    def test_scatters_concentrated_load(self):
        dist = paper_analysis_scenario(n_tasks=2000, n_loaded_ranks=2, n_ranks=32, seed=0)
        res = RandomLB().rebalance(dist, rng=1)
        assert res.final_imbalance < dist.imbalance()
        # but nowhere near a real balancer
        greedy = GreedyLB().rebalance(dist)
        assert res.final_imbalance > greedy.final_imbalance

    def test_conserves(self):
        dist = paper_analysis_scenario(n_tasks=100, n_loaded_ranks=2, n_ranks=8, seed=1)
        res = RandomLB().rebalance(dist, rng=2)
        loads = np.bincount(res.assignment, weights=dist.task_loads, minlength=8)
        assert loads.sum() == pytest.approx(dist.total_load)

    def test_deterministic_with_seed(self):
        dist = paper_analysis_scenario(n_tasks=100, n_loaded_ranks=2, n_ranks=8, seed=1)
        a = RandomLB().rebalance(dist, rng=7)
        b = RandomLB().rebalance(dist, rng=7)
        np.testing.assert_array_equal(a.assignment, b.assignment)


class TestRotateLB:
    def test_migrates_everything_changes_nothing(self):
        dist = Distribution([1.0, 2.0, 3.0], [0, 1, 2], n_ranks=3)
        res = RotateLB().rebalance(dist)
        assert res.n_migrations == 3
        # Imbalance identical: the multiset of rank loads is unchanged.
        assert res.final_imbalance == pytest.approx(res.initial_imbalance)

    def test_rotation_direction(self):
        dist = Distribution([1.0], [2], n_ranks=4)
        res = RotateLB().rebalance(dist)
        assert res.assignment[0] == 3

    def test_wraps(self):
        dist = Distribution([1.0], [3], n_ranks=4)
        res = RotateLB().rebalance(dist)
        assert res.assignment[0] == 0
