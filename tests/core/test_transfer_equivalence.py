"""Equivalence between the stage API and the per-rank API.

``transfer_stage`` (all overloaded ranks in one call) and a manual loop
of ``transfer_from_rank`` (what the event-level runtime does, charging
each rank its own CPU) must produce the same class of outcome — and for
a single overloaded rank, the identical outcome given the same rng.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.gossip import GossipConfig, run_inform_stage
from repro.core.transfer import TransferConfig, transfer_from_rank, transfer_stage


def build(n_ranks, tasks_per_rank, hot_ranks, seed):
    rng = np.random.default_rng(seed)
    n_tasks = n_ranks * tasks_per_rank
    loads = rng.gamma(3.0, 0.3, size=n_tasks)
    assignment = rng.integers(0, hot_ranks, size=n_tasks)
    rank_loads = np.bincount(assignment, weights=loads, minlength=n_ranks)
    gossip = run_inform_stage(rank_loads, GossipConfig(fanout=3, rounds=4), rng=seed)
    return assignment, loads, gossip


class TestSingleRankIdentical:
    def test_one_hot_rank_bitwise_equal(self):
        assignment, loads, gossip = build(8, 10, 1, seed=0)
        a = assignment.copy()
        b = assignment.copy()
        s_stage = transfer_stage(a, loads, gossip, rng=np.random.default_rng(7))
        s_rank = transfer_from_rank(0, b, loads, gossip, rng=np.random.default_rng(7))
        np.testing.assert_array_equal(a, b)
        assert s_stage.transfers == s_rank.transfers
        assert s_stage.rejections == s_rank.rejections


class TestMultiRankEquivalence:
    @given(seed=st.integers(min_value=0, max_value=500))
    @settings(max_examples=20, deadline=None)
    def test_same_quality_class(self, seed):
        assignment, loads, gossip = build(12, 8, 3, seed=seed)
        cfg = TransferConfig()

        a = assignment.copy()
        transfer_stage(a, loads, gossip, cfg, rng=np.random.default_rng(seed))

        b = assignment.copy()
        rank_loads = np.bincount(b, weights=loads, minlength=12)
        overloaded = np.flatnonzero(rank_loads > gossip.average_load)
        rng = np.random.default_rng(seed)
        for p in overloaded:
            transfer_from_rank(int(p), b, loads, gossip, cfg, rng=rng)

        after_a = np.bincount(a, weights=loads, minlength=12)
        after_b = np.bincount(b, weights=loads, minlength=12)
        before = np.bincount(assignment, weights=loads, minlength=12)
        # Both paths improve the max load substantially and comparably.
        assert after_a.max() < 0.8 * before.max()
        assert after_b.max() < 0.8 * before.max()
        ratio = after_a.max() / after_b.max()
        assert 0.4 < ratio < 2.5
