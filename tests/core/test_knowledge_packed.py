"""Unit tests for PackedKnowledgeBitmap — parity with KnowledgeBitmap.

The packed representation must be observationally identical to the
boolean reference through the whole KnowledgeBitmap API, while holding
only ``P x ceil(P/8)`` bytes.
"""

import math

import numpy as np
import pytest

from repro.core.knowledge import KnowledgeBitmap, PackedKnowledgeBitmap


def _pair(n):
    return KnowledgeBitmap(n), PackedKnowledgeBitmap(n)


class TestPackedBasics:
    def test_initially_empty(self):
        k = PackedKnowledgeBitmap(10)
        assert k.counts().sum() == 0
        assert k.known(3).size == 0
        assert not k.knows(0, 9)

    def test_add_and_query(self):
        k = PackedKnowledgeBitmap(12)
        k.add(0, [1, 7, 8, 11])
        assert list(k.known(0)) == [1, 7, 8, 11]
        assert k.knows(0, 7) and k.knows(0, 11)
        assert not k.knows(0, 6)

    def test_add_same_byte_members(self):
        # Ranks 0..7 share byte 0: a fancy |= would drop all but one,
        # the scatter must keep every bit.
        k = PackedKnowledgeBitmap(16)
        k.add(2, [0, 1, 2, 3, 4, 5, 6, 7])
        assert list(k.known(2)) == list(range(8))

    def test_add_empty_is_noop(self):
        k = PackedKnowledgeBitmap(8)
        k.add(1, [])
        assert k.counts().sum() == 0

    def test_add_self_seeds_diagonal(self):
        k = PackedKnowledgeBitmap(20)
        k.add_self(np.array([1, 9, 17]))
        assert k.knows(1, 1) and k.knows(9, 9) and k.knows(17, 17)
        assert not k.knows(2, 2)
        np.testing.assert_array_equal(k.counts().sum(), 3)

    def test_clear(self):
        k = PackedKnowledgeBitmap(9)
        k.add(0, [3, 8])
        k.clear()
        assert k.counts().sum() == 0

    def test_merge_is_union_of_packed_rows(self):
        k = PackedKnowledgeBitmap(10)
        k.add(0, [1])
        k.add(1, [2, 9])
        k.merge(0, k.packed[1])
        assert list(k.known(0)) == [1, 2, 9]

    def test_merge_many(self):
        k = PackedKnowledgeBitmap(10)
        k.add(5, [0, 8])
        k.merge_many(np.array([1, 2, 3]), k.packed[5])
        for dst in (1, 2, 3):
            assert list(k.known(dst)) == [0, 8]

    def test_unknown_targets_excludes_known_self_and_padding(self):
        # 10 ranks -> 2 bytes with 6 padding bits that must never leak
        # into the candidate set.
        k = PackedKnowledgeBitmap(10)
        k.add(0, [1, 9])
        assert list(k.unknown_targets(0)) == [2, 3, 4, 5, 6, 7, 8]

    def test_coverage_matches_reference(self):
        rng = np.random.default_rng(7)
        ref, packed = _pair(37)
        under = rng.random(37) < 0.4
        for rank in range(37):
            members = np.flatnonzero(rng.random(37) < 0.3)
            ref.add(rank, members)
            packed.add(rank, members)
        ids = np.flatnonzero(under)
        for u in (under, ids):
            assert packed.coverage(u) == pytest.approx(ref.coverage(u))
        assert packed.coverage(np.zeros(37, dtype=bool)) == 1.0


class TestPackedParity:
    """Randomized API-level equivalence against the boolean reference."""

    def test_randomized_operations_match(self):
        rng = np.random.default_rng(42)
        n = 26  # not a multiple of 8: exercises the partial last byte
        ref, packed = _pair(n)
        for _ in range(200):
            op = rng.integers(4)
            if op == 0:
                rank = int(rng.integers(n))
                members = rng.choice(n, size=int(rng.integers(1, 6)), replace=False)
                ref.add(rank, members)
                packed.add(rank, members)
            elif op == 1:
                ranks = rng.choice(n, size=3, replace=False)
                ref.add_self(ranks)
                packed.add_self(ranks)
            elif op == 2:
                src, dst = rng.choice(n, size=2, replace=False)
                ref.merge(int(dst), ref.rows[int(src)])
                packed.merge(int(dst), packed.packed[int(src)])
            else:
                src = int(rng.integers(n))
                dsts = rng.choice(n, size=2, replace=False)
                ref.merge_many(dsts, ref.rows[src])
                packed.merge_many(dsts, packed.packed[src])
        np.testing.assert_array_equal(packed.rows, ref.rows)
        np.testing.assert_array_equal(packed.counts(), ref.counts())
        for rank in range(n):
            np.testing.assert_array_equal(packed.known(rank), ref.known(rank))
            np.testing.assert_array_equal(
                packed.unknown_targets(rank), ref.unknown_targets(rank)
            )


class TestPackedMemory:
    @pytest.mark.parametrize("n", [1, 7, 8, 9, 512, 1000])
    def test_memory_is_p_squared_over_eight(self, n):
        k = PackedKnowledgeBitmap(n)
        assert k.memory_bytes() == n * math.ceil(n / 8)
        assert k.memory_bytes() <= n * n / 8 + n  # the P^2/8 + O(P) bound

    def test_eight_fold_saving_vs_boolean(self):
        n = 512
        ref, packed = _pair(n)
        assert packed.memory_bytes() * 8 == ref.rows.nbytes


class TestPackedRowsProperty:
    def test_rows_is_read_only_copy(self):
        k = PackedKnowledgeBitmap(9)
        k.add(0, [2, 8])
        rows = k.rows
        assert rows.dtype == bool and rows.shape == (9, 9)
        with pytest.raises(ValueError):
            rows[0, 0] = True

    def test_rows_reflects_current_state(self):
        k = PackedKnowledgeBitmap(9)
        k.add(4, [0, 5])
        expect = np.zeros((9, 9), dtype=bool)
        expect[4, [0, 5]] = True
        np.testing.assert_array_equal(k.rows, expect)
