"""Equivalence proof-by-test: IncrementalCMF vs. fresh ``build_cmf``.

The incremental sampler's contract (see ``repro/core/cmf.py``) is that
after any sequence of single-candidate load updates its mass vector,
exhausted condition and materialized prefix sums are *exactly* what a
from-scratch ``build_cmf`` over the current loads produces, and that a
draw consumes exactly one uniform and lands on the same index as
``sample_cmf`` on the materialized CMF.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cmf import (
    CMF_MODIFIED,
    CMF_ORIGINAL,
    IncrementalCMF,
    _fenwick_add,
    _fenwick_build,
    _fenwick_search,
    build_cmf,
    sample_cmf,
)

loads_strategy = st.lists(
    st.floats(min_value=0.0, max_value=50.0, allow_nan=False),
    min_size=1,
    max_size=40,
)

updates_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=1_000_000),  # index (mod size)
        st.floats(min_value=0.0, max_value=80.0, allow_nan=False),  # new load
    ),
    max_size=30,
)


def assert_matches_fresh_build(inc: IncrementalCMF, l_ave: float, variant: str):
    """The incremental state must equal a from-scratch build, exactly."""
    fresh = build_cmf(inc.loads, l_ave, variant)
    if fresh is None:
        assert inc.exhausted
        assert inc.materialize() is None
    else:
        assert not inc.exhausted
        materialized = inc.materialize()
        assert np.array_equal(materialized, fresh)
        # Masses themselves are bit-identical to build_cmf's expression.
        loads = np.asarray(inc.loads, dtype=np.float64)
        expected_masses = np.clip(1.0 - loads / inc.l_s, 0.0, None)
        assert np.array_equal(inc.masses, expected_masses)


class TestIncrementalMatchesBuild:
    @given(loads=loads_strategy, l_ave=st.floats(min_value=0.0, max_value=50.0))
    @settings(max_examples=100, deadline=None)
    def test_initial_state_both_variants(self, loads, l_ave):
        for variant in (CMF_ORIGINAL, CMF_MODIFIED):
            inc = IncrementalCMF(np.asarray(loads), l_ave, variant)
            assert_matches_fresh_build(inc, l_ave, variant)

    @given(
        loads=loads_strategy,
        l_ave=st.floats(min_value=1e-3, max_value=50.0),
        updates=updates_strategy,
    )
    @settings(max_examples=150, deadline=None)
    def test_random_update_sequences(self, loads, l_ave, updates):
        for variant in (CMF_ORIGINAL, CMF_MODIFIED):
            inc = IncrementalCMF(np.asarray(loads), l_ave, variant)
            for raw_idx, new_load in updates:
                inc.update(raw_idx % len(loads), new_load)
                assert_matches_fresh_build(inc, l_ave, variant)

    @given(
        loads=loads_strategy,
        l_ave=st.floats(min_value=1e-3, max_value=50.0),
        updates=updates_strategy,
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=100, deadline=None)
    def test_sample_draws_match_sample_cmf(self, loads, l_ave, updates, seed):
        """Same RNG stream, same drawn index as the materialized CMF."""
        inc = IncrementalCMF(np.asarray(loads), l_ave, CMF_MODIFIED)
        rng_inc = np.random.default_rng(seed)
        rng_ref = np.random.default_rng(seed)
        for raw_idx, new_load in updates:
            inc.update(raw_idx % len(loads), new_load)
            if inc.exhausted:
                continue
            reference = inc.materialize()
            assert sample_cmf(reference, rng_ref) == inc.sample(rng_inc)
        # One uniform per draw: the streams stay aligned.
        assert rng_inc.random() == rng_ref.random()

    def test_transfer_like_walk_stays_exact(self):
        """A long accept/nack-style walk (the transfer stage's usage)."""
        rng = np.random.default_rng(42)
        loads = rng.uniform(0.0, 2.0, size=64)
        l_ave = 1.0
        inc = IncrementalCMF(loads, l_ave, CMF_MODIFIED)
        for _ in range(500):
            if inc.exhausted:
                break
            idx = inc.sample(rng)
            # Simulate an accepted transfer onto the sampled recipient,
            # occasionally a downward nack correction.
            delta = rng.uniform(0.0, 0.3)
            new_load = float(inc.loads[idx]) + delta
            if rng.random() < 0.1:
                new_load = max(0.0, float(inc.loads[idx]) - delta)
            inc.update(idx, new_load)
            assert_matches_fresh_build(inc, l_ave, CMF_MODIFIED)
        assert inc.updates > 0

    def test_exhaustion_equivalence_edge_cases(self):
        # Empty candidate list.
        inc = IncrementalCMF(np.zeros(0), 1.0, CMF_MODIFIED)
        assert inc.exhausted and inc.materialize() is None
        # l_s == 0 (all-zero loads, zero average).
        inc = IncrementalCMF(np.zeros(3), 0.0, CMF_MODIFIED)
        assert inc.exhausted
        assert build_cmf(np.zeros(3), 0.0, CMF_MODIFIED) is None
        # Every candidate at l_s: no positive mass.
        inc = IncrementalCMF(np.full(4, 2.0), 1.0, CMF_MODIFIED)
        assert inc.exhausted
        assert build_cmf(np.full(4, 2.0), 1.0, CMF_MODIFIED) is None
        # Raising one candidate above l_s rebuilds; dropping it back
        # revives positive mass for the rest.
        inc = IncrementalCMF(np.array([1.0, 2.0]), 1.0, CMF_MODIFIED)
        assert not inc.exhausted
        inc.update(0, 2.0)
        assert inc.exhausted
        inc.update(0, 0.5)
        assert not inc.exhausted
        assert_matches_fresh_build(inc, 1.0, CMF_MODIFIED)

    def test_sampling_exhausted_raises(self):
        inc = IncrementalCMF(np.zeros(0), 1.0, CMF_MODIFIED)
        with pytest.raises(ValueError):
            inc.sample(np.random.default_rng(0))

    def test_counts_builds_and_updates(self):
        inc = IncrementalCMF(np.array([0.2, 0.4, 0.6]), 1.0, CMF_MODIFIED)
        assert inc.builds == 1 and inc.updates == 0
        inc.update(0, 0.3)  # no l_s change: point update only
        assert inc.builds == 1 and inc.updates == 1
        inc.update(1, 5.0)  # new running max above l_s: full rebuild
        assert inc.builds == 2 and inc.updates == 2


class TestFenwick:
    @given(
        values=st.lists(
            st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
            min_size=1,
            max_size=50,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_build_matches_prefix_sums(self, values):
        arr = np.asarray(values)
        tree = _fenwick_build(arr)
        # Every inclusive prefix reachable by descent equals the cumsum.
        for target in np.cumsum(arr) - 1e-12:
            idx = _fenwick_search(tree, float(max(target, 0.0)))
            ref = int(np.searchsorted(np.cumsum(arr), float(max(target, 0.0)), side="right"))
            assert idx == min(ref, arr.size - 1) or idx == ref

    def test_add_then_search(self):
        arr = np.array([1.0, 0.0, 2.0, 1.0])
        tree = _fenwick_build(arr)
        _fenwick_add(tree, 1, 3.0)  # arr becomes [1, 3, 2, 1]
        # Cumulative: [1, 4, 6, 7]; target 2.5 lands in index 1.
        assert _fenwick_search(tree, 2.5) == 1
        assert _fenwick_search(tree, 0.5) == 0
        assert _fenwick_search(tree, 6.5) == 3
