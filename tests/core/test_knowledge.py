"""Unit tests for repro.core.knowledge."""

import numpy as np
import pytest

from repro.core.knowledge import KnowledgeBitmap


class TestKnowledgeBitmap:
    def test_initially_empty(self):
        k = KnowledgeBitmap(4)
        assert k.counts().sum() == 0
        assert k.known(0).size == 0

    def test_add_and_query(self):
        k = KnowledgeBitmap(4)
        k.add(0, [1, 3])
        assert list(k.known(0)) == [1, 3]
        assert k.knows(0, 1) and k.knows(0, 3)
        assert not k.knows(0, 2)

    def test_add_self_seeds_diagonal(self):
        k = KnowledgeBitmap(5)
        k.add_self(np.array([1, 4]))
        assert k.knows(1, 1) and k.knows(4, 4)
        assert not k.knows(2, 2)

    def test_merge_is_union(self):
        k = KnowledgeBitmap(4)
        k.add(0, [1])
        k.add(1, [2, 3])
        k.merge(0, k.rows[1])
        assert list(k.known(0)) == [1, 2, 3]

    def test_merge_idempotent(self):
        k = KnowledgeBitmap(3)
        k.add(0, [1])
        row = k.rows[0].copy()
        k.merge(0, row)
        assert list(k.known(0)) == [1]

    def test_unknown_targets_excludes_known_and_self(self):
        k = KnowledgeBitmap(4)
        k.add(0, [1])
        assert list(k.unknown_targets(0)) == [2, 3]

    def test_counts(self):
        k = KnowledgeBitmap(3)
        k.add(0, [0, 1, 2])
        k.add(1, [1])
        np.testing.assert_array_equal(k.counts(), [3, 1, 0])

    def test_coverage_full(self):
        k = KnowledgeBitmap(3)
        under = np.array([True, True, False])
        k.add(0, [0, 1])
        k.add(1, [0, 1])
        k.add(2, [0, 1])
        assert k.coverage(under) == pytest.approx(1.0)

    def test_coverage_partial(self):
        k = KnowledgeBitmap(2)
        under = np.array([True, False])
        k.add(0, [0])
        # rank 0 knows 1/1 underloaded, rank 1 knows 0/1 -> mean 0.5
        assert k.coverage(under) == pytest.approx(0.5)

    def test_coverage_no_underloaded(self):
        k = KnowledgeBitmap(2)
        assert k.coverage(np.array([False, False])) == 1.0

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            KnowledgeBitmap(0)
