"""Tie-breaking determinism of the best-trial selection (Alg. 3 l.13).

When two trials reach an equal best imbalance, the strict ``<`` in
``_select_best`` must keep the *lowest trial index* — under every
executor backend and worker count, because outcomes always merge in
trial order. A completion-order merge (the classic as-completed bug)
would make the winner depend on scheduling.
"""

import numpy as np
import pytest

from repro.core.refinement import (
    RefinementResult,
    _select_best,
    _TrialOutcome,
    iterative_refinement,
)
from repro.workloads.synthetic import paper_analysis_scenario

BACKENDS = ("serial", "thread", "process")


def fresh_result(initial=5.0):
    return RefinementResult(
        best_assignment=np.array([0, 0, 0]),
        best_imbalance=initial,
        initial_imbalance=initial,
    )


class TestSelectBestTieBreaking:
    def test_equal_best_imbalance_keeps_lowest_trial(self):
        first = _TrialOutcome(best_imbalance=1.0, best_assignment=np.array([1, 0, 0]))
        second = _TrialOutcome(best_imbalance=1.0, best_assignment=np.array([0, 1, 0]))
        result = fresh_result()
        _select_best(result, [first, second])
        assert result.best_imbalance == 1.0
        assert result.best_assignment is first.best_assignment

    def test_three_way_tie_keeps_first(self):
        outcomes = [
            _TrialOutcome(best_imbalance=2.0, best_assignment=np.array([t, 0, 0]))
            for t in range(3)
        ]
        result = fresh_result()
        _select_best(result, outcomes)
        assert result.best_assignment is outcomes[0].best_assignment

    def test_tie_with_initial_keeps_original_assignment(self):
        # A proposal merely equal to the initial imbalance is not an
        # improvement; the original (zero-migration) assignment wins.
        outcome = _TrialOutcome(best_imbalance=5.0, best_assignment=np.array([1, 1, 1]))
        result = fresh_result(initial=5.0)
        original = result.best_assignment
        _select_best(result, [outcome])
        assert result.best_assignment is original

    def test_strictly_better_later_trial_still_wins(self):
        first = _TrialOutcome(best_imbalance=1.0, best_assignment=np.array([1, 0, 0]))
        second = _TrialOutcome(best_imbalance=0.5, best_assignment=np.array([0, 1, 0]))
        result = fresh_result()
        _select_best(result, [first, second])
        assert result.best_imbalance == 0.5
        assert result.best_assignment is second.best_assignment

    def test_empty_trial_outcome_never_selected(self):
        result = fresh_result()
        _select_best(result, [_TrialOutcome()])  # no iterations recorded
        assert result.best_imbalance == result.initial_imbalance


class TestSeededBackendSelection:
    """End to end: the winner is identical under every backend."""

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("workers", [2, 4])
    def test_selection_matches_serial_reference(self, backend, workers):
        dist = paper_analysis_scenario(
            n_tasks=400, n_loaded_ranks=4, n_ranks=32, seed=1
        )
        kwargs = dict(n_trials=4, n_iters=3)
        reference = iterative_refinement(
            dist, rng=np.random.default_rng(13), n_workers=1, **kwargs
        )
        result = iterative_refinement(
            dist,
            rng=np.random.default_rng(13),
            n_workers=workers,
            executor=backend,
            **kwargs,
        )
        assert np.array_equal(result.best_assignment, reference.best_assignment)
        assert result.best_imbalance == reference.best_imbalance
        # The winner is the lowest-indexed trial achieving the global
        # minimum over all recorded iterations.
        best = min(r.imbalance for r in result.records)
        winners = sorted(r.trial for r in result.records if r.imbalance == best)
        ref_best = min(r.imbalance for r in reference.records)
        ref_winners = sorted(r.trial for r in reference.records if r.imbalance == ref_best)
        assert best == ref_best
        assert winners[0] == ref_winners[0]
