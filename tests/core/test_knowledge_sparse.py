"""Unit tests for SparseKnowledge — parity with the boolean reference.

The sparse shard representation must be observationally identical to
``KnowledgeBitmap`` through the whole API while holding only
``O(sum |S^p|)`` bytes. A second battery runs both compact backends
(packed bits and sparse shards) through awkward rank counts — 1, 7 and
4097 — where byte padding, single-row matrices and partial last bytes
are most likely to leak.
"""

import numpy as np
import pytest

from repro.core.knowledge import (
    KnowledgeBitmap,
    PackedKnowledgeBitmap,
    SparseKnowledge,
)


def _pair(n):
    return KnowledgeBitmap(n), SparseKnowledge(n)


class TestSparseBasics:
    def test_initially_empty(self):
        k = SparseKnowledge(10)
        assert k.counts().sum() == 0
        assert k.known(3).size == 0
        assert not k.knows(0, 9)

    def test_add_and_query(self):
        k = SparseKnowledge(12)
        k.add(0, [7, 1, 11, 8])
        assert list(k.known(0)) == [1, 7, 8, 11]  # sorted, deduped
        assert k.knows(0, 7) and k.knows(0, 11)
        assert not k.knows(0, 6)

    def test_add_empty_is_noop(self):
        k = SparseKnowledge(8)
        k.add(1, [])
        assert k.counts().sum() == 0

    def test_add_self_seeds_diagonal(self):
        k = SparseKnowledge(20)
        k.add_self(np.array([1, 9, 17]))
        assert k.knows(1, 1) and k.knows(9, 9) and k.knows(17, 17)
        assert not k.knows(2, 2)
        assert k.counts().sum() == 3

    def test_merge_is_union_of_shards(self):
        k = SparseKnowledge(10)
        k.add(0, [1])
        k.add(1, [2, 9])
        k.merge(0, k.shards[1])
        assert list(k.known(0)) == [1, 2, 9]

    def test_shards_are_replaced_not_mutated(self):
        # The round-payload discipline: a reference taken before a merge
        # must still hold the pre-merge members afterwards.
        k = SparseKnowledge(10)
        k.add(0, [3])
        snapshot = k.shards[0]
        k.add(0, [5, 7])
        assert list(snapshot) == [3]
        assert list(k.known(0)) == [3, 5, 7]

    def test_unknown_targets_excludes_known_and_self(self):
        k = SparseKnowledge(10)
        k.add(0, [1, 9])
        assert list(k.unknown_targets(0)) == [2, 3, 4, 5, 6, 7, 8]

    def test_discard_members(self):
        ref, sparse = _pair(16)
        for k in (ref, sparse):
            k.add(0, [1, 2, 3])
            k.add(5, [2, 8])
            k.discard_members(np.array([2, 3]))
        np.testing.assert_array_equal(sparse.rows, ref.rows)

    def test_coverage_matches_reference(self):
        rng = np.random.default_rng(7)
        ref, sparse = _pair(37)
        under = rng.random(37) < 0.4
        for rank in range(37):
            members = np.flatnonzero(rng.random(37) < 0.3)
            ref.add(rank, members)
            sparse.add(rank, members)
        ids = np.flatnonzero(under)
        for u in (under, ids):
            assert sparse.coverage(u) == pytest.approx(ref.coverage(u))
        assert sparse.coverage(np.zeros(37, dtype=bool)) == 1.0

    def test_memory_is_sum_of_shards(self):
        k = SparseKnowledge(1000)
        assert k.memory_bytes() == 0
        k.add(0, [1, 2, 3])
        k.add(999, [0])
        assert k.memory_bytes() == 4 * np.dtype(np.int32).itemsize


class TestSparseParity:
    """Randomized API-level equivalence against the boolean reference."""

    def test_randomized_operations_match(self):
        rng = np.random.default_rng(42)
        n = 26
        ref, sparse = _pair(n)
        for _ in range(200):
            op = rng.integers(4)
            if op == 0:
                rank = int(rng.integers(n))
                members = rng.choice(n, size=int(rng.integers(1, 6)), replace=False)
                ref.add(rank, members)
                sparse.add(rank, members)
            elif op == 1:
                ranks = rng.choice(n, size=3, replace=False)
                ref.add_self(ranks)
                sparse.add_self(ranks)
            elif op == 2:
                src, dst = rng.choice(n, size=2, replace=False)
                ref.merge(int(dst), ref.rows[int(src)])
                sparse.merge(int(dst), sparse.shards[int(src)])
            else:
                src = int(rng.integers(n))
                dsts = rng.choice(n, size=2, replace=False)
                ref.merge_many(dsts, ref.rows[src])
                sparse.merge_many(dsts, sparse.shards[src])
        np.testing.assert_array_equal(sparse.rows, ref.rows)
        np.testing.assert_array_equal(sparse.counts(), ref.counts())
        for rank in range(n):
            np.testing.assert_array_equal(sparse.known(rank), ref.known(rank))
            np.testing.assert_array_equal(
                sparse.unknown_targets(rank), ref.unknown_targets(rank)
            )


def _payload(k, rank):
    """The row in whatever form the backend's merge expects."""
    return k.packed[rank] if isinstance(k, PackedKnowledgeBitmap) else k.shards[rank]


@pytest.mark.parametrize("backend", [PackedKnowledgeBitmap, SparseKnowledge])
@pytest.mark.parametrize("n", [1, 7, 4097])
class TestCompactBackendEdgeCounts:
    """Awkward rank counts for both compact backends.

    1 rank: every operation touches the only row; the packed byte has 7
    padding bits. 7 ranks: a single partial byte. 4097 ranks: one rank
    past a power of two, 513 bytes per packed row with 7 padding bits in
    the last.
    """

    def test_merge_many_unions_every_destination(self, backend, n):
        k = backend(n)
        members = [0] if n == 1 else [0, n - 1, n // 2]
        src = n - 1
        k.add(src, members)
        dsts = np.arange(n)[: min(n, 5)]
        k.merge_many(dsts, _payload(k, src))
        expect = sorted(set(members))
        for dst in dsts:
            assert list(k.known(int(dst))) == expect

    def test_clear_empties_every_row(self, backend, n):
        k = backend(n)
        k.add_self(np.arange(n)[: min(n, 8)])
        k.add(0, [n - 1])
        k.clear()
        assert k.counts().sum() == 0
        assert k.known(0).size == 0
        assert list(k.unknown_targets(0)) == list(range(1, n))

    def test_rows_shape_and_content(self, backend, n):
        k = backend(n)
        k.add(0, [n - 1])
        if n > 1:
            k.add(n - 1, [0, n - 2])
        rows = k.rows
        assert rows.shape == (n, n) and rows.dtype == bool
        expect = np.zeros((n, n), dtype=bool)
        expect[0, n - 1] = True
        if n > 1:
            expect[n - 1, [0, n - 2]] = True
        np.testing.assert_array_equal(rows, expect)

    def test_no_padding_or_out_of_range_leakage(self, backend, n):
        # Fill every row completely: counts must cap at n, and no id
        # >= n (a padding bit, in the packed case) may ever surface.
        k = backend(n)
        everyone = np.arange(n)
        for rank in range(min(n, 9)):
            k.add(rank, everyone)
            assert k.counts()[rank] == n
            assert k.known(rank).max() == n - 1
            assert k.unknown_targets(rank).size == 0
        # A merge of a full row must not overflow either.
        k.merge_many(np.arange(min(n, 3)), _payload(k, 0))
        assert k.counts().max() == n
        assert k.rows.sum() == min(n, 9) * n
