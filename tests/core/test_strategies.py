"""Unit tests for the strategy classes (Tempered, Grapevine, Greedy, Hier)."""

import numpy as np
import pytest

from repro import Distribution, GrapevineLB, GreedyLB, HierLB, TemperedLB
from repro.core.tempered import TemperedConfig
from repro.workloads import paper_analysis_scenario, skewed_distribution

ALL_STRATEGIES = [
    TemperedLB(n_trials=2, n_iters=3),
    GrapevineLB(n_iters=2),
    GreedyLB(),
    HierLB(),
]


def scenario(seed=0):
    return paper_analysis_scenario(n_tasks=400, n_loaded_ranks=4, n_ranks=32, seed=seed)


class TestCommonContract:
    @pytest.mark.parametrize("lb", ALL_STRATEGIES, ids=lambda lb: lb.name)
    def test_improves_imbalance(self, lb):
        dist = scenario()
        res = lb.rebalance(dist, rng=1)
        assert res.final_imbalance < res.initial_imbalance

    @pytest.mark.parametrize("lb", ALL_STRATEGIES, ids=lambda lb: lb.name)
    def test_conserves_tasks(self, lb):
        dist = scenario()
        res = lb.rebalance(dist, rng=1)
        assert res.assignment.shape == dist.assignment.shape
        assert (res.assignment >= 0).all() and (res.assignment < dist.n_ranks).all()
        loads = np.bincount(res.assignment, weights=dist.task_loads, minlength=dist.n_ranks)
        assert loads.sum() == pytest.approx(dist.total_load)

    @pytest.mark.parametrize("lb", ALL_STRATEGIES, ids=lambda lb: lb.name)
    def test_input_not_mutated(self, lb):
        dist = scenario()
        before = dist.assignment.copy()
        lb.rebalance(dist, rng=1)
        np.testing.assert_array_equal(dist.assignment, before)

    @pytest.mark.parametrize("lb", ALL_STRATEGIES, ids=lambda lb: lb.name)
    def test_migration_count_consistent(self, lb):
        dist = scenario()
        res = lb.rebalance(dist, rng=1)
        assert res.n_migrations == int(np.count_nonzero(res.assignment != dist.assignment))

    @pytest.mark.parametrize("lb", ALL_STRATEGIES, ids=lambda lb: lb.name)
    def test_apply_returns_matching_distribution(self, lb):
        dist = scenario()
        new_dist, res = lb.apply(dist, rng=1)
        np.testing.assert_array_equal(new_dist.assignment, res.assignment)
        assert new_dist.imbalance() == pytest.approx(res.final_imbalance)


class TestTemperedLB:
    def test_beats_grapevine_on_skewed_workload(self):
        dist = scenario(seed=3)
        tempered = TemperedLB(n_trials=2, n_iters=8).rebalance(dist, rng=2)
        grapevine = GrapevineLB(n_iters=8).rebalance(dist, rng=2)
        assert tempered.final_imbalance < grapevine.final_imbalance

    def test_config_object_and_overrides_exclusive(self):
        with pytest.raises(ValueError, match="not both"):
            TemperedLB(TemperedConfig(), n_trials=2)

    def test_records_cover_all_trials(self):
        lb = TemperedLB(n_trials=3, n_iters=2)
        res = lb.rebalance(scenario(), rng=0)
        assert len(res.records) == 6
        assert res.extra["gossip_messages"] > 0

    def test_lbaf_variant_switches_semantics(self):
        cfg = TemperedConfig().lbaf_variant()
        assert cfg.view == "shared"
        assert cfg.max_passes is None
        assert cfg.cascade is True

    def test_deterministic(self):
        lb = TemperedLB(n_trials=2, n_iters=2)
        a = lb.rebalance(scenario(), rng=9)
        b = lb.rebalance(scenario(), rng=9)
        np.testing.assert_array_equal(a.assignment, b.assignment)


class TestGrapevineLB:
    def test_strategy_name(self):
        res = GrapevineLB().rebalance(scenario(), rng=0)
        assert res.strategy == "GrapevineLB"

    def test_single_trial(self):
        res = GrapevineLB(n_iters=3).rebalance(scenario(), rng=0)
        assert {r.trial for r in res.records} == {1}


class TestGreedyLB:
    def test_near_optimal_on_many_small_tasks(self):
        dist = skewed_distribution(2000, 16, skew=1.5, load_cv=0.3, seed=1)
        res = GreedyLB().rebalance(dist)
        assert res.final_imbalance < 0.05

    def test_lpt_bound(self):
        # LPT guarantees makespan <= (4/3 - 1/(3m)) * OPT and OPT >= ave.
        dist = skewed_distribution(200, 8, skew=1.0, seed=2)
        res = GreedyLB().rebalance(dist)
        loads = np.bincount(res.assignment, weights=dist.task_loads, minlength=8)
        opt_lower = max(dist.average_load, dist.task_loads.max())
        assert loads.max() <= (4 / 3) * opt_lower + 1e-9

    def test_deterministic_without_rng(self):
        dist = scenario()
        a = GreedyLB().rebalance(dist)
        b = GreedyLB().rebalance(dist)
        np.testing.assert_array_equal(a.assignment, b.assignment)

    def test_handles_single_rank(self):
        dist = Distribution([1.0, 2.0], [0, 0], n_ranks=1)
        res = GreedyLB().rebalance(dist)
        assert res.final_imbalance == pytest.approx(0.0)


class TestHierLB:
    def test_quality_comparable_to_greedy(self):
        dist = scenario(seed=5)
        hier = HierLB().rebalance(dist)
        greedy = GreedyLB().rebalance(dist)
        # Hierarchical quality should land within a modest factor.
        assert hier.final_imbalance <= max(4 * greedy.final_imbalance, 0.3)

    def test_branching_validation(self):
        with pytest.raises(ValueError):
            HierLB(branching=1)
        with pytest.raises(ValueError):
            HierLB(tolerance=-0.5)

    def test_records_tree_depth(self):
        res = HierLB(branching=2).rebalance(scenario())
        assert res.extra["tree_depth"] == 5  # 32 ranks, binary tree

    def test_single_rank_noop(self):
        dist = Distribution([1.0, 2.0], [0, 0], n_ranks=1)
        res = HierLB().rebalance(dist)
        assert res.n_migrations == 0
