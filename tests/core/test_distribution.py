"""Unit tests for repro.core.distribution."""

import numpy as np
import pytest

from repro.core.distribution import Distribution


def make_dist():
    return Distribution([1.0, 2.0, 3.0, 4.0], [0, 0, 1, 2], n_ranks=4)


class TestConstruction:
    def test_basic_properties(self):
        d = make_dist()
        assert d.n_tasks == 4
        assert d.n_ranks == 4
        assert d.total_load == 10.0
        assert d.average_load == 2.5
        assert d.max_load == 4.0

    def test_rank_loads(self):
        d = make_dist()
        np.testing.assert_allclose(d.rank_loads(), [3.0, 3.0, 4.0, 0.0])

    def test_empty_rank_allowed(self):
        d = make_dist()
        assert d.tasks_on(3).size == 0

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError, match="same length"):
            Distribution([1.0, 2.0], [0], n_ranks=2)

    def test_out_of_range_assignment_rejected(self):
        with pytest.raises(ValueError, match="lie in"):
            Distribution([1.0], [5], n_ranks=2)
        with pytest.raises(ValueError, match="lie in"):
            Distribution([1.0], [-1], n_ranks=2)

    def test_negative_load_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            Distribution([-1.0], [0], n_ranks=1)

    def test_zero_ranks_rejected(self):
        with pytest.raises(ValueError):
            Distribution([1.0], [0], n_ranks=0)

    def test_2d_input_rejected(self):
        with pytest.raises(ValueError, match="1-D"):
            Distribution([[1.0]], [[0]], n_ranks=1)

    def test_empty_distribution(self):
        d = Distribution([], [], n_ranks=3)
        assert d.n_tasks == 0
        assert d.imbalance() == 0.0
        np.testing.assert_allclose(d.rank_loads(), [0.0, 0.0, 0.0])


class TestImbalance:
    def test_perfect_balance_is_zero(self):
        d = Distribution([1.0, 1.0, 1.0], [0, 1, 2], n_ranks=3)
        assert d.imbalance() == pytest.approx(0.0)

    def test_eq1_value(self):
        # loads per rank: [3, 3, 4, 0]; ave 2.5, max 4 -> I = 0.6
        assert make_dist().imbalance() == pytest.approx(0.6)

    def test_all_on_one_rank(self):
        d = Distribution([1.0] * 4, [0] * 4, n_ranks=4)
        # max = 4, ave = 1 -> I = 3
        assert d.imbalance() == pytest.approx(3.0)


class TestMutation:
    def test_move_updates_loads(self):
        d = make_dist()
        d.move(3, 3)
        np.testing.assert_allclose(d.rank_loads(), [3.0, 3.0, 0.0, 4.0])

    def test_move_invalidates_task_buckets(self):
        d = make_dist()
        d.rank_tasks()
        d.move(0, 3)
        assert 0 in d.rank_tasks()[3]
        assert 0 not in d.rank_tasks()[0]

    def test_move_out_of_range_rejected(self):
        d = make_dist()
        with pytest.raises(ValueError, match="out of range"):
            d.move(0, 7)

    def test_with_assignment_does_not_alias(self):
        d = make_dist()
        new = d.with_assignment(np.array([1, 1, 1, 1]))
        new.move(0, 0)
        assert d.assignment[0] == 0  # original untouched
        assert new.assignment[0] == 0 and new.assignment[1] == 1

    def test_copy_is_independent(self):
        d = make_dist()
        c = d.copy()
        c.move(0, 3)
        assert d.assignment[0] == 0


class TestMigrationCount:
    def test_counts_differences(self):
        d = make_dist()
        other = np.array([0, 1, 1, 2])
        assert d.migration_count(other) == 1

    def test_identical_is_zero(self):
        d = make_dist()
        assert d.migration_count(d.assignment) == 0

    def test_length_mismatch_rejected(self):
        d = make_dist()
        with pytest.raises(ValueError, match="equal length"):
            d.migration_count(np.array([0, 1]))


class TestTaskBuckets:
    def test_buckets_partition_tasks(self):
        d = make_dist()
        all_tasks = sorted(t for bucket in d.rank_tasks() for t in bucket)
        assert all_tasks == [0, 1, 2, 3]

    def test_bucket_order_is_ascending_id(self):
        d = Distribution([1.0] * 5, [1, 0, 1, 0, 1], n_ranks=2)
        assert d.rank_tasks()[1] == [0, 2, 4]
