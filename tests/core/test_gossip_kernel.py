"""The sparse inform kernel knob: parity, warnings, degradation.

Three invariants, mirroring the transfer-kernel contract
(``tests/core/test_transfer_soa.py``):

1. every ``GossipConfig.kernel`` setting produces bit-identical results
   (same knowledge, same traffic, same RNG stream);
2. ``kernel="numba"`` without numba degrades to the pure-Python path
   with exactly one :class:`RuntimeWarning` per feature — never one per
   call, never an error;
3. nothing in the package imports numba at module-import time, so the
   whole stack works on hosts without it.
"""

import subprocess
import sys
import warnings

import numpy as np
import pytest

from repro.core import _kernels
from repro.core._kernels import (
    HAVE_NUMBA,
    coverage_hits,
    get_gossip_kernels,
    merge_shards,
    shard_membership,
    warn_numba_missing,
)
from repro.core.gossip import GossipConfig, run_inform_stage
from repro.core.tempered import TemperedConfig
from repro.core.transfer import TransferConfig, transfer_stage
from repro.workloads.synthetic import paper_analysis_scenario


def gamma_loads(n, seed):
    rng = np.random.default_rng(seed)
    loads = rng.gamma(3.0, 0.5, size=n)
    loads[: max(1, n // 16)] *= 25.0
    return loads


def run_sparse(loads, kernel, seed, **overrides):
    config = GossipConfig(
        fanout=4, rounds=6, knowledge="sparse", kernel=kernel, **overrides
    )
    rng = np.random.default_rng(seed)
    stage = run_inform_stage(loads, config, rng)
    return stage, rng.bit_generator.state


class TestKernelKnob:
    def test_kernel_validated(self):
        with pytest.raises(ValueError, match="kernel"):
            GossipConfig(kernel="cython")

    def test_tempered_passthrough(self):
        cfg = TemperedConfig(gossip_kernel="python")
        assert cfg.gossip_config().kernel == "python"
        assert TemperedConfig().gossip_config().kernel == "auto"
        with pytest.raises(ValueError, match="kernel"):
            TemperedConfig(gossip_kernel="cython")


class TestBitIdentity:
    """The fused driver (and jitted kernels where present) against the
    pure-Python reference, down to the RNG stream."""

    CONFIGS = (
        {},  # uncapped
        {"max_known": 48, "trim_policy": "lowest"},
        {"max_known": 48, "trim_policy": "random"},
    )

    @pytest.mark.parametrize("overrides", CONFIGS, ids=("uncapped", "lowest", "random"))
    def test_kernel_vs_python_20_seeds(self, overrides):
        n = 256
        for seed in range(20):
            loads = gamma_loads(n, seed)
            ref, ref_state = run_sparse(loads, "python", seed + 1, **overrides)
            for kernel in ("auto", "numba"):
                with warnings.catch_warnings():
                    warnings.simplefilter("ignore", RuntimeWarning)
                    new, new_state = run_sparse(loads, kernel, seed + 1, **overrides)
                np.testing.assert_array_equal(new.knowledge.rows, ref.knowledge.rows)
                assert new.n_messages == ref.n_messages
                assert new.bytes_sent == ref.bytes_sent
                assert new.per_round_messages == ref.per_round_messages
                assert new.per_round_senders == ref.per_round_senders
                assert new_state == ref_state


class TestDegradation:
    """``kernel="numba"`` without numba: warn once, stay bit-identical."""

    @pytest.mark.skipif(HAVE_NUMBA, reason="degradation path needs numba absent")
    def test_gossip_kernel_warns_once(self):
        _kernels.reset_numba_warnings()
        loads = gamma_loads(128, 0)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            run_sparse(loads, "numba", 1)
            run_sparse(loads, "numba", 2)
        relevant = [w for w in caught if "sparse inform kernel" in str(w.message)]
        assert len(relevant) == 1
        assert issubclass(relevant[0].category, RuntimeWarning)

    @pytest.mark.skipif(HAVE_NUMBA, reason="degradation path needs numba absent")
    def test_transfer_kernel_warns_once(self):
        _kernels.reset_numba_warnings()
        dist = paper_analysis_scenario(n_tasks=200, n_loaded_ranks=4, n_ranks=64, seed=0)
        loads = np.bincount(dist.assignment, weights=dist.task_loads, minlength=64)
        gossip = run_inform_stage(loads, GossipConfig(fanout=3, rounds=4), rng=0)
        config = TransferConfig(kernel="numba")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            for seed in (1, 2):
                transfer_stage(
                    dist.assignment.copy(),
                    dist.task_loads,
                    gossip,
                    config,
                    np.random.default_rng(seed),
                )
        relevant = [w for w in caught if "transfer-pass kernel" in str(w.message)]
        assert len(relevant) == 1
        assert issubclass(relevant[0].category, RuntimeWarning)

    @pytest.mark.skipif(HAVE_NUMBA, reason="degradation path needs numba absent")
    def test_warn_once_per_feature(self):
        _kernels.reset_numba_warnings()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            warn_numba_missing("feature A")
            warn_numba_missing("feature A")
            warn_numba_missing("feature B")
        assert len(caught) == 2

    @pytest.mark.skipif(HAVE_NUMBA, reason="resolution depends on numba absence")
    def test_get_gossip_kernels_none_without_numba(self):
        assert get_gossip_kernels() is None


class TestNoImportTimeNumba:
    def test_package_imports_and_runs_with_numba_blocked(self):
        # A meta-path hook that refuses to import numba proves both that
        # no module needs it at import time and that both kernel knobs
        # degrade gracefully at run time — even on hosts that have it.
        code = """
import sys
import warnings

class Block:
    def find_module(self, name, path=None):
        return self if name.split(".")[0] == "numba" else None
    def find_spec(self, name, path=None, target=None):
        if name.split(".")[0] == "numba":
            raise ImportError("numba blocked for this test")
        return None

sys.meta_path.insert(0, Block())
import numpy as np
from repro.core._kernels import HAVE_NUMBA
from repro.core.gossip import GossipConfig, run_inform_stage
from repro.core.transfer import TransferConfig, transfer_stage
from repro.workloads.synthetic import paper_analysis_scenario

assert not HAVE_NUMBA
dist = paper_analysis_scenario(n_tasks=100, n_loaded_ranks=2, n_ranks=32, seed=0)
loads = np.bincount(dist.assignment, weights=dist.task_loads, minlength=32)
with warnings.catch_warnings():
    warnings.simplefilter("ignore", RuntimeWarning)
    stage = run_inform_stage(
        loads, GossipConfig(knowledge="sparse", kernel="numba"), rng=0
    )
    transfer_stage(
        dist.assignment.copy(),
        dist.task_loads,
        stage,
        TransferConfig(kernel="numba"),
        np.random.default_rng(1),
    )
print("ok", stage.n_messages)
"""
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            check=True,
        )
        assert out.stdout.startswith("ok")


class TestKernelFunctionParity:
    """The scalar kernel bodies against their NumPy formulations.

    The plain-Python builds run everywhere; the jitted builds are the
    same bodies compiled, re-checked on the CI leg that installs numba.
    """

    def kernels(self):
        triple = get_gossip_kernels()
        if triple is not None:
            return triple
        return merge_shards, shard_membership, coverage_hits

    def test_merge_shards_matches_union1d(self):
        merge, _, _ = self.kernels()
        rng = np.random.default_rng(0)
        for _ in range(25):
            a = np.unique(rng.integers(0, 60, size=rng.integers(0, 20))).astype(np.int32)
            b = np.unique(rng.integers(0, 60, size=rng.integers(0, 20))).astype(np.int32)
            out = np.empty(a.size + b.size, dtype=np.int32)
            k = merge(a, b, out)
            np.testing.assert_array_equal(
                out[:k], np.union1d(a, b).astype(np.int32)
            )

    def test_shard_membership_matches_isin(self):
        _, membership, _ = self.kernels()
        rng = np.random.default_rng(1)
        n_segments, width, n_rows = 6, 4, 12
        segments = [
            np.unique(rng.integers(0, 40, size=rng.integers(0, 12))).astype(np.int32)
            for _ in range(n_segments)
        ]
        flat = np.concatenate(segments) if segments else np.empty(0, np.int32)
        lens = np.array([s.size for s in segments], dtype=np.int64)
        starts = np.concatenate(([0], np.cumsum(lens)[:-1]))
        rows = rng.integers(0, n_segments, size=n_rows)
        draws = rng.integers(0, 40, size=(n_rows, width)).astype(np.int32)
        out = np.zeros((n_rows, width), dtype=bool)
        membership(flat, starts, lens, rows, draws, out)
        expected = np.array(
            [np.isin(draws[i], segments[rows[i]]) for i in range(n_rows)]
        )
        np.testing.assert_array_equal(out, expected)

    def test_coverage_hits_matches_mask_sums(self):
        _, _, hits = self.kernels()
        rng = np.random.default_rng(2)
        n = 8
        segments = [
            np.unique(rng.integers(0, n, size=rng.integers(0, 6))).astype(np.int32)
            for _ in range(n)
        ]
        flat = np.concatenate(segments)
        lens = np.array([s.size for s in segments], dtype=np.int64)
        mask = rng.random(n) < 0.5
        out = np.zeros(n, dtype=np.int64)
        hits(flat, lens, mask, out)
        expected = np.array([int(mask[s].sum()) for s in segments])
        np.testing.assert_array_equal(out, expected)
