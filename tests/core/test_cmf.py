"""Unit tests for repro.core.cmf (Algorithm 2 BUILDCMF)."""

import numpy as np
import pytest

from repro.core.cmf import CMF_MODIFIED, CMF_ORIGINAL, build_cmf, sample_cmf


class TestBuildOriginal:
    def test_masses_proportional_to_headroom(self):
        # loads 0 and 0.5 with l_ave 1: masses 1 and 0.5 -> cmf [2/3, 1]
        cmf = build_cmf(np.array([0.0, 0.5]), 1.0, CMF_ORIGINAL)
        np.testing.assert_allclose(cmf, [2 / 3, 1.0])

    def test_last_entry_exactly_one(self):
        cmf = build_cmf(np.random.default_rng(0).random(100), 2.0, CMF_ORIGINAL)
        assert cmf[-1] == 1.0

    def test_monotone_nondecreasing(self):
        cmf = build_cmf(np.random.default_rng(1).random(50), 2.0, CMF_ORIGINAL)
        assert (np.diff(cmf) >= 0).all()

    def test_load_above_average_gets_zero_mass(self):
        cmf = build_cmf(np.array([2.0, 0.0]), 1.0, CMF_ORIGINAL)
        # candidate 0 has zero mass: cmf = [0, 1]
        np.testing.assert_allclose(cmf, [0.0, 1.0])

    def test_degenerate_all_at_average(self):
        assert build_cmf(np.array([1.0, 1.0]), 1.0, CMF_ORIGINAL) is None

    def test_empty(self):
        assert build_cmf(np.array([]), 1.0, CMF_ORIGINAL) is None

    def test_zero_average(self):
        assert build_cmf(np.array([0.0]), 0.0, CMF_ORIGINAL) is None


class TestBuildModified:
    def test_handles_loads_above_average(self):
        # l_s = max(1.0, 3.0) = 3 -> masses [1-2/3, 1-3/3] = [1/3, 0]
        cmf = build_cmf(np.array([2.0, 3.0]), 1.0, CMF_MODIFIED)
        np.testing.assert_allclose(cmf, [1.0, 1.0])

    def test_reduces_to_original_when_all_below_average(self):
        loads = np.array([0.1, 0.4, 0.7])
        a = build_cmf(loads, 1.0, CMF_ORIGINAL)
        b = build_cmf(loads, 1.0, CMF_MODIFIED)
        np.testing.assert_allclose(a, b)

    def test_degenerate_equal_loads_above_average(self):
        # All masses zero: l_s = max load = every load.
        assert build_cmf(np.array([5.0, 5.0]), 1.0, CMF_MODIFIED) is None

    def test_unequal_loads_above_average_ok(self):
        cmf = build_cmf(np.array([5.0, 4.0]), 1.0, CMF_MODIFIED)
        assert cmf is not None
        np.testing.assert_allclose(cmf, [0.0, 1.0])

    def test_bad_variant_rejected(self):
        with pytest.raises(ValueError, match="cmf"):
            build_cmf(np.array([0.5]), 1.0, "bogus")


class TestSampling:
    def test_respects_masses(self):
        rng = np.random.default_rng(0)
        cmf = build_cmf(np.array([0.0, 0.9]), 1.0, CMF_ORIGINAL)
        picks = np.array([sample_cmf(cmf, rng) for _ in range(2000)])
        # mass ratio 1 : 0.1 -> candidate 0 picked ~91% of the time
        assert (picks == 0).mean() > 0.85

    def test_single_candidate(self):
        rng = np.random.default_rng(0)
        cmf = build_cmf(np.array([0.0]), 1.0, CMF_ORIGINAL)
        assert sample_cmf(cmf, rng) == 0

    def test_never_out_of_range(self):
        rng = np.random.default_rng(2)
        cmf = build_cmf(np.linspace(0, 0.9, 10), 1.0, CMF_MODIFIED)
        for _ in range(500):
            assert 0 <= sample_cmf(cmf, rng) < 10
