"""Unit tests for repro.core.criteria (Algorithm 2 EVALUATECRITERION)."""

import pytest

from repro.core.criteria import (
    CRITERION_ORIGINAL,
    CRITERION_RELAXED,
    evaluate_criterion,
    original_criterion,
    relaxed_criterion,
)


class TestOriginal:
    def test_accepts_when_recipient_stays_under_average(self):
        assert original_criterion(l_x=0.5, task_load=0.4, l_ave=1.0, l_p=5.0)

    def test_rejects_at_exactly_average(self):
        assert not original_criterion(l_x=0.5, task_load=0.5, l_ave=1.0, l_p=5.0)

    def test_rejects_task_heavier_than_average(self):
        # Any task with load >= l_ave can never move under the original
        # criterion, even to an empty rank — the fragmentation trap.
        assert not original_criterion(l_x=0.0, task_load=1.0, l_ave=1.0, l_p=100.0)

    def test_ignores_sender_load(self):
        assert original_criterion(0.0, 0.5, 1.0, l_p=0.6) == original_criterion(
            0.0, 0.5, 1.0, l_p=1e9
        )


class TestRelaxed:
    def test_accepts_heavy_task_to_empty_rank(self):
        # The case the original rejects: task heavier than the average.
        assert relaxed_criterion(l_x=0.0, task_load=1.0, l_ave=1.0, l_p=100.0)

    def test_rejects_when_recipient_would_match_sender(self):
        # l_x + load == l_p exactly: not a strict improvement.
        assert not relaxed_criterion(l_x=1.0, task_load=4.0, l_ave=1.0, l_p=5.0)

    def test_rejects_when_recipient_would_exceed_sender(self):
        assert not relaxed_criterion(l_x=3.0, task_load=4.0, l_ave=1.0, l_p=5.0)

    def test_equivalent_formulation(self):
        # LOAD(o) < l_p - l_x  <=>  l_x + LOAD(o) < l_p
        for l_x, load, l_p in [(0.2, 0.3, 1.0), (1.0, 1.0, 1.5), (0.0, 2.0, 2.0)]:
            assert relaxed_criterion(l_x, load, 1.0, l_p) == (l_x + load < l_p)

    def test_less_strict_than_original(self):
        # Whenever the original accepts and the sender is overloaded
        # (l_p > l_ave), the relaxed criterion accepts too.
        cases = [(0.0, 0.5, 1.0, 2.0), (0.3, 0.3, 1.0, 1.5), (0.1, 0.05, 1.0, 9.0)]
        for l_x, load, l_ave, l_p in cases:
            if original_criterion(l_x, load, l_ave, l_p):
                assert relaxed_criterion(l_x, load, l_ave, l_p)


class TestDispatch:
    def test_named_dispatch(self):
        assert evaluate_criterion(CRITERION_ORIGINAL, 0.0, 0.5, 1.0, 2.0)
        assert evaluate_criterion(CRITERION_RELAXED, 0.0, 1.5, 1.0, 2.0)

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="criterion"):
            evaluate_criterion("strict", 0, 0, 1, 1)
