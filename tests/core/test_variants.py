"""Tests for the paper-adjacent variants: negative acknowledgements
(Menon's mechanism, which § V-A drops in favour of iteration) and
limited-information gossip (the § IV-B footnote's future work)."""

import numpy as np
import pytest

from repro import TemperedLB
from repro.core.distribution import Distribution
from repro.core.gossip import GossipConfig, run_inform_stage
from repro.core.transfer import TransferConfig, transfer_stage
from repro.workloads import paper_analysis_scenario


def two_senders_one_recipient():
    """Two heavily loaded ranks, one empty recipient: the overfill case
    nacks exist to prevent."""
    task_loads = np.ones(40)
    assignment = np.array([0] * 20 + [1] * 20, dtype=np.int64)
    loads = np.bincount(assignment, weights=task_loads, minlength=3)
    gossip = run_inform_stage(loads, GossipConfig(fanout=2, rounds=3), rng=0)
    return assignment, task_loads, gossip


class TestNegativeAcknowledgements:
    def test_nacks_prevent_recipient_overload(self):
        assignment, task_loads, gossip = two_senders_one_recipient()
        a = assignment.copy()
        stats = transfer_stage(
            a, task_loads, gossip, TransferConfig(nacks=True), rng=5
        )
        loads_after = np.bincount(a, weights=task_loads, minlength=3)
        l_ave = gossip.average_load
        # The single known recipient never ends above the threshold.
        assert loads_after[2] <= l_ave + 1e-12
        assert stats.nacked > 0

    def test_without_nacks_recipient_can_overload(self):
        assignment, task_loads, gossip = two_senders_one_recipient()
        a = assignment.copy()
        stats = transfer_stage(
            a, task_loads, gossip, TransferConfig(nacks=False), rng=5
        )
        loads_after = np.bincount(a, weights=task_loads, minlength=3)
        assert loads_after[2] > gossip.average_load
        assert stats.nacked == 0

    def test_nacked_tasks_stay_with_sender(self):
        assignment, task_loads, gossip = two_senders_one_recipient()
        a = assignment.copy()
        stats = transfer_stage(a, task_loads, gossip, TransferConfig(nacks=True), rng=5)
        # Conservation: every task accounted for, moves consistent.
        replay = assignment.copy()
        for task, src, dst in stats.moves:
            replay[task] = dst
        np.testing.assert_array_equal(replay, a)

    def test_nack_corrects_sender_knowledge(self):
        # After a nack the sender knows the recipient's true load, so in
        # snapshot view it should not keep hammering the same full rank:
        # nack count stays bounded by the task count.
        assignment, task_loads, gossip = two_senders_one_recipient()
        a = assignment.copy()
        stats = transfer_stage(
            a,
            task_loads,
            gossip,
            TransferConfig(nacks=True, max_passes=None),
            rng=6,
        )
        assert stats.nacked <= task_loads.size

    def test_strategy_level_nacks(self):
        dist = paper_analysis_scenario(n_tasks=400, n_loaded_ranks=4, n_ranks=32, seed=0)
        with_nacks = TemperedLB(n_trials=1, n_iters=4, nacks=True).rebalance(dist, rng=1)
        without = TemperedLB(n_trials=1, n_iters=4, nacks=False).rebalance(dist, rng=1)
        # Both improve; nacks cannot make the result invalid.
        assert with_nacks.final_imbalance < with_nacks.initial_imbalance
        assert without.final_imbalance < without.initial_imbalance


class TestLimitedInformationGossip:
    def test_cap_enforced(self):
        loads = np.ones(64)
        loads[:4] = 20.0
        res = run_inform_stage(loads, GossipConfig(fanout=4, rounds=6, max_known=8), rng=0)
        assert res.knowledge.counts().max() <= 8

    def test_trim_lowest_policy(self):
        from repro.core.gossip import _trim_knowledge

        loads = np.array([5.0, 1.0, 3.0, 2.0, 4.0])
        row = np.array([True, True, True, True, True])
        cfg = GossipConfig(max_known=3, trim_policy="lowest")
        _trim_knowledge(row, loads, cfg, np.random.default_rng(0))
        # Keeps the three lowest-loaded ranks: 1, 3, 2.
        np.testing.assert_array_equal(np.flatnonzero(row), [1, 2, 3])

    def test_trim_random_policy_keeps_subset(self):
        from repro.core.gossip import _trim_knowledge

        loads = np.arange(10.0)
        row = np.ones(10, dtype=bool)
        cfg = GossipConfig(max_known=4, trim_policy="random")
        _trim_knowledge(row, loads, cfg, np.random.default_rng(1))
        assert row.sum() == 4

    def test_trim_noop_under_cap(self):
        from repro.core.gossip import _trim_knowledge

        loads = np.array([5.0, 1.0, 3.0])
        row = np.array([True, False, True])
        cfg = GossipConfig(max_known=3)
        _trim_knowledge(row, loads, cfg, np.random.default_rng(0))
        np.testing.assert_array_equal(np.flatnonzero(row), [0, 2])

    def test_trim_policy_validation(self):
        with pytest.raises(ValueError, match="trim_policy"):
            GossipConfig(trim_policy="newest")

    def test_capped_gossip_sends_smaller_messages(self):
        loads = np.ones(128)
        loads[:8] = 30.0
        unlimited = run_inform_stage(loads, GossipConfig(fanout=4, rounds=6), rng=2)
        capped = run_inform_stage(
            loads, GossipConfig(fanout=4, rounds=6, max_known=8), rng=2
        )
        assert capped.bytes_sent < unlimited.bytes_sent

    def test_capped_gossip_still_enables_balancing(self):
        dist = paper_analysis_scenario(n_tasks=500, n_loaded_ranks=4, n_ranks=64, seed=3)
        lb = TemperedLB(n_trials=1, n_iters=6, max_known=8)
        result = lb.rebalance(dist, rng=4)
        assert result.final_imbalance < 0.3 * result.initial_imbalance

    def test_per_message_mode_respects_cap(self):
        loads = np.ones(16)
        loads[:2] = 10.0
        res = run_inform_stage(
            loads,
            GossipConfig(fanout=2, rounds=3, mode="per_message", max_known=3),
            rng=5,
        )
        assert res.knowledge.counts().max() <= 3

    def test_invalid_cap(self):
        with pytest.raises(ValueError):
            GossipConfig(max_known=0)


class TestNodeAwareGossip:
    def loads(self, n=32):
        loads = np.ones(n)
        loads[:4] = 10.0
        return loads

    def test_flat_topology_has_zero_inter_node_accounting_baseline(self):
        res = run_inform_stage(self.loads(), GossipConfig(), rng=0)
        # Flat topology: every rank is its own node, so every message is
        # inter-node by definition.
        assert res.inter_node_messages == res.n_messages

    def test_bias_reduces_inter_node_traffic(self):
        flat = run_inform_stage(
            self.loads(), GossipConfig(ranks_per_node=4, intra_node_bias=0.0), rng=1
        )
        biased = run_inform_stage(
            self.loads(), GossipConfig(ranks_per_node=4, intra_node_bias=0.9), rng=1
        )
        assert biased.inter_node_messages / max(biased.n_messages, 1) < (
            flat.inter_node_messages / max(flat.n_messages, 1)
        )

    def test_bias_one_still_reaches_other_nodes(self):
        # Even with maximal bias, forwarding falls back to the global
        # pool when no unknown same-node candidate remains, so knowledge
        # still crosses nodes (slower).
        res = run_inform_stage(
            self.loads(),
            GossipConfig(ranks_per_node=4, intra_node_bias=1.0, rounds=12, fanout=4),
            rng=2,
        )
        assert res.coverage() > 0.3

    def test_validation(self):
        with pytest.raises(ValueError, match="intra_node_bias"):
            GossipConfig(intra_node_bias=1.5)
        with pytest.raises(ValueError):
            GossipConfig(ranks_per_node=0)
