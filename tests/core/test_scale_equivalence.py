"""The scaling stack is bit-identical to the reference stack.

``knowledge="sparse"`` gossip + ``engine="soa"`` transfer exist purely
for memory and wall-time at high rank counts — every decision they make
must be the one the packed-bitmap + list-based stack makes. These tests
drive both stacks through full inform+transfer episodes over 20 seeds
at 512 and 4,096 ranks and require exact equality of the knowledge
matrix, the per-round sender/message accounting, the transferred
assignment and the stats counters — plus the final RNG state, so the
stacks consume the identical stream and stay interchangeable
mid-episode.
"""

import dataclasses

import numpy as np
import pytest

from repro.core.gossip import (
    SPARSE_AUTO_MIN_RANKS,
    SPARSE_AUTO_MIN_RANKS_FAST,
    GossipConfig,
    run_inform_stage,
)
from repro.core.tempered import TemperedConfig
from repro.core.transfer import TransferConfig, transfer_stage

SEEDS = range(20)


def _scenario(n_ranks, n_tasks, seed):
    rng = np.random.default_rng(seed)
    task_loads = rng.gamma(3.0, 0.3, size=n_tasks)
    # All load on a hot prefix: plenty of overloaded senders and a wide
    # underloaded gossip population.
    assignment = rng.integers(0, max(2, n_ranks // 32), size=n_tasks)
    loads = np.bincount(assignment, weights=task_loads, minlength=n_ranks)
    return assignment, task_loads, loads


def _run_stack(knowledge, engine, loads, assignment, task_loads, gossip_cfg, seed):
    gossip = run_inform_stage(
        loads,
        dataclasses.replace(gossip_cfg, knowledge=knowledge),
        np.random.default_rng(seed + 1),
    )
    moved = np.array(assignment, copy=True)
    rng = np.random.default_rng(seed + 2)
    stats = transfer_stage(
        moved, task_loads, gossip, TransferConfig(engine=engine), rng
    )
    return gossip, moved, stats, rng.bit_generator.state


def _assert_episodes_equal(ref, new):
    g_ref, a_ref, s_ref, state_ref = ref
    g_new, a_new, s_new, state_new = new
    np.testing.assert_array_equal(g_new.knowledge.rows, g_ref.knowledge.rows)
    assert g_new.n_messages == g_ref.n_messages
    assert g_new.bytes_sent == g_ref.bytes_sent
    assert g_new.per_round_senders == g_ref.per_round_senders
    assert g_new.per_round_messages == g_ref.per_round_messages
    assert g_new.rounds_run == g_ref.rounds_run
    np.testing.assert_array_equal(a_new, a_ref)
    assert dataclasses.asdict(s_new) == dataclasses.asdict(s_ref)
    assert state_new == state_ref


class TestStackEquivalence:
    @pytest.mark.parametrize(
        "n_ranks,n_tasks,gossip_cfg",
        [
            (512, 1_500, GossipConfig(fanout=3, rounds=4)),
            (512, 1_500, GossipConfig(fanout=3, rounds=4, max_known=48)),
            (
                512,
                1_500,
                GossipConfig(
                    fanout=3, rounds=4, max_known=48, trim_policy="lowest"
                ),
            ),
            (
                4_096,
                6_000,
                GossipConfig(
                    fanout=3, rounds=3, max_known=64, trim_policy="lowest"
                ),
            ),
            (4_096, 6_000, GossipConfig(fanout=3, rounds=3, max_known=64)),
        ],
        ids=["512-uncapped", "512-random", "512-lowest", "4k-lowest", "4k-random"],
    )
    def test_sparse_soa_equals_packed_lists_20_seeds(
        self, n_ranks, n_tasks, gossip_cfg
    ):
        for seed in SEEDS:
            assignment, task_loads, loads = _scenario(n_ranks, n_tasks, seed)
            ref = _run_stack(
                "packed", "lists", loads, assignment, task_loads, gossip_cfg, seed
            )
            new = _run_stack(
                "sparse", "soa", loads, assignment, task_loads, gossip_cfg, seed
            )
            _assert_episodes_equal(ref, new)


class TestKnowledgeKnob:
    def test_sparse_requires_batched_coalesced(self):
        with pytest.raises(ValueError):
            GossipConfig(knowledge="sparse", engine="loop")
        with pytest.raises(ValueError):
            GossipConfig(knowledge="sparse", mode="per_message")

    def test_sparse_rejects_bias_and_faults(self):
        from repro.sim.faults import FaultConfig

        with pytest.raises(ValueError):
            GossipConfig(knowledge="sparse", ranks_per_node=8, intra_node_bias=0.5)
        with pytest.raises(ValueError):
            GossipConfig(knowledge="sparse", faults=FaultConfig(loss_rate=0.1))

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            GossipConfig(knowledge="csr")

    def test_auto_resolution_rule(self):
        # The threshold follows the measured packed/sparse crossover of
        # the selected driver: the fused driver ("auto"/"numba") wins
        # from the 8k rung, the Python reference only from 32k.
        for kernel, threshold in (
            ("auto", SPARSE_AUTO_MIN_RANKS_FAST),
            ("numba", SPARSE_AUTO_MIN_RANKS_FAST),
            ("python", SPARSE_AUTO_MIN_RANKS),
        ):
            capped = GossipConfig(max_known=512, kernel=kernel)
            assert capped.resolve_knowledge(threshold) == "sparse"
            assert capped.resolve_knowledge(threshold - 1) == "packed"
        # No cap -> shards are O(P^2) too; auto stays packed.
        assert GossipConfig().resolve_knowledge(SPARSE_AUTO_MIN_RANKS) == "packed"
        # Packed-only features keep auto on packed at any rank count.
        biased = GossipConfig(max_known=512, ranks_per_node=8, intra_node_bias=0.5)
        assert biased.resolve_knowledge(SPARSE_AUTO_MIN_RANKS) == "packed"
        # Explicit selection wins regardless of rank count.
        assert GossipConfig(knowledge="sparse").resolve_knowledge(8) == "sparse"
        assert (
            GossipConfig(knowledge="packed").resolve_knowledge(SPARSE_AUTO_MIN_RANKS)
            == "packed"
        )

    def test_explicit_sparse_matches_packed_at_tiny_scale(self):
        # The backend knob is a pure representation choice even far
        # below the auto threshold.
        loads = np.array([9.0, 0.5, 0.25, 0.25, 4.0, 0.0, 1.0, 0.0])
        results = {}
        for backend in ("packed", "sparse"):
            results[backend] = run_inform_stage(
                loads,
                GossipConfig(fanout=2, rounds=3, knowledge=backend),
                np.random.default_rng(5),
            )
        np.testing.assert_array_equal(
            results["sparse"].knowledge.rows, results["packed"].knowledge.rows
        )
        assert results["sparse"].n_messages == results["packed"].n_messages


class TestTemperedPassthrough:
    def test_knobs_reach_stage_configs(self):
        config = TemperedConfig(
            knowledge="sparse",
            max_known=128,
            transfer_engine="lists",
            transfer_kernel="numba",
        )
        assert config.gossip_config().knowledge == "sparse"
        assert config.gossip_config().max_known == 128
        assert config.transfer_config().engine == "lists"
        assert config.transfer_config().kernel == "numba"

    def test_defaults_are_auto_soa_python(self):
        config = TemperedConfig()
        assert config.gossip_config().knowledge == "auto"
        assert config.transfer_config().engine == "soa"
        assert config.transfer_config().kernel == "python"

    def test_invalid_knowledge_rejected_at_construction(self):
        with pytest.raises(ValueError):
            TemperedConfig(knowledge="bitset")
        with pytest.raises(ValueError):
            TemperedConfig(transfer_engine="dataframe")
