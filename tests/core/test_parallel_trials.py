"""Seeded equivalence of parallel vs. serial refinement trials.

With ``n_workers`` set, each trial runs on its own spawned RNG stream,
so the refined assignment, the iteration records and every recorded
statistic must be bit-identical for *any* worker count >= 1. The legacy
``n_workers=None`` path shares one stream across trials and must stay
deterministic under a fixed seed.
"""

import numpy as np
import pytest

from repro.core.refinement import iterative_refinement
from repro.obs import StatsRegistry
from repro.util.parallel import spawn_streams
from repro.workloads.synthetic import paper_analysis_scenario


def make_dist(seed=0):
    return paper_analysis_scenario(
        n_tasks=400, n_loaded_ranks=4, n_ranks=32, seed=seed
    )


def run(dist, n_workers, seed=7, registry=None):
    return iterative_refinement(
        dist,
        n_trials=4,
        n_iters=3,
        rng=np.random.default_rng(seed),
        registry=registry,
        n_workers=n_workers,
    )


def assert_results_identical(a, b):
    assert np.array_equal(a.best_assignment, b.best_assignment)
    assert a.best_imbalance == b.best_imbalance
    assert a.total_gossip_messages == b.total_gossip_messages
    assert a.total_gossip_bytes == b.total_gossip_bytes
    assert len(a.records) == len(b.records)
    for ra, rb in zip(a.records, b.records):
        assert ra == rb


class TestParallelEquivalence:
    @pytest.mark.parametrize("workers", [2, 3, 8])
    def test_any_worker_count_matches_one_worker(self, workers):
        dist = make_dist()
        reference = run(dist, n_workers=1)
        parallel = run(dist, n_workers=workers)
        assert_results_identical(reference, parallel)

    @pytest.mark.parametrize("workers", [2, 4])
    def test_registries_identical_across_worker_counts(self, workers):
        dist = make_dist()
        reg_serial = StatsRegistry()
        reg_parallel = StatsRegistry()
        a = run(dist, n_workers=1, registry=reg_serial)
        b = run(dist, n_workers=workers, registry=reg_parallel)
        assert_results_identical(a, b)
        assert reg_serial.counters == reg_parallel.counters
        assert reg_serial.series.keys() == reg_parallel.series.keys()
        # Series rows merge in trial order, so they match exactly.
        assert reg_serial.series["lb.iteration"] == reg_parallel.series["lb.iteration"]

    def test_parallel_improves_or_equals_initial(self):
        dist = make_dist()
        result = run(dist, n_workers=4)
        assert result.best_imbalance <= result.initial_imbalance

    def test_instrumentation_does_not_change_result(self):
        dist = make_dist()
        plain = run(dist, n_workers=2)
        instrumented = run(dist, n_workers=2, registry=StatsRegistry())
        assert_results_identical(plain, instrumented)

    def test_wall_timers_recorded(self):
        dist = make_dist()
        registry = StatsRegistry()
        run(dist, n_workers=2, registry=registry)
        for timer in ("wall.inform", "wall.transfer", "wall.refinement"):
            assert registry.timers[timer] > 0.0

    def test_legacy_serial_path_deterministic(self):
        dist = make_dist()
        a = run(dist, n_workers=None)
        b = run(dist, n_workers=None)
        assert_results_identical(a, b)

    def test_legacy_serial_differs_from_spawned_streams(self):
        # Not a guarantee (they could coincide), but at this scale the
        # shared-stream walk and the spawned-stream walk diverge, which
        # is exactly why n_workers=None must stay the default.
        dist = make_dist()
        legacy = run(dist, n_workers=None)
        spawned = run(dist, n_workers=1)
        assert legacy.records != spawned.records

    def test_rejects_nonpositive_workers(self):
        dist = make_dist()
        with pytest.raises(ValueError):
            run(dist, n_workers=0)


class TestSpawnStreams:
    def test_streams_deterministic_and_independent(self):
        a = spawn_streams(np.random.default_rng(3), 4)
        b = spawn_streams(np.random.default_rng(3), 4)
        assert len(a) == len(b) == 4
        draws_a = [s.random(5).tolist() for s in a]
        draws_b = [s.random(5).tolist() for s in b]
        assert draws_a == draws_b
        # Pairwise distinct streams.
        flat = [tuple(d) for d in draws_a]
        assert len(set(flat)) == 4

    def test_spawn_does_not_consume_parent_stream(self):
        rng = np.random.default_rng(11)
        reference = np.random.default_rng(11).random(3)
        spawn_streams(rng, 8)
        assert np.array_equal(rng.random(3), reference)

    def test_empty_spawn(self):
        assert spawn_streams(np.random.default_rng(0), 0) == []
