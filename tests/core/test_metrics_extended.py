"""Unit tests for the extended metrics (sigma, gini, quartiles, volume)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.metrics import (
    gini,
    imbalance,
    load_quartiles,
    migration_volume,
    sigma_imbalance,
)

loads_strategy = st.lists(
    st.floats(min_value=0.0, max_value=1e3, allow_nan=False), min_size=1, max_size=50
)


class TestSigma:
    def test_uniform_is_zero(self):
        assert sigma_imbalance(np.full(8, 3.0)) == pytest.approx(0.0)

    def test_known_value(self):
        # loads [0, 2]: mean 1, std 1 -> sigma = 1
        assert sigma_imbalance(np.array([0.0, 2.0])) == pytest.approx(1.0)

    def test_empty_and_zero(self):
        assert sigma_imbalance(np.array([])) == 0.0
        assert sigma_imbalance(np.zeros(4)) == 0.0


class TestGini:
    def test_even_is_zero(self):
        assert gini(np.full(10, 2.0)) == pytest.approx(0.0)

    def test_all_on_one(self):
        g = gini(np.array([10.0, 0.0, 0.0, 0.0, 0.0]))
        assert g == pytest.approx(0.8)  # (n-1)/n

    def test_scale_invariant(self):
        loads = np.array([1.0, 2.0, 5.0, 0.5])
        assert gini(loads) == pytest.approx(gini(loads * 37.0))

    @given(loads=loads_strategy)
    @settings(max_examples=50)
    def test_bounds(self, loads):
        g = gini(np.asarray(loads))
        assert -1e-9 <= g < 1.0

    def test_empty(self):
        assert gini(np.array([])) == 0.0


class TestQuartiles:
    def test_ordering(self):
        q1, q2, q3 = load_quartiles(np.arange(100.0))
        assert q1 <= q2 <= q3

    def test_constant(self):
        assert load_quartiles(np.full(5, 4.0)) == (4.0, 4.0, 4.0)

    def test_empty(self):
        assert load_quartiles(np.array([])) == (0.0, 0.0, 0.0)


class TestMigrationVolume:
    def test_counts_only_moved(self):
        loads = np.array([1.0, 2.0, 3.0])
        before = np.array([0, 0, 0])
        after = np.array([0, 1, 1])
        assert migration_volume(loads, before, after) == 5.0

    def test_fixed_bytes(self):
        loads = np.array([1.0, 2.0])
        vol = migration_volume(
            loads, np.array([0, 0]), np.array([1, 1]), bytes_per_unit_load=10, fixed_bytes=100
        )
        assert vol == 200 + 30

    def test_no_moves(self):
        loads = np.array([1.0])
        assert migration_volume(loads, np.array([0]), np.array([0])) == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError, match="align"):
            migration_volume(np.ones(2), np.zeros(2), np.zeros(3))


class TestCrossMetricConsistency:
    @given(loads=loads_strategy)
    @settings(max_examples=50)
    def test_more_concentrated_implies_higher_everything(self, loads):
        """Concentrating all load on one rank maximizes all three metrics
        relative to the original distribution."""
        arr = np.asarray(loads)
        concentrated = np.zeros_like(arr)
        concentrated[0] = arr.sum()
        assert imbalance(concentrated) >= imbalance(arr) - 1e-9
        assert gini(concentrated) >= gini(arr) - 1e-9
        assert sigma_imbalance(concentrated) >= sigma_imbalance(arr) - 1e-9
