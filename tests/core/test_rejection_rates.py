"""Counter-backed regression tests for the paper's Table 1/Table 2 semantics.

Table 1 (§ V-B): under the original GrapevineLB criterion, the
transfer-rejection rate collapses to ~99-100% after the first
iteration — the criterion stalls because it only accepts transfers that
keep the recipient below the average, which is almost never satisfiable
once the first wave of transfers lands. Table 2: the relaxed criterion
keeps accepting transfers and drives imbalance near zero.

The paper's tables were produced with the authors' LBAF analysis tool;
``TemperedConfig.lbaf_variant()`` reproduces those semantics (shared
live view, per-rank retries, cascaded processing). All assertions read
the per-iteration telemetry recorded by a ``StatsRegistry`` — the whole
point of the observability layer — under fixed seeds.
"""

import numpy as np
import pytest

from repro import StatsRegistry, TemperedConfig, TemperedLB
from repro.core.cmf import CMF_ORIGINAL
from repro.core.criteria import CRITERION_ORIGINAL
from repro.core.ordering import ORDER_ARBITRARY
from repro.workloads import paper_analysis_scenario

SEED = 7
N_ITERS = 6


def _scenario():
    # A scaled-down § V-B scenario (same shape: all load on a sliver of
    # ranks) keeps the test fast while preserving the criterion dynamics.
    return paper_analysis_scenario(n_tasks=2500, n_loaded_ranks=8, n_ranks=512, seed=3)


def _run(config):
    registry = StatsRegistry()
    lb = TemperedLB(config).instrument(registry)
    result = lb.rebalance(_scenario(), rng=np.random.default_rng(SEED))
    return result, registry.series_rows("lb.iteration"), registry


def _original_config():
    return TemperedConfig(
        n_trials=1,
        n_iters=N_ITERS,
        criterion=CRITERION_ORIGINAL,
        cmf=CMF_ORIGINAL,
        recompute_cmf=False,
        ordering=ORDER_ARBITRARY,
    ).lbaf_variant()


def _relaxed_config():
    return TemperedConfig(n_trials=1, n_iters=N_ITERS).lbaf_variant()


class TestTable1OriginalCriterionStalls:
    def test_rejection_rate_exceeds_95_percent_after_iteration_1(self):
        _, rows, _ = _run(_original_config())
        assert len(rows) == N_ITERS
        for row in rows[1:]:
            assert row["rejection_rate"] >= 0.95, row
        # Iteration 1 is the only one with meaningful acceptance.
        assert rows[0]["accepted"] > 100 * max(
            1, max(row["accepted"] for row in rows[1:])
        )

    def test_imbalance_stalls_far_from_balanced(self):
        result, rows, _ = _run(_original_config())
        assert result.final_imbalance > 10.0
        # After the first iteration the proposal barely improves again:
        # the best imbalance over iterations 2..n is within 10% of it1's.
        assert min(row["imbalance"] for row in rows[1:]) > 0.9 * rows[0]["imbalance"]

    def test_counters_match_series(self):
        _, rows, registry = _run(_original_config())
        assert registry.counter("transfer.accepted") == sum(r["accepted"] for r in rows)
        assert registry.counter("transfer.rejected") == sum(r["rejected"] for r in rows)


class TestTable2RelaxedCriterionRecovers:
    def test_relaxed_accepts_substantially_more(self):
        _, original_rows, _ = _run(_original_config())
        _, relaxed_rows, _ = _run(_relaxed_config())
        accepted_original = sum(r["accepted"] for r in original_rows)
        accepted_relaxed = sum(r["accepted"] for r in relaxed_rows)
        assert accepted_relaxed > 1.2 * accepted_original
        # And specifically after iteration 1, where the original stalls:
        late_original = sum(r["accepted"] for r in original_rows[1:])
        late_relaxed = sum(r["accepted"] for r in relaxed_rows[1:])
        assert late_relaxed > 5 * max(late_original, 1)

    def test_relaxed_reaches_near_balance_where_original_cannot(self):
        original, _, _ = _run(_original_config())
        relaxed, _, _ = _run(_relaxed_config())
        assert relaxed.final_imbalance < 0.5
        assert original.final_imbalance > 20 * relaxed.final_imbalance

    def test_deterministic_under_fixed_seed(self):
        first, first_rows, _ = _run(_relaxed_config())
        second, second_rows, _ = _run(_relaxed_config())
        np.testing.assert_array_equal(first.assignment, second.assignment)
        assert first_rows == second_rows


class TestDefaultDistributedSemantics:
    """The snapshot view (real distributed system) also shows the trend:
    the original criterion's acceptance decays toward zero while the
    relaxed criterion keeps improving the proposal."""

    def test_original_acceptance_decays(self):
        config = TemperedConfig(
            n_trials=1,
            n_iters=N_ITERS,
            criterion=CRITERION_ORIGINAL,
            cmf=CMF_ORIGINAL,
            recompute_cmf=False,
            ordering=ORDER_ARBITRARY,
        )
        _, rows, _ = _run(config)
        assert rows[-1]["rejection_rate"] > 0.9
        assert rows[-1]["accepted"] < 0.02 * rows[0]["accepted"]

    def test_relaxed_final_imbalance_beats_original(self):
        relaxed, _, _ = _run(TemperedConfig(n_trials=1, n_iters=N_ITERS))
        original, _, _ = _run(
            TemperedConfig(
                n_trials=1,
                n_iters=N_ITERS,
                criterion=CRITERION_ORIGINAL,
                cmf=CMF_ORIGINAL,
                recompute_cmf=False,
                ordering=ORDER_ARBITRARY,
            )
        )
        assert relaxed.final_imbalance < original.final_imbalance
