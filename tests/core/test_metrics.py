"""Unit tests for repro.core.metrics."""

import numpy as np
import pytest

from repro.core.metrics import (
    LoadStatistics,
    imbalance,
    load_statistics,
    lower_bound_max_load,
    objective,
)


class TestImbalance:
    def test_balanced(self):
        assert imbalance(np.array([2.0, 2.0, 2.0])) == pytest.approx(0.0)

    def test_known_value(self):
        assert imbalance(np.array([4.0, 0.0])) == pytest.approx(1.0)

    def test_empty_and_zero(self):
        assert imbalance(np.array([])) == 0.0
        assert imbalance(np.zeros(5)) == 0.0

    def test_accepts_lists(self):
        assert imbalance([1.0, 3.0]) == pytest.approx(0.5)


class TestObjective:
    def test_f_equals_imbalance_minus_h_plus_one(self):
        loads = np.array([1.0, 2.0, 3.0])
        h = 1.3
        assert objective(loads, h) == pytest.approx(imbalance(loads) - h + 1.0)

    def test_balanced_at_default_h_is_zero(self):
        assert objective(np.array([1.0, 1.0])) == pytest.approx(0.0)

    def test_empty(self):
        assert objective(np.array([]), h=2.0) == pytest.approx(-2.0)


class TestLowerBound:
    def test_average_dominates(self):
        # ave = 2.0, heaviest task 0.5 -> bound is the average
        assert lower_bound_max_load(np.array([1.0, 3.0]), np.array([0.5])) == 2.0

    def test_heaviest_task_dominates(self):
        assert lower_bound_max_load(np.array([1.0, 1.0]), np.array([5.0, 0.1])) == 5.0

    def test_empty_tasks(self):
        assert lower_bound_max_load(np.array([2.0, 4.0]), np.array([])) == 3.0


class TestLoadStatistics:
    def test_fields(self):
        s = load_statistics(np.array([1.0, 2.0, 3.0]))
        assert s.n_ranks == 3
        assert s.total == 6.0
        assert s.average == 2.0
        assert s.maximum == 3.0
        assert s.minimum == 1.0
        assert s.imbalance == pytest.approx(0.5)
        assert s.stddev == pytest.approx(np.std([1.0, 2.0, 3.0]))

    def test_empty(self):
        s = load_statistics(np.array([]))
        assert s.n_ranks == 0
        assert s.total == 0.0

    def test_negative_rank_count_rejected(self):
        with pytest.raises(ValueError):
            LoadStatistics(-1, 0, 0, 0, 0, 0, 0)
