"""The trial executor layer: backends, ordering, and refinement identity.

The contract under test: a ``TrialExecutor`` maps a pure function over
payloads and returns results in payload order under every backend, so
``iterative_refinement`` produces bit-identical results — assignment,
records, and registry — whether trials run serially, on threads, or on
worker processes. Timer semantics ride along: stage walls are
cumulative per trial, ``wall.refinement`` is the true span.
"""

import multiprocessing
import time

import numpy as np
import pytest

from repro.core.refinement import iterative_refinement
from repro.obs import StatsRegistry
from repro.util.parallel import (
    EXECUTOR_PROCESS,
    EXECUTOR_SERIAL,
    EXECUTOR_THREAD,
    TrialExecutor,
    resolve_backend,
)
from repro.workloads.synthetic import paper_analysis_scenario

BACKENDS = (EXECUTOR_SERIAL, EXECUTOR_THREAD, EXECUTOR_PROCESS)


def scaled_square(shared, payload):
    # Module-level so the process backend can pickle it by name.
    return shared["scale"] * payload * payload


def failing(shared, payload):
    raise RuntimeError(f"trial {payload} exploded")


class TestResolveBackend:
    def test_one_worker_degrades_to_serial(self):
        for requested in (None, "auto", "thread", "process"):
            assert resolve_backend(requested, 1, 8) == EXECUTOR_SERIAL

    def test_one_payload_degrades_to_serial(self):
        assert resolve_backend("process", 4, 1) == EXECUTOR_SERIAL

    def test_explicit_backends_pass_through(self):
        assert resolve_backend("thread", 4, 8) == EXECUTOR_THREAD
        assert resolve_backend("process", 4, 8) == EXECUTOR_PROCESS

    def test_auto_prefers_process_where_fork_exists(self, monkeypatch):
        import repro.util.parallel as parallel

        monkeypatch.setattr(parallel, "effective_cpu_count", lambda: 4)
        resolved = resolve_backend("auto", 4, 8)
        if "fork" in multiprocessing.get_all_start_methods():
            assert resolved == EXECUTOR_PROCESS
        else:  # pragma: no cover - non-POSIX
            assert resolved == EXECUTOR_THREAD

    def test_auto_declines_pool_on_single_core(self, monkeypatch):
        # Oversubscribing one core with a pool is strictly overhead (the
        # very regression this layer fixes), so auto stays serial there;
        # explicit backends remain honored for benchmarking.
        import repro.util.parallel as parallel

        monkeypatch.setattr(parallel, "effective_cpu_count", lambda: 1)
        assert resolve_backend("auto", 4, 8) == EXECUTOR_SERIAL
        assert resolve_backend("process", 4, 8) == EXECUTOR_PROCESS

    def test_none_means_auto(self):
        assert resolve_backend(None, 4, 8) == resolve_backend("auto", 4, 8)

    def test_invalid_backend_rejected(self):
        with pytest.raises(ValueError):
            resolve_backend("gpu", 4, 8)
        with pytest.raises(ValueError):
            TrialExecutor("gpu", 2)

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ValueError):
            TrialExecutor("serial", 0)


class TestExecutorMap:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_results_in_payload_order(self, backend):
        pool = TrialExecutor(backend, 3)
        out = pool.map(scaled_square, list(range(10)), shared={"scale": 2})
        assert out == [2 * i * i for i in range(10)]

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_shared_state_reaches_workers(self, backend):
        pool = TrialExecutor(backend, 2)
        assert pool.map(scaled_square, [3], shared={"scale": 5}) == [45]

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_worker_errors_propagate(self, backend):
        pool = TrialExecutor(backend, 2)
        with pytest.raises(RuntimeError, match="exploded"):
            pool.map(failing, [1, 2], shared=None)


def make_dist(seed=0):
    return paper_analysis_scenario(n_tasks=400, n_loaded_ranks=4, n_ranks=32, seed=seed)


def run(dist, executor, workers, registry=None, seed=7):
    return iterative_refinement(
        dist,
        n_trials=4,
        n_iters=3,
        rng=np.random.default_rng(seed),
        registry=registry,
        n_workers=workers,
        executor=executor,
    )


class TestBackendEquivalence:
    """Every backend must reproduce the one-worker reference exactly."""

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("workers", [2, 4])
    def test_assignment_and_records_identical(self, backend, workers):
        dist = make_dist()
        reference = run(dist, None, 1)
        result = run(dist, backend, workers)
        assert np.array_equal(result.best_assignment, reference.best_assignment)
        assert result.best_imbalance == reference.best_imbalance
        assert result.records == reference.records

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_registries_identical(self, backend):
        dist = make_dist()
        reg_ref, reg_backend = StatsRegistry(), StatsRegistry()
        run(dist, None, 1, registry=reg_ref)
        run(dist, backend, 2, registry=reg_backend)
        assert reg_ref.counters == reg_backend.counters
        assert reg_ref.series["lb.iteration"] == reg_backend.series["lb.iteration"]
        assert reg_ref.events == reg_backend.events

    def test_executor_alone_implies_one_worker_semantics(self):
        dist = make_dist()
        reference = run(dist, None, 1)
        result = run(dist, "process", None)  # spawned streams, 1 worker
        assert np.array_equal(result.best_assignment, reference.best_assignment)
        assert result.records == reference.records


class TestTimerSemantics:
    """Stage timers accumulate per trial; wall.refinement is the span."""

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_stage_timers_present_and_bounded(self, backend):
        dist = make_dist()
        registry = StatsRegistry()
        start = time.perf_counter()
        run(dist, backend, 2, registry=registry)
        elapsed = time.perf_counter() - start
        stage_sum = registry.timers["wall.inform"] + registry.timers["wall.transfer"]
        wall = registry.timers["wall.refinement"]
        assert stage_sum > 0.0
        # The span covers dispatch + merge, so it never exceeds the
        # caller's measured elapsed time (small slack for clock reads).
        assert wall <= elapsed + 1e-3
        # Cumulative concurrent stage time is bounded by workers x span.
        assert stage_sum <= 2 * wall + 1e-3

    def test_concurrent_stage_time_exceeds_span(self):
        # Per-trial stage timers measure *elapsed* time inside each
        # worker, descheduled slices included — so with >= 2 workers
        # whose trials overlap in time, their sum must cover (and
        # typically exceed) the true wall.refinement span. This holds
        # on any core count: parallel cores and time-sharing both
        # inflate cumulative stage time past the span. Enough work per
        # trial that pool startup cannot mask the overlap.
        dist = paper_analysis_scenario(
            n_tasks=2000, n_loaded_ranks=8, n_ranks=256, seed=0
        )
        registry = StatsRegistry()
        run(dist, EXECUTOR_PROCESS, 2, registry=registry)
        stage_sum = registry.timers["wall.inform"] + registry.timers["wall.transfer"]
        assert stage_sum >= registry.timers["wall.refinement"]
