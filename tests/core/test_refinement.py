"""Unit tests for repro.core.refinement (Algorithm 3)."""

import numpy as np
import pytest

from repro.core.distribution import Distribution
from repro.core.gossip import GossipConfig
from repro.core.refinement import iterative_refinement
from repro.core.transfer import TransferConfig
from repro.workloads import paper_analysis_scenario


def small_scenario(seed=0):
    return paper_analysis_scenario(
        n_tasks=300, n_loaded_ranks=4, n_ranks=32, seed=seed
    )


class TestRefinement:
    def test_input_not_mutated(self):
        dist = small_scenario()
        before = dist.assignment.copy()
        iterative_refinement(dist, n_trials=2, n_iters=3, rng=1)
        np.testing.assert_array_equal(dist.assignment, before)

    def test_best_no_worse_than_initial(self):
        dist = small_scenario()
        res = iterative_refinement(dist, n_trials=1, n_iters=2, rng=1)
        assert res.best_imbalance <= res.initial_imbalance

    def test_best_matches_recorded_minimum(self):
        dist = small_scenario()
        res = iterative_refinement(dist, n_trials=2, n_iters=4, rng=2)
        recorded_min = min(r.imbalance for r in res.records)
        assert res.best_imbalance == pytest.approx(
            min(recorded_min, res.initial_imbalance)
        )

    def test_best_assignment_achieves_best_imbalance(self):
        dist = small_scenario()
        res = iterative_refinement(dist, n_trials=2, n_iters=4, rng=3)
        loads = np.bincount(
            res.best_assignment, weights=dist.task_loads, minlength=dist.n_ranks
        )
        got = loads.max() / loads.mean() - 1.0
        assert got == pytest.approx(res.best_imbalance)

    def test_record_count(self):
        dist = small_scenario()
        res = iterative_refinement(dist, n_trials=3, n_iters=5, rng=0)
        assert len(res.records) == 15
        assert len(res.trial_records(2)) == 5
        assert [r.iteration for r in res.trial_records(1)] == [1, 2, 3, 4, 5]

    def test_trials_reset_from_original(self):
        # Every trial's iteration-1 starts from the same state, so with
        # the same rng state they *could* differ, but transfers counted in
        # iteration 1 of each trial must be bounded by the original task
        # placement, not the previous trial's end state.
        dist = small_scenario()
        res = iterative_refinement(
            dist,
            n_trials=2,
            n_iters=1,
            transfer=TransferConfig(max_passes=1),
            rng=4,
        )
        first = res.trial_records(1)[0]
        second = res.trial_records(2)[0]
        # Both trials shed a similar amount from the same initial state;
        # if trial 2 continued from trial 1's balanced state it would
        # transfer ~0 tasks.
        assert second.transfers > 0.25 * first.transfers

    def test_conservation(self):
        dist = small_scenario()
        res = iterative_refinement(dist, n_trials=2, n_iters=3, rng=5)
        loads = np.bincount(
            res.best_assignment, weights=dist.task_loads, minlength=dist.n_ranks
        )
        assert loads.sum() == pytest.approx(dist.total_load)

    def test_gossip_accounting_accumulates(self):
        dist = small_scenario()
        res = iterative_refinement(
            dist, n_trials=2, n_iters=2, gossip=GossipConfig(fanout=2, rounds=2), rng=6
        )
        assert res.total_gossip_messages == sum(r.gossip_messages for r in res.records)
        assert res.total_gossip_bytes > 0

    def test_invalid_counts_rejected(self):
        dist = small_scenario()
        with pytest.raises(ValueError):
            iterative_refinement(dist, n_trials=0)
        with pytest.raises(ValueError):
            iterative_refinement(dist, n_iters=0)

    def test_deterministic_given_seed(self):
        dist = small_scenario()
        a = iterative_refinement(dist, n_trials=2, n_iters=3, rng=42)
        b = iterative_refinement(dist, n_trials=2, n_iters=3, rng=42)
        np.testing.assert_array_equal(a.best_assignment, b.best_assignment)
        assert [r.transfers for r in a.records] == [r.transfers for r in b.records]


class TestBalancedInput:
    def test_already_balanced_is_stable(self):
        dist = Distribution(np.ones(16), np.repeat(np.arange(4), 4), n_ranks=4)
        res = iterative_refinement(dist, n_trials=1, n_iters=2, rng=0)
        assert res.best_imbalance == pytest.approx(0.0)
        np.testing.assert_array_equal(res.best_assignment, dist.assignment)
