"""Unit tests for repro.core.ordering (§ V-E, Algorithms 4-6)."""

import numpy as np
import pytest

from repro.core.ordering import (
    order_arbitrary,
    order_fewest_migrations,
    order_lightest,
    order_load_intensive,
    order_tasks,
)


def setup_tasks(loads):
    """Tasks 0..n-1 with the given loads; returns (ids, global load array)."""
    loads = np.asarray(loads, dtype=float)
    return np.arange(len(loads), dtype=np.int64), loads


class TestArbitrary:
    def test_preserves_input_order(self):
        tasks, loads = setup_tasks([3.0, 1.0, 2.0])
        out = order_arbitrary(tasks, loads, 1.0, 6.0)
        np.testing.assert_array_equal(out, [0, 1, 2])


class TestLoadIntensive:
    def test_descending(self):
        tasks, loads = setup_tasks([3.0, 1.0, 2.0])
        out = order_load_intensive(tasks, loads, 1.0, 6.0)
        np.testing.assert_array_equal(out, [0, 2, 1])

    def test_ties_broken_by_id(self):
        tasks, loads = setup_tasks([2.0, 2.0, 1.0])
        out = order_load_intensive(tasks, loads, 1.0, 5.0)
        np.testing.assert_array_equal(out, [0, 1, 2])

    def test_is_permutation(self):
        rng = np.random.default_rng(0)
        tasks, loads = setup_tasks(rng.random(20))
        out = order_load_intensive(tasks, loads, 1.0, loads.sum())
        assert sorted(out) == list(range(20))


class TestFewestMigrations:
    def test_cutoff_task_first(self):
        # l_ex = 10 - 4 = 6; tasks > 6: [7, 9]; cutoff = 7.
        tasks, loads = setup_tasks([2.0, 7.0, 9.0, 5.0])
        out = order_fewest_migrations(tasks, loads, l_ave=4.0, l_p=10.0)
        assert out[0] == 1  # the task with load 7 leads

    def test_light_group_descending_then_heavy_ascending(self):
        # l_ex = 6; cutoff = 7. Light group (<=7): loads [2, 7, 5]
        # descending -> [7, 5, 2]; heavy group (>7): [9] ascending.
        tasks, loads = setup_tasks([2.0, 7.0, 9.0, 5.0])
        out = order_fewest_migrations(tasks, loads, l_ave=4.0, l_p=10.0)
        np.testing.assert_array_equal(loads[out], [7.0, 5.0, 2.0, 9.0])

    def test_fallback_to_descending_when_no_task_covers_excess(self):
        # l_ex = 8; max task 5 < 8 -> Alg. 5 l.3-4 fallback.
        tasks, loads = setup_tasks([5.0, 2.0, 3.0])
        out = order_fewest_migrations(tasks, loads, l_ave=2.0, l_p=10.0)
        np.testing.assert_array_equal(loads[out], [5.0, 3.0, 2.0])

    def test_empty(self):
        tasks, loads = setup_tasks([])
        assert order_fewest_migrations(tasks, loads, 1.0, 2.0).size == 0

    def test_is_permutation(self):
        rng = np.random.default_rng(1)
        tasks, loads = setup_tasks(rng.random(30) * 4)
        out = order_fewest_migrations(tasks, loads, 1.0, loads.sum())
        assert sorted(out) == list(range(30))


class TestLightest:
    def test_marginal_task_first(self):
        # l_ex = 3. Ascending loads [1, 2, 4, 8]; cumsum [1, 3, 7, 15]
        # first >= 3 at index 1 -> l_marg = 2. Group <= 2 descending: [2, 1];
        # then [4, 8] ascending.
        tasks, loads = setup_tasks([8.0, 1.0, 2.0, 4.0])
        out = order_lightest(tasks, loads, l_ave=12.0, l_p=15.0)
        np.testing.assert_array_equal(loads[out], [2.0, 1.0, 4.0, 8.0])

    def test_excess_exceeds_total(self):
        # cumsum never reaches l_ex -> marginal is the heaviest task:
        # pure descending order.
        tasks, loads = setup_tasks([1.0, 3.0, 2.0])
        out = order_lightest(tasks, loads, l_ave=1.0, l_p=100.0)
        np.testing.assert_array_equal(loads[out], [3.0, 2.0, 1.0])

    def test_not_overloaded_degenerates_to_ascending(self):
        tasks, loads = setup_tasks([3.0, 1.0, 2.0])
        out = order_lightest(tasks, loads, l_ave=10.0, l_p=6.0)
        np.testing.assert_array_equal(loads[out], [1.0, 2.0, 3.0])

    def test_is_permutation(self):
        rng = np.random.default_rng(2)
        tasks, loads = setup_tasks(rng.random(25) * 3)
        out = order_lightest(tasks, loads, 1.0, loads.sum())
        assert sorted(out) == list(range(25))


class TestDispatch:
    def test_all_names(self):
        tasks, loads = setup_tasks([1.0, 2.0])
        for name in ("arbitrary", "load_intensive", "fewest_migrations", "lightest"):
            out = order_tasks(name, tasks, loads, 1.0, 3.0)
            assert sorted(out) == [0, 1]

    def test_unknown_name(self):
        tasks, loads = setup_tasks([1.0])
        with pytest.raises(ValueError, match="ordering"):
            order_tasks("zigzag", tasks, loads, 1.0, 1.0)
