"""Property-based tests (hypothesis) for the paper's theoretical results.

Covers Lemma 1, Lemma 2, the CMF well-formedness conditions, the § V-E
ordering contracts, and the conservation invariants of every strategy.
"""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro import Distribution, GreedyLB, HierLB, TemperedLB
from repro.core.cmf import CMF_MODIFIED, CMF_ORIGINAL, build_cmf, sample_cmf
from repro.core.criteria import original_criterion, relaxed_criterion
from repro.core.gossip import GossipConfig, run_inform_stage
from repro.core.metrics import imbalance, objective
from repro.core.ordering import (
    order_fewest_migrations,
    order_lightest,
    order_load_intensive,
)
from repro.core.transfer import TransferConfig, transfer_stage

positive_loads = st.lists(
    st.floats(min_value=1e-3, max_value=1e3, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=40,
)


# ---------------------------------------------------------------------------
# Lemma 1 / Lemma 2
# ---------------------------------------------------------------------------


@given(
    l_i=st.floats(min_value=0.1, max_value=100),
    l_x_frac=st.floats(min_value=0.0, max_value=0.99),
    load_frac=st.floats(min_value=0.01, max_value=0.999),
)
def test_lemma1_pairwise_max_strictly_decreases(l_i, l_x_frac, load_frac):
    """An accepted relaxed-criterion transfer strictly lowers the pairwise max.

    This is the core inequality of Lemma 1's proof:
    ``max(l_i - l, l_x + l) < l_i`` whenever ``l < l_i - l_x``.
    """
    l_x = l_i * l_x_frac
    load = (l_i - l_x) * load_frac  # guarantees load < l_i - l_x
    assume(load > 0)
    assert relaxed_criterion(l_x, load, l_ave=1.0, l_p=l_i)
    new_max = max(l_i - load, l_x + load)
    assert new_max < l_i


@given(
    l_i=st.floats(min_value=0.1, max_value=100),
    l_x_frac=st.floats(min_value=0.0, max_value=1.0),
    excess=st.floats(min_value=0.0, max_value=50),
)
def test_lemma2_violating_transfer_never_helps(l_i, l_x_frac, excess):
    """Lemma 2: moving a task with load >= l_i - l_x off a maximally
    loaded rank cannot lower the maximum."""
    l_x = l_i * l_x_frac
    load = (l_i - l_x) + excess  # load >= l_i - l_x: criterion violated
    assume(load > 0)
    assert not relaxed_criterion(l_x, load, l_ave=1.0, l_p=l_i)
    new_max_pair = max(l_i - load, l_x + load)
    assert new_max_pair >= l_i - 1e-12


@given(loads=positive_loads, seed=st.integers(min_value=0, max_value=2**31))
@settings(max_examples=60, deadline=None)
def test_lemma1_objective_nonincreasing_through_full_stage(loads, seed):
    """Running a full relaxed-criterion transfer stage (shared view, so
    every acceptance sees true loads) never increases the objective F."""
    task_loads = np.asarray(loads)
    n_ranks = 4
    rng = np.random.default_rng(seed)
    assignment = rng.integers(0, n_ranks, size=task_loads.size)
    before = np.bincount(assignment, weights=task_loads, minlength=n_ranks)
    gossip = run_inform_stage(before, GossipConfig(fanout=2, rounds=3), rng=seed)
    transfer_stage(
        assignment,
        task_loads,
        gossip,
        TransferConfig(view="shared", max_passes=None, cascade=True),
        rng=seed,
    )
    after = np.bincount(assignment, weights=task_loads, minlength=n_ranks)
    assert objective(after) <= objective(before) + 1e-9


# ---------------------------------------------------------------------------
# CMF properties
# ---------------------------------------------------------------------------


@given(
    loads=positive_loads,
    l_ave=st.floats(min_value=1e-2, max_value=1e3),
    variant=st.sampled_from([CMF_ORIGINAL, CMF_MODIFIED]),
)
def test_cmf_well_formed(loads, l_ave, variant):
    cmf = build_cmf(np.asarray(loads), l_ave, variant)
    if cmf is None:
        return
    assert cmf.shape == (len(loads),)
    assert (np.diff(cmf) >= -1e-12).all()
    assert cmf[-1] == 1.0
    assert (cmf >= -1e-12).all()


@given(loads=positive_loads, l_ave=st.floats(min_value=1e-2, max_value=1e3))
def test_modified_cmf_defined_whenever_loads_differ(loads, l_ave):
    """§ V-C: the modified CMF must handle above-average loads; it is only
    degenerate when every known load equals l_s."""
    arr = np.asarray(loads)
    cmf = build_cmf(arr, l_ave, CMF_MODIFIED)
    l_s = max(l_ave, arr.max())
    if np.any(arr < l_s * (1 - 1e-12)):
        assert cmf is not None
    elif arr.max() >= l_s:
        assert cmf is None


@given(
    loads=st.lists(
        st.floats(min_value=0.0, max_value=0.9), min_size=2, max_size=20
    ),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_cmf_sampling_prefers_lighter_ranks(loads, seed):
    """Heavier known load => never a higher selection probability."""
    arr = np.asarray(loads)
    assume(arr.std() > 0)
    cmf = build_cmf(arr, 1.0, CMF_ORIGINAL)
    assume(cmf is not None)
    pmf = np.diff(np.concatenate([[0.0], cmf]))
    lightest = int(np.argmin(arr))
    heaviest = int(np.argmax(arr))
    assert pmf[lightest] >= pmf[heaviest] - 1e-12


# ---------------------------------------------------------------------------
# Ordering contracts
# ---------------------------------------------------------------------------


@given(loads=positive_loads, l_p_scale=st.floats(min_value=1.1, max_value=5.0))
def test_orderings_are_permutations(loads, l_p_scale):
    task_loads = np.asarray(loads)
    tasks = np.arange(task_loads.size, dtype=np.int64)
    l_ave = float(task_loads.sum() / 4)
    l_p = l_ave * l_p_scale
    for fn in (order_load_intensive, order_fewest_migrations, order_lightest):
        out = fn(tasks, task_loads, l_ave, l_p)
        assert sorted(out.tolist()) == tasks.tolist()


@given(loads=positive_loads)
def test_fewest_migrations_leader_resolves_overload_if_possible(loads):
    """Alg. 5: when some task exceeds the excess, the first candidate is
    the lightest such task — a single migration resolving the overload."""
    task_loads = np.asarray(loads)
    tasks = np.arange(task_loads.size, dtype=np.int64)
    l_p = float(task_loads.sum())
    l_ave = l_p / 2.0
    l_ex = l_p - l_ave
    covering = task_loads[task_loads > l_ex]
    assume(covering.size > 0)
    out = order_fewest_migrations(tasks, task_loads, l_ave, l_p)
    assert task_loads[out[0]] == covering.min()


@given(loads=positive_loads)
def test_lightest_prefix_covers_excess(loads):
    """Alg. 6: the tasks ordered before the first ascending-load task
    (the descending group) cumulatively cover the excess when possible."""
    task_loads = np.asarray(loads)
    tasks = np.arange(task_loads.size, dtype=np.int64)
    l_p = float(task_loads.sum())
    l_ave = l_p * 0.6
    l_ex = l_p - l_ave
    out = order_lightest(tasks, task_loads, l_ave, l_p)
    lead = task_loads[out[0]]
    group = task_loads[task_loads <= lead]
    if task_loads.sum() >= l_ex:
        assert group.sum() >= l_ex - 1e-9


# ---------------------------------------------------------------------------
# Strategy conservation invariants
# ---------------------------------------------------------------------------

strategy_factory = st.sampled_from(
    [
        lambda: TemperedLB(n_trials=1, n_iters=2, fanout=2, rounds=3),
        lambda: GreedyLB(),
        lambda: HierLB(branching=2),
    ]
)


@given(
    loads=positive_loads,
    n_ranks=st.integers(min_value=1, max_value=8),
    seed=st.integers(min_value=0, max_value=2**31),
    factory=strategy_factory,
)
@settings(max_examples=60, deadline=None)
def test_strategies_conserve_load_and_never_worsen(loads, n_ranks, seed, factory):
    task_loads = np.asarray(loads)
    rng = np.random.default_rng(seed)
    assignment = rng.integers(0, n_ranks, size=task_loads.size)
    dist = Distribution(task_loads, assignment, n_ranks)
    res = factory().rebalance(dist, rng=seed)
    after = np.bincount(res.assignment, weights=task_loads, minlength=n_ranks)
    assert after.sum() == pytest.approx(dist.total_load)
    assert (res.assignment >= 0).all() and (res.assignment < n_ranks).all()


@given(
    loads=positive_loads,
    seed=st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=40, deadline=None)
def test_tempered_never_returns_worse_than_input(loads, seed):
    """Algorithm 3 keeps the best proposal, so the result can never be
    worse than doing nothing."""
    task_loads = np.asarray(loads)
    rng = np.random.default_rng(seed)
    assignment = rng.integers(0, 4, size=task_loads.size)
    dist = Distribution(task_loads, assignment, 4)
    res = TemperedLB(n_trials=1, n_iters=2, fanout=2, rounds=2).rebalance(dist, rng=seed)
    assert res.final_imbalance <= res.initial_imbalance + 1e-12


@given(loads=positive_loads, seed=st.integers(min_value=0, max_value=2**31))
@settings(max_examples=40, deadline=None)
def test_imbalance_metric_invariants(loads, seed):
    """I >= 0 always; I == 0 iff all rank loads equal the max."""
    arr = np.asarray(loads)
    assert imbalance(arr) >= -1e-12
    if arr.std() == 0:
        assert imbalance(arr) == pytest.approx(0.0)
