"""Unit tests for repro.core.refine and the strategy registry."""

import numpy as np
import pytest

from repro.core.distribution import Distribution
from repro.core.greedy import GreedyLB
from repro.core.refine import GreedyRefineLB, RefineLB
from repro.core.registry import available_strategies, make_balancer
from repro.workloads import paper_analysis_scenario, random_distribution


def mild_imbalance(seed=0):
    """Random placement with some spread: the RefineLB use case."""
    return random_distribution(800, 16, load_cv=1.0, seed=seed)


class TestRefineLB:
    def test_brings_ranks_under_threshold(self):
        dist = mild_imbalance()
        res = RefineLB(threshold=1.1).rebalance(dist)
        loads = np.bincount(res.assignment, weights=dist.task_loads, minlength=16)
        # All ranks within the threshold (feasible for mild imbalance).
        assert loads.max() <= 1.1 * dist.average_load + dist.task_loads.max()
        assert res.final_imbalance < dist.imbalance()

    def test_fewer_migrations_than_greedy(self):
        dist = mild_imbalance(seed=1)
        refine = RefineLB().rebalance(dist)
        greedy = GreedyLB().rebalance(dist)
        assert refine.n_migrations < 0.5 * greedy.n_migrations

    def test_balanced_input_untouched(self):
        dist = Distribution(np.ones(32), np.repeat(np.arange(8), 4), n_ranks=8)
        res = RefineLB().rebalance(dist)
        assert res.n_migrations == 0

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            RefineLB(threshold=0.9)
        with pytest.raises(ValueError):
            RefineLB(threshold=0.0)

    def test_extreme_concentration_still_improves(self):
        dist = paper_analysis_scenario(n_tasks=300, n_loaded_ranks=2, n_ranks=16, seed=2)
        res = RefineLB().rebalance(dist)
        assert res.final_imbalance < 0.2 * dist.imbalance()

    def test_conserves(self):
        dist = mild_imbalance(seed=3)
        res = RefineLB().rebalance(dist)
        loads = np.bincount(res.assignment, weights=dist.task_loads, minlength=16)
        assert loads.sum() == pytest.approx(dist.total_load)


class TestGreedyRefineLB:
    def test_quality_matches_greedy_class(self):
        dist = mild_imbalance(seed=4)
        refine = GreedyRefineLB().rebalance(dist)
        greedy = GreedyLB().rebalance(dist)
        assert refine.final_imbalance < greedy.final_imbalance + 0.1

    def test_migrates_less_than_greedy(self):
        dist = mild_imbalance(seed=5)
        refine = GreedyRefineLB(tolerance=0.1).rebalance(dist)
        greedy = GreedyLB().rebalance(dist)
        assert refine.n_migrations < greedy.n_migrations

    def test_higher_tolerance_fewer_migrations(self):
        dist = mild_imbalance(seed=6)
        tight = GreedyRefineLB(tolerance=0.01).rebalance(dist)
        loose = GreedyRefineLB(tolerance=0.5).rebalance(dist)
        assert loose.n_migrations <= tight.n_migrations

    def test_tolerance_validation(self):
        with pytest.raises(ValueError):
            GreedyRefineLB(tolerance=-0.1)

    def test_conserves(self):
        dist = mild_imbalance(seed=7)
        res = GreedyRefineLB().rebalance(dist)
        loads = np.bincount(res.assignment, weights=dist.task_loads, minlength=16)
        assert loads.sum() == pytest.approx(dist.total_load)


class TestRegistry:
    def test_all_strategies_constructible(self):
        for name in available_strategies():
            lb = make_balancer(name)
            assert lb.name

    def test_kwargs_forwarded(self):
        lb = make_balancer("tempered", n_trials=3, n_iters=2)
        assert lb.config.n_trials == 3

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown strategy"):
            make_balancer("quantum")

    def test_every_strategy_improves_concentrated_load(self):
        dist = paper_analysis_scenario(n_tasks=400, n_loaded_ranks=4, n_ranks=32, seed=8)
        for name in available_strategies():
            if name == "rotate":  # rotation never changes the imbalance
                continue
            lb = make_balancer(name)
            res = lb.rebalance(dist, rng=np.random.default_rng(0))
            assert res.final_imbalance < dist.imbalance(), name
