"""Unit tests for repro.core.graphpart."""

import numpy as np
import pytest

from repro.core.graphpart import (
    AdjacencyGraph,
    edge_cut,
    grow_partition,
    refine_partition,
)


def grid_graph(w, h):
    """A w x h grid graph (the classic partitioning test case)."""
    edges = []
    for j in range(h):
        for i in range(w):
            v = j * w + i
            if i + 1 < w:
                edges.append((v, v + 1))
            if j + 1 < h:
                edges.append((v, v + w))
    return AdjacencyGraph(w * h, np.array(edges))


class TestAdjacencyGraph:
    def test_neighbors_symmetric(self):
        g = AdjacencyGraph(3, np.array([[0, 1], [1, 2]]))
        assert list(g.neighbors(1)[0]) in ([0, 2], [2, 0])
        assert list(g.neighbors(0)[0]) == [1]

    def test_edge_weights(self):
        g = AdjacencyGraph(2, np.array([[0, 1]]), edge_weights=np.array([5.0]))
        _, w = g.neighbors(0)
        assert w[0] == 5.0

    def test_validation(self):
        with pytest.raises(ValueError, match="out of range"):
            AdjacencyGraph(2, np.array([[0, 5]]))
        with pytest.raises(ValueError, match="self-loops"):
            AdjacencyGraph(2, np.array([[1, 1]]))
        with pytest.raises(ValueError, match="one weight per edge"):
            AdjacencyGraph(2, np.array([[0, 1]]), edge_weights=np.ones(3))
        with pytest.raises(ValueError, match="one weight per vertex"):
            AdjacencyGraph(2, np.array([[0, 1]]), vertex_weights=np.ones(3))

    def test_isolated_vertices_allowed(self):
        g = AdjacencyGraph(4, np.array([[0, 1]]))
        assert g.neighbors(3)[0].size == 0


class TestGrowPartition:
    def test_covers_all_vertices(self):
        g = grid_graph(8, 8)
        parts = grow_partition(g, 4, rng=0)
        assert (parts >= 0).all() and (parts < 4).all()
        assert set(parts) == {0, 1, 2, 3}

    def test_balanced_counts(self):
        g = grid_graph(10, 10)
        parts = grow_partition(g, 4, rng=1)
        counts = np.bincount(parts, minlength=4)
        assert counts.min() >= 15 and counts.max() <= 35

    def test_handles_disconnected_graph(self):
        # Two disjoint paths.
        g = AdjacencyGraph(6, np.array([[0, 1], [1, 2], [3, 4], [4, 5]]))
        parts = grow_partition(g, 2, rng=2)
        assert (parts >= 0).all()

    def test_more_parts_than_vertices(self):
        g = AdjacencyGraph(3, np.array([[0, 1], [1, 2]]))
        parts = grow_partition(g, 10, rng=0)
        assert (parts >= 0).all()

    def test_weighted_vertices(self):
        g = AdjacencyGraph(
            4,
            np.array([[0, 1], [1, 2], [2, 3]]),
            vertex_weights=np.array([10.0, 1.0, 1.0, 10.0]),
        )
        parts = grow_partition(g, 2, rng=3)
        per = np.zeros(2)
        np.add.at(per, parts, g.vertex_weights)
        assert per.max() / per.min() < 2.5


class TestRefinePartition:
    def test_never_worsens_cut(self):
        g = grid_graph(12, 12)
        rng = np.random.default_rng(4)
        parts = rng.integers(0, 4, size=144)  # terrible random partition
        refined = refine_partition(g, parts, 4, passes=4)
        assert edge_cut(g, refined) < edge_cut(g, parts)

    def test_respects_balance_limit(self):
        g = grid_graph(10, 10)
        parts = grow_partition(g, 4, rng=5)
        refined = refine_partition(g, parts, 4, balance_tol=0.1)
        counts = np.bincount(refined, minlength=4).astype(float)
        assert counts.max() <= 1.1 * 25 + 1e-9

    def test_good_partition_stable(self):
        # Two halves of a path: already optimal; refinement must not move.
        g = AdjacencyGraph(4, np.array([[0, 1], [1, 2], [2, 3]]))
        parts = np.array([0, 0, 1, 1])
        refined = refine_partition(g, parts, 2)
        np.testing.assert_array_equal(refined, parts)


class TestEdgeCut:
    def test_known_value(self):
        g = AdjacencyGraph(4, np.array([[0, 1], [1, 2], [2, 3]]))
        assert edge_cut(g, np.array([0, 0, 1, 1])) == 1.0
        assert edge_cut(g, np.array([0, 1, 0, 1])) == 3.0

    def test_grid_partition_quality(self):
        # Grow+refine on a grid should land well below a random cut.
        g = grid_graph(12, 12)
        parts = refine_partition(g, grow_partition(g, 4, rng=6), 4)
        rng = np.random.default_rng(7)
        random_parts = rng.integers(0, 4, size=144)
        assert edge_cut(g, parts) < 0.4 * edge_cut(g, random_parts)
