"""The SoA transfer engine is bit-identical to the list-based reference.

``engine="soa"`` replaces the per-stage ``list[list[int]]`` rank/task
materialization with a CSR view plus sparse overrides, and
``kernel="numba"`` additionally routes the inner proposal loop through
the flat-array kernel (jitted where numba exists, the same Python
function here). Neither may change a single decision: every config
variant must produce the identical assignment, stats and final RNG
state as the reference engine under the same seed.
"""

import dataclasses

import numpy as np
import pytest

from repro.core._kernels import HAVE_NUMBA, PASS_REBUILD, get_transfer_pass
from repro.core.gossip import GossipConfig, run_inform_stage
from repro.core.soa import RankTaskState
from repro.core.transfer import TransferConfig, transfer_stage

VARIANTS = {
    "default": TransferConfig(),
    "numba-kernel": TransferConfig(kernel="numba"),
    "lbaf-view": TransferConfig(view="shared", max_passes=None, cascade=True),
    "nacks": TransferConfig(nacks=True),
    "rebuild": TransferConfig(cmf_update="rebuild"),
    "no-recompute": TransferConfig(recompute_cmf=False),
    "original": TransferConfig(criterion="original", cmf="original"),
    "arbitrary-3pass": TransferConfig(ordering="arbitrary", max_passes=3),
    "lightest": TransferConfig(ordering="lightest"),
}


def _episode(seed, n_ranks=24, tasks_per_rank=20):
    rng = np.random.default_rng(seed)
    n_tasks = n_ranks * tasks_per_rank
    task_loads = rng.gamma(3.0, 0.3, size=n_tasks)
    assignment = rng.integers(0, max(2, n_ranks // 4), size=n_tasks)
    loads = np.bincount(assignment, weights=task_loads, minlength=n_ranks)
    gossip = run_inform_stage(
        loads, GossipConfig(fanout=3, rounds=4), np.random.default_rng(seed + 1)
    )
    return assignment, task_loads, gossip


def _run(config, assignment, task_loads, gossip, seed):
    moved = np.array(assignment, copy=True)
    rng = np.random.default_rng(seed + 2)
    stats = transfer_stage(moved, task_loads, gossip, config, rng)
    return moved, stats, rng.bit_generator.state


class TestEngineEquivalence:
    @pytest.mark.parametrize("name", list(VARIANTS))
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_soa_matches_lists(self, name, seed):
        config = VARIANTS[name]
        assignment, task_loads, gossip = _episode(seed)
        ref = _run(
            dataclasses.replace(config, engine="lists", kernel="python"),
            assignment,
            task_loads,
            gossip,
            seed,
        )
        new = _run(
            dataclasses.replace(config, engine="soa"),
            assignment,
            task_loads,
            gossip,
            seed,
        )
        np.testing.assert_array_equal(new[0], ref[0])
        assert dataclasses.asdict(new[1]) == dataclasses.asdict(ref[1])
        # The engines consume the identical RNG stream — they stay
        # interchangeable mid-trial.
        assert new[2] == ref[2]

    def test_kernel_with_non_pcg64_generator(self):
        # The blocked-uniform rewind protocol is PCG64-only; any other
        # bit generator must silently take the scalar path and still
        # match the reference.
        seed = 5
        assignment, task_loads, gossip = _episode(seed)
        results = {}
        for engine in ("lists", "soa"):
            moved = np.array(assignment, copy=True)
            rng = np.random.Generator(np.random.MT19937(seed))
            stats = transfer_stage(
                moved,
                task_loads,
                gossip,
                TransferConfig(engine=engine, kernel="numba"),
                rng,
            )
            results[engine] = (moved, stats, rng.bit_generator.state)
        np.testing.assert_array_equal(results["soa"][0], results["lists"][0])
        soa_state, ref_state = results["soa"][2], results["lists"][2]
        # MT19937's state dict embeds an ndarray; compare piecewise.
        assert soa_state["state"]["pos"] == ref_state["state"]["pos"]
        np.testing.assert_array_equal(
            soa_state["state"]["key"], ref_state["state"]["key"]
        )

    def test_engine_knob_validated(self):
        with pytest.raises(ValueError):
            TransferConfig(engine="csr")
        with pytest.raises(ValueError):
            TransferConfig(kernel="cython")


class TestKernelFunction:
    def test_get_transfer_pass_python_is_reference(self):
        from repro.core import _kernels

        assert get_transfer_pass(False) is _kernels.transfer_pass
        if not HAVE_NUMBA:
            assert get_transfer_pass(True) is _kernels.transfer_pass

    def test_rebuild_status_counts_triggering_update(self):
        # One candidate whose load crosses l_s on accept: the kernel
        # must apply the load write, report PASS_REBUILD and advance
        # past the accepted position.
        o_loads = np.array([0.9])
        loads_known = np.array([0.5])
        masses = np.array([0.5])
        tree = np.array([0.0, 0.5])
        acc_pos = np.zeros(1, dtype=np.int64)
        acc_idx = np.zeros(1, dtype=np.int64)
        out = get_transfer_pass(False)(
            o_loads, 0, np.array([0.1]), 0, loads_known, masses, tree,
            0.5, 1, 0.5, 1.0, 1.0, 5.0, 0.0, True, True, acc_pos, acc_idx,
        )
        status, pos, u_pos, n_acc, n_rej, n_upd = out[:6]
        assert status == PASS_REBUILD
        assert (pos, u_pos, n_acc, n_rej, n_upd) == (1, 1, 1, 0, 1)
        assert loads_known[0] == pytest.approx(1.4)  # write applied pre-bail


class TestRankTaskState:
    def test_matches_naive_lists(self):
        rng = np.random.default_rng(3)
        n_ranks, n_tasks = 7, 40
        assignment = rng.integers(0, n_ranks, size=n_tasks)
        state = RankTaskState(assignment, n_ranks)
        naive = [[] for _ in range(n_ranks)]
        for task, rank in enumerate(assignment.tolist()):
            naive[rank].append(task)
        assert state.to_lists() == naive

    def test_append_and_set_tasks(self):
        assignment = np.array([0, 0, 1, 2])
        state = RankTaskState(assignment, 3)
        state.append(1, 0)  # task 0 arrives at rank 1
        state.set_tasks(0, np.array([1], dtype=np.int32))
        assert list(state.tasks(0)) == [1]
        assert list(state.tasks(1)) == [2, 0]  # arrivals after originals
        assert list(state.tasks(2)) == [3]

    def test_untouched_rank_returns_shared_view(self):
        assignment = np.array([0, 1, 1, 2])
        state = RankTaskState(assignment, 3)
        view = state.tasks(1)
        assert view.base is not None  # a slice of the CSR buffer
        assert list(view) == [1, 2]

    def test_empty_ranks(self):
        state = RankTaskState(np.array([2, 2]), 4)
        assert state.tasks(0).size == 0
        assert state.tasks(3).size == 0
        assert list(state.tasks(2)) == [0, 1]
