"""The tentpole contract: same seed -> bit-identical LB decisions
between the real-socket runtime and the discrete-event simulator.

Equality is asserted on the canonical ``EpisodeResult.to_dict()`` —
final assignment, move list, per-round message counts and senders,
byte totals, coverage, imbalance figures, and every merged registry
counter. Any divergence in RNG consumption, merge order, message
accounting, or counter attribution fails here.
"""

import numpy as np
import pytest

from repro.net import (
    EpisodeSpec,
    NetOptions,
    episode_streams,
    run_episode_net,
    run_episode_sim,
)

N_SEEDS = 20
N_RANKS = 64


class TestBitIdentity:
    @pytest.mark.parametrize("seed", range(N_SEEDS))
    def test_net_equals_sim_per_seed(self, seed):
        spec = EpisodeSpec.synthetic(N_RANKS, seed=seed)
        sim = run_episode_sim(spec).to_dict()
        net = run_episode_net(spec).to_dict()
        assert net == sim

    def test_registry_counters_match_exactly(self):
        spec = EpisodeSpec.synthetic(N_RANKS, seed=7)
        sim = run_episode_sim(spec)
        net = run_episode_net(spec)
        assert sim.counters == net.counters
        # The counters cover both protocol stages, not just totals.
        for key in ("gossip.messages", "gossip.received", "xfer.sent"):
            assert key in net.counters, f"missing counter family {key}"

    def test_multi_iteration_episode_identical(self):
        spec = EpisodeSpec.synthetic(32, seed=11, n_iters=3)
        sim = run_episode_sim(spec)
        net = run_episode_net(spec)
        assert net.to_dict() == sim.to_dict()
        # Iterations concatenate: more rounds recorded than one pass.
        assert len(net.per_round_messages) > spec.rounds - 1

    def test_sharded_workers_identical(self):
        """Rank placement across worker shards must be invisible."""
        spec = EpisodeSpec.synthetic(32, seed=5)
        reference = run_episode_net(spec, NetOptions(workers=1)).to_dict()
        sharded = run_episode_net(spec, NetOptions(workers=4)).to_dict()
        assert sharded == reference

    @pytest.mark.slow
    def test_subprocess_workers_identical(self):
        """Real OS worker processes (true process-per-shard, still
        loopback TCP) reproduce the in-process result bit for bit."""
        spec = EpisodeSpec.synthetic(16, seed=2)
        sim = run_episode_sim(spec).to_dict()
        net = run_episode_net(
            spec, NetOptions(workers=2, processes=True, timeout=120.0)
        ).to_dict()
        assert net == sim

    def test_episode_improves_balance(self):
        """Sanity on the shared protocol itself: the episode actually
        balances (the identity above would hold for a no-op too)."""
        spec = EpisodeSpec.synthetic(N_RANKS, seed=0)
        result = run_episode_sim(spec)
        assert result.final_imbalance < result.initial_imbalance / 2
        assert result.coverage > 0.9


class TestStreams:
    def test_streams_are_rank_independent(self):
        """Rank r's generators depend only on (seed, n_ranks, r) — the
        property that lets net nodes draw without any coordination."""
        a = episode_streams(3, 8, 5)
        b = episode_streams(3, 8, 5)
        for x, y in zip(a, b):
            assert x.random() == y.random()
        g0 = episode_streams(3, 8, 0)[0]
        g5 = episode_streams(3, 8, 5)[0]
        assert g0.random() != g5.random()
