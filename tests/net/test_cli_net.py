"""The ``repro net run`` / ``repro net analyze`` command pair."""

import json

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def episode_dir(tmp_path_factory):
    out = tmp_path_factory.mktemp("net_cli")
    code = main(
        [
            "net", "run",
            "--ranks", "16",
            "--seed", "3",
            "--out", str(out),
            "--check",
        ]
    )
    assert code == 0
    return out


class TestNetRun:
    def test_writes_result_and_logs(self, episode_dir, capsys):
        payload = json.loads((episode_dir / "result.json").read_text())
        assert payload["mode"] == "net"
        assert payload["spec"]["n_ranks"] == 16
        assert payload["result"]["per_round_messages"]
        assert list(episode_dir.glob("logs/wire_rank*.jsonl"))

    def test_check_reports_bit_identity(self, episode_dir, capsys, tmp_path):
        code = main(
            [
                "net", "run",
                "--ranks", "8",
                "--seed", "1",
                "--out", str(tmp_path / "ep"),
                "--no-logs",
                "--check",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "bit-identity: net == sim" in out
        assert not (tmp_path / "ep" / "logs").exists()


class TestNetAnalyze:
    def test_analyze_consistent_episode(self, episode_dir, capsys, tmp_path):
        report_json = tmp_path / "report.json"
        code = main(
            ["net", "analyze", str(episode_dir), "--json", str(report_json)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "CONSISTENT" in out
        report = json.loads(report_json.read_text())
        assert report["consistent"] is True

    def test_analyze_flags_doctored_result(self, episode_dir, capsys):
        result_path = episode_dir / "result.json"
        payload = json.loads(result_path.read_text())
        payload["result"]["per_round_messages"][0] += 1
        result_path.write_text(json.dumps(payload))
        try:
            code = main(["net", "analyze", str(episode_dir)])
            out = capsys.readouterr().out
            assert code == 1
            assert "MISMATCH" in out
        finally:
            payload["result"]["per_round_messages"][0] -= 1
            result_path.write_text(json.dumps(payload))
