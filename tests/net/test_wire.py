"""Framing and codec round-trips for the real-socket runtime."""

import numpy as np
import pytest

from repro.net.wire import (
    MAX_FRAME_BYTES,
    FrameError,
    pack_frame,
    unpack_frame,
)
from repro.sim.messages import (
    Message,
    WireFormatError,
    decode_payload,
    encode_payload,
    from_wire,
    to_wire,
)


class TestFraming:
    def test_round_trip(self):
        obj = {"t": "commit", "round": 3, "expect": {"0": 2, "1": 0}}
        frame, rest = unpack_frame(pack_frame(obj))
        assert frame == obj
        assert rest == b""

    def test_concatenated_frames_split_cleanly(self):
        a, b = {"t": "a"}, {"t": "b", "n": 1}
        data = pack_frame(a) + pack_frame(b)
        first, rest = unpack_frame(data)
        second, tail = unpack_frame(rest)
        assert (first, second, tail) == (a, b, b"")

    def test_truncated_frame_raises(self):
        data = pack_frame({"t": "x", "pad": "y" * 100})
        with pytest.raises(FrameError, match="truncated"):
            unpack_frame(data[:-1])
        with pytest.raises(FrameError, match="length prefix"):
            unpack_frame(data[:3])

    def test_oversized_length_prefix_rejected(self):
        bogus = (MAX_FRAME_BYTES + 1).to_bytes(4, "big") + b"x"
        with pytest.raises(FrameError, match="exceeds"):
            unpack_frame(bogus)

    def test_non_object_body_rejected(self):
        data = len(b"[1,2]").to_bytes(4, "big") + b"[1,2]"
        with pytest.raises(FrameError, match="object"):
            unpack_frame(data)

    def test_frame_error_is_wire_format_error(self):
        # One except-clause catches both codec and framing faults.
        assert issubclass(FrameError, WireFormatError)


class TestMessageCodec:
    def test_gossip_payload_round_trips_ndarray(self):
        members = np.array([0, 3, 7, 12], dtype=np.int64)
        msg = Message(
            src=3,
            dst=7,            tag="gossip",
            payload={"round": 2, "members": members},
            size=96,
        )
        frame, rest = unpack_frame(pack_frame(to_wire(msg)))
        assert rest == b""
        back = from_wire(frame)
        assert (back.src, back.dst, back.tag, back.size) == (3, 7, "gossip", 96)
        assert back.payload["round"] == 2
        restored = back.payload["members"]
        assert isinstance(restored, np.ndarray)
        assert restored.dtype == members.dtype
        np.testing.assert_array_equal(restored, members)

    def test_tuple_payload_round_trips(self):
        payload = {"move": (4, 9, 17)}
        assert decode_payload(encode_payload(payload)) == payload

    def test_empty_shard_round_trips(self):
        empty = np.array([], dtype=np.int32)
        out = decode_payload(encode_payload({"members": empty}))["members"]
        assert out.dtype == np.int32 and out.size == 0
