"""Dispatcher retry/backoff semantics under injected connection faults."""

import asyncio

import pytest

from repro.net.dispatcher import DispatchError, Dispatcher, RetryPolicy
from repro.net.wire import read_frame
from repro.sim.faults import FaultConfig


def _run(coro):
    return asyncio.run(coro)


def _dead_port() -> int:
    """A loopback port with no listener (bind-then-close reserves one)."""
    import socket

    with socket.socket() as s:
        s.bind(("127.0.0.1", 0))
        return s.getsockname()[1]


class TestRetryPolicy:
    def test_backoff_curve_is_capped(self):
        policy = RetryPolicy(rto=0.1, backoff=2.0, max_retries=8, max_delay=0.5)
        delays = [policy.delay(a) for a in range(1, 6)]
        assert delays == [0.1, 0.2, 0.4, 0.5, 0.5]

    def test_from_fault_config_lifts_simulated_knobs(self):
        fc = FaultConfig(loss_rate=0.1)  # rto=2e-5, backoff=2, retries=10
        policy = RetryPolicy.from_fault_config(fc)
        assert policy.rto == pytest.approx(fc.rto * 2_500.0)
        assert policy.backoff == fc.backoff
        assert policy.max_retries == fc.max_retries


class TestDispatcher:
    def test_refused_connection_retries_then_raises(self):
        async def scenario():
            port = _dead_port()
            policy = RetryPolicy(rto=0.001, backoff=1.5, max_retries=3)
            dispatcher = Dispatcher(0, {1: ("127.0.0.1", port)}, policy)
            dispatcher.send(1, {"t": "probe"})
            with pytest.raises(DispatchError, match="gave up after"):
                await dispatcher.drain()
            # First attempt + the full retry budget, all refused.
            assert dispatcher.retries == 4
            assert dispatcher.sent == 0
            # The failure is sticky: further sends fail fast.
            with pytest.raises(DispatchError):
                dispatcher.send(1, {"t": "again"})
            await dispatcher.close()

        _run(scenario())

    def test_late_listener_receives_retransmitted_frame(self):
        """A peer that comes up after the first attempts still gets the
        frame exactly once (stubborn retransmission + seq stamping)."""

        async def scenario():
            port = _dead_port()
            received = []

            async def handler(reader, writer):
                frame = await read_frame(reader)
                received.append(frame)
                writer.close()

            policy = RetryPolicy(rto=0.02, backoff=1.0, max_retries=None)
            dispatcher = Dispatcher(0, {1: ("127.0.0.1", port)}, policy)
            dispatcher.send(1, {"t": "probe"}, tag="gossip")
            await asyncio.sleep(0.05)  # let a few refused attempts happen
            server = await asyncio.start_server(handler, "127.0.0.1", port)
            await dispatcher.drain()
            assert dispatcher.sent == 1
            assert dispatcher.retries >= 1
            await dispatcher.close()
            server.close()
            await server.wait_closed()
            assert [f["t"] for f in received] == ["probe"]
            assert received[0]["seq"] == 0

        _run(scenario())

    def test_seq_stamps_are_per_peer_monotonic(self):
        async def scenario():
            frames = {1: [], 2: []}
            servers = []
            peers = {}

            def make_handler(peer):
                async def handler(reader, writer):
                    while True:
                        frame = await read_frame(reader)
                        if frame is None:
                            return
                        frames[peer].append(frame)

                return handler

            for peer in (1, 2):
                server = await asyncio.start_server(
                    make_handler(peer), "127.0.0.1", 0
                )
                servers.append(server)
                peers[peer] = ("127.0.0.1", server.sockets[0].getsockname()[1])

            dispatcher = Dispatcher(0, peers)
            for i in range(3):
                dispatcher.send(1, {"t": "a", "i": i})
            dispatcher.send(2, {"t": "b"})
            await dispatcher.drain()
            await dispatcher.close()
            for server in servers:
                server.close()
                await server.wait_closed()
            assert [f["seq"] for f in frames[1]] == [0, 1, 2]
            assert [f["seq"] for f in frames[2]] == [0]

        _run(scenario())

    def test_unknown_peer_rejected(self):
        async def scenario():
            dispatcher = Dispatcher(0, {1: ("127.0.0.1", 1)})
            with pytest.raises(KeyError):
                dispatcher.send(9, {"t": "x"})
            await dispatcher.close()

        _run(scenario())
