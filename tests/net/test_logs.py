"""JSONL wire-log schema round-trip and analyzer cross-checks."""

import json

import pytest

from repro.net import EpisodeSpec, NetOptions, run_episode_net, save_result
from repro.net.analyze import analyze_episode, analyze_logs, format_report
from repro.net.logging_jsonl import RECORD_FIELDS, WireLog, iter_records, log_path


class TestWireLog:
    def test_schema_round_trip(self, tmp_path):
        with WireLog(tmp_path, 3) as log:
            log.record("tx", "gossip", peer=5, size=96, frame_bytes=120,
                       round_index=2, iteration=1)
            log.record("rx", "xfer", peer=1, size=48, frame_bytes=60)
            log.record("retry", "gossip", peer=5, size=0, frame_bytes=0)
        rows = list(iter_records(log_path(tmp_path, 3)))
        assert len(rows) == 3
        for row in rows:
            assert tuple(sorted(row)) == tuple(sorted(RECORD_FIELDS))
        tx, rx, retry = rows
        assert (tx["dir"], tx["tag"], tx["peer"], tx["round"], tx["iter"]) == (
            "tx", "gossip", 5, 2, 1
        )
        assert (rx["round"], rx["iter"]) == (None, 0)
        assert retry["dir"] == "retry"
        assert tx["t_mono"] <= rx["t_mono"] <= retry["t_mono"]

    def test_invalid_direction_rejected(self, tmp_path):
        with WireLog(tmp_path, 0) as log:
            with pytest.raises(ValueError, match="dir"):
                log.record("sideways", "gossip", 1, 0, 0)

    def test_torn_tail_tolerated_mid_corruption_not(self, tmp_path):
        path = log_path(tmp_path, 0)
        with WireLog(tmp_path, 0) as log:
            log.record("tx", "gossip", 1, 10, 20)
        good = path.read_text()
        path.write_text(good + '{"t_mono": 1.0, "t_wall"')  # crash mid-write
        assert len(list(iter_records(path))) == 1
        path.write_text('{"broken\n' + good)  # corruption before valid rows
        with pytest.raises(ValueError, match="malformed"):
            list(iter_records(path))

    def test_missing_field_rejected(self, tmp_path):
        path = log_path(tmp_path, 0)
        row = {k: 0 for k in RECORD_FIELDS if k != "peer"}
        path.write_text(json.dumps(row) + "\n" + json.dumps(row) + "\n")
        with pytest.raises(ValueError, match="missing fields.*peer"):
            list(iter_records(path))


class TestAnalyzer:
    @pytest.fixture(scope="class")
    def episode_dir(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("episode")
        spec = EpisodeSpec.synthetic(16, seed=4, n_iters=2)
        options = NetOptions(log_dir=str(out / "logs"))
        result = run_episode_net(spec, options)
        save_result(out / "result.json", spec, result, options)
        return out, spec, result

    def test_logs_agree_with_result_per_round(self, episode_dir):
        out, spec, result = episode_dir
        report = analyze_episode(out)
        assert report["consistent"] is True
        assert report["logs"]["per_round_tx"] == result.per_round_messages
        assert report["logs"]["nodes"] == spec.n_ranks
        assert report["logs"]["per_tag_tx"]["xfer"] == result.transfer_messages
        # bytes_sent already folds in the transfer messages (the tally
        # charges XFER_BYTES per move), so the log total matches it.
        assert report["logs"]["model_bytes"] == result.bytes_sent

    def test_divergence_is_reported_not_averaged(self, episode_dir):
        out, _, result = episode_dir
        doctored = json.loads((out / "result.json").read_text())
        doctored["result"]["per_round_messages"][0] += 1
        (out / "result.json").write_text(json.dumps(doctored))
        report = analyze_episode(out)
        assert report["consistent"] is False
        assert report["mismatch"]["logs"] == result.per_round_messages
        # Restore for other tests in the class.
        doctored["result"]["per_round_messages"][0] -= 1
        (out / "result.json").write_text(json.dumps(doctored))

    def test_format_report_renders(self, episode_dir):
        out, _, _ = episode_dir
        text = format_report(analyze_episode(out))
        assert "CONSISTENT" in text
        assert "wire logs: 16 nodes" in text

    def test_analyze_logs_keys_rounds_by_iteration(self, episode_dir):
        out, spec, result = episode_dir
        logs = analyze_logs(out / "logs")
        # Two iterations: the analyzer must not collapse equal round
        # numbers across them.
        iters = {i for i, _ in (tuple(r) for r in logs["rounds"])}
        assert iters == {0, 1}
        assert len(logs["per_round_tx"]) == len(result.per_round_messages)
