"""Unit tests for repro.util.validation."""

import numpy as np
import pytest

from repro.util.validation import check_in, check_nonnegative, check_positive, coerce_rng


class TestCheckPositive:
    def test_accepts_positive(self):
        check_positive("x", 1)
        check_positive("x", 0.001)

    @pytest.mark.parametrize("bad", [0, -1, float("nan"), float("inf")])
    def test_rejects(self, bad):
        with pytest.raises(ValueError, match="x must be"):
            check_positive("x", bad)


class TestCheckNonnegative:
    def test_accepts_zero(self):
        check_nonnegative("x", 0)

    @pytest.mark.parametrize("bad", [-0.1, float("nan"), float("-inf")])
    def test_rejects(self, bad):
        with pytest.raises(ValueError):
            check_nonnegative("x", bad)


class TestCheckIn:
    def test_accepts_member(self):
        check_in("mode", "a", ("a", "b"))

    def test_rejects_with_choices_listed(self):
        with pytest.raises(ValueError, match="mode must be one of"):
            check_in("mode", "c", ("a", "b"))


class TestCoerceRng:
    def test_passthrough(self):
        rng = np.random.default_rng(0)
        assert coerce_rng(rng) is rng

    def test_seed(self):
        a, b = coerce_rng(42), coerce_rng(42)
        assert a.random() == b.random()

    def test_none_gives_fresh_generator(self):
        assert isinstance(coerce_rng(None), np.random.Generator)
