"""Integration tests for the event-level EMPIRE runner."""

import numpy as np
import pytest

from repro.empire.vt_mode import VtEmpireConfig, VtEmpireResult, run_vt_empire


def small(**kw):
    defaults = dict(
        n_ranks=8,
        colors_per_rank=4,
        n_steps=16,
        lb_period=5,
        initial_particles=1000,
        injection_per_step=10,
    )
    defaults.update(kw)
    return VtEmpireConfig(**defaults)


class TestVtEmpire:
    def test_runs_and_records_every_step(self):
        result = run_vt_empire(small())
        assert result.series.n_phases == 16
        assert result.total_time > 0

    def test_lb_improves_imbalance(self):
        balanced = run_vt_empire(small(balance=True))
        unbalanced = run_vt_empire(small(balance=False))
        i_bal = balanced.series.series("imbalance")
        i_not = unbalanced.series.series("imbalance")
        assert i_bal[10:].mean() < 0.5 * i_not[10:].mean()

    def test_lb_reduces_total_time(self):
        balanced = run_vt_empire(small(balance=True))
        unbalanced = run_vt_empire(small(balance=False))
        assert balanced.total_time < unbalanced.total_time

    def test_lb_episodes_follow_schedule(self):
        result = run_vt_empire(small())
        # steps 2, 5, 10, 15 (period 5, first 2)
        assert result.lb_episodes == 4
        t_lb = result.series.series("t_lb")
        assert t_lb[2] > 0 and t_lb[5] > 0
        assert t_lb[3] == 0

    def test_protocol_accounting(self):
        result = run_vt_empire(small())
        assert result.gossip_messages > 0
        assert result.migrations > 0
        assert 0 < result.lb_time < result.total_time

    def test_particles_grow(self):
        result = run_vt_empire(small())
        n = result.series.series("n_particles")
        assert n[-1] > n[0]

    def test_deterministic(self):
        a = run_vt_empire(small())
        b = run_vt_empire(small())
        assert a.total_time == b.total_time
        np.testing.assert_array_equal(
            a.series.series("imbalance"), b.series.series("imbalance")
        )

    def test_lb_time_small_fraction(self):
        # The t_lb << t_total property of Fig. 3 holds at event level too.
        result = run_vt_empire(small(n_steps=30))
        assert result.lb_time < 0.25 * result.total_time
