"""Integration tests for repro.empire.app (the Fig. 2 configurations)."""

import pytest

from repro.empire.app import CONFIGURATION_LABELS, EmpireConfig, EmpireRun, run_empire


def small(name, **kw):
    defaults = dict(
        configuration=name,
        n_ranks=36,
        colors_per_rank=6,
        n_steps=60,
        lb_period=20,
        initial_particles=4000,
        injection_per_step=40,
        n_trials=1,
        n_iters=3,
    )
    defaults.update(kw)
    return EmpireConfig(**defaults)


class TestConfig:
    def test_unknown_configuration_rejected(self):
        with pytest.raises(ValueError, match="configuration"):
            EmpireConfig(configuration="magic")

    def test_labels_cover_paper_configs(self):
        assert CONFIGURATION_LABELS["spmd"] == "SPMD (no AMT)"
        assert "TemperedLB" in CONFIGURATION_LABELS["tempered"]

    def test_with_configuration(self):
        cfg = small("spmd").with_configuration("greedy")
        assert cfg.configuration == "greedy"
        assert cfg.n_ranks == 36


class TestRunEmpire:
    @pytest.mark.parametrize("name", list(CONFIGURATION_LABELS))
    def test_all_configurations_run(self, name):
        run = run_empire(small(name))
        assert run.series.n_phases == 60
        assert run.t_total > 0
        assert run.t_total == pytest.approx(
            run.t_particle + run.t_nonparticle + run.t_lb, rel=1e-9
        )

    def test_spmd_has_no_lb_cost(self):
        run = run_empire(small("spmd"))
        assert run.t_lb == 0.0
        assert run.extra["lb_invocations"] == 0

    def test_amt_overhead_vs_spmd(self):
        spmd = run_empire(small("spmd"))
        amt = run_empire(small("amt"))
        assert amt.t_particle == pytest.approx(1.23 * spmd.t_particle, rel=0.01)
        assert amt.t_nonparticle == pytest.approx(spmd.t_nonparticle)

    def test_balanced_configs_beat_spmd_particle_time(self):
        spmd = run_empire(small("spmd"))
        for name in ("greedy", "hier", "tempered"):
            run = run_empire(small(name))
            assert run.t_particle < spmd.t_particle, name

    def test_lb_invocations_follow_schedule(self):
        run = run_empire(small("greedy"))
        # steps 2, 20, 40 (period 20 within 60 steps)
        assert run.extra["lb_invocations"] == 3

    def test_breakdown_row(self):
        run = run_empire(small("tempered"))
        row = run.breakdown()
        assert row["Type"] == "AMT w/TemperedLB"
        assert set(row) == {"Type", "t_n", "t_p", "t_lb", "t_total"}

    def test_deterministic(self):
        a = run_empire(small("tempered"))
        b = run_empire(small("tempered"))
        assert a.t_total == b.t_total

    def test_unstructured_mesh_type(self):
        run = run_empire(small("tempered", mesh_type="unstructured", n_ranks=16))
        assert run.series.n_phases == 60
        assert run.extra["lb_invocations"] == 3

    def test_rcb_on_unstructured(self):
        run = run_empire(small("rcb", mesh_type="unstructured", n_ranks=16))
        assert run.t_lb > 0

    def test_bad_mesh_type(self):
        with pytest.raises(ValueError, match="mesh_type"):
            small("spmd", mesh_type="hexagonal")
