"""Unit tests for repro.empire.pic (the timestep loop)."""

import numpy as np
import pytest

from repro.core.greedy import GreedyLB
from repro.core.tempered import TemperedLB
from repro.empire.bdot import BDotScenario
from repro.empire.mesh import Mesh2D
from repro.empire.pic import LBCostModel, PICSimulation, default_lb_schedule


def make_sim(mode="amt", balancer=None, n_ranks=16, **kw):
    mesh = Mesh2D(n_ranks, colors_per_rank=4)
    scen = BDotScenario(initial_particles=2000, injection_per_step=20, seed=0)
    return PICSimulation(mesh, scen, mode=mode, balancer=balancer, seed=1, **kw)


class TestSchedule:
    def test_default_schedule(self):
        sched = default_lb_schedule(period=100, first=2)
        assert sched(2)
        assert not sched(3)
        assert sched(100) and sched(200)
        assert not sched(0) and not sched(1) and not sched(150)


class TestPICSimulation:
    def test_spmd_rejects_balancer(self):
        with pytest.raises(ValueError, match="SPMD"):
            make_sim(mode="spmd", balancer=GreedyLB())

    def test_series_metrics_present(self):
        s = make_sim(mode="spmd").run(5)
        for key in ("t_step", "t_particle", "t_nonparticle", "t_lb", "imbalance"):
            assert key in s.keys()
        assert s.n_phases == 5

    def test_amt_overhead_increases_particle_time(self):
        spmd = make_sim(mode="spmd").run(5)
        amt = make_sim(mode="amt", amt_overhead=0.25).run(5)
        ratio = amt.series("t_particle").sum() / spmd.series("t_particle").sum()
        assert ratio == pytest.approx(1.25, rel=0.01)

    def test_lb_reduces_particle_time(self):
        nolb = make_sim(mode="amt").run(60)
        lb = make_sim(
            mode="amt",
            balancer=GreedyLB(),
            lb_schedule=default_lb_schedule(period=20, first=2),
        ).run(60)
        assert lb.series("t_particle")[30:].sum() < nolb.series("t_particle")[30:].sum()

    def test_lb_cost_appears_as_spike(self):
        sim = make_sim(
            mode="amt",
            balancer=GreedyLB(),
            lb_schedule=default_lb_schedule(period=50, first=2),
        )
        s = sim.run(10)
        t_lb = s.series("t_lb")
        assert t_lb[2] > 0
        assert (t_lb[[0, 1, 3, 4, 5]] == 0).all()
        assert sim.lb_invocations == 1

    def test_no_lb_before_first_instrumented_step(self):
        # LB needs a previous phase's loads: a schedule firing at step 0
        # must be skipped silently.
        sim = make_sim(mode="amt", balancer=GreedyLB(), lb_schedule=lambda s: True)
        series = sim.run(3)
        assert series.series("t_lb")[0] == 0.0
        assert series.series("t_lb")[1] > 0.0

    def test_migrations_recorded(self):
        sim = make_sim(
            mode="amt",
            balancer=GreedyLB(),
            lb_schedule=default_lb_schedule(period=100, first=2),
        )
        s = sim.run(5)
        assert s.series("migrations")[2] > 0

    def test_lower_bound_never_exceeds_max(self):
        s = make_sim(mode="amt").run(20)
        assert (s.series("lower_bound") <= s.series("max_load") + 1e-12).all()

    def test_particle_count_grows(self):
        s = make_sim(mode="spmd").run(10)
        n = s.series("n_particles")
        assert n[-1] > n[0]

    def test_tempered_balancer_integration(self):
        sim = make_sim(
            mode="amt",
            balancer=TemperedLB(n_trials=1, n_iters=2, fanout=3, rounds=4),
            lb_schedule=default_lb_schedule(period=10, first=2),
            n_ranks=16,
        )
        s = sim.run(30)
        assert s.series("imbalance")[25] < s.series("imbalance")[1]


class TestHeterogeneousRanks:
    def test_speed_validation(self):
        with pytest.raises(ValueError, match="one speed per rank"):
            make_sim(rank_speeds=np.ones(3))
        with pytest.raises(ValueError, match="positive"):
            make_sim(rank_speeds=np.zeros(16))

    def test_slow_ranks_raise_particle_time(self):
        uniform = make_sim(mode="spmd").run(5)
        speeds = np.ones(16)
        speeds[:8] = 0.5
        slow = make_sim(mode="spmd", rank_speeds=speeds).run(5)
        assert slow.series("t_particle").sum() > uniform.series("t_particle").sum()

    def test_balancer_compensates_for_slow_ranks(self):
        speeds = np.ones(16)
        speeds[:8] = 0.5
        nolb = make_sim(mode="amt", rank_speeds=speeds).run(40)
        lb = make_sim(
            mode="amt",
            balancer=GreedyLB(),
            lb_schedule=default_lb_schedule(period=10, first=2),
            rank_speeds=speeds,
        ).run(40)
        assert (
            lb.series("t_particle")[20:].sum()
            < 0.8 * nolb.series("t_particle")[20:].sum()
        )


class TestLBCostModel:
    def test_migration_cost_zero_without_moves(self):
        cost = LBCostModel()
        old = np.array([0, 1])
        assert (
            cost.migration_seconds(np.zeros(2, bool), old, old, np.array([5, 5]), 2)
            == 0.0
        )

    def test_migration_cost_scales_with_particles(self):
        cost = LBCostModel(rdma_resize_seconds=0.0)
        old = np.array([0, 0])
        new = np.array([1, 0])
        small = cost.migration_seconds(
            np.array([True, False]), old, new, np.array([10, 0]), 2
        )
        big = cost.migration_seconds(
            np.array([True, False]), old, new, np.array([10_000_000, 0]), 2
        )
        assert big > small

    def test_decision_cost_gossip_scales_with_stages(self):
        from repro.core.base import IterationRecord, LBResult

        def result_with(n_records):
            return LBResult(
                strategy="TemperedLB",
                assignment=np.zeros(10, dtype=int),
                initial_imbalance=1.0,
                final_imbalance=0.5,
                n_migrations=0,
                records=[
                    IterationRecord(1, i + 1, 0, 0, 0.5, gossip_messages=10)
                    for i in range(n_records)
                ],
            )

        cost = LBCostModel()
        assert cost.decision_seconds(result_with(8), 16, 10) > cost.decision_seconds(
            result_with(1), 16, 10
        )

    def test_decision_cost_greedy_scales_with_tasks(self):
        from repro.core.base import LBResult

        def greedy_result(n_tasks):
            return LBResult(
                strategy="GreedyLB",
                assignment=np.zeros(n_tasks, dtype=int),
                initial_imbalance=1.0,
                final_imbalance=0.0,
                n_migrations=0,
            )

        cost = LBCostModel()
        assert cost.decision_seconds(greedy_result(10_000), 16, 10) > cost.decision_seconds(
            greedy_result(100), 16, 10
        )
