"""Unit tests for the electrostatic PIC physics."""

import numpy as np
import pytest

from repro.empire.electrostatic import (
    ElectrostaticScenario,
    ElectrostaticStepper,
    PoissonSolver,
)
from repro.empire.mesh import Mesh2D
from repro.empire.particles import ParticlePopulation
from repro.empire.pic import PICSimulation


class TestPoissonSolver:
    def test_fourier_mode_analytic_solution(self):
        # rho = sin(2 pi x): laplacian(phi) = -rho has
        # phi = rho / (4 pi^2) on the periodic domain.
        n = 64
        solver = PoissonSolver(n, n, sweeps=4000)
        x = (np.arange(n) + 0.5) / n
        rho = np.tile(np.sin(2 * np.pi * x), (n, 1))
        phi = solver.solve(rho)
        expected = rho / (4 * np.pi**2)
        assert np.abs(phi - expected).max() < 0.2 * np.abs(expected).max()

    def test_uniform_charge_gives_zero_field(self):
        solver = PoissonSolver(16, 16)
        phi = solver.solve(np.full((16, 16), 3.0))
        ex, ey = solver.field(phi)
        assert np.abs(ex).max() < 1e-12
        assert np.abs(ey).max() < 1e-12

    def test_zero_mean_output(self):
        solver = PoissonSolver(16, 16, sweeps=50)
        rng = np.random.default_rng(0)
        phi = solver.solve(rng.random((16, 16)))
        assert abs(phi.mean()) < 1e-12

    def test_shape_checked(self):
        with pytest.raises(ValueError, match="shape"):
            PoissonSolver(8, 8).solve(np.zeros((4, 4)))

    def test_field_points_away_from_positive_blob(self):
        # A positive charge blob: E points radially outward around it.
        n = 32
        solver = PoissonSolver(n, n, sweeps=800)
        rho = np.zeros((n, n))
        rho[16, 16] = 100.0
        phi = solver.solve(rho)
        ex, ey = solver.field(phi)
        assert ex[16, 18] > 0  # right of the blob: E_x positive
        assert ex[16, 14] < 0
        assert ey[18, 16] > 0
        assert ey[14, 16] < 0


class TestElectrostaticStepper:
    def test_deposit_conserves_charge(self):
        stepper = ElectrostaticStepper(nx=16, ny=16, charge=2.0)
        rng = np.random.default_rng(1)
        pop = ParticlePopulation(rng.random((500, 2)), np.zeros((500, 2)))
        rho = stepper.deposit(pop)
        # Total deposited charge = charge (normalized by count and area).
        cell_area = (1 / 16) ** 2
        assert rho.sum() * cell_area == pytest.approx(2.0)

    def test_blob_expands_under_self_repulsion(self):
        rng = np.random.default_rng(2)
        pos = 0.5 + rng.normal(0, 0.03, size=(2000, 2))
        pos = np.clip(pos, 0.0, np.nextafter(1.0, 0))
        pop = ParticlePopulation(pos, np.zeros((2000, 2)))
        stepper = ElectrostaticStepper(nx=32, ny=32, mobility=1e-3)
        spread0 = pop.positions.std(axis=0).mean()
        for _ in range(30):
            stepper.step(pop)
        assert pop.positions.std(axis=0).mean() > 1.05 * spread0

    def test_empty_population_noop(self):
        stepper = ElectrostaticStepper(nx=8, ny=8)
        pop = ParticlePopulation.empty()
        stepper.step(pop)
        assert pop.count == 0

    def test_particles_stay_in_domain(self):
        rng = np.random.default_rng(3)
        pop = ParticlePopulation(rng.random((300, 2)), np.zeros((300, 2)))
        stepper = ElectrostaticStepper(nx=16, ny=16, mobility=5e-3)
        for _ in range(20):
            stepper.step(pop)
            assert pop.positions.min() >= 0 and pop.positions.max() < 1.0


class TestElectrostaticScenario:
    def test_pic_integration(self):
        mesh = Mesh2D(16, colors_per_rank=4)
        scen = ElectrostaticScenario(
            initial_particles=2000, injection_per_step=20, nx=32, ny=32, seed=0
        )
        sim = PICSimulation(mesh, scen, mode="amt", seed=1)
        series = sim.run(15)
        assert series.n_phases == 15
        # The blob starts concentrated: early imbalance is substantial.
        assert series.series("imbalance")[0] > 1.0

    def test_imbalance_decays_as_plasma_expands(self):
        mesh = Mesh2D(16, colors_per_rank=4)
        scen = ElectrostaticScenario(
            initial_particles=3000,
            injection_per_step=0,
            blob_sigma=0.05,
            nx=32,
            ny=32,
            mobility=2e-3,
            seed=1,
        )
        sim = PICSimulation(mesh, scen, mode="amt", seed=2)
        series = sim.run(40)
        imb = series.series("imbalance")
        assert imb[-1] < imb[0]

    def test_deterministic(self):
        def run():
            mesh = Mesh2D(9, colors_per_rank=4)
            scen = ElectrostaticScenario(initial_particles=500, nx=16, ny=16, seed=5)
            return PICSimulation(mesh, scen, mode="spmd", seed=6).run(5)

        a, b = run(), run()
        np.testing.assert_array_equal(a.series("t_particle"), b.series("t_particle"))
