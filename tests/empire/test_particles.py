"""Unit tests for repro.empire.particles and bdot."""

import numpy as np
import pytest

from repro.empire.bdot import BDotScenario
from repro.empire.mesh import Mesh2D
from repro.empire.particles import ParticlePopulation


class TestParticlePopulation:
    def test_validation(self):
        with pytest.raises(ValueError, match="shape"):
            ParticlePopulation(np.zeros(3), np.zeros(3))
        with pytest.raises(ValueError, match="unit square"):
            ParticlePopulation(np.array([[1.5, 0.5]]), np.zeros((1, 2)))

    def test_advance_moves_particles(self):
        p = ParticlePopulation(np.array([[0.5, 0.5]]), np.array([[0.1, 0.0]]))
        p.advance(1.0)
        np.testing.assert_allclose(p.positions, [[0.6, 0.5]])

    def test_reflecting_boundary(self):
        p = ParticlePopulation(np.array([[0.95, 0.5]]), np.array([[0.1, 0.0]]))
        p.advance(1.0)
        assert 0.0 <= p.positions[0, 0] < 1.0
        np.testing.assert_allclose(p.positions[0, 0], 0.95, atol=1e-12)
        assert p.velocities[0, 0] == -0.1  # reflected

    def test_positions_always_in_domain(self):
        rng = np.random.default_rng(0)
        p = ParticlePopulation(rng.random((500, 2)), rng.normal(0, 0.3, (500, 2)))
        for _ in range(20):
            p.advance(1.0)
            assert p.positions.min() >= 0.0 and p.positions.max() < 1.0

    def test_inject(self):
        p = ParticlePopulation.empty()
        p.inject(np.array([[0.1, 0.2]]), np.array([[0.0, 0.0]]))
        assert p.count == 1

    def test_count_per_color_conserves(self):
        mesh = Mesh2D(4, colors_per_rank=4)
        rng = np.random.default_rng(1)
        p = ParticlePopulation(rng.random((300, 2)), np.zeros((300, 2)))
        counts = p.count_per_color(mesh)
        assert counts.sum() == 300

    def test_empty_counts(self):
        mesh = Mesh2D(4)
        assert ParticlePopulation.empty().count_per_color(mesh).sum() == 0

    def test_negative_dt_rejected(self):
        p = ParticlePopulation.empty()
        with pytest.raises(ValueError):
            p.advance(-1.0)


class TestBDotScenario:
    def test_initial_population_size(self):
        scen = BDotScenario(initial_particles=1000, seed=0)
        pop = scen.initialize()
        assert pop.count == 1000

    def test_injection_grows_population(self):
        scen = BDotScenario(initial_particles=100, injection_per_step=10, seed=0)
        pop = scen.initialize()
        for step in range(1, 6):
            scen.step(pop, step)
        assert pop.count == 150

    def test_no_injection(self):
        scen = BDotScenario(initial_particles=100, injection_per_step=0, seed=0)
        pop = scen.initialize()
        scen.step(pop, 1)
        assert pop.count == 100

    def test_plume_concentrated_initially(self):
        mesh = Mesh2D(100, colors_per_rank=4)
        scen = BDotScenario(initial_particles=20_000, seed=0)
        pop = scen.initialize()
        counts = pop.count_per_color(mesh)
        # a Gaussian plume: the top 10% of colors hold most particles
        top = np.sort(counts)[-mesh.n_colors // 10 :]
        assert top.sum() > 0.5 * pop.count

    def test_imbalance_decays_over_time(self):
        mesh = Mesh2D(64, colors_per_rank=4)
        scen = BDotScenario(initial_particles=5000, injection_per_step=20, seed=0)
        pop = scen.initialize()
        home = mesh.home_assignment()

        def rank_imbalance():
            loads = np.bincount(home, weights=pop.count_per_color(mesh).astype(float), minlength=64)
            return loads.max() / loads.mean() - 1

        early = rank_imbalance()
        for step in range(1, 400):
            scen.step(pop, step)
        late = rank_imbalance()
        assert late < early

    def test_core_fraction_validation(self):
        with pytest.raises(ValueError, match="core_fraction"):
            BDotScenario(core_fraction=1.5)

    def test_deterministic(self):
        a = BDotScenario(initial_particles=100, seed=7).initialize()
        b = BDotScenario(initial_particles=100, seed=7).initialize()
        np.testing.assert_array_equal(a.positions, b.positions)
