"""Property-based tests for the EMPIRE substrates."""

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.empire.mesh import Mesh2D, grid_dims
from repro.empire.particles import ParticlePopulation
from repro.empire.repartition import rcb_partition
from repro.empire.workload import ColorWorkloadModel


@given(n=st.integers(min_value=1, max_value=500))
def test_grid_dims_factorization(n):
    a, b = grid_dims(n)
    assert a * b == n
    assert 1 <= a <= b


@given(
    n_ranks=st.integers(min_value=1, max_value=36),
    colors=st.integers(min_value=1, max_value=12),
    seed=st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=30, deadline=None)
def test_mesh_binning_partitions_positions(n_ranks, colors, seed):
    """Every position lands in exactly one valid color, and the color's
    home rank matches the position's rank."""
    mesh = Mesh2D(n_ranks, colors_per_rank=colors)
    rng = np.random.default_rng(seed)
    x, y = rng.random(200), rng.random(200)
    c = mesh.color_of_position(x, y)
    r = mesh.rank_of_position(x, y)
    assert (c >= 0).all() and (c < mesh.n_colors).all()
    np.testing.assert_array_equal(mesh.home_rank_of_color(c), r)


@given(
    n_points=st.integers(min_value=8, max_value=200),
    n_parts=st.integers(min_value=1, max_value=8),
    seed=st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=30, deadline=None)
def test_rcb_parts_cover_and_balance(n_points, n_parts, seed):
    assume(n_points >= n_parts)
    rng = np.random.default_rng(seed)
    pts = rng.random((n_points, 2))
    w = rng.random(n_points) + 1e-3
    parts = rcb_partition(pts, w, n_parts)
    assert parts.min() >= 0 and parts.max() < n_parts
    per = np.bincount(parts, weights=w, minlength=n_parts)
    # Each part's weight is within one maximal point of the average
    # (binary weighted-median cuts cannot do worse per level).
    assert per.max() <= w.sum() / n_parts + n_parts * w.max() + 1e-9


@given(
    seed=st.integers(min_value=0, max_value=1000),
    steps=st.integers(min_value=1, max_value=10),
    dt=st.floats(min_value=0.1, max_value=3.0),
)
@settings(max_examples=30, deadline=None)
def test_particle_motion_stays_in_domain(seed, steps, dt):
    rng = np.random.default_rng(seed)
    pop = ParticlePopulation(rng.random((50, 2)), rng.normal(0, 0.2, (50, 2)))
    for _ in range(steps):
        pop.advance(dt)
        assert pop.positions.min() >= 0.0
        assert pop.positions.max() < 1.0
        assert pop.count == 50


@given(
    counts=st.lists(st.integers(min_value=0, max_value=1000), min_size=4, max_size=4),
    spp=st.floats(min_value=0.0, max_value=1.0),
    spc=st.floats(min_value=0.0, max_value=1.0),
)
def test_workload_model_affine(counts, spp, spc):
    mesh = Mesh2D(2, colors_per_rank=2, cells_per_color=10)
    model = ColorWorkloadModel(seconds_per_particle=spp, seconds_per_cell=spc)
    loads = model.loads_from_counts(mesh, np.asarray(counts))
    expected = spc * 10 + spp * np.asarray(counts, dtype=float)
    np.testing.assert_allclose(loads, expected)
    assert (loads >= 0).all()
