"""Unit tests for repro.empire.diagnostics."""

import numpy as np
import pytest

from repro.empire.diagnostics import (
    DiagnosticsRecorder,
    field_energy,
    kinetic_energy,
    particles_per_rank,
    total_momentum,
)
from repro.empire.electrostatic import ElectrostaticStepper, PoissonSolver
from repro.empire.mesh import Mesh2D
from repro.empire.particles import ParticlePopulation


def make_pop(velocities):
    n = len(velocities)
    pos = np.full((n, 2), 0.5)
    return ParticlePopulation(pos, np.asarray(velocities, dtype=float))


class TestScalars:
    def test_kinetic_energy(self):
        pop = make_pop([[3.0, 4.0]])  # |v|^2 = 25
        assert kinetic_energy(pop) == pytest.approx(12.5)
        assert kinetic_energy(pop, mass=2.0) == pytest.approx(25.0)

    def test_total_momentum(self):
        pop = make_pop([[1.0, 0.0], [-1.0, 2.0]])
        np.testing.assert_allclose(total_momentum(pop), [0.0, 2.0])

    def test_empty_population(self):
        pop = ParticlePopulation.empty()
        assert kinetic_energy(pop) == 0.0
        np.testing.assert_allclose(total_momentum(pop), [0.0, 0.0])

    def test_field_energy_zero_for_uniform(self):
        solver = PoissonSolver(16, 16)
        phi = solver.solve(np.full((16, 16), 2.0))
        assert field_energy(solver, phi) == pytest.approx(0.0, abs=1e-18)

    def test_field_energy_positive_for_blob(self):
        solver = PoissonSolver(16, 16, sweeps=200)
        rho = np.zeros((16, 16))
        rho[8, 8] = 10.0
        phi = solver.solve(rho)
        assert field_energy(solver, phi) > 0.0

    def test_particles_per_rank(self):
        mesh = Mesh2D(4, colors_per_rank=1)
        rng = np.random.default_rng(0)
        pop = ParticlePopulation(rng.random((100, 2)), np.zeros((100, 2)))
        per = particles_per_rank(pop, mesh, mesh.home_assignment())
        assert per.sum() == 100


class TestPhysicsSanity:
    def test_momentum_roughly_conserved_in_free_space(self):
        """The self-consistent field exerts ~zero net force on the whole
        plasma (away from boundaries), so total momentum drifts slowly."""
        rng = np.random.default_rng(1)
        pos = 0.5 + rng.normal(0, 0.05, size=(2000, 2))
        pos = np.clip(pos, 0.0, np.nextafter(1.0, 0))
        vel = rng.normal(0, 1e-3, size=(2000, 2))
        pop = ParticlePopulation(pos, vel)
        stepper = ElectrostaticStepper(nx=32, ny=32, mobility=2e-4)
        p0 = total_momentum(pop)
        speed_scale = np.abs(pop.velocities).sum()
        for _ in range(10):
            stepper.step(pop)
        drift = np.abs(total_momentum(pop) - p0).sum()
        assert drift < 0.05 * speed_scale

    def test_expansion_converts_field_to_kinetic_energy(self):
        """A cold dense blob gains kinetic energy as it expands."""
        rng = np.random.default_rng(2)
        pos = 0.5 + rng.normal(0, 0.04, size=(3000, 2))
        pos = np.clip(pos, 0.0, np.nextafter(1.0, 0))
        pop = ParticlePopulation(pos, np.zeros((3000, 2)))
        stepper = ElectrostaticStepper(nx=32, ny=32, mobility=1e-3)
        assert kinetic_energy(pop) == 0.0
        for _ in range(20):
            stepper.step(pop)
        assert kinetic_energy(pop) > 0.0


class TestRecorder:
    def test_cadence(self):
        rec = DiagnosticsRecorder(interval=5)
        pop = make_pop([[1.0, 0.0]])
        hits = [rec.maybe_record(s, pop) for s in range(12)]
        assert hits == [True] + [False] * 4 + [True] + [False] * 4 + [True, False]
        assert rec.steps == [0, 5, 10]

    def test_arrays(self):
        rec = DiagnosticsRecorder(interval=1)
        pop = make_pop([[1.0, 0.0]])
        rec.maybe_record(0, pop)
        rec.maybe_record(1, pop)
        arrays = rec.as_arrays()
        assert arrays["kinetic"].shape == (2,)
        assert arrays["momentum"].shape == (2, 2)

    def test_validation(self):
        with pytest.raises(ValueError):
            DiagnosticsRecorder(interval=0)
