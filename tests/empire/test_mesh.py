"""Unit tests for repro.empire.mesh."""

import numpy as np
import pytest

from repro.empire.mesh import Mesh2D, grid_dims


class TestGridDims:
    def test_perfect_squares(self):
        assert grid_dims(400) == (20, 20)
        assert grid_dims(16) == (4, 4)

    def test_non_squares(self):
        assert grid_dims(24) == (4, 6)
        assert grid_dims(2) == (1, 2)

    def test_primes_degrade_to_strip(self):
        assert grid_dims(7) == (1, 7)

    def test_product_invariant(self):
        for n in (1, 6, 12, 100, 384):
            a, b = grid_dims(n)
            assert a * b == n and a <= b


class TestMesh2D:
    def test_color_count(self):
        mesh = Mesh2D(16, colors_per_rank=24)
        assert mesh.n_colors == 384

    def test_home_assignment_blocks(self):
        mesh = Mesh2D(4, colors_per_rank=6)
        home = mesh.home_assignment()
        assert home.shape == (24,)
        np.testing.assert_array_equal(home[:6], 0)
        np.testing.assert_array_equal(home[-6:], 3)

    def test_colors_of_rank_roundtrip(self):
        mesh = Mesh2D(9, colors_per_rank=4)
        for rank in range(9):
            colors = mesh.colors_of_rank(rank)
            np.testing.assert_array_equal(mesh.home_rank_of_color(colors), rank)

    def test_color_binning_is_a_partition(self):
        mesh = Mesh2D(16, colors_per_rank=6)
        rng = np.random.default_rng(0)
        x, y = rng.random(5000), rng.random(5000)
        colors = mesh.color_of_position(x, y)
        assert colors.min() >= 0 and colors.max() < mesh.n_colors

    def test_color_consistent_with_rank(self):
        mesh = Mesh2D(16, colors_per_rank=6)
        rng = np.random.default_rng(1)
        x, y = rng.random(2000), rng.random(2000)
        colors = mesh.color_of_position(x, y)
        ranks = mesh.rank_of_position(x, y)
        np.testing.assert_array_equal(mesh.home_rank_of_color(colors), ranks)

    def test_uniform_positions_fill_colors_evenly(self):
        mesh = Mesh2D(4, colors_per_rank=4)
        rng = np.random.default_rng(2)
        x, y = rng.random(160_000), rng.random(160_000)
        counts = np.bincount(mesh.color_of_position(x, y), minlength=mesh.n_colors)
        assert counts.min() > 0.85 * counts.mean()

    def test_color_centers_inside_own_color(self):
        mesh = Mesh2D(6, colors_per_rank=6)
        centers = mesh.color_centers()
        colors = mesh.color_of_position(centers[:, 0], centers[:, 1])
        np.testing.assert_array_equal(colors, np.arange(mesh.n_colors))

    def test_positions_out_of_range_rejected(self):
        mesh = Mesh2D(4)
        with pytest.raises(ValueError, match="unit square"):
            mesh.color_of_position(np.array([1.5]), np.array([0.5]))
        with pytest.raises(ValueError, match="unit square"):
            mesh.color_of_position(np.array([-0.1]), np.array([0.5]))

    def test_boundary_just_under_one(self):
        mesh = Mesh2D(4, colors_per_rank=4)
        edge = np.nextafter(1.0, 0.0)
        c = mesh.color_of_position(np.array([edge]), np.array([edge]))
        assert 0 <= c[0] < mesh.n_colors

    def test_cells_per_rank(self):
        mesh = Mesh2D(4, colors_per_rank=24, cells_per_color=64)
        assert mesh.cells_per_rank() == 24 * 64
