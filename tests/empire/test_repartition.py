"""Unit tests for repro.empire.repartition (the conventional baseline)."""

import numpy as np
import pytest

from repro.core.distribution import Distribution
from repro.empire.app import EmpireConfig, run_empire
from repro.empire.mesh import Mesh2D
from repro.empire.repartition import RCBLB, rcb_partition, repartition_cost_model


class TestRCBPartition:
    def test_partition_covers_all_parts(self):
        rng = np.random.default_rng(0)
        pts = rng.random((500, 2))
        parts = rcb_partition(pts, np.ones(500), 8)
        assert set(np.unique(parts)) == set(range(8))

    def test_weighted_balance(self):
        rng = np.random.default_rng(1)
        pts = rng.random((2000, 2))
        w = rng.random(2000)
        parts = rcb_partition(pts, w, 16)
        per = np.bincount(parts, weights=w, minlength=16)
        assert per.max() / per.mean() - 1 < 0.15

    def test_skewed_weights_balanced(self):
        # Heavy corner: RCB must cut finer there.
        rng = np.random.default_rng(2)
        pts = rng.random((3000, 2))
        w = np.exp(-10 * (pts[:, 0] + pts[:, 1]))
        parts = rcb_partition(pts, w, 8)
        per = np.bincount(parts, weights=w, minlength=8)
        assert per.max() / per.mean() - 1 < 0.5

    def test_geometric_locality(self):
        # Parts are contiguous-ish: each part's bounding box should not
        # cover the whole domain (for a non-trivial split).
        rng = np.random.default_rng(3)
        pts = rng.random((4000, 2))
        parts = rcb_partition(pts, np.ones(4000), 4)
        for p in range(4):
            box = pts[parts == p]
            area = np.prod(box.max(axis=0) - box.min(axis=0))
            assert area < 0.6

    def test_single_part(self):
        pts = np.random.default_rng(4).random((10, 2))
        assert (rcb_partition(pts, np.ones(10), 1) == 0).all()

    def test_validation(self):
        with pytest.raises(ValueError, match="2-D"):
            rcb_partition(np.ones(4), np.ones(4), 2)
        with pytest.raises(ValueError, match="one weight"):
            rcb_partition(np.ones((4, 2)), np.ones(3), 2)
        with pytest.raises(ValueError):
            rcb_partition(np.ones((4, 2)), np.ones(4), 0)

    def test_zero_weights_split_by_count(self):
        pts = np.random.default_rng(5).random((64, 2))
        parts = rcb_partition(pts, np.zeros(64), 4)
        counts = np.bincount(parts, minlength=4)
        assert counts.min() >= 8


class TestRCBLB:
    def test_balances_hotspot(self):
        mesh = Mesh2D(16, colors_per_rank=24)
        centers = mesh.color_centers()
        loads = 0.1 + 10.0 * np.exp(
            -((centers[:, 0] - 0.3) ** 2 + (centers[:, 1] - 0.5) ** 2) / (2 * 0.1**2)
        )
        dist = Distribution(loads, mesh.home_assignment(), mesh.n_ranks)
        res = RCBLB(mesh).rebalance(dist)
        # RCB is granularity-limited by whole-color atoms near the
        # hotspot; ~0.3 is its floor here.
        assert res.final_imbalance < 0.5
        assert res.final_imbalance < 0.2 * dist.imbalance()

    def test_mesh_mismatch_rejected(self):
        mesh = Mesh2D(4, colors_per_rank=2)
        dist = Distribution(np.ones(5), np.zeros(5, dtype=int), 4)
        with pytest.raises(ValueError, match="colors"):
            RCBLB(mesh).rebalance(dist)


class TestRepartitionConfiguration:
    def test_rcb_config_runs(self):
        run = run_empire(
            EmpireConfig(
                configuration="rcb",
                n_ranks=16,
                colors_per_rank=6,
                n_steps=30,
                lb_period=10,
                initial_particles=2000,
                injection_per_step=20,
            )
        )
        assert run.config.label == "SPMD w/RCB repartition"
        assert run.t_lb > 0  # repartitions happened
        assert run.extra["lb_invocations"] == 3

    def test_rcb_cost_dwarfs_incremental(self):
        base = dict(
            n_ranks=16,
            colors_per_rank=6,
            n_steps=30,
            lb_period=10,
            initial_particles=2000,
            injection_per_step=20,
            n_trials=1,
            n_iters=2,
        )
        rcb = run_empire(EmpireConfig(configuration="rcb", **base))
        tempered = run_empire(EmpireConfig(configuration="tempered", **base))
        assert rcb.t_lb > 3 * tempered.t_lb

    def test_cost_model_is_heavier(self):
        conventional = repartition_cost_model()
        from repro.empire.pic import LBCostModel

        incremental = LBCostModel()
        assert conventional.color_fixed_bytes > incremental.color_fixed_bytes
        assert conventional.rdma_resize_seconds > incremental.rdma_resize_seconds
