"""Unit tests for repro.empire.unstructured."""

import numpy as np
import pytest

from repro.core.tempered import TemperedLB
from repro.empire.bdot import BDotScenario
from repro.empire.pic import PICSimulation
from repro.empire.unstructured import UnstructuredMesh2D
from repro.empire.workload import ColorWorkloadModel


@pytest.fixture(scope="module")
def mesh():
    return UnstructuredMesh2D(9, colors_per_rank=4, n_points=900, seed=0)


class TestConstruction:
    def test_colors_partition_cells(self, mesh):
        assert mesh.n_colors == 36
        assert mesh.cells_per_color.sum() == mesh.n_cells
        assert (mesh.cells_per_color > 0).all()

    def test_coloring_respects_ranks(self, mesh):
        # Every cell's color belongs to the cell's rank.
        np.testing.assert_array_equal(
            mesh.cell_color // mesh.colors_per_rank, mesh.cell_rank
        )

    def test_rank_partition_balanced(self, mesh):
        counts = np.bincount(mesh.cell_rank, minlength=9)
        assert counts.min() > 0.6 * counts.mean()
        assert counts.max() < 1.4 * counts.mean()

    def test_too_few_triangles_rejected(self):
        with pytest.raises(ValueError, match="raise n_points"):
            UnstructuredMesh2D(64, colors_per_rank=24, n_points=100)


class TestBinning:
    def test_positions_map_to_valid_colors(self, mesh):
        rng = np.random.default_rng(1)
        colors = mesh.color_of_position(rng.random(2000), rng.random(2000))
        assert colors.min() >= 0 and colors.max() < mesh.n_colors

    def test_centroid_maps_to_own_color(self, mesh):
        centroids = mesh.cell_centroids()
        # sample some interior cells
        idx = np.arange(0, mesh.n_cells, 7)
        colors = mesh.color_of_position(centroids[idx, 0], centroids[idx, 1])
        np.testing.assert_array_equal(colors, mesh.cell_color[idx])

    def test_corner_positions_covered(self, mesh):
        eps = 1e-9
        xs = np.array([eps, eps, 1 - eps, 1 - eps, 0.5])
        ys = np.array([eps, 1 - eps, eps, 1 - eps, 0.5])
        colors = mesh.color_of_position(xs, ys)
        assert (colors >= 0).all()


class TestCommGraph:
    def test_edges_between_distinct_colors(self, mesh):
        graph = mesh.neighbor_comm_graph()
        assert graph.n_edges > 0
        assert (graph.src != graph.dst).all()

    def test_home_mapping_is_local(self, mesh):
        # The nested partitioning keeps most color adjacency within a
        # rank's own colors, so the home mapping's off-rank fraction is
        # well below a scattered mapping's.
        graph = mesh.neighbor_comm_graph()
        home = mesh.home_assignment()
        scattered = np.arange(mesh.n_colors) % mesh.n_ranks
        assert graph.off_rank_volume(home) < 0.8 * graph.off_rank_volume(scattered)


class TestPICIntegration:
    def test_pic_runs_on_unstructured_mesh(self, mesh):
        scen = BDotScenario(initial_particles=2000, injection_per_step=20, seed=2)
        sim = PICSimulation(
            mesh,
            scen,
            workload=ColorWorkloadModel(),
            mode="amt",
            balancer=TemperedLB(n_trials=1, n_iters=3, fanout=3, rounds=4),
            lb_schedule=lambda s: s == 2 or (s > 2 and s % 10 == 0),
            seed=3,
        )
        series = sim.run(25)
        imb = series.series("imbalance")
        assert imb[20] < imb[1]

    def test_variable_cells_per_color_in_load_model(self, mesh):
        model = ColorWorkloadModel(seconds_per_particle=0.0, seconds_per_cell=1.0)
        loads = model.loads_from_counts(mesh, np.zeros(mesh.n_colors, dtype=int))
        # Load floor tracks the per-color cell counts (non-uniform).
        np.testing.assert_allclose(loads, mesh.cells_per_color.astype(float))
        assert loads.std() > 0

    def test_deterministic(self):
        a = UnstructuredMesh2D(4, colors_per_rank=3, n_points=300, seed=9)
        b = UnstructuredMesh2D(4, colors_per_rank=3, n_points=300, seed=9)
        np.testing.assert_array_equal(a.cell_color, b.cell_color)
