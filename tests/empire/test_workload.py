"""Unit tests for repro.empire.workload and fields."""

import numpy as np
import pytest

from repro.empire.fields import FieldSolveModel
from repro.empire.mesh import Mesh2D
from repro.empire.particles import ParticlePopulation
from repro.empire.workload import ColorWorkloadModel


class TestColorWorkloadModel:
    def test_affine_in_counts(self):
        mesh = Mesh2D(4, colors_per_rank=2, cells_per_color=10)
        model = ColorWorkloadModel(seconds_per_particle=2.0, seconds_per_cell=0.5)
        counts = np.array([0, 1, 2, 3, 4, 5, 6, 7])
        loads = model.loads_from_counts(mesh, counts)
        np.testing.assert_allclose(loads, 0.5 * 10 + 2.0 * counts)

    def test_color_loads_uses_binned_particles(self):
        mesh = Mesh2D(4, colors_per_rank=1)
        model = ColorWorkloadModel(seconds_per_particle=1.0, seconds_per_cell=0.0)
        pop = ParticlePopulation(np.array([[0.1, 0.1], [0.9, 0.9]]), np.zeros((2, 2)))
        loads = model.color_loads(mesh, pop)
        assert loads.sum() == pytest.approx(2.0)

    def test_count_shape_checked(self):
        mesh = Mesh2D(4, colors_per_rank=2)
        with pytest.raises(ValueError, match="one count per color"):
            ColorWorkloadModel().loads_from_counts(mesh, np.zeros(3))

    def test_zero_particles_gives_cell_floor(self):
        mesh = Mesh2D(2, colors_per_rank=2, cells_per_color=8)
        model = ColorWorkloadModel(seconds_per_particle=1.0, seconds_per_cell=0.25)
        loads = model.loads_from_counts(mesh, np.zeros(4, dtype=int))
        np.testing.assert_allclose(loads, 2.0)

    def test_negative_coefficients_rejected(self):
        with pytest.raises(ValueError):
            ColorWorkloadModel(seconds_per_particle=-1.0)


class TestFieldSolveModel:
    def test_balanced_without_jitter(self):
        model = FieldSolveModel(seconds_per_cell=1e-3, fixed_seconds=0.1, jitter=0.0)
        times = model.step_time(100, 8)
        np.testing.assert_allclose(times, 0.2)

    def test_jitter_varies_but_bounded(self):
        model = FieldSolveModel(seconds_per_cell=1e-3, fixed_seconds=0.0, jitter=0.05, seed=0)
        times = model.step_time(1000, 64)
        assert times.std() > 0
        assert times.min() >= 0.5 * 1.0 and times.max() <= 1.5 * 1.0

    def test_scales_with_cells(self):
        model = FieldSolveModel(seconds_per_cell=1e-3, fixed_seconds=0.0, jitter=0.0)
        assert model.step_time(200, 2)[0] == 2 * model.step_time(100, 2)[0]
