"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestVersion:
    def test_prints_version(self, capsys):
        assert main(["version"]) == 0
        assert capsys.readouterr().out.strip() == "1.0.0"


class TestAnalyze:
    def test_single_criterion(self, capsys):
        code = main(
            [
                "analyze",
                "--criterion",
                "relaxed",
                "--tasks",
                "300",
                "--loaded-ranks",
                "4",
                "--ranks",
                "64",
                "--iters",
                "3",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "criterion: relaxed" in out
        assert "I0" in out

    def test_both_criteria_with_json(self, capsys, tmp_path):
        out_file = tmp_path / "analysis.json"
        code = main(
            [
                "analyze",
                "--tasks",
                "300",
                "--loaded-ranks",
                "4",
                "--ranks",
                "64",
                "--iters",
                "2",
                "--json",
                str(out_file),
            ]
        )
        assert code == 0
        assert "Criterion 35" in capsys.readouterr().out
        payload = json.loads(out_file.read_text())
        assert set(payload) == {"original", "relaxed"}
        assert len(payload["relaxed"]) == 2


class TestEmpire:
    def test_spmd_run(self, capsys):
        code = main(
            [
                "empire",
                "--config",
                "spmd",
                "--ranks",
                "16",
                "--steps",
                "10",
                "--lb-period",
                "5",
                "--particles",
                "500",
            ]
        )
        assert code == 0
        assert "SPMD (no AMT)" in capsys.readouterr().out

    def test_balanced_run_reports_speedup(self, capsys, tmp_path):
        out_file = tmp_path / "empire.json"
        code = main(
            [
                "empire",
                "--config",
                "greedy",
                "--ranks",
                "16",
                "--steps",
                "20",
                "--lb-period",
                "5",
                "--particles",
                "1000",
                "--json",
                str(out_file),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "speedup vs SPMD" in out
        rows = json.loads(out_file.read_text())
        assert len(rows) == 2

    def test_bad_configuration(self):
        with pytest.raises(ValueError, match="configuration"):
            main(["empire", "--config", "warp", "--steps", "5"])


class TestSweep:
    def test_runs_spec_file(self, capsys, tmp_path):
        from repro.analysis.io import save_json

        spec = {
            "workloads": {
                "w": {"generator": "random", "n_tasks": 100, "n_ranks": 8}
            },
            "strategies": {"greedy": {"kind": "greedy"}},
            "seeds": [0, 1],
        }
        spec_path = tmp_path / "spec.json"
        save_json(spec, spec_path)
        out_path = tmp_path / "rows.json"
        code = main(["sweep", str(spec_path), "--json", str(out_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "greedy" in out and "sweep over 2 seeds" in out
        rows = json.loads(out_path.read_text())
        assert len(rows) == 1
        assert rows[0]["raw"]["final"]


class TestTrace:
    def test_prints_gantt_and_stats(self, capsys):
        code = main(["trace", "--ranks", "6", "--tasks-per-rank", "3", "--width", "20"])
        out = capsys.readouterr().out
        assert code == 0
        assert "rank   0 |" in out
        assert "mean utilization" in out
        assert "messages by tag" in out


class TestAmr:
    def test_runs_mapping_study(self, capsys, tmp_path):
        out_file = tmp_path / "amr.json"
        code = main(
            ["amr", "--ranks", "8", "--phases", "8", "--mapping", "sfc", "--json", str(out_file)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "AMR mapping study (sfc)" in out
        rows = json.loads(out_file.read_text())
        assert rows[0]["phase"] == 0


class TestProtocols:
    def test_reports_costs(self, capsys, tmp_path):
        out_file = tmp_path / "protocols.json"
        code = main(["protocols", "--ranks", "16", "--json", str(out_file)])
        out = capsys.readouterr().out
        assert code == 0
        assert "allreduce" in out
        row = json.loads(out_file.read_text())[0]
        assert row["P"] == 16
        assert row["coverage"] > 0.5


class TestBench:
    def test_quick_bench_writes_json(self, capsys, tmp_path):
        out_file = tmp_path / "BENCH_perf.json"
        code = main(
            ["bench", "--quick", "--repeats", "1", "--json", str(out_file)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "transfer_incremental_vs_rebuild" in out
        payload = json.loads(out_file.read_text())
        assert payload["meta"]["quick"] is True
        names = {b["name"] for b in payload["benchmarks"]}
        assert {
            "inform/loop",
            "inform/batched",
            "transfer/rebuild",
            "transfer/incremental",
        } <= names
        assert payload["equivalent_transfers"] is True
        assert payload["speedups"]["transfer_incremental_vs_rebuild"] > 0
        assert payload["speedups"]["inform_batched_vs_loop"] > 0

    def test_profile_writes_hotspot_listings(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        code = main(["bench", "--quick", "--repeats", "1", "--profile", "--json", "-"])
        out = capsys.readouterr().out
        assert code == 0
        results = tmp_path / "benchmarks" / "results"
        written = sorted(p.name for p in results.glob("profile_*.txt"))
        assert {
            "profile_inform_batched.txt",
            "profile_transfer_incremental.txt",
            "profile_refinement_serial.txt",
        } <= set(written)
        text = (results / "profile_inform_batched.txt").read_text()
        assert "cumulative" in text  # pstats sort order header
        assert "[profile: " in out

    def test_dash_skips_json(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        code = main(["bench", "--quick", "--repeats", "1", "--json", "-"])
        assert code == 0
        assert "perf bench" in capsys.readouterr().out
        assert not (tmp_path / "BENCH_perf.json").exists()

    def test_workers_and_executor_flags(self, capsys, tmp_path):
        out_file = tmp_path / "BENCH_perf.json"
        code = main(
            [
                "bench",
                "--quick",
                "--repeats",
                "1",
                "--workers",
                "2",
                "--executor",
                "thread",
                "--json",
                str(out_file),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "refinement utilization" in out
        payload = json.loads(out_file.read_text())
        assert payload["meta"]["cpu_count"] >= 1
        refinement = payload["refinement_parallel"]
        assert refinement["executor"] == "thread"
        assert refinement["n_workers"] == 2
        assert refinement["stage_wall_seconds"] > 0
        by_name = {b["name"]: b for b in payload["benchmarks"]}
        assert by_name["refinement/serial"]["executor"] == "serial"
        assert by_name["refinement/parallel"]["executor"] == "thread"


class TestExecutorFlags:
    def test_parser_accepts_workers_and_executor(self):
        for command in (
            ["stats", "--workers", "2", "--executor", "process"],
            ["empire", "--workers", "4", "--executor", "thread"],
            ["bench", "--workers", "2", "--executor", "serial"],
        ):
            args = build_parser().parse_args(command)
            assert args.workers in (2, 4)
            assert args.executor in ("serial", "thread", "process")

    def test_parser_rejects_unknown_executor(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench", "--executor", "gpu"])

    def test_stats_runs_with_process_executor(self, capsys):
        code = main(
            [
                "stats",
                "--tasks",
                "200",
                "--ranks",
                "16",
                "--phases",
                "1",
                "--trials",
                "2",
                "--iters",
                "1",
                "--workers",
                "2",
                "--executor",
                "process",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "lb.iteration" in out
        assert "wall.refinement" in out
