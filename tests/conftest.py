"""Shared fixtures for the test suite."""

import pytest

from repro.core._kernels import reset_numba_warnings


@pytest.fixture(autouse=True)
def _fresh_numba_warnings():
    """Isolate the warn-once numba-degradation set per test.

    Without this, whichever test first requests ``kernel="numba"``
    consumes the single RuntimeWarning and any later test asserting on
    it fails depending on collection order.
    """
    reset_numba_warnings()
    yield
    reset_numba_warnings()
