"""Unit tests for repro.workloads.synthetic."""

import numpy as np
import pytest

from repro.workloads import (
    paper_analysis_scenario,
    random_distribution,
    skewed_distribution,
)


class TestPaperScenario:
    def test_default_shape(self):
        d = paper_analysis_scenario(n_tasks=100, n_loaded_ranks=4, n_ranks=64, seed=0)
        assert d.n_tasks == 100
        assert d.n_ranks == 64

    def test_only_loaded_ranks_have_tasks(self):
        d = paper_analysis_scenario(n_tasks=100, n_loaded_ranks=4, n_ranks=64, seed=0)
        assert set(np.unique(d.assignment)) <= set(range(4))
        assert (d.rank_loads()[4:] == 0).all()

    def test_paper_scale_initial_imbalance(self):
        # The paper reports I0 = 280 for 10^4 tasks on 16 of 4096 ranks;
        # our load draw lands in the same regime (~250-300).
        d = paper_analysis_scenario(seed=3)
        assert 200 < d.imbalance() < 350

    def test_loads_positive(self):
        d = paper_analysis_scenario(n_tasks=500, n_loaded_ranks=2, n_ranks=8, seed=1)
        assert (d.task_loads > 0).all()

    def test_mean_load_respected(self):
        d = paper_analysis_scenario(
            n_tasks=5000, n_loaded_ranks=2, n_ranks=8, mean_load=3.0, seed=2
        )
        assert d.task_loads.mean() == pytest.approx(3.0, rel=0.1)

    def test_zero_cv_constant_loads(self):
        d = paper_analysis_scenario(
            n_tasks=10, n_loaded_ranks=2, n_ranks=4, load_cv=0.0, seed=0
        )
        assert np.ptp(d.task_loads) == 0.0

    def test_loaded_exceeding_total_rejected(self):
        with pytest.raises(ValueError, match="exceed"):
            paper_analysis_scenario(n_loaded_ranks=10, n_ranks=5)

    def test_deterministic(self):
        a = paper_analysis_scenario(n_tasks=50, n_loaded_ranks=2, n_ranks=8, seed=7)
        b = paper_analysis_scenario(n_tasks=50, n_loaded_ranks=2, n_ranks=8, seed=7)
        np.testing.assert_array_equal(a.assignment, b.assignment)
        np.testing.assert_array_equal(a.task_loads, b.task_loads)


class TestSkewed:
    def test_zero_skew_roughly_uniform(self):
        d = skewed_distribution(20000, 10, skew=0.0, seed=0)
        counts = np.bincount(d.assignment, minlength=10)
        assert counts.min() > 0.8 * counts.mean()

    def test_high_skew_concentrates(self):
        d = skewed_distribution(5000, 50, skew=2.5, seed=0)
        counts = np.bincount(d.assignment, minlength=50)
        assert counts[0] > 0.5 * d.n_tasks

    def test_negative_skew_rejected(self):
        with pytest.raises(ValueError, match="skew"):
            skewed_distribution(10, 4, skew=-1.0)

    def test_imbalance_grows_with_skew(self):
        low = skewed_distribution(5000, 32, skew=0.5, seed=1)
        high = skewed_distribution(5000, 32, skew=2.0, seed=1)
        assert high.imbalance() > low.imbalance()


class TestRandom:
    def test_low_imbalance(self):
        d = random_distribution(50000, 16, seed=0)
        assert d.imbalance() < 0.2

    def test_cv_controls_spread(self):
        tight = random_distribution(5000, 4, load_cv=0.1, seed=2)
        wide = random_distribution(5000, 4, load_cv=1.5, seed=2)
        assert wide.task_loads.std() > tight.task_loads.std()

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            random_distribution(0, 4)
        with pytest.raises(ValueError):
            random_distribution(10, 4, mean_load=-1.0)
        with pytest.raises(ValueError):
            random_distribution(10, 4, load_cv=-0.5)
