"""Unit tests for repro.workloads.timevarying."""

import numpy as np
import pytest

from repro.workloads import MovingHotspot, PersistenceNoise


class TestMovingHotspot:
    def test_loads_bounded_below_by_base(self):
        w = MovingHotspot(100, base=2.0, amplitude=5.0)
        assert (w.loads(0) >= 2.0).all()

    def test_peak_near_center(self):
        w = MovingHotspot(1000, base=1.0, amplitude=10.0, sigma=0.02, center0=0.5)
        loads = w.loads(0)
        peak_pos = np.argmax(loads) / 1000
        assert abs(peak_pos - 0.5) < 0.01

    def test_center_drifts(self):
        w = MovingHotspot(100, speed=0.01, center0=0.0)
        assert w.center(10) == pytest.approx(0.1)
        assert w.center(150) == pytest.approx(0.5)  # wraps mod 1

    def test_zero_speed_is_static(self):
        w = MovingHotspot(50, speed=0.0)
        np.testing.assert_array_equal(w.loads(0), w.loads(100))

    def test_persistence_high_for_slow_drift(self):
        slow = MovingHotspot(500, speed=0.0005, sigma=0.1)
        assert slow.persistence(0) > 0.99

    def test_persistence_decays_with_speed(self):
        slow = MovingHotspot(500, speed=0.001, sigma=0.05)
        fast = MovingHotspot(500, speed=0.2, sigma=0.05)
        assert fast.persistence(0) < slow.persistence(0)

    def test_total_load_roughly_conserved_over_time(self):
        # The hotspot moves but does not grow: total load is constant
        # up to discretization of the Gaussian on the grid.
        w = MovingHotspot(2000, base=1.0, amplitude=5.0, sigma=0.03)
        totals = [w.loads(t).sum() for t in range(0, 200, 20)]
        assert np.ptp(totals) / np.mean(totals) < 0.01

    def test_validation(self):
        with pytest.raises(ValueError):
            MovingHotspot(0)
        with pytest.raises(ValueError):
            MovingHotspot(10, sigma=0.0)
        with pytest.raises(ValueError):
            MovingHotspot(10, amplitude=-1.0)


class TestPersistenceNoise:
    def test_zero_sigma_identity(self):
        noise = PersistenceNoise(sigma=0.0)
        x = np.array([1.0, 2.0, 3.0])
        np.testing.assert_array_equal(noise.perturb(x), x)

    def test_zero_sigma_returns_copy(self):
        noise = PersistenceNoise(sigma=0.0)
        x = np.array([1.0])
        out = noise.perturb(x)
        out[0] = 99.0
        assert x[0] == 1.0

    def test_noise_preserves_positivity(self):
        noise = PersistenceNoise(sigma=0.5, seed=0)
        x = np.full(1000, 2.0)
        out = noise.perturb(x)
        assert (out > 0).all()

    def test_noise_magnitude_scales_with_sigma(self):
        x = np.full(5000, 1.0)
        small = PersistenceNoise(sigma=0.05, seed=1).perturb(x)
        large = PersistenceNoise(sigma=0.8, seed=1).perturb(x)
        assert large.std() > small.std()

    def test_negative_sigma_rejected(self):
        with pytest.raises(ValueError):
            PersistenceNoise(sigma=-0.1)
