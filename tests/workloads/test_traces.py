"""Unit tests for repro.workloads.traces."""

import numpy as np
import pytest

from repro.core.greedy import GreedyLB
from repro.core.tempered import TemperedLB
from repro.workloads.traces import LoadTrace, synthesize_trace


class TestLoadTrace:
    def test_validation(self):
        with pytest.raises(ValueError, match="2-D"):
            LoadTrace(np.ones(5))
        with pytest.raises(ValueError, match="non-empty"):
            LoadTrace(np.empty((0, 0)))
        with pytest.raises(ValueError, match="finite"):
            LoadTrace(np.array([[1.0, np.nan]]))

    def test_phase_access(self):
        trace = LoadTrace(np.array([[1.0, 2.0], [3.0, 4.0]]))
        np.testing.assert_array_equal(trace.phase(1), [3.0, 4.0])
        assert trace.n_phases == 2 and trace.n_tasks == 2

    def test_persistence_perfect_for_static(self):
        trace = LoadTrace(np.tile([1.0, 5.0, 2.0], (4, 1)))
        assert trace.persistence(0) == pytest.approx(1.0)
        assert trace.mean_persistence() == pytest.approx(1.0)

    def test_persistence_low_for_shuffled(self):
        rng = np.random.default_rng(0)
        loads = np.stack([rng.permutation(np.arange(1.0, 101.0)) for _ in range(3)])
        trace = LoadTrace(loads)
        assert abs(trace.persistence(0)) < 0.5

    def test_persistence_index_bounds(self):
        trace = LoadTrace(np.ones((2, 3)))
        with pytest.raises(IndexError):
            trace.persistence(1)

    def test_roundtrip(self, tmp_path):
        trace = synthesize_trace("noisy", n_phases=4, n_tasks=8, seed=1)
        path = tmp_path / "trace.json"
        trace.save(path)
        loaded = LoadTrace.load(path)
        np.testing.assert_allclose(loaded.loads, trace.loads)

    def test_corrupt_header_rejected(self, tmp_path):
        from repro.analysis.io import save_json

        path = tmp_path / "bad.json"
        save_json({"n_phases": 9, "n_tasks": 2, "loads": [[1.0, 2.0]]}, path)
        with pytest.raises(ValueError, match="inconsistent"):
            LoadTrace.load(path)


class TestSynthesize:
    def test_hotspot_moves(self):
        trace = synthesize_trace("hotspot", n_phases=30, n_tasks=200)
        assert np.argmax(trace.phase(0)) != np.argmax(trace.phase(29))
        assert trace.mean_persistence() > 0.8

    def test_noisy_static(self):
        trace = synthesize_trace("noisy", n_phases=10, n_tasks=100, seed=2)
        assert trace.mean_persistence() > 0.8

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown trace kind"):
            synthesize_trace("psychic")


class TestReplay:
    def test_balancing_improves_executed_imbalance(self):
        trace = synthesize_trace("hotspot", n_phases=20, n_tasks=256)
        balanced = trace.replay(TemperedLB(n_trials=1, n_iters=4, fanout=3, rounds=4),
                                n_ranks=16, lb_period=2, seed=0)
        # Steady-state executed imbalance is small.
        steady = [imb for phase, imb, _ in balanced if phase > 6]
        assert np.mean(steady) < 0.5

    def test_first_phase_never_balanced(self):
        trace = synthesize_trace("noisy", n_phases=3, n_tasks=64, seed=3)
        rows = trace.replay(GreedyLB(), n_ranks=8, lb_period=1)
        assert rows[0][2] == 0  # no migrations in phase 0
        assert rows[1][2] > 0

    def test_validation(self):
        trace = synthesize_trace("noisy", n_phases=2, n_tasks=8)
        with pytest.raises(ValueError):
            trace.replay(GreedyLB(), n_ranks=0)
