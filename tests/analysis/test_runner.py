"""Unit tests for repro.analysis.runner (declarative sweeps)."""

import pytest

from repro.analysis.runner import SweepSpec, run_sweep


def small_spec(**kw):
    defaults = dict(
        workloads={
            "concentrated": {
                "generator": "paper",
                "n_tasks": 200,
                "n_loaded_ranks": 2,
                "n_ranks": 16,
            }
        },
        strategies={
            "greedy": {"kind": "greedy"},
            "tempered": {"kind": "tempered", "n_trials": 1, "n_iters": 2},
        },
        seeds=(0, 1),
    )
    defaults.update(kw)
    return SweepSpec(**defaults)


class TestSpecValidation:
    def test_requires_workloads_and_strategies(self):
        with pytest.raises(ValueError, match="workload"):
            SweepSpec(workloads={}, strategies={"g": {"kind": "greedy"}})
        with pytest.raises(ValueError, match="strategy"):
            SweepSpec(workloads={"w": {"generator": "random"}}, strategies={})
        with pytest.raises(ValueError, match="seed"):
            small_spec(seeds=())

    def test_unknown_generator(self):
        with pytest.raises(ValueError, match="unknown generator"):
            SweepSpec(
                workloads={"w": {"generator": "cosmic"}},
                strategies={"g": {"kind": "greedy"}},
            )

    def test_strategy_needs_kind(self):
        with pytest.raises(ValueError, match="kind"):
            SweepSpec(
                workloads={"w": {"generator": "random", "n_tasks": 10, "n_ranks": 2}},
                strategies={"g": {"n_trials": 2}},
            )

    def test_roundtrip_dict(self):
        spec = small_spec()
        rebuilt = SweepSpec.from_dict(spec.to_dict())
        assert rebuilt == spec


class TestRunSweep:
    def test_one_row_per_cell(self):
        rows = run_sweep(small_spec())
        assert len(rows) == 2
        assert {r["strategy"] for r in rows} == {"greedy", "tempered"}

    def test_aggregation_over_seeds(self):
        rows = run_sweep(small_spec())
        for row in rows:
            assert len(row["raw"]["final"]) == 2
            assert row["final I"] == pytest.approx(
                sum(row["raw"]["final"]) / 2
            )
            assert row["final I std"] >= 0

    def test_strategies_actually_differ(self):
        rows = run_sweep(small_spec())
        by = {r["strategy"]: r for r in rows}
        assert by["greedy"]["final I"] <= by["tempered"]["final I"] + 1e-9

    def test_all_improve(self):
        rows = run_sweep(small_spec())
        for row in rows:
            assert row["final I"] < row["initial I"]

    def test_multiple_workloads(self):
        spec = small_spec(
            workloads={
                "a": {"generator": "random", "n_tasks": 100, "n_ranks": 8},
                "b": {"generator": "skewed", "n_tasks": 100, "n_ranks": 8, "skew": 1.0},
            }
        )
        rows = run_sweep(spec)
        assert len(rows) == 4
