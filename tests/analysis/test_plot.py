"""Unit tests for repro.analysis.plot (terminal plotting)."""

import numpy as np
import pytest

from repro.analysis.plot import histogram, sparkline, strip_chart


class TestSparkline:
    def test_length_matches_input(self):
        assert len(sparkline([1, 2, 3, 4])) == 4

    def test_monotone_ramp(self):
        out = sparkline([0, 1, 2, 3])
        assert out[0] == "▁" and out[-1] == "█"
        assert list(out) == sorted(out)

    def test_constant(self):
        assert sparkline([5, 5, 5]) == "▁" * 3

    def test_nan_renders_space(self):
        out = sparkline([1.0, np.nan, 2.0])
        assert out[1] == " "

    def test_all_nan(self):
        assert sparkline([np.nan, np.nan]) == "  "


class TestStripChart:
    def test_dimensions(self):
        out = strip_chart({"a": np.arange(100.0)}, width=30, height=8)
        lines = out.splitlines()
        assert len(lines) == 9  # height rows + legend
        assert all("|" in line for line in lines[:-1])

    def test_legend_lists_series(self):
        out = strip_chart({"up": [0, 1], "down": [1, 0]}, width=10, height=4)
        assert "up" in out and "down" in out

    def test_extremes_annotated(self):
        out = strip_chart({"a": [2.0, 10.0]}, width=10, height=4)
        assert "10" in out and "2" in out

    def test_log_scale(self):
        out = strip_chart({"a": [1.0, 10.0, 100.0]}, width=9, height=4, logy=True)
        assert "(log y)" in out
        assert "100" in out

    def test_empty_series_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            strip_chart({})

    def test_all_nan_series(self):
        assert strip_chart({"a": [np.nan, np.nan]}) == "(no data)"

    def test_validation(self):
        with pytest.raises(ValueError):
            strip_chart({"a": [1]}, width=0)


class TestHistogram:
    def test_counts_sum(self):
        rng = np.random.default_rng(0)
        values = rng.normal(size=500)
        out = histogram(values, bins=5)
        total = sum(int(line.rsplit(" ", 1)[1]) for line in out.splitlines())
        assert total == 500

    def test_rows_match_bins(self):
        out = histogram([1, 2, 3], bins=3)
        assert len(out.splitlines()) == 3

    def test_empty(self):
        assert histogram([]) == "(no data)"
