"""Unit tests for repro.analysis.tables."""

from repro.analysis import format_comparison_table, format_iteration_table, format_rows
from repro.analysis.experiment import CriterionStudy
from repro.core.base import IterationRecord


def make_records():
    return [
        IterationRecord(trial=1, iteration=1, transfers=10, rejections=90, imbalance=2.5),
        IterationRecord(trial=1, iteration=2, transfers=0, rejections=50, imbalance=2.5),
    ]


class TestIterationTable:
    def test_contains_all_rows(self):
        out = format_iteration_table(make_records(), 8.0, title="study")
        lines = out.splitlines()
        assert lines[0] == "study"
        # title + header + rule + iteration 0 + two records
        assert len(lines) == 6

    def test_iteration_zero_has_dashes(self):
        out = format_iteration_table(make_records(), 8.0)
        row0 = out.splitlines()[2]
        assert row0.count("-") >= 3
        assert "8" in row0

    def test_rejection_rate_formatting(self):
        out = format_iteration_table(make_records(), 8.0)
        assert "90.00" in out  # 90/(10+90) = 90%
        assert "100.00" in out  # 50/(0+50)


class TestComparisonTable:
    def test_columns_per_study(self):
        studies = {
            "Criterion 35": CriterionStudy("original", 8.0, make_records()),
            "Criterion 37": CriterionStudy("relaxed", 8.0, make_records()[:1]),
        }
        out = format_comparison_table(studies)
        assert "Criterion 35" in out and "Criterion 37" in out
        # shorter study padded with a dash
        assert out.splitlines()[-1].strip().endswith("-")


class TestGenericRows:
    def test_alignment_and_missing(self):
        rows = [
            {"Type": "SPMD", "t_total": 4762.0},
            {"Type": "AMT w/TemperedLB", "t_total": 2546.0, "t_lb": 11.0},
        ]
        out = format_rows(rows, ["Type", "t_total", "t_lb"], title="Fig. 3")
        lines = out.splitlines()
        assert lines[0] == "Fig. 3"
        assert "4762" in out and "2546" in out
        assert "-" in lines[3]  # missing t_lb rendered as dash

    def test_float_formatting(self):
        out = format_rows([{"x": 1.23456789}], ["x"])
        assert "1.235" in out
