"""Unit tests for repro.analysis.convergence."""

import numpy as np
import pytest

from repro.analysis.convergence import (
    analyze_convergence,
    iterations_to_reach,
)
from repro.analysis.experiment import criterion_study
from repro.workloads import paper_analysis_scenario


class TestAnalyzeConvergence:
    def test_geometric_decay_measured(self):
        series = [100.0 * 0.5**k for k in range(6)]
        summary = analyze_convergence(series)
        assert summary.decay_rate == pytest.approx(0.5, rel=1e-6)
        assert summary.improvement == pytest.approx(1 - 0.5**5)

    def test_stall_detection(self):
        series = [100.0, 50.0, 49.9, 49.9, 49.9]
        summary = analyze_convergence(series, stall_tol=0.01)
        assert summary.stalled_at == 2

    def test_no_stall_for_steady_decay(self):
        series = [100.0 * 0.7**k for k in range(8)]
        assert analyze_convergence(series, stall_tol=0.01).stalled_at is None

    def test_flat_sequence(self):
        summary = analyze_convergence([5.0, 5.0, 5.0])
        assert summary.decay_rate == pytest.approx(1.0)
        assert summary.stalled_at == 1
        assert summary.improvement == 0.0

    def test_validation(self):
        with pytest.raises(ValueError, match="at least two"):
            analyze_convergence([1.0])
        with pytest.raises(ValueError, match="finite"):
            analyze_convergence([1.0, np.nan])
        with pytest.raises(ValueError):
            analyze_convergence([1.0, -2.0])

    def test_on_real_criterion_studies(self):
        """The § V contrast, quantified: the relaxed criterion decays
        fast and does not stall early; the original stalls immediately."""
        dist = paper_analysis_scenario(n_tasks=600, n_loaded_ranks=4, n_ranks=128, seed=0)
        orig = criterion_study(dist, "original", n_iters=8, rng=1)
        relax = criterion_study(dist, "relaxed", n_iters=8, rng=1)
        # 5% relative tolerance: the original criterion's tail wobbles
        # a few percent per iteration without real progress, and where
        # exactly it freezes is seed- and engine-sensitive.
        s_orig = analyze_convergence(orig.imbalances(), stall_tol=0.05)
        s_relax = analyze_convergence(relax.imbalances(), stall_tol=0.05)
        assert s_relax.decay_rate < s_orig.decay_rate
        assert s_relax.improvement > s_orig.improvement
        # The original criterion freezes at a high value; "stalled" for
        # the relaxed criterion means converged near its floor.
        assert s_orig.stalled_at is not None
        assert s_orig.final > 10 * s_relax.final


class TestIterationsToReach:
    def test_basic(self):
        series = [100.0, 10.0, 1.0, 0.1]
        assert iterations_to_reach(series, 5.0) == 2
        assert iterations_to_reach(series, 200.0) == 0
        assert iterations_to_reach(series, 0.01) is None

    def test_validation(self):
        with pytest.raises(ValueError):
            iterations_to_reach([1.0], 0.0)
