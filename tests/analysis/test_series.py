"""Unit tests for repro.analysis.series."""

import numpy as np
import pytest

from repro.analysis import PhaseSeries


class TestPhaseSeries:
    def test_record_and_read(self):
        s = PhaseSeries()
        s.record(time=1.0, imbalance=0.5)
        s.record(time=2.0, imbalance=0.25)
        np.testing.assert_allclose(s.series("time"), [1.0, 2.0])
        assert s.n_phases == 2

    def test_missing_metric_is_nan(self):
        s = PhaseSeries()
        s.record(time=1.0)
        s.record(time=2.0, lb_cost=0.1)
        lb = s.series("lb_cost")
        assert np.isnan(lb[0]) and lb[1] == 0.1

    def test_new_metric_backfills(self):
        s = PhaseSeries()
        s.record(a=1.0)
        s.record(b=2.0)
        assert np.isnan(s.series("b")[0])
        assert np.isnan(s.series("a")[1])

    def test_window(self):
        s = PhaseSeries()
        for i in range(10):
            s.record(x=float(i))
        np.testing.assert_allclose(s.window("x", 2, 5), [2.0, 3.0, 4.0])

    def test_summary_ignores_nan(self):
        s = PhaseSeries()
        s.record(x=1.0)
        s.record(y=5.0)
        summ = s.summary()
        assert summ["x"]["mean"] == 1.0
        assert summ["y"]["max"] == 5.0

    def test_summary_empty_metric(self):
        s = PhaseSeries()
        s.record(x=1.0)
        s.metrics["ghost"] = [np.nan]
        assert s.summary()["ghost"]["sum"] == 0.0

    def test_to_rows(self):
        s = PhaseSeries()
        s.record(x=1.0)
        rows = s.to_rows()
        assert rows[0]["phase"] == 0
        assert rows[0]["x"] == 1.0

    def test_unknown_key_raises(self):
        with pytest.raises(KeyError):
            PhaseSeries().series("nope")
