"""Unit tests for repro.analysis.io."""

import numpy as np
import pytest

from repro.analysis import PhaseSeries
from repro.analysis.io import (
    load_json,
    load_records,
    load_series,
    save_json,
    save_records,
    save_series,
)
from repro.core.base import IterationRecord


class TestSeriesRoundTrip:
    def test_basic(self, tmp_path):
        s = PhaseSeries()
        s.record(x=1.0, y=2.0)
        s.record(x=3.0)
        path = tmp_path / "series.json"
        save_series(s, path)
        loaded = load_series(path)
        assert loaded.n_phases == 2
        np.testing.assert_allclose(loaded.series("x"), [1.0, 3.0])
        assert np.isnan(loaded.series("y")[1])

    def test_empty(self, tmp_path):
        path = tmp_path / "empty.json"
        save_series(PhaseSeries(), path)
        assert load_series(path).n_phases == 0

    def test_corrupt_length_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        save_json({"n_phases": 3, "metrics": {"x": [1.0]}}, path)
        with pytest.raises(ValueError, match="entries"):
            load_series(path)


class TestRecordsRoundTrip:
    def test_roundtrip(self, tmp_path):
        records = [
            IterationRecord(1, 1, 10, 5, 2.5, gossip_messages=100, gossip_bytes=1600),
            IterationRecord(1, 2, 0, 8, 2.5),
        ]
        path = tmp_path / "records.json"
        save_records(records, path)
        loaded = load_records(path)
        assert loaded == records
        assert loaded[0].rejection_rate == pytest.approx(100 * 5 / 15)


class TestJsonHelpers:
    def test_creates_parent_dirs(self, tmp_path):
        path = tmp_path / "a" / "b" / "data.json"
        save_json({"k": 1}, path)
        assert load_json(path) == {"k": 1}
