"""Unit tests for repro.analysis.report."""

import numpy as np
import pytest

from repro.analysis.report import lb_report
from repro.core.greedy import GreedyLB
from repro.core.tempered import TemperedLB
from repro.workloads import paper_analysis_scenario


@pytest.fixture()
def dist():
    return paper_analysis_scenario(n_tasks=300, n_loaded_ranks=4, n_ranks=32, seed=0)


class TestLbReport:
    def test_sections_present(self, dist):
        result = TemperedLB(n_trials=1, n_iters=3).rebalance(dist, rng=1)
        report = lb_report(dist, result)
        assert "TemperedLB report" in report
        assert "before:" in report and "after:" in report
        assert "histogram" in report
        assert "heaviest 5 ranks" in report
        assert "iteration history" in report
        assert "rejection rate" in report

    def test_no_records_for_centralized(self, dist):
        result = GreedyLB().rebalance(dist)
        report = lb_report(dist, result)
        assert "iteration history" not in report
        assert "GreedyLB report" in report

    def test_migration_percentage(self, dist):
        result = GreedyLB().rebalance(dist)
        pct = 100.0 * result.n_migrations / dist.n_tasks
        assert f"({pct:.1f}% of tasks)" in lb_report(dist, result)

    def test_mismatched_result_rejected(self, dist):
        result = GreedyLB().rebalance(dist)
        other = paper_analysis_scenario(n_tasks=10, n_loaded_ranks=2, n_ranks=4, seed=1)
        with pytest.raises(ValueError, match="belong"):
            lb_report(other, result)

    def test_improvement_visible_in_stats(self, dist):
        result = GreedyLB().rebalance(dist)
        report = lb_report(dist, result)
        before_line = next(l for l in report.splitlines() if l.strip().startswith("before"))
        after_line = next(l for l in report.splitlines() if l.strip().startswith("after"))
        i_before = float(before_line.split("I=")[1].split()[0])
        i_after = float(after_line.split("I=")[1].split()[0])
        assert i_after < i_before
