"""Unit tests for repro.analysis.experiment."""

import pytest

from repro import GreedyLB, TemperedLB
from repro.analysis import criterion_comparison, criterion_study, strategy_comparison
from repro.workloads import paper_analysis_scenario


def scenario():
    return paper_analysis_scenario(n_tasks=400, n_loaded_ranks=4, n_ranks=64, seed=0)


class TestCriterionStudy:
    def test_records_one_per_iteration(self):
        s = criterion_study(scenario(), "relaxed", n_iters=4, rng=0)
        assert len(s.records) == 4
        assert [r.iteration for r in s.records] == [1, 2, 3, 4]

    def test_imbalances_include_iteration_zero(self):
        s = criterion_study(scenario(), "relaxed", n_iters=3, rng=0)
        vals = s.imbalances()
        assert len(vals) == 4
        assert vals[0] == pytest.approx(s.initial_imbalance)

    def test_relaxed_outperforms_original(self):
        d = scenario()
        orig = criterion_study(d, "original", n_iters=6, rng=1)
        relax = criterion_study(d, "relaxed", n_iters=6, rng=1)
        assert relax.final_imbalance < orig.final_imbalance

    def test_original_high_rejection_after_first_iteration(self):
        # The § V-B signature: near-total rejection from iteration 2 on.
        s = criterion_study(scenario(), "original", n_iters=5, rng=2)
        later = [r.rejection_rate for r in s.records[1:]]
        assert min(later) > 80.0

    def test_relaxed_rejection_starts_low_then_climbs(self):
        s = criterion_study(scenario(), "relaxed", n_iters=6, rng=2)
        assert s.records[0].rejection_rate < s.records[-1].rejection_rate

    def test_invalid_criterion(self):
        with pytest.raises(ValueError, match="criterion"):
            criterion_study(scenario(), "bogus")

    def test_final_imbalance_without_records(self):
        from repro.analysis.experiment import CriterionStudy

        s = CriterionStudy(criterion="relaxed", initial_imbalance=5.0)
        assert s.final_imbalance == 5.0


class TestCriterionComparison:
    def test_both_criteria_present(self):
        out = criterion_comparison(scenario(), n_iters=3, seed=0)
        assert set(out) == {"original", "relaxed"}

    def test_same_initial_state(self):
        out = criterion_comparison(scenario(), n_iters=2, seed=0)
        assert out["original"].initial_imbalance == pytest.approx(
            out["relaxed"].initial_imbalance
        )


class TestStrategyComparison:
    def test_summary_fields(self):
        out = strategy_comparison(
            scenario(),
            {"greedy": GreedyLB(), "tempered": TemperedLB(n_trials=1, n_iters=2)},
            seed=0,
        )
        assert set(out) == {"greedy", "tempered"}
        for row in out.values():
            assert {"initial_imbalance", "final_imbalance", "migrations"} <= set(row)
            assert row["final_imbalance"] <= row["initial_imbalance"]
