"""Cross-module integration tests.

These tie the three layers together: phase-level strategies, the
event-level runtime, and the EMPIRE surrogate.
"""

import numpy as np
import pytest

from repro import TemperedLB
from repro.core.distribution import Distribution
from repro.core.tempered import TemperedConfig
from repro.empire import EmpireConfig, run_empire
from repro.runtime import AMTRuntime, LBManager
from repro.workloads import MovingHotspot, paper_analysis_scenario


class TestEventVsPhaseLevel:
    """The event-level LB episode and the phase-level strategy implement
    the same algorithm; on the same workload they must land in the same
    quality class."""

    def test_same_quality_class(self):
        n_ranks, tasks_per_rank = 32, 8
        rng = np.random.default_rng(5)
        task_loads = rng.gamma(4.0, 0.25, size=n_ranks * tasks_per_rank)
        assignment = np.zeros(n_ranks * tasks_per_rank, dtype=np.int64)
        config = TemperedConfig(n_trials=1, n_iters=4, fanout=4, rounds=5)

        # Phase level.
        dist = Distribution(task_loads, assignment, n_ranks)
        phase = TemperedLB(config).rebalance(dist, rng=np.random.default_rng(1))

        # Event level.
        runtime = AMTRuntime(n_ranks, task_loads, assignment.copy())
        runtime.execute_phase()
        event = LBManager(runtime, config, seed=1).run_episode()

        assert phase.final_imbalance < 0.05 * phase.initial_imbalance
        assert event.final_imbalance < 0.05 * event.initial_imbalance
        # Within a factor of 3 of each other (different message orders).
        ratio = max(phase.final_imbalance, 1e-3) / max(event.final_imbalance, 1e-3)
        assert 1 / 3 < ratio < 3

    def test_event_level_charges_time_phase_level_does_not(self):
        n_ranks = 16
        rng = np.random.default_rng(0)
        task_loads = rng.random(64)
        assignment = np.zeros(64, dtype=np.int64)
        runtime = AMTRuntime(n_ranks, task_loads, assignment)
        runtime.execute_phase()
        before = runtime.system.engine.now
        LBManager(runtime, TemperedConfig(n_trials=1, n_iters=1, fanout=2, rounds=2), seed=0).run_episode()
        assert runtime.system.engine.now > before


class TestTimeVaryingWorkloads:
    def test_repeated_balancing_tracks_moving_hotspot(self):
        """With a drifting hotspot, re-balancing every few phases keeps
        the imbalance bounded while a one-shot balance decays."""
        n_ranks, n_tasks = 16, 256
        hotspot = MovingHotspot(n_tasks, base=0.5, amplitude=20.0, sigma=0.03, speed=0.01)
        # Blocked layout: adjacent tasks (which the hotspot loads
        # together) start on the same rank, as a domain decomposition
        # would place them.
        assignment = np.arange(n_tasks) * n_ranks // n_tasks
        lb = TemperedLB(n_trials=1, n_iters=4, fanout=4, rounds=4)
        rng = np.random.default_rng(2)

        one_shot = assignment.copy()
        periodic = assignment.copy()
        one_shot_done = False
        one_shot_imbalances, periodic_imbalances = [], []
        for phase in range(30):
            loads = hotspot.loads(phase)
            if not one_shot_done:
                res = lb.rebalance(Distribution(loads, one_shot, n_ranks), rng=rng)
                one_shot = res.assignment
                one_shot_done = True
            if phase % 5 == 0:
                res = lb.rebalance(Distribution(loads, periodic, n_ranks), rng=rng)
                periodic = res.assignment
            for sink, assign in ((one_shot_imbalances, one_shot), (periodic_imbalances, periodic)):
                rank_loads = np.bincount(assign, weights=loads, minlength=n_ranks)
                sink.append(rank_loads.max() / rank_loads.mean() - 1)
        assert np.mean(periodic_imbalances[10:]) < np.mean(one_shot_imbalances[10:])

    def test_persistence_is_what_makes_lb_work(self):
        """Balancing on stale loads only helps while persistence holds:
        a fast-moving hotspot defeats infrequent balancing."""
        n_ranks, n_tasks = 16, 256
        slow = MovingHotspot(n_tasks, base=0.5, amplitude=20.0, sigma=0.05, speed=0.001)
        fast = MovingHotspot(n_tasks, base=0.5, amplitude=20.0, sigma=0.05, speed=0.2)
        assert slow.persistence(0) > 0.99
        assert fast.persistence(0) < 0.9

        lb = TemperedLB(n_trials=1, n_iters=4, fanout=4, rounds=4)
        outcomes = {}
        for name, hotspot in (("slow", slow), ("fast", fast)):
            assignment = np.arange(n_tasks) * n_ranks // n_tasks
            res = lb.rebalance(
                Distribution(hotspot.loads(0), assignment, n_ranks),
                rng=np.random.default_rng(3),
            )
            # Execute the NEXT phase's loads under the balanced mapping.
            next_loads = np.bincount(
                res.assignment, weights=hotspot.loads(1), minlength=n_ranks
            )
            outcomes[name] = next_loads.max() / next_loads.mean() - 1
        assert outcomes["slow"] < outcomes["fast"]


class TestEndToEndDeterminism:
    def test_empire_run_bit_stable(self):
        cfg = EmpireConfig(
            configuration="tempered",
            n_ranks=25,
            colors_per_rank=4,
            n_steps=30,
            lb_period=10,
            initial_particles=2000,
            injection_per_step=20,
            n_trials=1,
            n_iters=2,
        )
        a, b = run_empire(cfg), run_empire(cfg)
        assert a.t_total == b.t_total
        np.testing.assert_array_equal(
            a.series.series("imbalance"), b.series.series("imbalance")
        )

    def test_analysis_scenario_stable(self):
        a = paper_analysis_scenario(n_tasks=100, n_loaded_ranks=4, n_ranks=32, seed=9)
        b = paper_analysis_scenario(n_tasks=100, n_loaded_ranks=4, n_ranks=32, seed=9)
        assert a.imbalance() == b.imbalance()
