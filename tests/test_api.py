"""Public API surface tests: exports, docstrings, __all__ hygiene."""

import importlib
import inspect

import pytest

PUBLIC_MODULES = [
    "repro",
    "repro.cli",
    "repro.core",
    "repro.core.base",
    "repro.core.baselines",
    "repro.core.cmf",
    "repro.core.comm",
    "repro.core.criteria",
    "repro.core.distribution",
    "repro.core.gossip",
    "repro.core.grapevine",
    "repro.core.graphpart",
    "repro.core.greedy",
    "repro.core.hier",
    "repro.core.knowledge",
    "repro.core.metrics",
    "repro.core.ordering",
    "repro.core.refine",
    "repro.core.refinement",
    "repro.core.registry",
    "repro.core.tempered",
    "repro.core.transfer",
    "repro.sim",
    "repro.sim.engine",
    "repro.sim.messages",
    "repro.sim.network",
    "repro.sim.process",
    "repro.sim.reductions",
    "repro.sim.rng",
    "repro.sim.termination",
    "repro.sim.trace",
    "repro.empire.vt_mode",
    "repro.runtime",
    "repro.runtime.amt",
    "repro.runtime.distributed_gossip",
    "repro.runtime.epochs",
    "repro.runtime.lbmanager",
    "repro.runtime.migration",
    "repro.runtime.phase",
    "repro.runtime.work_stealing",
    "repro.empire",
    "repro.empire.app",
    "repro.empire.bdot",
    "repro.empire.diagnostics",
    "repro.empire.electrostatic",
    "repro.empire.fields",
    "repro.empire.mesh",
    "repro.empire.particles",
    "repro.empire.pic",
    "repro.empire.repartition",
    "repro.empire.unstructured",
    "repro.empire.workload",
    "repro.workloads",
    "repro.workloads.synthetic",
    "repro.workloads.timevarying",
    "repro.workloads.traces",
    "repro.amr",
    "repro.amr.app",
    "repro.amr.front",
    "repro.amr.morton",
    "repro.amr.quadtree",
    "repro.md",
    "repro.md.app",
    "repro.md.cells",
    "repro.md.scenario",
    "repro.analysis",
    "repro.analysis.convergence",
    "repro.analysis.experiment",
    "repro.analysis.io",
    "repro.analysis.plot",
    "repro.analysis.report",
    "repro.analysis.runner",
    "repro.analysis.series",
    "repro.analysis.tables",
    "repro.util",
    "repro.util.validation",
]


@pytest.mark.parametrize("name", PUBLIC_MODULES)
def test_module_importable_with_docstring(name):
    module = importlib.import_module(name)
    assert module.__doc__, f"{name} lacks a module docstring"


@pytest.mark.parametrize("name", [m for m in PUBLIC_MODULES if "." in m])
def test_all_entries_exist(name):
    module = importlib.import_module(name)
    for symbol in getattr(module, "__all__", []):
        assert hasattr(module, symbol), f"{name}.__all__ lists missing {symbol}"


def test_top_level_exports():
    import repro

    for symbol in repro.__all__:
        assert hasattr(repro, symbol)
    assert repro.__version__ == "1.0.0"


@pytest.mark.parametrize("name", PUBLIC_MODULES)
def test_public_callables_documented(name):
    """Every public class and function carries a docstring."""
    module = importlib.import_module(name)
    exported = getattr(module, "__all__", [])
    for symbol in exported:
        obj = getattr(module, symbol)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            if obj.__module__.startswith("repro"):
                assert obj.__doc__, f"{name}.{symbol} lacks a docstring"


def test_strategies_share_the_interface():
    from repro import GrapevineLB, GreedyLB, HierLB, LoadBalancer, TemperedLB

    for cls in (GrapevineLB, GreedyLB, HierLB, TemperedLB):
        assert issubclass(cls, LoadBalancer)
        assert cls.name != LoadBalancer.name
