"""Unit tests for repro.md.cells."""

import numpy as np
import pytest

from repro.md.cells import CellGrid


class TestBinning:
    def test_cell_of_position(self):
        grid = CellGrid(4, 4)
        cells = grid.cell_of_position(np.array([[0.0, 0.0], [0.9, 0.9], [0.3, 0.6]]))
        np.testing.assert_array_equal(cells, [0, 15, 9])

    def test_counts_conserve(self):
        grid = CellGrid(8, 8)
        rng = np.random.default_rng(0)
        counts = grid.counts(rng.random((500, 2)))
        assert counts.sum() == 500

    def test_position_validation(self):
        grid = CellGrid(2, 2)
        with pytest.raises(ValueError, match="shape"):
            grid.cell_of_position(np.zeros(3))
        with pytest.raises(ValueError, match="0, 1"):
            grid.cell_of_position(np.array([[1.5, 0.0]]))

    def test_empty(self):
        grid = CellGrid(2, 2)
        assert grid.counts(np.empty((0, 2))).sum() == 0


class TestLoadModel:
    def test_quadratic_self_term(self):
        grid = CellGrid(4, 4, self_cost=2.0, pair_cost=0.0)
        counts = np.zeros(16)
        counts[5] = 3
        loads = grid.loads_from_counts(counts)
        assert loads[5] == pytest.approx(2.0 * 9 / 2)
        assert loads.sum() == pytest.approx(loads[5])

    def test_pair_term_with_neighbors(self):
        grid = CellGrid(4, 4, self_cost=0.0, pair_cost=1.0)
        counts = np.zeros(16)
        counts[5] = 2  # (1,1)
        counts[6] = 3  # (2,1), adjacent
        loads = grid.loads_from_counts(counts)
        # cell 5 pays n5 * n6 / 2 = 3; cell 6 pays the same.
        assert loads[5] == pytest.approx(3.0)
        assert loads[6] == pytest.approx(3.0)

    def test_periodic_neighborhood(self):
        grid = CellGrid(4, 4, self_cost=0.0, pair_cost=1.0)
        counts = np.zeros(16)
        counts[0] = 2  # (0,0)
        counts[3] = 5  # (3,0) — periodic neighbour of (0,0)
        loads = grid.loads_from_counts(counts)
        assert loads[0] == pytest.approx(5.0)

    def test_total_energy_symmetry(self):
        # Summing per-cell loads counts each pair interaction once.
        grid = CellGrid(6, 6, self_cost=0.0, pair_cost=1.0)
        rng = np.random.default_rng(1)
        counts = rng.integers(0, 10, size=36).astype(float)
        loads = grid.loads_from_counts(counts)
        # Independent computation: sum over ordered pairs / 2.
        g = counts.reshape(6, 6)
        total = 0.0
        for dj, di in ((0, 1), (0, -1), (1, 0), (-1, 0), (1, 1), (1, -1), (-1, 1), (-1, -1)):
            total += (g * np.roll(np.roll(g, dj, axis=0), di, axis=1)).sum()
        assert loads.sum() == pytest.approx(total / 2)

    def test_shape_validation(self):
        with pytest.raises(ValueError, match="one count per cell"):
            CellGrid(2, 2).loads_from_counts(np.zeros(5))


class TestCommGraph:
    def test_edges_cover_8_neighborhood(self):
        grid = CellGrid(4, 4)
        graph = grid.comm_graph(np.ones(16))
        # 16 cells x 8 neighbours / 2 = 64 edges on the periodic grid.
        assert graph.n_edges == 64

    def test_volume_tracks_occupancy(self):
        grid = CellGrid(4, 4)
        counts = np.zeros(16)
        counts[5] = 10
        graph = grid.comm_graph(counts, bytes_per_atom=1.0)
        # Edges touching cell 5 carry volume 10; others 0.
        touching = (graph.src == 5) | (graph.dst == 5)
        assert (graph.volume[touching] == 10.0).all()
        assert graph.volume[~touching].sum() == 0.0

    def test_home_assignment_blocked(self):
        grid = CellGrid(4, 4)
        home = grid.home_assignment(4)
        assert home.shape == (16,)
        np.testing.assert_array_equal(np.bincount(home), [4, 4, 4, 4])
