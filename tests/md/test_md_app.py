"""Tests for the MD scenario and phase driver."""

import numpy as np
import pytest

from repro.md import CellGrid, DropletScenario, MDConfig, MDSimulation


class TestDropletScenario:
    def test_particles_in_domain(self):
        scen = DropletScenario(n_particles=500, seed=0)
        for _ in range(10):
            scen.step()
            assert scen.positions.min() >= 0.0 and scen.positions.max() < 1.0

    def test_initially_clustered(self):
        scen = DropletScenario(n_particles=5000, droplet_fraction=0.8, seed=1)
        grid = CellGrid(16, 16)
        counts = grid.counts(scen.positions)
        # Dense droplets: the top 10% of cells hold > 40% of particles.
        top = np.sort(counts)[-26:]
        assert top.sum() > 0.4 * 5000

    def test_persistence_high_for_slow_dynamics(self):
        scen = DropletScenario(n_particles=5000, drift_speed=1e-3, diffusion=1e-4, seed=2)
        grid = CellGrid(16, 16)
        assert scen.persistence(grid) > 0.95

    def test_persistence_probe_restores_state(self):
        scen = DropletScenario(n_particles=200, seed=3)
        before = scen.positions.copy()
        grid = CellGrid(8, 8)
        scen.persistence(grid)
        np.testing.assert_array_equal(scen.positions, before)
        # Subsequent evolution unaffected by the probe.
        scen.step()
        a = scen.positions.copy()
        scen2 = DropletScenario(n_particles=200, seed=3)
        scen2.step()
        np.testing.assert_array_equal(a, scen2.positions)

    def test_validation(self):
        with pytest.raises(ValueError):
            DropletScenario(droplet_fraction=1.5)
        with pytest.raises(ValueError):
            DropletScenario(n_droplets=0)


class TestMDSimulation:
    def small(self, **kw):
        defaults = dict(
            n_ranks=8, gx=16, gy=16, n_phases=12, lb_period=3, n_particles=3000
        )
        defaults.update(kw)
        return MDConfig(**defaults)

    def test_runs_and_records(self):
        sim = MDSimulation(self.small())
        series = sim.run()
        assert series.n_phases == 12
        assert "off_rank_volume" in series.keys()

    def test_balancing_beats_home_mapping(self):
        balanced = MDSimulation(self.small())
        balanced.run()
        static = MDSimulation(self.small(lb_period=1000))  # LB never fires
        static.run()
        assert (
            balanced.series.series("imbalance")[6:].mean()
            < 0.7 * static.series.series("imbalance")[6:].mean()
        )

    def test_comm_aware_reduces_off_rank_volume(self):
        plain = MDSimulation(self.small(comm_aware=False))
        plain.run()
        aware = MDSimulation(self.small(comm_aware=True))
        aware.run()
        assert (
            aware.series.series("off_rank_volume")[6:].mean()
            < plain.series.series("off_rank_volume")[6:].mean()
        )

    def test_deterministic(self):
        a = MDSimulation(self.small()).run()
        b = MDSimulation(self.small()).run()
        np.testing.assert_array_equal(a.series("imbalance"), b.series("imbalance"))

    def test_n2_cost_concentration(self):
        # The quadratic cost makes load imbalance much sharper than
        # particle-count imbalance — the MD-specific stressor.
        sim = MDSimulation(self.small())
        counts = sim.grid.counts(sim.scenario.positions).astype(float)
        loads = sim.grid.loads_from_counts(counts)
        count_i = counts.max() / counts.mean() - 1
        load_i = loads.max() / loads.mean() - 1
        assert load_i > 1.5 * count_i
