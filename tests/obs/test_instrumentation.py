"""Integration tests: the registry threaded through every layer.

Covers the acceptance criterion: a TemperedLB run on the synthetic
time-varying workload exports per-iteration accepted/rejected transfer
counts and gossip message totals as JSON; without a registry, LB
outputs are byte-identical to pre-change behavior.
"""

import numpy as np
import pytest

from repro import Distribution, StatsRegistry, TemperedConfig, TemperedLB
from repro.analysis.io import load_stats, save_stats, stats_to_csv
from repro.core.gossip import GossipConfig, run_inform_stage
from repro.core.transfer import transfer_stage
from repro.obs import NullRegistry
from repro.runtime import AMTRuntime, LBManager
from repro.sim.engine import Engine
from repro.sim.process import System
from repro.workloads import MovingHotspot, paper_analysis_scenario


class TestCoreStages:
    def test_inform_stage_records_counters_and_series(self):
        loads = np.ones(32)
        loads[:4] = 10.0
        reg = StatsRegistry()
        result = run_inform_stage(
            loads, GossipConfig(fanout=3, rounds=4), rng=0, registry=reg
        )
        assert reg.counter("gossip.stages") == 1
        assert reg.counter("gossip.messages") == result.n_messages > 0
        assert reg.counter("gossip.bytes") == result.bytes_sent
        (row,) = reg.series_rows("gossip.stage")
        assert row["underloaded"] == 28
        assert row["coverage"] == pytest.approx(result.coverage())
        assert row["max_known"] >= row["mean_known"] > 0

    def test_inform_stage_records_even_when_balanced(self):
        reg = StatsRegistry()
        run_inform_stage(np.ones(8), rng=0, registry=reg)
        assert reg.counter("gossip.stages") == 1
        assert reg.counter("gossip.messages") == 0

    def test_transfer_stage_counters_match_stats(self):
        dist = paper_analysis_scenario(n_tasks=300, n_loaded_ranks=4, n_ranks=32, seed=1)
        loads = dist.rank_loads()
        rng = np.random.default_rng(2)
        gossip = run_inform_stage(loads, GossipConfig(fanout=4, rounds=6), rng)
        assignment = dist.assignment.copy()
        reg = StatsRegistry()
        stats = transfer_stage(assignment, dist.task_loads, gossip, rng=rng, registry=reg)
        assert reg.counter("transfer.accepted") == stats.transfers > 0
        assert reg.counter("transfer.rejected") == stats.rejections
        assert reg.counter("transfer.proposed") == stats.proposed
        assert reg.counter("transfer.cmf_builds") == stats.cmf_builds > 0
        assert reg.counter("transfer.overloaded_ranks") == stats.overloaded_ranks

    def test_refinement_series_matches_records(self):
        dist = paper_analysis_scenario(n_tasks=300, n_loaded_ranks=4, n_ranks=32, seed=1)
        reg = StatsRegistry()
        lb = TemperedLB(n_trials=2, n_iters=3).instrument(reg)
        result = lb.rebalance(dist, rng=np.random.default_rng(0))
        rows = reg.series_rows("lb.iteration")
        assert len(rows) == len(result.records) == 6
        for row, rec in zip(rows, result.records):
            assert (row["trial"], row["iteration"]) == (rec.trial, rec.iteration)
            assert row["accepted"] == rec.transfers
            assert row["rejected"] == rec.rejections
            assert row["gossip_messages"] == rec.gossip_messages
        assert reg.counter("gossip.messages") == sum(
            r.gossip_messages for r in result.records
        )
        (refinement_event,) = reg.events_of("lb.refinement")
        assert refinement_event.fields["best_imbalance"] == pytest.approx(
            min(result.final_imbalance, result.initial_imbalance)
        )
        (rebalance_event,) = reg.events_of("lb.rebalance")
        assert rebalance_event.fields["strategy"] == "TemperedLB"

    def test_refinement_records_stage_wall_timers(self):
        dist = paper_analysis_scenario(n_tasks=300, n_loaded_ranks=4, n_ranks=32, seed=1)
        reg = StatsRegistry()
        lb = TemperedLB(n_trials=2, n_iters=3).instrument(reg)
        lb.rebalance(dist, rng=np.random.default_rng(0))
        assert reg.timers["wall.inform"] > 0.0
        assert reg.timers["wall.transfer"] > 0.0
        assert reg.timers["wall.refinement"] > 0.0
        # The full refinement loop dominates any single stage.
        assert reg.timers["wall.refinement"] >= reg.timers["wall.transfer"]

    def test_incremental_cmf_counters_and_equivalence(self):
        """Incremental CMF maintenance replaces rebuilds with point
        updates and proposes the same assignment as full rebuilds."""
        from repro.core.cmf import CMF_UPDATE_INCREMENTAL, CMF_UPDATE_REBUILD
        from repro.core.transfer import TransferConfig

        dist = paper_analysis_scenario(n_tasks=300, n_loaded_ranks=4, n_ranks=32, seed=1)
        loads = dist.rank_loads()
        gossip = run_inform_stage(
            loads, GossipConfig(fanout=4, rounds=6), np.random.default_rng(2)
        )
        outcomes = {}
        for mode in (CMF_UPDATE_REBUILD, CMF_UPDATE_INCREMENTAL):
            assignment = dist.assignment.copy()
            reg = StatsRegistry()
            stats = transfer_stage(
                assignment,
                dist.task_loads,
                gossip,
                TransferConfig(cmf_update=mode),
                rng=np.random.default_rng(3),
                registry=reg,
            )
            outcomes[mode] = (assignment, stats, reg)
        rebuild_asg, rebuild_stats, rebuild_reg = outcomes[CMF_UPDATE_REBUILD]
        incr_asg, incr_stats, incr_reg = outcomes[CMF_UPDATE_INCREMENTAL]
        assert np.array_equal(rebuild_asg, incr_asg)
        assert rebuild_stats.transfers == incr_stats.transfers
        assert rebuild_stats.rejections == incr_stats.rejections
        assert rebuild_reg.counter("transfer.cmf_updates") == 0
        assert incr_reg.counter("transfer.cmf_updates") == incr_stats.cmf_updates > 0
        assert incr_stats.cmf_builds < rebuild_stats.cmf_builds


class TestAcceptanceCriterion:
    """TemperedLB + time-varying workload -> JSON with per-iteration counts."""

    def test_time_varying_run_exports_json(self, tmp_path):
        hotspot = MovingHotspot(n_tasks=400, speed=0.02)
        rng = np.random.default_rng(0)
        assignment = rng.integers(0, 4, size=400)
        reg = StatsRegistry()
        lb = TemperedLB(n_trials=1, n_iters=3).instrument(reg)
        for phase in range(3):
            dist = Distribution(hotspot.loads(phase), assignment, 32)
            assignment = lb.rebalance(dist, rng=rng).assignment

        path = tmp_path / "stats.json"
        save_stats(reg, path)
        payload = load_stats(path)
        rows = payload.series_rows("lb.iteration")
        assert len(rows) == 9  # 3 phases x 1 trial x 3 iterations
        for row in rows:
            assert row["accepted"] >= 0 and row["rejected"] >= 0
            assert row["accepted"] + row["rejected"] == row["proposed"]
        assert payload.counter("gossip.messages") == sum(
            row["gossip_messages"] for row in rows
        )
        assert payload.counter("transfer.accepted") == sum(
            row["accepted"] for row in rows
        )

    def test_csv_export_is_flat_and_complete(self, tmp_path):
        reg = StatsRegistry()
        reg.inc("c", 2)
        reg.gauge("g", 1.5)
        reg.add_time("t", 0.25)
        reg.observe("s", x=1)
        reg.event("e", time=1.0, rank=2, value=3)
        path = tmp_path / "stats.csv"
        stats_to_csv(reg, path)
        lines = path.read_text().strip().splitlines()
        assert lines[0] == "kind,name,index,field,value"
        kinds = {line.split(",")[0] for line in lines[1:]}
        assert kinds == {"counter", "gauge", "timer", "series", "event"}

    def test_no_registry_is_byte_identical(self):
        """Determinism contract vs. the pre-instrumentation behavior."""
        dist = paper_analysis_scenario(n_tasks=250, n_loaded_ranks=4, n_ranks=32, seed=5)
        a = TemperedLB(n_trials=2, n_iters=3).rebalance(dist, rng=np.random.default_rng(9))
        b = TemperedLB(n_trials=2, n_iters=3).rebalance(dist, rng=np.random.default_rng(9))
        np.testing.assert_array_equal(a.assignment, b.assignment)
        assert a.assignment.tobytes() == b.assignment.tobytes()

    def test_null_registry_records_nothing_through_stack(self):
        dist = paper_analysis_scenario(n_tasks=200, n_loaded_ranks=4, n_ranks=32, seed=5)
        null = NullRegistry()
        TemperedLB(n_trials=1, n_iters=2).instrument(null).rebalance(
            dist, rng=np.random.default_rng(0)
        )
        assert null.counters == {} and null.series == {} and null.events == []


class TestSimLayer:
    def test_engine_records_run_aggregates(self):
        reg = StatsRegistry()
        engine = Engine(registry=reg)
        for i in range(5):
            engine.schedule(0.1 * (i + 1), lambda: None)
        engine.run(until=0.35)
        assert reg.counter("engine.events") == 3
        assert reg.gauges["engine.queue_depth"] == 2
        assert reg.timers["engine.sim_time"] == pytest.approx(0.35)
        engine.run()
        assert reg.counter("engine.events") == 5
        assert reg.counter("engine.runs") == 2
        assert reg.gauges["engine.queue_depth"] == 0  # last write wins locally

    def test_system_counts_messages_by_tag_and_link(self):
        reg = StatsRegistry()
        system = System(4, registry=reg)
        received = []
        for proc in system.processes:
            proc.register("ping", lambda p, m: received.append(p.rank))
        system.processes[0].send(1, "ping", size=100)  # same node (4 ranks/node)
        system.processes[0].send(2, "ping", size=50)
        system.run()
        assert reg.counter("net.messages.ping") == 2
        assert reg.counter("net.bytes.ping") == 150
        assert reg.counter("net.links.intra") == 2
        assert received == [1, 2]


class TestRuntimeLayer:
    def _runtime(self, registry=None):
        rng = np.random.default_rng(0)
        n_ranks, n_tasks = 8, 64
        task_loads = rng.gamma(4.0, 0.002, size=n_tasks)
        assignment = np.zeros(n_tasks, dtype=np.int64)
        return AMTRuntime(
            n_ranks, task_loads, assignment, task_overhead=1e-5, registry=registry
        )

    def test_lbmanager_records_episode_event(self):
        reg = StatsRegistry()
        runtime = self._runtime(registry=reg)
        runtime.execute_phase()
        config = TemperedConfig(n_trials=1, n_iters=2, fanout=3, rounds=4)
        episode = LBManager(runtime, config, seed=1, registry=reg).run_episode()

        (event,) = reg.events_of("lb.episode")
        assert event.fields["initial_imbalance"] == pytest.approx(
            episode.initial_imbalance
        )
        assert event.fields["final_imbalance"] == pytest.approx(episode.final_imbalance)
        assert event.fields["n_migrations"] == episode.n_migrations
        assert event.fields["gossip_messages"] == episode.gossip_messages > 0
        if episode.migration is not None:
            assert event.fields["migration_bytes"] == episode.migration.bytes_moved
            assert reg.counter("episode.migration_bytes") > 0
        assert reg.timers["episode.t_lb"] == pytest.approx(episode.t_lb)
        rows = reg.series_rows("episode.iteration")
        assert len(rows) == 2
        assert reg.counter("episode.iterations") == 2
        # The system-level registry saw the inform traffic by tag.
        inform_msgs = sum(
            v for k, v in reg.counters.items()
            if k.startswith("net.messages.inform_")
        )
        assert inform_msgs == episode.gossip_messages

    def test_lbmanager_without_registry_matches_instrumented_run(self):
        results = []
        for registry in (None, StatsRegistry()):
            runtime = self._runtime()
            runtime.execute_phase()
            config = TemperedConfig(n_trials=1, n_iters=2, fanout=3, rounds=4)
            episode = LBManager(runtime, config, seed=1, registry=registry).run_episode()
            results.append(episode)
        np.testing.assert_array_equal(results[0].assignment, results[1].assignment)
        assert results[0].t_lb == results[1].t_lb
