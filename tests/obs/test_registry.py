"""Unit tests for the StatsRegistry / Event core."""

import pytest

from repro.obs import NULL_REGISTRY, Event, NullRegistry, StatsRegistry, ensure_registry


class TestCounters:
    def test_inc_accumulates(self):
        reg = StatsRegistry()
        assert reg.inc("a") == 1
        assert reg.inc("a", 4) == 5
        assert reg.counter("a") == 5
        assert reg.counter("missing") == 0
        assert reg.counter("missing", -1) == -1

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            StatsRegistry().inc("a", -1)

    def test_float_increments(self):
        reg = StatsRegistry()
        reg.inc("bytes", 1.5)
        reg.inc("bytes", 2.5)
        assert reg.counter("bytes") == 4.0


class TestGaugesSeriesTimers:
    def test_gauge_last_write_wins_locally(self):
        reg = StatsRegistry()
        reg.gauge("depth", 3)
        reg.gauge("depth", 1)
        assert reg.gauges["depth"] == 1.0

    def test_series_appends_rows_in_order(self):
        reg = StatsRegistry()
        reg.observe("it", n=1)
        reg.observe("it", n=2)
        assert [row["n"] for row in reg.series_rows("it")] == [1, 2]
        assert reg.series_rows("none") == []

    def test_timer_accumulates(self):
        reg = StatsRegistry()
        reg.add_time("t", 0.5)
        reg.add_time("t", 0.25)
        assert reg.timers["t"] == pytest.approx(0.75)
        with pytest.raises(ValueError, match="non-negative"):
            reg.add_time("t", -0.1)

    def test_timed_context_uses_given_clock(self):
        reg = StatsRegistry()
        fake_now = [10.0]
        with reg.timed("block", clock=lambda: fake_now[0]):
            fake_now[0] = 12.5
        assert reg.timers["block"] == pytest.approx(2.5)


class TestEvents:
    def test_event_recorded_and_filtered(self):
        reg = StatsRegistry()
        reg.event("lb.episode", time=1.0, rank=3, migrations=7)
        reg.event("other")
        events = reg.events_of("lb.episode")
        assert len(events) == 1
        assert events[0].fields["migrations"] == 7
        assert events[0].rank == 3

    def test_event_requires_scalar_fields(self):
        with pytest.raises(TypeError, match="scalar"):
            Event("bad", fields={"x": [1, 2]})
        with pytest.raises(ValueError, match="non-empty"):
            Event("")

    def test_event_roundtrip(self):
        event = Event("k", fields={"a": 1, "b": "s"}, time=2.0, rank=1)
        assert Event.from_dict(event.to_dict()) == event


class TestMergeAndSerialization:
    def test_merge_semantics(self):
        a, b = StatsRegistry(), StatsRegistry()
        a.inc("c", 2)
        b.inc("c", 3)
        a.gauge("g", 1)
        b.gauge("g", 5)
        a.add_time("t", 1.0)
        b.add_time("t", 0.5)
        a.observe("s", x=1)
        b.observe("s", x=2)
        b.event("e")
        a.merge(b)
        assert a.counter("c") == 5
        assert a.gauges["g"] == 5.0  # high-water mark
        assert a.timers["t"] == pytest.approx(1.5)
        assert len(a.series_rows("s")) == 2
        assert len(a.events) == 1

    def test_to_from_dict_roundtrip(self):
        reg = StatsRegistry()
        reg.inc("c", 2)
        reg.gauge("g", 7)
        reg.add_time("t", 0.1)
        reg.observe("s", x=1, y=2.5)
        reg.event("e", time=3.0, value=1)
        clone = StatsRegistry.from_dict(reg.to_dict())
        assert clone.to_dict() == reg.to_dict()

    def test_summary_mentions_everything(self):
        reg = StatsRegistry()
        reg.inc("gossip.messages", 10)
        reg.gauge("queue", 2)
        reg.add_time("t_lb", 0.5)
        reg.observe("lb.iteration", accepted=3)
        reg.event("lb.episode")
        text = reg.summary()
        for token in ("gossip.messages", "queue", "t_lb", "lb.iteration", "lb.episode"):
            assert token in text
        assert StatsRegistry().summary() == "(empty registry)"


class TestNullRegistry:
    def test_records_nothing(self):
        null = NullRegistry()
        assert null.enabled is False
        assert null.inc("a", 5) == 0
        null.gauge("g", 1)
        null.observe("s", x=1)
        null.add_time("t", 1.0)
        null.event("e", x=1)
        with null.timed("b", clock=lambda: 0.0):
            pass
        assert null.counters == {} and null.series == {} and null.events == []

    def test_merge_is_noop(self):
        other = StatsRegistry()
        other.inc("c")
        null = NullRegistry()
        assert null.merge(other) is null
        assert null.counters == {}

    def test_ensure_registry(self):
        assert ensure_registry(None) is NULL_REGISTRY
        reg = StatsRegistry()
        assert ensure_registry(reg) is reg
