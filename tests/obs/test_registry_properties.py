"""Property-based (hypothesis) tests for the observability layer.

Three contracts the instrumentation must honor:

1. counters are non-negative under any sequence of valid operations;
2. :meth:`StatsRegistry.merge` is associative (and commutative on the
   scalar kinds), so per-rank registries can be reduced in any order;
3. attaching a registry never changes LB output — instrumentation draws
   no RNG, so seeded runs stay bit-identical.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import GrapevineLB, StatsRegistry, TemperedLB
from repro.workloads import paper_analysis_scenario

names = st.sampled_from(["a", "b", "c.d", "gossip.messages"])
increments = st.floats(min_value=0, max_value=1e9, allow_nan=False)
ops = st.lists(st.tuples(names, increments), max_size=30)


@given(ops=ops)
def test_counters_stay_non_negative(ops):
    reg = StatsRegistry()
    for name, value in ops:
        reg.inc(name, value)
    assert all(v >= 0 for v in reg.counters.values())
    total_in = sum(v for _, v in ops)
    assert sum(reg.counters.values()) == pytest.approx(total_in, rel=1e-9, abs=1e-6)


def _registry_from(ops, gauge_ops, time_ops):
    reg = StatsRegistry()
    for name, value in ops:
        reg.inc(name, value)
    for name, value in gauge_ops:
        reg.gauge(name, value)
    for name, value in time_ops:
        reg.add_time(name, value)
    return reg


registry_inputs = st.tuples(
    ops,
    st.lists(st.tuples(names, st.floats(-1e6, 1e6, allow_nan=False)), max_size=10),
    st.lists(st.tuples(names, st.floats(0, 1e6, allow_nan=False)), max_size=10),
)


def _scalars(reg):
    return (reg.counters, reg.gauges, reg.timers)


@given(a=registry_inputs, b=registry_inputs, c=registry_inputs)
def test_merge_is_associative_across_ranks(a, b, c):
    """(a + b) + c == a + (b + c) for the scalar aggregate kinds."""
    left = _registry_from(*a).merge(_registry_from(*b).merge(_registry_from(*c)))
    right = _registry_from(*a).merge(_registry_from(*b)).merge(_registry_from(*c))
    for lhs, rhs in zip(_scalars(left), _scalars(right)):
        assert set(lhs) == set(rhs)
        for key in lhs:
            np.testing.assert_allclose(lhs[key], rhs[key], rtol=1e-9, atol=1e-9)


@given(a=registry_inputs, b=registry_inputs)
def test_merge_is_commutative_on_scalars(a, b):
    ab = _registry_from(*a).merge(_registry_from(*b))
    ba = _registry_from(*b).merge(_registry_from(*a))
    for lhs, rhs in zip(_scalars(ab), _scalars(ba)):
        assert set(lhs) == set(rhs)
        for key in lhs:
            np.testing.assert_allclose(lhs[key], rhs[key], rtol=1e-9, atol=1e-9)


@settings(deadline=None, max_examples=8)
@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_instrumentation_never_changes_assignment(seed):
    """The acceptance-criterion invariant: registry on == registry off."""
    dist = paper_analysis_scenario(n_tasks=200, n_loaded_ranks=4, n_ranks=32, seed=seed)
    bare = TemperedLB(n_trials=2, n_iters=3).rebalance(
        dist, rng=np.random.default_rng(seed)
    )
    registry = StatsRegistry()
    instrumented = (
        TemperedLB(n_trials=2, n_iters=3)
        .instrument(registry)
        .rebalance(dist, rng=np.random.default_rng(seed))
    )
    np.testing.assert_array_equal(bare.assignment, instrumented.assignment)
    assert bare.final_imbalance == instrumented.final_imbalance
    # ... and the registry actually observed the run.
    assert registry.counter("lb.iterations") == 6
    assert registry.counter("gossip.stages") == 6


@settings(deadline=None, max_examples=4)
@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_instrumentation_neutral_for_grapevine(seed):
    dist = paper_analysis_scenario(n_tasks=150, n_loaded_ranks=3, n_ranks=24, seed=seed)
    bare = GrapevineLB(n_iters=2).rebalance(dist, rng=np.random.default_rng(seed))
    instrumented = (
        GrapevineLB(n_iters=2)
        .instrument(StatsRegistry())
        .rebalance(dist, rng=np.random.default_rng(seed))
    )
    np.testing.assert_array_equal(bare.assignment, instrumented.assignment)
