"""Registry pickle round-trips.

The process-backed trial executor builds a ``StatsRegistry`` inside
each worker and ships it back over IPC, so registries must pickle
losslessly. The pickle format is pinned to ``to_dict``/``from_dict``
(the registry's stable JSON snapshot), which also guards against a
future unpicklable field silently breaking worker round-trips.
"""

import pickle

from repro.obs import NULL_REGISTRY, NullRegistry, StatsRegistry


def populated_registry():
    registry = StatsRegistry()
    registry.inc("gossip.messages", 120)
    registry.inc("transfer.accepted", 7)
    registry.gauge("engine.queue_depth", 42.0)
    registry.add_time("wall.inform", 0.25)
    registry.observe("lb.iteration", trial=1, iteration=1, imbalance=0.5)
    registry.observe("lb.iteration", trial=1, iteration=2, imbalance=0.25)
    registry.event("lb.refinement", n_trials=2, best_imbalance=0.25)
    registry.event("lb.episode", time=1.5, rank=3, migrations=9)
    return registry


class TestStatsRegistryPickle:
    def test_round_trip_preserves_everything(self):
        original = populated_registry()
        restored = pickle.loads(pickle.dumps(original))
        assert restored.to_dict() == original.to_dict()
        assert restored.enabled

    def test_restored_registry_is_independent(self):
        original = populated_registry()
        restored = pickle.loads(pickle.dumps(original))
        restored.inc("gossip.messages", 1)
        assert original.counter("gossip.messages") == 120
        assert restored.counter("gossip.messages") == 121

    def test_restored_registry_merges(self):
        a = populated_registry()
        b = pickle.loads(pickle.dumps(populated_registry()))
        a.merge(b)
        assert a.counter("gossip.messages") == 240
        assert len(a.series_rows("lb.iteration")) == 4
        assert a.gauges["engine.queue_depth"] == 42.0  # high-water, not sum

    def test_events_round_trip_with_time_and_rank(self):
        original = populated_registry()
        restored = pickle.loads(pickle.dumps(original))
        assert restored.events == original.events
        episode = restored.events_of("lb.episode")[0]
        assert episode.time == 1.5
        assert episode.rank == 3

    def test_empty_registry_round_trips(self):
        restored = pickle.loads(pickle.dumps(StatsRegistry()))
        assert restored.to_dict() == StatsRegistry().to_dict()


class TestNullRegistryPickle:
    def test_null_registry_stays_disabled_noop(self):
        restored = pickle.loads(pickle.dumps(NULL_REGISTRY))
        assert isinstance(restored, NullRegistry)
        assert not restored.enabled
        restored.inc("anything", 5)
        restored.observe("series", x=1)
        assert restored.counters == {}
        assert restored.series == {}
