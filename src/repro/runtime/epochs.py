"""vt-style epochs: scoped termination over concurrent message streams.

vt "employs distributed termination detection algorithms to sequence
tasks and create dependencies for ordering distributed execution"
(§ III-A). An *epoch* groups a causally related set of messages; the
runtime detects when everything inside the epoch has quiesced — even
while other epochs are still producing traffic.

Here an epoch scopes message *tags*: every message sent "inside" the
epoch uses :meth:`Epoch.tag`, and :meth:`Epoch.detect_termination` arms
a Safra detector that accounts only for this epoch's tags, so two
overlapping epochs terminate independently.
"""

from __future__ import annotations

from typing import Callable

from repro.sim.process import System
from repro.sim.termination import SafraDetector

__all__ = ["Epoch", "EpochManager"]


class Epoch:
    """One scoped message stream."""

    def __init__(self, system: System, epoch_id: int, label: str = "") -> None:
        self.system = system
        self.epoch_id = epoch_id
        self.label = label or f"epoch{epoch_id}"
        self._suffix = f"@e{epoch_id}"
        self._finish_times: list[float] = []
        self._callbacks: list[Callable[[float], None]] = []
        self._armed = False
        # The detector's message-accounting hooks must observe every
        # message of the epoch, so they install at epoch creation; the
        # token only starts circulating at detect_termination().
        self._detector = SafraDetector(system, self._record, scope=self.owns)

    def tag(self, base: str) -> str:
        """The epoch-scoped tag for a base handler name."""
        if base.startswith("__"):
            raise ValueError("control tags cannot be scoped to an epoch")
        return base + self._suffix

    def owns(self, tag: str) -> bool:
        """Whether a message tag belongs to this epoch."""
        return tag.endswith(self._suffix)

    def _record(self, t: float) -> None:
        self._finish_times.append(t)
        for callback in self._callbacks:
            callback(t)

    def detect_termination(
        self, on_terminate: Callable[[float], None] | None = None
    ) -> SafraDetector:
        """Start the termination token for this epoch's messages only.

        May be called once, at any point after the epoch's work has been
        kicked off (message accounting has been running since the epoch
        was created)."""
        if self._armed:
            raise RuntimeError(f"{self.label}: termination detection already armed")
        self._armed = True
        if on_terminate is not None:
            self._callbacks.append(on_terminate)
        self._detector.start()
        return self._detector

    @property
    def terminated(self) -> bool:
        """Whether this epoch's quiescence has been detected."""
        return self._detector.terminated

    @property
    def finish_time(self) -> float:
        """Simulated time of detection (raises if not terminated)."""
        if not self._finish_times:
            raise RuntimeError(f"{self.label} has not terminated")
        return self._finish_times[0]


class EpochManager:
    """Creates epochs with unique ids on one system."""

    def __init__(self, system: System) -> None:
        self.system = system
        self._next_id = 0
        self.epochs: list[Epoch] = []

    def new_epoch(self, label: str = "") -> Epoch:
        """Open a fresh epoch."""
        epoch = Epoch(self.system, self._next_id, label)
        self._next_id += 1
        self.epochs.append(epoch)
        return epoch
