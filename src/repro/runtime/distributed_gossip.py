"""Event-level Algorithm 1: the inform stage as real asynchronous messages.

Unlike the phase-level :mod:`repro.core.gossip` (synchronous rounds,
zero time), this implementation sends timestamped inform messages over
the network model, without round barriers, and uses Safra's termination
detector to establish quiescence — matching the paper's description of
the asynchronous implementation ("rounds are not synchronized and
proceed without barriers, relying on distributed termination
detection").

Forwarding is coalesced per (rank, received round): a rank forwards its
merged knowledge once for each distinct round value it receives, which
is what the practical implementations do and bounds traffic at
``O(P f k)`` messages (the literal per-received-message forwarding of
the pseudocode is exponential; see DESIGN.md § 5).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.gossip import (
    ENTRY_BYTES,
    HEADER_BYTES,
    GossipResult,
    resolve_auto_threshold,
)
from repro.core.knowledge import (
    KnowledgeBitmap,
    PackedKnowledgeBitmap,
    SparseKnowledge,
)
from repro.sim.process import Process, System
from repro.sim.rng import RankStreams
from repro.sim.termination import SafraDetector
from repro.util.validation import check_positive

__all__ = ["DistributedGossip", "GossipOutcome"]

_gossip_counter = 0


@dataclass
class GossipOutcome:
    """Result of one event-level inform stage."""

    knowledge: KnowledgeBitmap | PackedKnowledgeBitmap | SparseKnowledge
    underloaded: np.ndarray
    load_snapshot: np.ndarray
    average_load: float
    n_messages: int
    bytes_sent: int
    elapsed: float  #: simulated seconds from start to detected quiescence
    #: Backend the stage actually ran and the auto crossover applied
    #: (mirrors :class:`~repro.core.gossip.GossipResult`).
    knowledge_backend: str = ""
    auto_threshold: int = 0

    def to_gossip_result(self) -> GossipResult:
        """Adapt to the phase-level result type consumed by the transfer
        stage (:func:`repro.core.transfer.transfer_stage`)."""
        return GossipResult(
            knowledge=self.knowledge,
            underloaded=self.underloaded,
            load_snapshot=self.load_snapshot,
            average_load=self.average_load,
            n_messages=self.n_messages,
            bytes_sent=self.bytes_sent,
            knowledge_backend=self.knowledge_backend,
            auto_threshold=self.auto_threshold,
        )


class DistributedGossip:
    """One asynchronous inform stage on a simulated system."""

    def __init__(
        self,
        system: System,
        rank_loads: np.ndarray,
        average_load: float | None = None,
        fanout: int = 6,
        rounds: int = 10,
        streams: RankStreams | None = None,
        packed: bool = True,
        detector: "object | None" = None,
        knowledge: str | None = None,
    ) -> None:
        check_positive("fanout", fanout)
        check_positive("rounds", rounds)
        if knowledge is not None and knowledge not in ("auto", "packed", "sparse"):
            raise ValueError(
                'knowledge must be one of None, "auto", "packed", "sparse", '
                f"got {knowledge!r}"
            )
        self.system = system
        self.loads = np.ascontiguousarray(rank_loads, dtype=np.float64)
        if self.loads.size != system.n_ranks:
            raise ValueError("need one load per rank")
        self.average_load = (
            float(self.loads.mean()) if average_load is None else float(average_load)
        )
        self.fanout = int(fanout)
        self.rounds = int(rounds)
        self.streams = streams or RankStreams(system.n_ranks, seed=0)
        #: Knowledge representation: bit-packed rows (P^2/8 bytes, the
        #: default) or the boolean reference matrix. The message-level
        #: protocol exchanges rank-id arrays either way, so the choice
        #: never affects traffic or RNG consumption.
        self.packed = bool(packed)
        #: Explicit backend selection overriding ``packed``: "packed",
        #: "sparse" (per-rank sorted id shards — the O(sum |S^p|)
        #: representation for high rank counts) or "auto" (sparse from
        #: ``resolve_auto_threshold("python")`` ranks, packed below).
        #: ``None``
        #: keeps the legacy ``packed`` bool semantics. All backends
        #: exchange identical id arrays and consume identical RNG, so
        #: zero-fault outcomes are bit-identical across the choice —
        #: fault buffers (maturing/expired/duplicate deliveries) behave
        #: the same way on every backend too.
        self.knowledge = knowledge
        #: Optional failure detector
        #: (:class:`repro.sim.faults.HeartbeatFailureDetector`); when
        #: provided, suspected ranks are skipped as gossip targets and
        #: the detector's heartbeats run only for the duration of this
        #: stage.
        self.detector = detector

    def run(self) -> GossipOutcome:
        """Execute the inform stage to quiescence; advances the clock."""
        global _gossip_counter
        _gossip_counter += 1
        tag = f"inform_{_gossip_counter}"
        system = self.system
        n = system.n_ranks
        start_time = system.engine.now
        counters = {"messages": 0, "bytes": 0}

        faults = system.faults
        if faults is None or not faults.enabled:
            faults = None

        underloaded = self.loads < self.average_load
        backend = self.knowledge
        # This driver merges per received message in scalar Python — the
        # reference-driver cost profile — so auto uses the shared
        # "python" crossover, not the fused-kernel one it used to
        # hard-code (that drifted once the two thresholds diverged).
        auto_threshold = resolve_auto_threshold("python")
        if backend == "auto":
            backend = "sparse" if n >= auto_threshold else "packed"
        if backend == "sparse":
            know: KnowledgeBitmap | PackedKnowledgeBitmap | SparseKnowledge = (
                SparseKnowledge(n)
            )
        elif backend == "packed" or (backend is None and self.packed):
            know = PackedKnowledgeBitmap(n)
        else:
            know = KnowledgeBitmap(n)
        seeds = np.flatnonzero(underloaded)
        if faults is not None:
            # Crashed ranks cannot initiate gossip about themselves.
            seeds = seeds[faults.alive[seeds]]
        know.add_self(seeds)
        #: Rounds already forwarded per rank (coalescing guard).
        forwarded: list[set[int]] = [set() for _ in range(n)]
        #: Set once the stage is over: late messages (delayed past the
        #: stage timeout) must not trigger sends into the next stage.
        closed = [False]

        def send_knowledge(proc: Process, next_round: int) -> None:
            candidates = know.unknown_targets(proc.rank)
            if self.detector is not None and self.detector.suspected:
                suspects = np.fromiter(
                    self.detector.suspected, dtype=np.int64, count=-1
                )
                candidates = candidates[~np.isin(candidates, suspects)]
            if candidates.size == 0:
                return
            rng = self.streams[proc.rank]
            k = min(self.fanout, candidates.size)
            targets = (
                candidates
                if candidates.size <= self.fanout
                else rng.choice(candidates, size=k, replace=False)
            )
            payload = know.known(proc.rank)
            size = HEADER_BYTES + ENTRY_BYTES * payload.size
            proc.send_many(targets, tag, payload=(payload, next_round), size=size)
            n_sent = int(len(targets))
            counters["messages"] += n_sent
            counters["bytes"] += n_sent * size

        def on_inform(proc: Process, msg) -> None:
            if closed[0]:
                return
            members, round_index = msg.payload
            know.add(proc.rank, members)
            if round_index < self.rounds and round_index not in forwarded[proc.rank]:
                forwarded[proc.rank].add(round_index)
                send_knowledge(proc, round_index + 1)

        for proc in system.processes:
            proc.register(tag, on_inform)

        detected: list[float] = []
        # Scope Safra to this stage's tag: with faults, messages can
        # linger past the stage (delay spikes) and must not poison the
        # next stage's accounting; without faults the scope is inert.
        safra = SafraDetector(
            system, on_terminate=detected.append, scope=lambda t: t == tag
        )
        if faults is None:
            for rank in seeds:
                send_knowledge(system.processes[int(rank)], 1)
            safra.start()
            system.run()
            if not detected:
                raise RuntimeError("gossip termination was not detected")
            elapsed = detected[0] - start_time
        else:
            # Faulty run: a crashed member breaks the Safra ring, so the
            # stage is additionally bounded by a timeout. Events are
            # stepped one at a time so the clock stops at detection (or
            # at the deadline) instead of draining unrelated events.
            if self.detector is not None:
                self.detector.start()
            for rank in seeds:
                send_knowledge(system.processes[int(rank)], 1)
            safra.start()
            deadline = start_time + faults.config.stage_timeout
            engine = system.engine
            while not detected:
                nxt = engine.peek()
                if nxt is None or nxt > deadline:
                    break
                engine.step()
            if not detected:
                safra.cancel()
                engine.run(until=deadline)  # advance the clock, only
            closed[0] = True
            if self.detector is not None:
                self.detector.stop()
            elapsed = (detected[0] if detected else deadline) - start_time

        return GossipOutcome(
            knowledge=know,
            underloaded=underloaded,
            load_snapshot=self.loads.copy(),
            average_load=self.average_load,
            n_messages=counters["messages"],
            bytes_sent=counters["bytes"],
            elapsed=elapsed,
            knowledge_backend=(
                "sparse" if isinstance(know, SparseKnowledge)
                else "packed" if isinstance(know, PackedKnowledgeBitmap)
                else "reference"
            ),
            auto_threshold=auto_threshold,
        )
