"""Distributed work stealing — the § II intra-phase baseline.

The paper situates its persistence-based balancers against work
stealing (Cilk-style, distributed [21], and the *retentive* variant of
Lifflander et al. [22] where the location a task was executed becomes
its starting point next phase). This module implements both on the
event-level runtime:

- :class:`WorkStealingScheduler` runs one phase: each rank executes its
  queue serially; an idle rank sends steal requests to random victims;
  a victim with at least two queued tasks surrenders half (steal-half),
  otherwise answers empty; a thief gives up after ``max_attempts``
  consecutive failures.
- :class:`RetentiveWorkStealing` carries the end-of-phase task
  locations into the next phase, so steady-state phases start balanced
  and steal traffic collapses — the persistence effect.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.sim.process import Process, System
from repro.sim.rng import RankStreams
from repro.util.validation import check_positive

__all__ = ["StealResult", "WorkStealingScheduler", "RetentiveWorkStealing"]

_instances = 0


@dataclass
class StealResult:
    """Outcome of one work-stealing phase."""

    makespan: float  #: time the last task completed (relative to start)
    tasks_executed: int
    successful_steals: int
    failed_steals: int
    tasks_stolen: int
    final_location: np.ndarray  #: rank that executed each task
    start_time: float = 0.0
    executed_per_rank: np.ndarray = field(default_factory=lambda: np.empty(0))


class WorkStealingScheduler:
    """One phase of distributed work stealing on a simulated system."""

    def __init__(
        self,
        system: System,
        task_loads: np.ndarray,
        assignment: np.ndarray,
        seed: int | None = 0,
        max_attempts: int = 8,
        request_size: int = 32,
        task_desc_size: int = 256,
    ) -> None:
        global _instances
        _instances += 1
        check_positive("max_attempts", max_attempts)
        self.system = system
        self.task_loads = np.ascontiguousarray(task_loads, dtype=np.float64)
        assignment = np.ascontiguousarray(assignment, dtype=np.int64)
        if self.task_loads.shape != assignment.shape:
            raise ValueError("task_loads and assignment must have equal length")
        if self.task_loads.size and (
            assignment.min() < 0 or assignment.max() >= system.n_ranks
        ):
            raise ValueError("assignment entries out of range")
        self.max_attempts = int(max_attempts)
        self.request_size = int(request_size)
        self.task_desc_size = int(task_desc_size)
        self.streams = RankStreams(system.n_ranks, seed=seed)

        self._queues: list[deque[int]] = [deque() for _ in range(system.n_ranks)]
        for task, rank in enumerate(assignment):
            self._queues[rank].append(int(task))
        self._attempts = [0] * system.n_ranks
        self._retired = [False] * system.n_ranks

        self._tag_request = f"ws_request_{_instances}"
        self._tag_response = f"ws_response_{_instances}"
        for proc in system.processes:
            proc.register(self._tag_request, self._on_request)
            proc.register(self._tag_response, self._on_response)

        self.result = StealResult(
            makespan=0.0,
            tasks_executed=0,
            successful_steals=0,
            failed_steals=0,
            tasks_stolen=0,
            final_location=np.full(self.task_loads.size, -1, dtype=np.int64),
            executed_per_rank=np.zeros(system.n_ranks, dtype=np.int64),
        )

    def run(self) -> StealResult:
        """Execute the phase to completion; advances the system clock."""
        self.result.start_time = self.system.engine.now
        for rank in range(self.system.n_ranks):
            self._next(rank)
        self.system.run()
        if self.result.tasks_executed != self.task_loads.size:
            raise RuntimeError(
                f"work stealing lost tasks: executed {self.result.tasks_executed} "
                f"of {self.task_loads.size}"
            )
        return self.result

    # -- per-rank loop ------------------------------------------------------

    def _next(self, rank: int) -> None:
        queue = self._queues[rank]
        proc = self.system.processes[rank]
        if queue:
            self._attempts[rank] = 0
            task = queue.popleft()
            proc.compute(float(self.task_loads[task]))
            self.system.engine.schedule_at(proc.busy_until, self._task_done, rank, task)
        else:
            self._try_steal(rank)

    def _task_done(self, rank: int, task: int) -> None:
        self.result.tasks_executed += 1
        self.result.executed_per_rank[rank] += 1
        self.result.final_location[task] = rank
        elapsed = self.system.engine.now - self.result.start_time
        self.result.makespan = max(self.result.makespan, elapsed)
        self._next(rank)

    # -- stealing protocol ------------------------------------------------------

    def _try_steal(self, rank: int) -> None:
        if self.system.n_ranks < 2 or self._attempts[rank] >= self.max_attempts:
            self._retired[rank] = True
            return
        self._attempts[rank] += 1
        rng = self.streams[rank]
        victim = int(rng.integers(0, self.system.n_ranks - 1))
        if victim >= rank:
            victim += 1
        self.system.processes[rank].send(
            victim, self._tag_request, payload=rank, size=self.request_size
        )

    def _on_request(self, proc: Process, msg) -> None:
        thief = int(msg.payload)
        queue = self._queues[proc.rank]
        if len(queue) >= 2:
            # Steal-half: surrender the newer half of the queue.
            n_give = len(queue) // 2
            stolen = [queue.pop() for _ in range(n_give)]
            size = self.request_size + self.task_desc_size * len(stolen)
            proc.send(thief, self._tag_response, payload=stolen, size=size)
        else:
            proc.send(thief, self._tag_response, payload=[], size=self.request_size)

    def _on_response(self, proc: Process, msg) -> None:
        rank = proc.rank
        stolen = msg.payload
        if stolen:
            self.result.successful_steals += 1
            self.result.tasks_stolen += len(stolen)
            self._queues[rank].extend(stolen)
        else:
            self.result.failed_steals += 1
        self._next(rank)


class RetentiveWorkStealing:
    """Multi-phase work stealing with retention [22].

    Phase ``t+1`` starts each task on the rank that *executed* it in
    phase ``t``. For persistent workloads the steady-state phases start
    balanced, so steals (and their latency cost) fade after the first
    phase — the effect the HPDC'12 paper reports.
    """

    def __init__(
        self,
        system: System,
        initial_assignment: np.ndarray,
        seed: int | None = 0,
        max_attempts: int = 8,
        retentive: bool = True,
    ) -> None:
        self.system = system
        self.assignment = np.ascontiguousarray(initial_assignment, dtype=np.int64).copy()
        self._initial = self.assignment.copy()
        self.seed = seed
        self.max_attempts = max_attempts
        #: With retention off, every phase restarts from the initial
        #: placement (plain per-phase work stealing).
        self.retentive = bool(retentive)
        self.phases_run = 0
        self.history: list[StealResult] = []

    def run_phase(self, task_loads: np.ndarray) -> StealResult:
        """Run one phase with the given per-task loads."""
        phase_seed = (self.seed if self.seed is not None else 0) * 100_003 + self.phases_run
        scheduler = WorkStealingScheduler(
            self.system,
            task_loads,
            self.assignment if self.retentive else self._initial,
            seed=phase_seed,
            max_attempts=self.max_attempts,
        )
        result = scheduler.run()
        if self.retentive:
            self.assignment = result.final_location.copy()
        self.phases_run += 1
        self.history.append(result)
        return result
