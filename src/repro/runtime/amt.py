"""The AMT runtime: overdecomposed tasks executing on simulated ranks.

One :class:`AMTRuntime` owns a :class:`~repro.sim.process.System`, a
task-to-rank assignment, and phase instrumentation. Executing a phase
charges every rank the serial execution of its tasks (task load plus
the per-task AMT overhead — the "23% overhead" ingredient of Fig. 2)
and closes with a tree barrier, returning per-rank timings.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.obs import StatsRegistry
from repro.runtime.phase import PhaseBarrier, PhaseInstrumentation
from repro.sim.network import NetworkModel
from repro.sim.process import System
from repro.util.validation import check_nonnegative, check_positive

__all__ = ["AMTRuntime", "PhaseResult"]


@dataclass
class PhaseResult:
    """Timing of one executed phase."""

    phase_index: int
    rank_task_time: np.ndarray  #: per-rank serial task execution time
    rank_release_time: np.ndarray  #: per-rank barrier release (wall clock)
    start_time: float
    end_time: float  #: when the last rank left the barrier

    @property
    def duration(self) -> float:
        """Wall-clock phase time (start to last barrier release)."""
        return self.end_time - self.start_time

    @property
    def makespan(self) -> float:
        """The longest per-rank task time (what Eq. 1 bounds)."""
        return float(self.rank_task_time.max())

    def imbalance(self) -> float:
        """Imbalance of the *executed* loads this phase."""
        ave = self.rank_task_time.mean()
        if ave == 0:
            return 0.0
        return float(self.rank_task_time.max() / ave - 1.0)


class AMTRuntime:
    """Overdecomposed tasks on simulated ranks with phase execution."""

    def __init__(
        self,
        n_ranks: int,
        task_loads: np.ndarray,
        assignment: np.ndarray,
        network: NetworkModel | None = None,
        task_overhead: float = 0.0,
        handler_overhead: float = 2e-7,
        rank_speeds: np.ndarray | None = None,
        registry: "StatsRegistry | None" = None,
    ) -> None:
        check_positive("n_ranks", n_ranks)
        check_nonnegative("task_overhead", task_overhead)
        self.system = System(
            int(n_ranks),
            network=network,
            handler_overhead=handler_overhead,
            registry=registry,
        )
        self.task_loads = np.ascontiguousarray(task_loads, dtype=np.float64)
        self.assignment = np.ascontiguousarray(assignment, dtype=np.int64)
        if self.task_loads.shape != self.assignment.shape:
            raise ValueError("task_loads and assignment must have equal length")
        if self.task_loads.size and (
            self.assignment.min() < 0 or self.assignment.max() >= n_ranks
        ):
            raise ValueError("assignment entries must lie in [0, n_ranks)")
        #: Fixed per-task cost added by the tasking runtime (kernel launch,
        #: scheduling, smaller messages) — drives the AMT-without-LB overhead.
        self.task_overhead = float(task_overhead)
        #: Relative execution speed per rank (heterogeneous hardware,
        #: § I's "non-uniform (e.g., NUMA or heterogeneous) resources").
        #: A rank with speed 0.5 takes twice as long for the same load.
        if rank_speeds is None:
            self.rank_speeds = np.ones(int(n_ranks))
        else:
            self.rank_speeds = np.ascontiguousarray(rank_speeds, dtype=np.float64)
            if self.rank_speeds.shape != (int(n_ranks),):
                raise ValueError("need one speed per rank")
            if self.rank_speeds.min() <= 0:
                raise ValueError("rank speeds must be positive")
        self.instrumentation = PhaseInstrumentation()
        self.phases_executed = 0

    @property
    def n_ranks(self) -> int:
        return self.system.n_ranks

    @property
    def n_tasks(self) -> int:
        return self.task_loads.size

    def rank_loads(self) -> np.ndarray:
        """Per-rank total task load under the current assignment."""
        return np.bincount(self.assignment, weights=self.task_loads, minlength=self.n_ranks)

    def set_task_loads(self, task_loads: np.ndarray) -> None:
        """Update per-task loads (the workload evolves between phases)."""
        task_loads = np.ascontiguousarray(task_loads, dtype=np.float64)
        if task_loads.shape != self.task_loads.shape:
            raise ValueError("cannot change the number of tasks")
        self.task_loads = task_loads

    def execute_phase(self) -> PhaseResult:
        """Run one phase to completion and return its timing.

        Every rank executes its tasks serially (sum of loads plus
        ``task_overhead`` per task), then the phase barrier closes.
        The runtime instruments the executed per-task loads for the
        balancer.
        """
        engine = self.system.engine
        start = engine.now
        counts = np.bincount(self.assignment, minlength=self.n_ranks)
        # Heterogeneity: seconds = abstract load units / rank speed.
        work = (self.rank_loads() + counts * self.task_overhead) / self.rank_speeds
        for rank, proc in enumerate(self.system.processes):
            proc.compute(float(work[rank]))

        releases = np.full(self.n_ranks, np.nan)

        def on_release(rank: int, when: float) -> None:
            releases[rank] = when

        barrier = PhaseBarrier(self.system, on_release)
        barrier.start()
        self.system.run()
        if np.isnan(releases).any():
            raise RuntimeError("phase barrier did not release every rank")

        # Instrumentation records *measured durations*: a task that ran
        # on a slow rank looks heavier, which steers persistence-based
        # balancers off slow hardware (and slightly mispredicts after a
        # migration — the real system has the same bias).
        self.instrumentation.observe(self.task_loads / self.rank_speeds[self.assignment])
        result = PhaseResult(
            phase_index=self.phases_executed,
            rank_task_time=work,
            rank_release_time=releases,
            start_time=start,
            end_time=float(releases.max()),
        )
        self.phases_executed += 1
        return result

    def apply_assignment(self, assignment: np.ndarray) -> int:
        """Adopt a new task->rank mapping; returns the migration count.

        The messaging cost of migration is modelled separately by
        :func:`repro.runtime.migration.migrate_tasks`.
        """
        assignment = np.ascontiguousarray(assignment, dtype=np.int64)
        if assignment.shape != self.assignment.shape:
            raise ValueError("assignment length mismatch")
        moved = int(np.count_nonzero(assignment != self.assignment))
        self.assignment = assignment.copy()
        return moved
