"""Task migration over the simulated network.

After the balancer commits a proposal (Alg. 3 l.13), each moved task's
state (its sub-mesh and particles, in EMPIRE terms) is serialized and
shipped to the destination rank. Migration dominates ``t_lb`` in the
paper's Fig. 3; this module reproduces that cost structure.

The episode is a *diffusing computation* so Dijkstra–Scholten applies:
rank 0 broadcasts a commit wave down a binomial tree; on receiving the
wave each rank ships its outgoing tasks as per-task messages of
``bytes_per_unit_load * load + fixed`` bytes; the root detects global
completion when its deficit drains.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.process import Process, System
from repro.sim.reductions import binomial_children
from repro.sim.termination import DijkstraScholten

__all__ = ["MigrationResult", "migrate_tasks"]

_migration_counter = 0


@dataclass
class MigrationResult:
    """Outcome of one migration episode."""

    n_migrations: int
    bytes_moved: int
    start_time: float
    end_time: float  #: simulated time when every task has landed

    @property
    def duration(self) -> float:
        return self.end_time - self.start_time


def migrate_tasks(
    system: System,
    moves: list[tuple[int, int, int]],
    task_loads: np.ndarray,
    bytes_per_unit_load: float = 1e6,
    fixed_bytes: int = 2048,
) -> MigrationResult:
    """Ship each moved task's bytes from its source to its destination.

    Parameters
    ----------
    moves:
        ``(task, src, dst)`` triples (e.g. ``TransferStats.moves`` or a
        diff of assignments). A task appearing several times is shipped
        once, directly to its final destination.
    task_loads:
        Per-task loads; a task's state size scales with its load (more
        particles = more work = more bytes), matching EMPIRE's colors.
    bytes_per_unit_load / fixed_bytes:
        The serialization size model.

    Returns the episode's :class:`MigrationResult`; the system clock
    advances to the detected completion time.
    """
    global _migration_counter
    _migration_counter += 1
    commit_tag = f"mig_commit_{_migration_counter}"
    task_tag = f"mig_task_{_migration_counter}"
    start = system.engine.now

    # Final destination per task (collapse multi-hop proposals).
    final_dst: dict[int, tuple[int, int]] = {}
    for task, src, dst in moves:
        first_src = final_dst[task][0] if task in final_dst else src
        final_dst[task] = (first_src, dst)
    outgoing: dict[int, list[tuple[int, int]]] = {}
    bytes_by_task = {}
    for task, (src, dst) in final_dst.items():
        if src == dst:
            continue
        outgoing.setdefault(src, []).append((task, dst))
        bytes_by_task[task] = int(fixed_bytes + bytes_per_unit_load * float(task_loads[task]))

    def on_commit(proc: Process, msg: "object") -> None:
        for child in binomial_children(proc.rank, system.n_ranks):
            proc.send(child, commit_tag, size=16)
        for task, dst in outgoing.get(proc.rank, ()):  # ship our tasks
            proc.send(dst, task_tag, payload=task, size=bytes_by_task[task])

    for proc in system.processes:
        proc.register(commit_tag, on_commit)
        proc.register(task_tag, lambda p, m: None)

    done: list[float] = []
    detector = DijkstraScholten(system, root=0, on_terminate=done.append)
    # Root starts the wave: locally runs the commit handler semantics.
    root = system.processes[0]
    for child in binomial_children(0, system.n_ranks):
        root.send(child, commit_tag, size=16)
    for task, dst in outgoing.get(0, ()):
        root.send(dst, task_tag, payload=task, size=bytes_by_task[task])
    detector.start()
    system.run()
    if not done:
        raise RuntimeError("migration termination was not detected")
    return MigrationResult(
        n_migrations=len(bytes_by_task),
        bytes_moved=sum(bytes_by_task.values()),
        start_time=start,
        end_time=done[0],
    )
