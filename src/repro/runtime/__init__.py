"""AMT runtime model (the role DARMA/vt plays in the paper).

Built on :mod:`repro.sim`: tasks execute serially per rank with a
per-task overhead, phases end with a tree barrier, per-task loads are
instrumented for the balancers (principle of persistence), the inform
stage runs as real asynchronous messages sequenced by termination
detection, and migrations ship task bytes across the network model.
"""

from repro.runtime.amt import AMTRuntime, PhaseResult
from repro.runtime.distributed_gossip import DistributedGossip, GossipOutcome
from repro.runtime.epochs import Epoch, EpochManager
from repro.runtime.lbmanager import DistributedLBResult, LBManager
from repro.runtime.migration import MigrationResult, migrate_tasks
from repro.runtime.phase import PhaseBarrier, PhaseInstrumentation
from repro.runtime.work_stealing import (
    RetentiveWorkStealing,
    StealResult,
    WorkStealingScheduler,
)

__all__ = [
    "AMTRuntime",
    "DistributedGossip",
    "DistributedLBResult",
    "Epoch",
    "EpochManager",
    "GossipOutcome",
    "LBManager",
    "MigrationResult",
    "PhaseBarrier",
    "PhaseInstrumentation",
    "PhaseResult",
    "RetentiveWorkStealing",
    "StealResult",
    "WorkStealingScheduler",
    "migrate_tasks",
]
