"""The LB manager: a full distributed load-balancing episode in simulation.

Sequence per episode (what vt does at an LB phase boundary):

1. constant-size statistics all-reduce (``l_ave``, ``l_max``);
2. ``n_trials x n_iters`` refinement iterations (Algorithm 3), each an
   asynchronous inform stage (:class:`DistributedGossip`) followed by
   local transfer decisions (Algorithm 2, snapshot view — senders see
   only their own knowledge) and an all-reduce evaluating the proposed
   imbalance;
3. one migration episode executing the best proposal (Alg. 3 l.13).

The returned :class:`DistributedLBResult` carries the simulated cost of
the whole episode — the ``t_lb`` column of Fig. 3.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.base import IterationRecord
from repro.core.metrics import imbalance
from repro.core.tempered import TemperedConfig
from repro.core.transfer import TransferStats, transfer_from_rank
from repro.obs import StatsRegistry
from repro.runtime.amt import AMTRuntime
from repro.runtime.distributed_gossip import DistributedGossip
from repro.runtime.migration import MigrationResult, migrate_tasks
from repro.sim.faults import HeartbeatFailureDetector
from repro.sim.reductions import allreduce
from repro.sim.rng import RankStreams

__all__ = ["DistributedLBResult", "LBManager", "failover_assignment"]

#: CPU seconds charged per transfer-loop attempt (criterion + CMF sample).
_ATTEMPT_COST = 5e-7


def failover_assignment(
    assignment: np.ndarray,
    task_loads: np.ndarray,
    alive: np.ndarray,
) -> tuple[np.ndarray, int]:
    """Reassign every task on a dead rank to a live rank (checkpoint
    restart semantics: the work restarts elsewhere, total load is
    conserved).

    Deterministic greedy: orphaned tasks in descending load order, each
    to the currently least-loaded live rank. Returns the repaired
    assignment and the number of tasks moved.
    """
    assignment = np.asarray(assignment)
    alive = np.asarray(alive, dtype=bool)
    out = assignment.copy()
    if alive.all():
        return out, 0
    if not alive.any():
        raise ValueError("no live ranks to fail over to")
    rank_loads = np.bincount(out, weights=task_loads, minlength=alive.size)
    rank_loads[~alive] = np.inf  # dead ranks are never failover targets
    orphans = np.flatnonzero(~alive[out])
    order = orphans[np.argsort(-task_loads[orphans], kind="stable")]
    for t in order:
        dst = int(np.argmin(rank_loads))
        out[t] = dst
        rank_loads[dst] += task_loads[t]
    return out, int(orphans.size)


@dataclass
class DistributedLBResult:
    """Outcome and cost of one simulated LB episode."""

    assignment: np.ndarray
    initial_imbalance: float
    final_imbalance: float
    n_migrations: int
    t_lb: float  #: total simulated episode time (decision + migration)
    gossip_time: float
    migration: MigrationResult | None
    gossip_messages: int = 0
    gossip_bytes: int = 0
    records: list[IterationRecord] = field(default_factory=list)


class LBManager:
    """Runs TemperedLB-family episodes inside a simulated AMT runtime."""

    def __init__(
        self,
        runtime: AMTRuntime,
        config: TemperedConfig | None = None,
        seed: int = 0,
        bytes_per_unit_load: float = 1e6,
        migration_fixed_bytes: int = 2048,
        registry: StatsRegistry | None = None,
    ) -> None:
        self.runtime = runtime
        self.config = config or TemperedConfig()
        self.streams = RankStreams(runtime.n_ranks, seed=seed)
        self.decision_rng = np.random.default_rng(seed)
        self.bytes_per_unit_load = float(bytes_per_unit_load)
        self.migration_fixed_bytes = int(migration_fixed_bytes)
        #: Optional telemetry sink: per-episode ``lb.episode`` events
        #: (imbalance before/after, migration volume, t_lb), the
        #: ``episode.iteration`` series, and the transfer counters.
        #: Never consumes RNG, so episode outcomes are unchanged.
        self.registry = registry
        #: Lazily created when the system has an active fault layer;
        #: heartbeats run only inside gossip stages (started/stopped by
        #: :class:`DistributedGossip`).
        self.failure_detector: HeartbeatFailureDetector | None = None

    def run_episode(self, predicted_loads: np.ndarray | None = None) -> DistributedLBResult:
        """Balance using the given (or instrumented) per-task loads.

        Advances the runtime's simulated clock by the full episode cost.
        """
        runtime = self.runtime
        system = runtime.system
        cfg = self.config
        task_loads = (
            np.ascontiguousarray(predicted_loads, dtype=np.float64)
            if predicted_loads is not None
            else runtime.instrumentation.latest()
        )
        if task_loads.shape != runtime.assignment.shape:
            raise ValueError("predicted loads must match the task count")

        t0 = system.engine.now
        original = runtime.assignment.copy()
        n_ranks = runtime.n_ranks

        faults = system.faults
        if faults is None or not faults.enabled:
            faults = None
        if faults is not None:
            if self.failure_detector is None:
                self.failure_detector = HeartbeatFailureDetector(
                    system, faults.config, registry=self.registry
                )
            # Checkpoint-restart failover: tasks stranded on dead ranks
            # restart on the least-loaded live ranks before balancing.
            # (Restart cost is checkpoint I/O, not a live migration, so
            # it is not charged to the migration episode.)
            if faults.dead_ranks().size:
                original, n_failover = failover_assignment(
                    original, task_loads, faults.alive
                )
                if n_failover and self.registry is not None and self.registry.enabled:
                    self.registry.inc("faults.failover_tasks", n_failover)

        # 1. Statistics all-reduce: (total, max) of rank loads.
        rank_loads = np.bincount(original, weights=task_loads, minlength=n_ranks)
        self._stats_allreduce(rank_loads)
        l_ave = float(rank_loads.mean())
        initial_imbalance = imbalance(rank_loads)

        # 2. Iterative refinement (Algorithm 3) with event-level informs.
        best = original.copy()
        best_imbalance = initial_imbalance
        records: list[IterationRecord] = []
        gossip_time = 0.0
        gossip_messages = 0
        gossip_bytes = 0
        for trial in range(1, cfg.n_trials + 1):
            working = original.copy()
            for iteration in range(1, cfg.n_iters + 1):
                loads = np.bincount(working, weights=task_loads, minlength=n_ranks)
                gossip = DistributedGossip(
                    system,
                    loads,
                    average_load=l_ave,
                    fanout=cfg.fanout,
                    rounds=cfg.rounds,
                    streams=self.streams,
                    detector=self.failure_detector,
                    knowledge=cfg.knowledge,
                ).run()
                gossip_time += gossip.elapsed
                gossip_messages += gossip.n_messages
                gossip_bytes += gossip.bytes_sent
                # Transfer decisions run rank by rank so each overloaded
                # rank's CPU is charged for its own attempts.
                stats = TransferStats()
                gossip_result = gossip.to_gossip_result()
                transfer_cfg = cfg.transfer_config()
                overloaded = np.flatnonzero(loads > transfer_cfg.threshold * l_ave)
                if faults is not None:
                    # Dead and suspected ranks must neither receive work
                    # nor make decisions this iteration.
                    excluded = {int(r) for r in faults.dead_ranks()}
                    if self.failure_detector is not None:
                        excluded |= {int(r) for r in self.failure_detector.suspected}
                    if excluded:
                        gossip_result.knowledge.discard_members(
                            np.fromiter(sorted(excluded), dtype=np.int64)
                        )
                    overloaded = overloaded[faults.alive[overloaded]]
                for p in overloaded:
                    rank_stats = transfer_from_rank(
                        int(p),
                        working,
                        task_loads,
                        gossip_result,
                        transfer_cfg,
                        rng=self.decision_rng,
                        registry=self.registry,
                    )
                    attempts = rank_stats.transfers + rank_stats.rejections
                    if attempts:
                        system.processes[int(p)].compute(attempts * _ATTEMPT_COST)
                    stats.merge(rank_stats)
                loads = np.bincount(working, weights=task_loads, minlength=n_ranks)
                proposed = imbalance(loads)
                # Evaluating I_proposed is an all-reduce in the real system.
                self._stats_allreduce(loads)
                records.append(
                    IterationRecord(
                        trial=trial,
                        iteration=iteration,
                        transfers=stats.transfers,
                        rejections=stats.rejections,
                        imbalance=proposed,
                        gossip_messages=gossip.n_messages,
                        gossip_bytes=gossip.bytes_sent,
                    )
                )
                if self.registry is not None and self.registry.enabled:
                    self.registry.inc("episode.iterations")
                    self.registry.inc("gossip.messages", gossip.n_messages)
                    self.registry.inc("gossip.bytes", gossip.bytes_sent)
                    self.registry.observe(
                        "episode.iteration",
                        trial=trial,
                        iteration=iteration,
                        proposed=stats.proposed,
                        accepted=stats.transfers,
                        rejected=stats.rejections,
                        rejection_rate=stats.rejection_rate,
                        cmf_builds=stats.cmf_builds,
                        imbalance=proposed,
                        gossip_messages=gossip.n_messages,
                        gossip_bytes=gossip.bytes_sent,
                        gossip_elapsed=gossip.elapsed,
                    )
                if proposed < best_imbalance:
                    best_imbalance = proposed
                    best = working.copy()

        # 3. Execute the winning proposal's migrations.
        moves = [
            (int(t), int(original[t]), int(best[t]))
            for t in np.flatnonzero(best != original)
        ]
        migration = None
        if moves:
            migration = migrate_tasks(
                system,
                moves,
                task_loads,
                bytes_per_unit_load=self.bytes_per_unit_load,
                fixed_bytes=self.migration_fixed_bytes,
            )
        runtime.apply_assignment(best)

        result = DistributedLBResult(
            assignment=best,
            initial_imbalance=initial_imbalance,
            final_imbalance=best_imbalance,
            n_migrations=len(moves),
            t_lb=system.engine.now - t0,
            gossip_time=gossip_time,
            migration=migration,
            gossip_messages=gossip_messages,
            gossip_bytes=gossip_bytes,
            records=records,
        )
        if self.registry is not None and self.registry.enabled:
            reg = self.registry
            bytes_moved = migration.bytes_moved if migration is not None else 0
            reg.inc("episode.runs")
            reg.inc("episode.migrations", len(moves))
            reg.inc("episode.migration_bytes", bytes_moved)
            reg.add_time("episode.t_lb", result.t_lb)
            reg.add_time("episode.gossip_time", gossip_time)
            if migration is not None:
                reg.add_time("episode.migration_time", migration.duration)
            reg.event(
                "lb.episode",
                time=system.engine.now,
                initial_imbalance=initial_imbalance,
                final_imbalance=best_imbalance,
                n_migrations=len(moves),
                migration_bytes=bytes_moved,
                t_lb=result.t_lb,
                gossip_time=gossip_time,
                gossip_messages=gossip_messages,
                gossip_bytes=gossip_bytes,
            )
        return result

    def _stats_allreduce(self, rank_loads: np.ndarray) -> None:
        """Simulate the constant-size (total, max) all-reduce."""
        contributions = [(float(l), float(l)) for l in rank_loads]
        allreduce(
            self.runtime.system,
            contributions,
            combine=lambda a, b: (a[0] + b[0], max(a[1], b[1])),
            on_complete=lambda rank, value: None,
            size=32,
        )
        self.runtime.system.run()
