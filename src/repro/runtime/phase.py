"""Phase demarcation: instrumentation and the end-of-phase barrier.

vt demarcates application *phases* (a timestep or iteration); load
balancing relies on instrumentation collected per phase (§ III-B, the
principle of persistence). A phase ends with a tree barrier here —
the bulk-synchronous boundary that makes the max rank load the
performance limiter (the reasoning behind Eq. 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.sim.messages import Message
from repro.sim.process import Process, System
from repro.sim.reductions import binomial_children, binomial_parent

__all__ = ["PhaseBarrier", "PhaseInstrumentation"]

_barrier_counter = 0


class PhaseBarrier:
    """A binomial-tree barrier keyed to each rank's CPU-busy time.

    Every rank "arrives" when its CPU drains (``busy_until``); arrival
    reports flow up a binomial tree and a release wave flows back down.
    ``on_complete(rank, time)`` fires per rank at its release time.
    """

    def __init__(
        self,
        system: System,
        on_release: Callable[[int, float], None],
        size: int = 16,
    ) -> None:
        global _barrier_counter
        _barrier_counter += 1
        self.system = system
        self.on_release = on_release
        self.size = size
        n = system.n_ranks
        self._pending = [len(binomial_children(v, n)) + 1 for v in range(n)]
        self._tag_up = f"__barrier_up_{_barrier_counter}"
        self._tag_down = f"__barrier_down_{_barrier_counter}"
        for proc in system.processes:
            proc.register(self._tag_up, self._on_up)
            proc.register(self._tag_down, self._on_down)

    def start(self) -> None:
        """Arm the barrier: each rank arrives when its CPU drains."""
        for proc in self.system.processes:
            when = max(self.system.engine.now, proc.busy_until)
            self.system.engine.schedule_at(when, self._arrive, proc.rank)

    def _arrive(self, rank: int) -> None:
        self._pending[rank] -= 1
        self._maybe_send_up(rank)

    def _on_up(self, proc: Process, msg: Message) -> None:
        self._pending[proc.rank] -= 1
        self._maybe_send_up(proc.rank)

    def _maybe_send_up(self, rank: int) -> None:
        if self._pending[rank] != 0:
            return
        self._pending[rank] = -1  # fired
        if rank == 0:
            self._release(0)
            return
        parent = binomial_parent(rank)
        self.system.processes[rank].send(parent, self._tag_up, size=self.size)

    def _release(self, rank: int) -> None:
        self.on_release(rank, self.system.engine.now)
        for child in binomial_children(rank, self.system.n_ranks):
            self.system.processes[rank].send(child, self._tag_down, size=self.size)

    def _on_down(self, proc: Process, msg: Message) -> None:
        self._release(proc.rank)


@dataclass
class PhaseInstrumentation:
    """Measured per-task loads, one vector per completed phase.

    The balancer consumes ``latest()`` as its prediction for the next
    phase — exactly the persistence assumption the paper leans on.
    """

    history: list[np.ndarray] = field(default_factory=list)
    max_phases_kept: int = 8

    def observe(self, task_loads: np.ndarray) -> None:
        """Record one phase's measured per-task loads."""
        self.history.append(np.array(task_loads, dtype=np.float64, copy=True))
        if len(self.history) > self.max_phases_kept:
            self.history.pop(0)

    def latest(self) -> np.ndarray:
        """The most recent phase's loads (the persistence prediction)."""
        if not self.history:
            raise RuntimeError("no phase has been instrumented yet")
        return self.history[-1]

    def smoothed(self, window: int = 3) -> np.ndarray:
        """Mean of the last ``window`` phases (noise-robust prediction)."""
        if not self.history:
            raise RuntimeError("no phase has been instrumented yet")
        recent = self.history[-window:]
        return np.mean(recent, axis=0)

    @property
    def n_phases(self) -> int:
        return len(self.history)
