"""Trace-driven workloads: replay measured per-phase task loads.

The principle of persistence (§ III-B) is ultimately an empirical claim
about *real application traces*. This module lets users feed their own:
a :class:`LoadTrace` is a ``(n_phases, n_tasks)`` matrix of per-task
loads, saved/loaded as JSON, replayable phase by phase against any
balancer, with the persistence correlation measurable per phase.
:func:`synthesize_trace` generates traces from the built-in dynamic
models for testing pipelines end to end.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.analysis.io import load_json, save_json
from repro.util.validation import check_positive

__all__ = ["LoadTrace", "synthesize_trace"]


class LoadTrace:
    """A recorded sequence of per-phase task-load vectors."""

    def __init__(self, loads: np.ndarray) -> None:
        self.loads = np.ascontiguousarray(loads, dtype=np.float64)
        if self.loads.ndim != 2:
            raise ValueError("trace must be 2-D: (n_phases, n_tasks)")
        if self.loads.size == 0:
            raise ValueError("trace must be non-empty")
        if not np.isfinite(self.loads).all() or self.loads.min() < 0:
            raise ValueError("trace loads must be finite and non-negative")

    @property
    def n_phases(self) -> int:
        return self.loads.shape[0]

    @property
    def n_tasks(self) -> int:
        return self.loads.shape[1]

    def phase(self, index: int) -> np.ndarray:
        """The per-task loads of one phase."""
        return self.loads[index]

    def persistence(self, index: int) -> float:
        """Correlation between phase ``index`` and ``index + 1`` loads."""
        if not 0 <= index < self.n_phases - 1:
            raise IndexError("need a phase with a successor")
        a, b = self.loads[index], self.loads[index + 1]
        if a.std() == 0 or b.std() == 0:
            return 1.0
        return float(np.corrcoef(a, b)[0, 1])

    def mean_persistence(self) -> float:
        """Average phase-to-phase correlation over the whole trace."""
        if self.n_phases < 2:
            return 1.0
        return float(np.mean([self.persistence(i) for i in range(self.n_phases - 1)]))

    # -- persistence to disk -------------------------------------------------

    def save(self, path: str | Path) -> None:
        """Write the trace as JSON."""
        save_json(
            {"n_phases": self.n_phases, "n_tasks": self.n_tasks,
             "loads": self.loads.tolist()},
            path,
        )

    @classmethod
    def load(cls, path: str | Path) -> "LoadTrace":
        """Read a trace written by :meth:`save`."""
        payload = load_json(path)
        trace = cls(np.asarray(payload["loads"]))
        if trace.n_phases != payload["n_phases"] or trace.n_tasks != payload["n_tasks"]:
            raise ValueError("trace file is inconsistent with its header")
        return trace

    # -- replay ----------------------------------------------------------------

    def replay(self, balancer, n_ranks: int, lb_period: int = 1, seed: int = 0):
        """Run a balancer over the trace; yields per-phase executed stats.

        The balancer decides on phase ``t-1``'s loads and the decision
        executes against phase ``t``'s — the persistence gap built in.
        Returns a list of ``(phase, executed_imbalance, migrations)``.
        """
        from repro.core.distribution import Distribution

        check_positive("n_ranks", n_ranks)
        check_positive("lb_period", lb_period)
        rng = np.random.default_rng(seed)
        assignment = (np.arange(self.n_tasks) * n_ranks // self.n_tasks).astype(np.int64)
        out = []
        for phase in range(self.n_phases):
            migrations = 0
            if phase > 0 and phase % lb_period == 0:
                dist = Distribution(self.loads[phase - 1], assignment, n_ranks)
                result = balancer.rebalance(dist, rng=rng)
                migrations = int(np.count_nonzero(result.assignment != assignment))
                assignment = result.assignment.copy()
            executed = np.bincount(assignment, weights=self.loads[phase], minlength=n_ranks)
            imbalance = float(executed.max() / executed.mean() - 1.0) if executed.mean() else 0.0
            out.append((phase, imbalance, migrations))
        return out


def synthesize_trace(
    kind: str = "hotspot",
    n_phases: int = 20,
    n_tasks: int = 256,
    seed: int = 0,
) -> LoadTrace:
    """Generate a trace from the built-in dynamic models.

    ``kind``: ``"hotspot"`` (a moving Gaussian over the task ring) or
    ``"noisy"`` (static loads under multiplicative lognormal noise).
    """
    check_positive("n_phases", n_phases)
    check_positive("n_tasks", n_tasks)
    if kind == "hotspot":
        from repro.workloads.timevarying import MovingHotspot

        hotspot = MovingHotspot(n_tasks, base=0.5, amplitude=10.0, sigma=0.05, speed=0.01)
        loads = np.stack([hotspot.loads(t) for t in range(n_phases)])
    elif kind == "noisy":
        rng = np.random.default_rng(seed)
        base = rng.gamma(2.0, 0.5, size=n_tasks)
        noise = rng.lognormal(0.0, 0.2, size=(n_phases, n_tasks))
        loads = base[None, :] * noise
    else:
        raise ValueError(f"unknown trace kind {kind!r}; use 'hotspot' or 'noisy'")
    return LoadTrace(loads)
