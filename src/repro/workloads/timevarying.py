"""Time-varying workload models.

These generators evolve per-task loads across phases, producing the kind
of "time-varying imbalance" the paper targets: the load distribution
changes slowly enough for the *principle of persistence* (§ III-B) to
hold between consecutive phases, yet drifts far enough that a one-shot
balance decays.
"""

from __future__ import annotations

import numpy as np

from repro.util.validation import check_nonnegative, check_positive, coerce_rng

__all__ = ["MovingHotspot", "PersistenceNoise"]


class MovingHotspot:
    """A Gaussian load hotspot drifting over a 1-D periodic task domain.

    Task ``i`` sits at position ``i / n_tasks`` on the unit circle. At
    phase ``t`` its load is::

        base + amplitude * exp(-d(i, c(t))^2 / (2 sigma^2))

    where ``c(t) = c0 + speed * t`` (mod 1) and ``d`` is circular
    distance. ``speed`` controls how quickly persistence decays between
    phases.
    """

    def __init__(
        self,
        n_tasks: int,
        base: float = 1.0,
        amplitude: float = 10.0,
        sigma: float = 0.05,
        speed: float = 0.002,
        center0: float = 0.25,
    ) -> None:
        check_positive("n_tasks", n_tasks)
        check_positive("base", base)
        check_nonnegative("amplitude", amplitude)
        check_positive("sigma", sigma)
        check_nonnegative("speed", speed)
        self.n_tasks = int(n_tasks)
        self.base = float(base)
        self.amplitude = float(amplitude)
        self.sigma = float(sigma)
        self.speed = float(speed)
        self.center0 = float(center0) % 1.0
        self._positions = np.arange(self.n_tasks, dtype=np.float64) / self.n_tasks

    def center(self, phase: int) -> float:
        """Hotspot center at the given phase."""
        return (self.center0 + self.speed * phase) % 1.0

    def loads(self, phase: int) -> np.ndarray:
        """Per-task loads at the given phase."""
        c = self.center(phase)
        d = np.abs(self._positions - c)
        d = np.minimum(d, 1.0 - d)  # circular distance
        return self.base + self.amplitude * np.exp(-0.5 * (d / self.sigma) ** 2)

    def persistence(self, phase: int) -> float:
        """Correlation between this phase's loads and the next phase's —
        a direct measure of the principle of persistence."""
        a = self.loads(phase)
        b = self.loads(phase + 1)
        if a.std() == 0.0 or b.std() == 0.0:
            return 1.0
        return float(np.corrcoef(a, b)[0, 1])


class PersistenceNoise:
    """Multiplicative noise applied to predicted loads.

    Models the gap between the instrumented load of phase ``t`` (what the
    balancer sees) and the actual load of phase ``t+1`` (what executes):
    ``actual = predicted * lognormal(0, sigma)``. ``sigma=0`` is perfect
    persistence.
    """

    def __init__(self, sigma: float = 0.0, seed: int | np.random.Generator | None = 0) -> None:
        check_nonnegative("sigma", sigma)
        self.sigma = float(sigma)
        self._rng = coerce_rng(seed)

    def perturb(self, predicted: np.ndarray) -> np.ndarray:
        """Return the actual loads for predicted loads."""
        predicted = np.asarray(predicted, dtype=np.float64)
        if self.sigma == 0.0:
            return predicted.copy()
        factors = self._rng.lognormal(mean=0.0, sigma=self.sigma, size=predicted.shape)
        return predicted * factors
