"""Static synthetic task distributions.

The headline generator is :func:`paper_analysis_scenario`, the § V-B
test case: :math:`10^4` tasks placed on only :math:`2^4` of
:math:`2^{12}` ranks, leaving the rest empty — initial imbalance around
250–290 depending on the seed (the paper reports 280; the exact value
depends on their load draw, which is not published).
"""

from __future__ import annotations

import numpy as np

from repro.core.distribution import Distribution
from repro.util.validation import check_positive, coerce_rng

__all__ = ["paper_analysis_scenario", "skewed_distribution", "random_distribution"]


def paper_analysis_scenario(
    n_tasks: int = 10_000,
    n_loaded_ranks: int = 16,
    n_ranks: int = 4096,
    mean_load: float = 1.0,
    load_cv: float = 0.5,
    seed: int | np.random.Generator | None = 0,
) -> Distribution:
    """The § V-B scenario: all tasks on a handful of ranks.

    Tasks are placed uniformly at random on the first ``n_loaded_ranks``
    ranks; loads are drawn from a gamma distribution with mean
    ``mean_load`` and coefficient of variation ``load_cv`` (strictly
    positive, right-skewed — typical of measured task durations).
    """
    check_positive("n_tasks", n_tasks)
    check_positive("n_loaded_ranks", n_loaded_ranks)
    check_positive("n_ranks", n_ranks)
    if n_loaded_ranks > n_ranks:
        raise ValueError("n_loaded_ranks cannot exceed n_ranks")
    rng = coerce_rng(seed)
    loads = _gamma_loads(rng, n_tasks, mean_load, load_cv)
    assignment = rng.integers(0, n_loaded_ranks, size=n_tasks)
    return Distribution(loads, assignment, n_ranks)


def skewed_distribution(
    n_tasks: int,
    n_ranks: int,
    skew: float = 2.0,
    mean_load: float = 1.0,
    load_cv: float = 0.5,
    seed: int | np.random.Generator | None = 0,
) -> Distribution:
    """Zipf-like placement: rank ``r`` attracts mass proportional to
    ``(r+1)^-skew``. ``skew=0`` degenerates to uniform placement."""
    check_positive("n_tasks", n_tasks)
    check_positive("n_ranks", n_ranks)
    if skew < 0:
        raise ValueError("skew must be non-negative")
    rng = coerce_rng(seed)
    weights = (np.arange(1, n_ranks + 1, dtype=np.float64)) ** (-skew)
    weights /= weights.sum()
    assignment = rng.choice(n_ranks, size=n_tasks, p=weights)
    loads = _gamma_loads(rng, n_tasks, mean_load, load_cv)
    return Distribution(loads, assignment, n_ranks)


def random_distribution(
    n_tasks: int,
    n_ranks: int,
    mean_load: float = 1.0,
    load_cv: float = 0.5,
    seed: int | np.random.Generator | None = 0,
) -> Distribution:
    """Uniform random placement — the low-imbalance control case."""
    check_positive("n_tasks", n_tasks)
    check_positive("n_ranks", n_ranks)
    rng = coerce_rng(seed)
    assignment = rng.integers(0, n_ranks, size=n_tasks)
    loads = _gamma_loads(rng, n_tasks, mean_load, load_cv)
    return Distribution(loads, assignment, n_ranks)


def _gamma_loads(
    rng: np.random.Generator, n: int, mean: float, cv: float
) -> np.ndarray:
    """Strictly positive loads with the requested mean and CV.

    ``cv=0`` yields constant loads; otherwise a gamma draw with shape
    ``1/cv^2`` (gamma CV is ``1/sqrt(shape)``).
    """
    check_positive("mean_load", mean)
    if cv < 0:
        raise ValueError("load_cv must be non-negative")
    if cv == 0.0:
        return np.full(n, mean)
    shape = 1.0 / (cv * cv)
    scale = mean / shape
    loads = rng.gamma(shape, scale, size=n)
    # Guard against pathological zero draws: the algorithms assume
    # strictly positive task loads (a zero-load task is unmovable noise).
    return np.maximum(loads, mean * 1e-9)
