"""Synthetic workload generators.

:mod:`repro.workloads.synthetic` builds static distributions, including
the exact § V-B analysis scenario (10^4 tasks concentrated on 2^4 of
2^12 ranks). :mod:`repro.workloads.timevarying` provides per-step load
evolutions with controllable imbalance dynamics, used to exercise the
principle of persistence.
"""

from repro.workloads.synthetic import (
    paper_analysis_scenario,
    random_distribution,
    skewed_distribution,
)
from repro.workloads.timevarying import MovingHotspot, PersistenceNoise
from repro.workloads.traces import LoadTrace, synthesize_trace

__all__ = [
    "LoadTrace",
    "MovingHotspot",
    "PersistenceNoise",
    "paper_analysis_scenario",
    "random_distribution",
    "skewed_distribution",
    "synthesize_trace",
]
