"""Typed active messages exchanged between simulated ranks."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

__all__ = ["Message"]

_ids = itertools.count()


@dataclass(frozen=True)
class Message:
    """One active message.

    ``tag`` routes the message to a registered handler on the
    destination process (vt's "registered handler" dispatch). ``size``
    is the wire size in bytes used by the network cost model.
    """

    src: int
    dst: int
    tag: str
    payload: Any = None
    size: int = 64
    send_time: float = 0.0
    msg_id: int = field(default_factory=lambda: next(_ids))

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError("message size must be non-negative")
