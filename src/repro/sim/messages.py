"""Typed active messages exchanged between simulated ranks.

Besides the in-simulator :class:`Message` dataclass, this module owns
the *wire form* of a message — the JSON-safe dict the real-socket
runtime (:mod:`repro.net`) frames onto TCP connections. Both runtimes
exchange the same logical messages; :func:`to_wire`/:func:`from_wire`
are the single conversion point, so a payload that round-trips here is
guaranteed to mean the same thing to a simulated rank and to a live
node process. The schema is versioned (:data:`WIRE_VERSION`); a
receiver rejects frames from a different major version instead of
guessing.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

import numpy as np

__all__ = [
    "Message",
    "WIRE_VERSION",
    "WireFormatError",
    "encode_payload",
    "decode_payload",
    "to_wire",
    "from_wire",
]

_ids = itertools.count()

#: Wire-schema version stamped on every framed message. Bump on any
#: incompatible change to the frame layout or payload encoding.
WIRE_VERSION = 1


class WireFormatError(ValueError):
    """A frame or payload that does not follow the wire schema."""


def encode_payload(payload: Any) -> Any:
    """Recursively convert a message payload to JSON-safe values.

    Handled types: None/bool/int/float/str pass through; numpy scalars
    become Python scalars; numpy arrays become ``{"__nd__": ..,
    "dtype": ..}``; tuples become ``{"__tuple__": [..]}`` (so the
    decoder can restore tuple-vs-list exactly); lists and string-keyed
    dicts recurse. Anything else is a :class:`WireFormatError` — the
    wire schema is deliberately closed.
    """
    if payload is None or isinstance(payload, (bool, int, float, str)):
        return payload
    if isinstance(payload, np.generic):
        return payload.item()
    if isinstance(payload, np.ndarray):
        return {"__nd__": payload.tolist(), "dtype": payload.dtype.name}
    if isinstance(payload, tuple):
        return {"__tuple__": [encode_payload(v) for v in payload]}
    if isinstance(payload, list):
        return [encode_payload(v) for v in payload]
    if isinstance(payload, dict):
        out = {}
        for key, value in payload.items():
            if not isinstance(key, str) or key in ("__nd__", "__tuple__"):
                raise WireFormatError(f"unencodable payload dict key {key!r}")
            out[key] = encode_payload(value)
        return out
    raise WireFormatError(f"unencodable payload type {type(payload).__name__}")


def decode_payload(value: Any) -> Any:
    """Inverse of :func:`encode_payload`."""
    if isinstance(value, list):
        return [decode_payload(v) for v in value]
    if isinstance(value, dict):
        if "__nd__" in value:
            return np.asarray(value["__nd__"], dtype=np.dtype(value["dtype"]))
        if "__tuple__" in value:
            return tuple(decode_payload(v) for v in value["__tuple__"])
        return {k: decode_payload(v) for k, v in value.items()}
    return value


def to_wire(msg: "Message") -> dict[str, Any]:
    """The JSON-safe wire dict for one message."""
    return {
        "v": WIRE_VERSION,
        "src": int(msg.src),
        "dst": int(msg.dst),
        "tag": msg.tag,
        "payload": encode_payload(msg.payload),
        "size": int(msg.size),
    }


def from_wire(data: dict[str, Any]) -> "Message":
    """Rebuild a :class:`Message` from its wire dict.

    Raises :class:`WireFormatError` on a missing/incompatible version
    or a malformed frame, never silently reinterprets.
    """
    if not isinstance(data, dict):
        raise WireFormatError(f"wire frame must be a dict, got {type(data).__name__}")
    version = data.get("v")
    if version != WIRE_VERSION:
        raise WireFormatError(
            f"wire version mismatch: got {version!r}, expected {WIRE_VERSION}"
        )
    try:
        return Message(
            src=int(data["src"]),
            dst=int(data["dst"]),
            tag=str(data["tag"]),
            payload=decode_payload(data.get("payload")),
            size=int(data.get("size", 64)),
        )
    except (KeyError, TypeError) as exc:
        raise WireFormatError(f"malformed wire frame: {exc}") from exc


@dataclass(frozen=True)
class Message:
    """One active message.

    ``tag`` routes the message to a registered handler on the
    destination process (vt's "registered handler" dispatch). ``size``
    is the wire size in bytes used by the network cost model.
    """

    src: int
    dst: int
    tag: str
    payload: Any = None
    size: int = 64
    send_time: float = 0.0
    msg_id: int = field(default_factory=lambda: next(_ids))

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError("message size must be non-negative")
