"""Network cost model.

A two-level alpha-beta model matching the paper's testbed shape (four
ranks per node over EDR InfiniBand): intra-node messages pay shared-
memory latency/bandwidth; inter-node messages pay NIC latency and
network bandwidth. Defaults approximate the published EDR numbers
(~1 us latency, ~12 GB/s effective per-rank bandwidth) — absolute
fidelity is not required, only that message cost scales as
``alpha + size * beta`` so protocol costs have realistic shape.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.validation import check_nonnegative, check_positive

__all__ = ["NetworkModel"]


@dataclass(frozen=True)
class NetworkModel:
    """Latency/bandwidth cost model with node locality."""

    ranks_per_node: int = 4
    intra_latency: float = 2e-7  #: seconds, shared memory
    intra_bandwidth: float = 5e9  #: bytes/second
    inter_latency: float = 1.2e-6  #: seconds, NIC + switch
    inter_bandwidth: float = 1.2e10  #: bytes/second
    self_latency: float = 5e-8  #: local delivery (scheduler hop)

    def __post_init__(self) -> None:
        check_positive("ranks_per_node", self.ranks_per_node)
        check_nonnegative("intra_latency", self.intra_latency)
        check_positive("intra_bandwidth", self.intra_bandwidth)
        check_nonnegative("inter_latency", self.inter_latency)
        check_positive("inter_bandwidth", self.inter_bandwidth)
        check_nonnegative("self_latency", self.self_latency)

    def node_of(self, rank: int) -> int:
        """Node id hosting a rank (block mapping, as on the ARM cluster)."""
        return rank // self.ranks_per_node

    def link_class(self, src: int, dst: int) -> str:
        """Which link a message traverses: ``"self"``, ``"intra"`` (same
        node) or ``"inter"`` (crossing nodes). Telemetry keys messages
        by this class (``net.links.*``)."""
        if src == dst:
            return "self"
        if self.node_of(src) == self.node_of(dst):
            return "intra"
        return "inter"

    def latency(self, src: int, dst: int, size: int) -> float:
        """Total transfer time for ``size`` bytes from ``src`` to ``dst``."""
        return self.wire_latency(src, dst) + self.tx_seconds(src, dst, size)

    def wire_latency(self, src: int, dst: int) -> float:
        """The size-independent (alpha) component."""
        if src == dst:
            return self.self_latency
        if self.node_of(src) == self.node_of(dst):
            return self.intra_latency
        return self.inter_latency

    def latencies(
        self, src: int, dsts: np.ndarray, sizes: np.ndarray | int
    ) -> np.ndarray:
        """Vectorized :meth:`latency`: one sender, many destinations.

        ``sizes`` may be a scalar (one payload fanned out) or an array
        aligned with ``dsts``. Element ``i`` equals
        ``latency(src, dsts[i], sizes[i])`` exactly — the same alpha
        lookup and the same single IEEE division for the beta term.
        """
        dsts = np.asarray(dsts, dtype=np.int64)
        sizes = np.broadcast_to(np.asarray(sizes, dtype=np.float64), dsts.shape)
        if (sizes < 0).any():
            raise ValueError("size must be non-negative")
        same = dsts == src
        intra = (dsts // self.ranks_per_node == src // self.ranks_per_node) & ~same
        alpha = np.where(
            same,
            self.self_latency,
            np.where(intra, self.intra_latency, self.inter_latency),
        )
        beta = np.where(
            same,
            0.0,
            np.where(
                intra, sizes / self.intra_bandwidth, sizes / self.inter_bandwidth
            ),
        )
        return alpha + beta

    def tx_seconds(self, src: int, dst: int, size: int) -> float:
        """The serialization (beta) component: time the sender's NIC is
        occupied pushing ``size`` bytes."""
        if size < 0:
            raise ValueError("size must be non-negative")
        if src == dst:
            return 0.0
        if self.node_of(src) == self.node_of(dst):
            return size / self.intra_bandwidth
        return size / self.inter_bandwidth
