"""Asynchronous collective reductions over the simulated network.

The load balancers open with a constant-size statistics all-reduce
(max/average load). This module simulates a binomial-tree reduce
followed by a binomial-tree broadcast — ``2 log2 P`` message hops on the
critical path — and invokes a completion callback on every rank at the
simulated time its result arrives.

Binomial tree over *virtual* ranks (``vrank = (rank - root) mod n``):

- ``parent(v) = v & (v - 1)`` (clear the lowest set bit);
- ``children(v)``: ``v | 2^k`` for every ``2^k`` below ``v``'s lowest
  set bit (all powers of two below ``n`` when ``v == 0``), bounded by
  ``n``.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.sim.messages import Message
from repro.sim.process import Process, System

__all__ = ["allreduce", "binomial_children", "binomial_parent"]

_counter = 0


def binomial_parent(vrank: int) -> int:
    """Parent of a virtual rank in the binomial tree (vrank > 0)."""
    if vrank <= 0:
        raise ValueError("the root (vrank 0) has no parent")
    return vrank & (vrank - 1)


def binomial_children(vrank: int, n: int) -> list[int]:
    """Children of ``vrank`` in an ``n``-rank binomial tree."""
    if not 0 <= vrank < n:
        raise ValueError(f"vrank {vrank} out of range for {n} ranks")
    limit = (vrank & -vrank) if vrank else n
    children = []
    bit = 1
    while bit < limit:
        child = vrank | bit
        if child < n:
            children.append(child)
        bit <<= 1
    return children


def allreduce(
    system: System,
    contributions: list[Any],
    combine: Callable[[Any, Any], Any],
    on_complete: Callable[[int, Any], None],
    size: int = 64,
    root: int = 0,
) -> None:
    """Simulate an all-reduce across all ranks of ``system``.

    Parameters
    ----------
    contributions:
        One value per rank.
    combine:
        Associative binary reduction operator.
    on_complete:
        Called as ``on_complete(rank, reduced_value)`` on every rank at
        the simulated time its result arrives.
    size:
        Wire size of each reduction message in bytes.
    root:
        Tree root (rank numbering is rotated so any root works).
    """
    global _counter
    if len(contributions) != system.n_ranks:
        raise ValueError(
            f"need one contribution per rank ({len(contributions)} != {system.n_ranks})"
        )
    if not 0 <= root < system.n_ranks:
        raise ValueError(f"root {root} out of range")
    _counter += 1
    _AllReduceOp(system, contributions, combine, on_complete, size, root, _counter).start()


class _AllReduceOp:
    """One in-flight all-reduce (binomial reduce + binomial broadcast)."""

    def __init__(
        self,
        system: System,
        contributions: list[Any],
        combine: Callable[[Any, Any], Any],
        on_complete: Callable[[int, Any], None],
        size: int,
        root: int,
        uid: int,
    ) -> None:
        self.system = system
        self.combine = combine
        self.on_complete = on_complete
        self.size = size
        self.root = root
        self.n = system.n_ranks
        self.tag_up = f"__allreduce_up_{uid}"
        self.tag_down = f"__allreduce_down_{uid}"
        self.value = list(contributions)
        self.pending = [
            len(binomial_children(self._vrank(r), self.n)) for r in range(self.n)
        ]
        for proc in system.processes:
            proc.register(self.tag_up, self._on_up)
            proc.register(self.tag_down, self._on_down)

    def _vrank(self, rank: int) -> int:
        return (rank - self.root) % self.n

    def _rank(self, vrank: int) -> int:
        return (vrank + self.root) % self.n

    def start(self) -> None:
        if self.n == 1:
            self.on_complete(self.root, self.value[self.root])
            return
        for rank in range(self.n):
            if self.pending[rank] == 0:
                self._send_up(rank)

    def _send_up(self, rank: int) -> None:
        vrank = self._vrank(rank)
        if vrank == 0:
            # Root folded every child: deliver locally, then broadcast.
            self.on_complete(rank, self.value[rank])
            self._fan_out(rank)
            return
        parent = self._rank(binomial_parent(vrank))
        self.system.processes[rank].send(
            parent, self.tag_up, payload=self.value[rank], size=self.size
        )

    def _on_up(self, proc: Process, msg: Message) -> None:
        rank = proc.rank
        self.value[rank] = self.combine(self.value[rank], msg.payload)
        self.pending[rank] -= 1
        if self.pending[rank] == 0:
            self._send_up(rank)

    def _fan_out(self, rank: int) -> None:
        for child_v in binomial_children(self._vrank(rank), self.n):
            self.system.processes[rank].send(
                self._rank(child_v), self.tag_down, payload=self.value[rank], size=self.size
            )

    def _on_down(self, proc: Process, msg: Message) -> None:
        rank = proc.rank
        self.value[rank] = msg.payload
        self.on_complete(rank, self.value[rank])
        self._fan_out(rank)
