"""Fault injection under the simulated message path.

TemperedLB's inform/transfer loop was built (like the paper's runs)
on a lossless network with fixed membership. This module composes the
classic reliable-link/failure-detector layering under the existing
:class:`~repro.sim.process.System` so every protocol above it can be
exercised — and regression-tested — against message loss, delay
spikes, reordering, duplication and membership churn:

:class:`FaultyLink`
    A fair-lossy link decorating ``System.transmit_many``: seeded
    per-link Bernoulli drops, exponential delay spikes, a bounded
    reorder window and duplicate deliveries. Installs drop accounting
    hooks so termination detectors stay *sound* under loss (a dropped
    message is un-counted at its sender — the simulator knows the
    message can never trigger work, so quiescence detection remains
    exact).
:class:`StubbornLink`
    Retransmit-with-backoff over the faulty link: every send is
    repeated until acknowledged (acks ride the control plane), and the
    receiver deduplicates by sequence id — together restoring
    exactly-once delivery for any per-message loss probability < 1
    when retries are unbounded.
:class:`HeartbeatFailureDetector`
    An eventually-perfect (◇P-style) detector driven by periodic
    heartbeats: a rank unheard-from beyond its timeout becomes
    *suspected*; a late heartbeat unsuspects it and backs the timeout
    off, giving eventual accuracy. One global observer tracks
    last-heard times (a simulator simplification that keeps heartbeat
    traffic O(P) per period instead of O(P^2)).
:class:`ChurnEvent` / :func:`parse_churn`
    Membership churn — rank crash/restart (equivalently leave/join) —
    injected into the discrete-event engine at scheduled times.
:class:`PhaseFaultModel`
    The same drop/delay/duplicate fates re-expressed in *round* units
    for the phase-level gossip engines of :mod:`repro.core.gossip`
    (which have no clock, only synchronized rounds).

Zero-fault invisibility: a :class:`FaultyLink` whose config has no
active fault source (``FaultConfig.active`` False) never intercepts a
message, never consumes RNG and never touches a registry, so installing
it is bit-identical to not installing it. The equivalence suite
(``tests/sim/test_faults_equivalence.py``) pins this.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.sim.messages import Message
from repro.sim.termination import is_control_tag
from repro.util.validation import check_nonnegative, check_positive

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (process imports us)
    from repro.sim.process import Process, System

__all__ = [
    "FaultConfig",
    "ChurnEvent",
    "parse_churn",
    "FaultyLink",
    "StubbornLink",
    "HeartbeatFailureDetector",
    "PhaseFaultModel",
]

#: Churn actions that take a rank down / bring it (back) up.
_DOWN_ACTIONS = ("crash", "leave")
_UP_ACTIONS = ("restart", "join")


@dataclass(frozen=True)
class ChurnEvent:
    """One membership change at an absolute simulated time."""

    when: float
    action: str  #: "crash"/"leave" (down) or "restart"/"join" (up)
    rank: int

    def __post_init__(self) -> None:
        check_nonnegative("when", self.when)
        if self.action not in _DOWN_ACTIONS + _UP_ACTIONS:
            raise ValueError(
                f"churn action must be one of {_DOWN_ACTIONS + _UP_ACTIONS}, "
                f"got {self.action!r}"
            )
        if self.rank < 0:
            raise ValueError("churn rank must be non-negative")

    @property
    def down(self) -> bool:
        """Whether this event takes the rank down."""
        return self.action in _DOWN_ACTIONS


def parse_churn(spec: str) -> tuple[ChurnEvent, ...]:
    """Parse a CLI churn spec: ``action:rank@time[,action:rank@time...]``.

    Example: ``crash:3@2e-3,restart:3@4e-3``.
    """
    events = []
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        try:
            action_rank, when = part.split("@")
            action, rank = action_rank.split(":")
            events.append(ChurnEvent(float(when), action.strip(), int(rank)))
        except ValueError as exc:
            raise ValueError(
                f"bad churn entry {part!r} (expected action:rank@time)"
            ) from exc
    return tuple(events)


@dataclass(frozen=True)
class FaultConfig:
    """Every fault-injection knob in one frozen config.

    Probabilities are per message; ``seed`` drives the *fault* RNG
    streams, which are independent of the balancer's decision RNG — so
    turning faults on never changes which targets the gossip sampler
    draws, only which messages survive the wire.
    """

    #: Per-message Bernoulli drop probability on every link.
    loss_rate: float = 0.0
    #: Probability a surviving message takes a delay spike.
    delay_rate: float = 0.0
    #: Mean spike magnitude: *seconds* (exponential) at the event
    #: level, *rounds* (geometric, >= 1) at the phase level.
    delay_scale: float = 1.0
    #: Uniform extra latency in [0, reorder_window) seconds on every
    #: event-level message — adjacent messages inside the window may
    #: swap order; messages farther apart than the window cannot.
    reorder_window: float = 0.0
    #: Probability a delivered message arrives twice.
    duplicate_rate: float = 0.0
    #: Scheduled membership changes. A CLI-style spec string
    #: (``"crash:3@2e-4,restart:3@4e-4"``) is accepted and parsed.
    churn: "tuple[ChurnEvent, ...] | str" = ()
    #: Seed for all fault RNG streams (per-link streams derive from it).
    seed: int = 0
    #: Whether control traffic (``__*`` tags: termination tokens, acks,
    #: heartbeats) is also subject to loss/delay. Dead ranks never send
    #: or receive anything regardless.
    drop_control: bool = False
    #: Stubborn-link layer: retransmit unacknowledged sends.
    retransmit: bool = False
    #: Event level: initial retransmit timeout (seconds) and backoff.
    rto: float = 2e-5
    backoff: float = 2.0
    #: Retries before giving up; None = retry forever (eventual
    #: delivery guaranteed for loss_rate < 1).
    max_retries: int | None = 10
    #: Phase level: rounds a retransmitted copy arrives after the
    #: original send.
    retry_rounds: int = 1
    #: Failure detector: heartbeat period and initial suspect timeout
    #: (seconds); the timeout backs off on every false suspicion.
    heartbeat_period: float = 1e-4
    suspect_timeout: float = 5e-4
    #: Event-level gossip stages give up waiting for termination this
    #: many simulated seconds after they start (the per-round timeout
    #: replacing the assumed lossless barrier).
    stage_timeout: float = 2e-3

    def __post_init__(self) -> None:
        if isinstance(self.churn, str):
            object.__setattr__(self, "churn", parse_churn(self.churn))
        for name in ("loss_rate", "delay_rate", "duplicate_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        check_nonnegative("reorder_window", self.reorder_window)
        check_positive("delay_scale", self.delay_scale)
        check_positive("rto", self.rto)
        check_positive("backoff", self.backoff)
        check_positive("retry_rounds", self.retry_rounds)
        check_positive("heartbeat_period", self.heartbeat_period)
        check_positive("suspect_timeout", self.suspect_timeout)
        check_positive("stage_timeout", self.stage_timeout)
        if self.max_retries is not None:
            check_nonnegative("max_retries", self.max_retries)

    @property
    def active(self) -> bool:
        """Whether any fault source is switched on. False means the
        whole layer is a provable no-op (zero-fault invisibility)."""
        return (
            self.loss_rate > 0.0
            or self.delay_rate > 0.0
            or self.duplicate_rate > 0.0
            or self.reorder_window > 0.0
            or bool(self.churn)
        )


class FaultyLink:
    """Fair-lossy link semantics for a :class:`System`'s message path.

    Construction installs the layer (``system.faults = self``); the
    system consults :meth:`fates` per transmitted message and
    :meth:`blocks_delivery` per arrival. Per-link RNG streams are
    seeded from ``(seed, src, dst)``, so the fate sequence on a link
    depends only on that link's own message order — not on global
    interleaving.
    """

    def __init__(
        self,
        system: "System",
        config: FaultConfig,
        registry=None,
    ) -> None:
        self.system = system
        self.config = config
        #: False when the config has no active fault source: the system
        #: then never calls into this layer (zero-fault invisibility).
        self.enabled = config.active
        self.registry = registry if registry is not None else system.registry
        self.alive = np.ones(system.n_ranks, dtype=bool)
        self._link_rngs: dict[tuple[int, int], np.random.Generator] = {}
        #: Counters (mirrored into the registry when one is attached).
        self.drops = 0
        self.delayed = 0
        self.duplicates = 0
        self.crashes = 0
        self.restarts = 0
        #: Callbacks for membership changes (LB failover hooks in here).
        self.on_crash: list[Callable[[int], None]] = []
        self.on_restart: list[Callable[[int], None]] = []
        system.faults = self
        for event in config.churn:
            if event.rank >= system.n_ranks:
                raise ValueError(
                    f"churn rank {event.rank} out of range for {system.n_ranks} ranks"
                )
            system.engine.schedule_at(
                max(event.when, system.engine.now), self._apply_churn, event
            )

    # -- fate decisions ------------------------------------------------------

    def _rng(self, src: int, dst: int) -> np.random.Generator:
        key = (src, dst)
        rng = self._link_rngs.get(key)
        if rng is None:
            rng = np.random.default_rng((self.config.seed, src, dst))
            self._link_rngs[key] = rng
        return rng

    def fates(self, msg: Message) -> tuple[float, ...]:
        """Arrival-latency offsets for each delivered copy of ``msg``.

        An empty tuple means the message was dropped (accounting
        already done); one entry is a normal delivery; two entries a
        duplicated one. Entries are extra seconds past the nominal
        arrival time.
        """
        cfg = self.config
        if not (self.alive[msg.src] and self.alive[msg.dst]):
            self._record_drop(msg, "dead")
            return ()
        if is_control_tag(msg.tag) and not cfg.drop_control:
            return (0.0,)
        rng = self._rng(msg.src, msg.dst)
        if cfg.loss_rate > 0.0 and rng.random() < cfg.loss_rate:
            self._record_drop(msg, "loss")
            return ()
        extra = 0.0
        if cfg.delay_rate > 0.0 and rng.random() < cfg.delay_rate:
            extra += rng.exponential(cfg.delay_scale)
            self.delayed += 1
            if self.registry is not None and self.registry.enabled:
                self.registry.inc("faults.delayed")
        if cfg.reorder_window > 0.0:
            extra += rng.uniform(0.0, cfg.reorder_window)
        if cfg.duplicate_rate > 0.0 and rng.random() < cfg.duplicate_rate:
            self.duplicates += 1
            if self.registry is not None and self.registry.enabled:
                self.registry.inc("faults.duplicates")
            second = extra + (
                rng.uniform(0.0, cfg.reorder_window)
                if cfg.reorder_window > 0.0
                else extra
            )
            return (extra, second)
        return (extra,)

    def blocks_delivery(self, msg: Message) -> bool:
        """Whether an in-flight message must be discarded at arrival
        (its destination died while it was on the wire)."""
        if self.alive[msg.dst]:
            return False
        self._record_drop(msg, "dead")
        return True

    def _record_drop(self, msg: Message, reason: str) -> None:
        self.drops += 1
        if self.registry is not None and self.registry.enabled:
            self.registry.inc("faults.drops")
            self.registry.inc(f"faults.drops.{reason}")
        self.system._notify_drop(msg)

    # -- membership ----------------------------------------------------------

    def is_alive(self, rank: int) -> bool:
        return bool(self.alive[rank])

    def dead_ranks(self) -> np.ndarray:
        """Ranks currently down, as a sorted id array."""
        return np.flatnonzero(~self.alive)

    def crash(self, rank: int) -> None:
        """Take ``rank`` down: its mailbox is lost, in-flight messages
        to it will be discarded, and it sends nothing until restart."""
        if not self.alive[rank]:
            return
        self.alive[rank] = False
        self.crashes += 1
        self.system.processes[rank].reset()
        if self.registry is not None and self.registry.enabled:
            self.registry.inc("faults.crashes")
            self.registry.event("fault.crash", time=self.system.engine.now, rank=rank)
        for hook in self.on_crash:
            hook(rank)

    def restart(self, rank: int) -> None:
        """Bring ``rank`` back with empty protocol state (its mailbox
        was cleared at crash time; per-stage knowledge re-grows from
        nothing, as after a checkpoint restart)."""
        if self.alive[rank]:
            return
        self.alive[rank] = True
        self.restarts += 1
        if self.registry is not None and self.registry.enabled:
            self.registry.inc("faults.restarts")
            self.registry.event("fault.restart", time=self.system.engine.now, rank=rank)
        for hook in self.on_restart:
            hook(rank)

    def _apply_churn(self, event: ChurnEvent) -> None:
        if event.down:
            self.crash(event.rank)
        else:
            self.restart(event.rank)


class StubbornLink:
    """Exactly-once delivery over a lossy link via retransmit + dedup.

    The sender repeats every message on a backoff schedule until the
    receiver's acknowledgement arrives (acks are control traffic); the
    receiver acknowledges every copy but hands only the first to the
    application handler. With ``max_retries=None`` and per-message loss
    probability < 1, delivery is guaranteed eventually (the retry count
    to first success is geometric).
    """

    _instances = 0

    def __init__(self, system: "System", config: FaultConfig, registry=None) -> None:
        StubbornLink._instances += 1
        self.system = system
        self.config = config
        self.registry = registry if registry is not None else system.registry
        self._ack_tag = f"__stubborn_ack_{StubbornLink._instances}"
        self._seq = 0
        #: seq -> (src, dst, tag, wire_payload, size, retries)
        self._pending: dict[int, tuple[int, int, str, object, int, int]] = {}
        self._seen: set[tuple[int, int]] = set()  #: (dst, seq) delivered
        self._closed = False
        self.retransmits = 0
        self.giveups = 0
        self.deduped = 0
        self._wrapped: dict[str, Callable[["Process", Message], None]] = {}
        for proc in system.processes:
            proc.register(self._ack_tag, self._on_ack)

    def register(self, tag: str, handler: Callable[["Process", Message], None]) -> None:
        """Install ``handler`` for ``tag`` on every process, behind the
        ack/dedup wrapper."""
        self._wrapped[tag] = handler
        for proc in self.system.processes:
            proc.register(tag, self._on_wire)

    def send(
        self, src: int, dst: int, tag: str, payload=None, size: int = 64
    ) -> None:
        """Send with retransmission until acknowledged."""
        seq = self._seq
        self._seq += 1
        wire = (seq, payload)
        self._pending[seq] = (src, dst, tag, wire, size, 0)
        self.system.processes[src].send(dst, tag, payload=wire, size=size)
        self.system.engine.schedule(self.config.rto, self._check, seq)

    def close(self) -> None:
        """Abandon all pending retransmissions (stage teardown)."""
        self._closed = True
        self._pending.clear()

    # -- wire side -----------------------------------------------------------

    def _on_wire(self, proc: "Process", msg: Message) -> None:
        seq, payload = msg.payload
        # Ack every copy: the sender may be retransmitting because the
        # previous ack (not the message) was lost.
        proc.send(msg.src, self._ack_tag, payload=seq, size=16)
        key = (proc.rank, seq)
        if key in self._seen:
            self.deduped += 1
            if self.registry is not None and self.registry.enabled:
                self.registry.inc("faults.dedup_duplicates")
            return
        self._seen.add(key)
        handler = self._wrapped[msg.tag]
        handler(
            proc,
            Message(
                src=msg.src,
                dst=msg.dst,
                tag=msg.tag,
                payload=payload,
                size=msg.size,
                send_time=msg.send_time,
            ),
        )

    def _on_ack(self, proc: "Process", msg: Message) -> None:
        self._pending.pop(msg.payload, None)

    def _check(self, seq: int) -> None:
        entry = self._pending.get(seq)
        if entry is None or self._closed:
            return
        src, dst, tag, wire, size, retries = entry
        faults = self.system.faults
        if faults is not None and faults.enabled and not faults.is_alive(src):
            self._pending.pop(seq, None)
            return
        if self.config.max_retries is not None and retries >= self.config.max_retries:
            self._pending.pop(seq, None)
            self.giveups += 1
            if self.registry is not None and self.registry.enabled:
                self.registry.inc("faults.giveups")
            return
        self.retransmits += 1
        if self.registry is not None and self.registry.enabled:
            self.registry.inc("faults.retransmits")
        self._pending[seq] = (src, dst, tag, wire, size, retries + 1)
        self.system.processes[src].send(dst, tag, payload=wire, size=size)
        self.system.engine.schedule(
            self.config.rto * self.config.backoff ** (retries + 1), self._check, seq
        )


class HeartbeatFailureDetector:
    """Eventually-perfect failure detection from periodic heartbeats.

    Every ``heartbeat_period`` simulated seconds each live rank sends
    one ``__hb`` message to its ring successor, and a global check
    marks any rank unheard-from for longer than its (per-rank,
    adaptive) timeout as *suspected*. Any later delivery from a
    suspected rank unsuspects it and multiplies its timeout by 1.5 —
    strong completeness (a crashed rank is eventually suspected
    forever) plus eventual accuracy (false suspicions die out as
    timeouts adapt).

    The single observer tracking ``last_heard`` per rank is a
    simulator shortcut: it stands in for P per-rank detector instances
    without P^2 heartbeat traffic.
    """

    _instances = 0

    def __init__(self, system: "System", config: FaultConfig, registry=None) -> None:
        HeartbeatFailureDetector._instances += 1
        self.system = system
        self.config = config
        self.registry = registry if registry is not None else system.registry
        self._hb_tag = f"__hb_{HeartbeatFailureDetector._instances}"
        n = system.n_ranks
        self.last_heard = np.full(n, system.engine.now)
        self.timeouts = np.full(n, config.suspect_timeout)
        self.suspected: set[int] = set()
        self.suspicions = 0
        self._running = False
        for proc in system.processes:
            proc.register(self._hb_tag, lambda proc, msg: None)
        system.add_deliver_hook(self._on_deliver)

    def start(self) -> None:
        """Begin the heartbeat/check loop (idempotent)."""
        if self._running:
            return
        self._running = True
        self.last_heard[:] = np.maximum(self.last_heard, self.system.engine.now)
        self.system.engine.schedule(self.config.heartbeat_period, self._tick)

    def stop(self) -> None:
        """Stop the loop; at most one stale tick event remains queued."""
        self._running = False

    def is_suspected(self, rank: int) -> bool:
        return rank in self.suspected

    def _on_deliver(self, msg: Message) -> None:
        src = msg.src
        self.last_heard[src] = self.system.engine.now
        if src in self.suspected:
            self.suspected.discard(src)
            # False suspicion: back the timeout off (eventual accuracy).
            self.timeouts[src] *= 1.5
            if self.registry is not None and self.registry.enabled:
                self.registry.inc("faults.unsuspected")

    def _tick(self) -> None:
        if not self._running:
            return
        system = self.system
        now = system.engine.now
        faults = system.faults
        alive = (
            faults.alive
            if faults is not None and faults.enabled
            else np.ones(system.n_ranks, dtype=bool)
        )
        live = np.flatnonzero(alive)
        # One heartbeat per live rank, to its ring successor among the
        # live ranks (the global observer sees every delivery anyway).
        if live.size > 1:
            for i, rank in enumerate(live):
                nxt = int(live[(i + 1) % live.size])
                system.processes[int(rank)].send(nxt, self._hb_tag, size=16)
        overdue = np.flatnonzero((now - self.last_heard) > self.timeouts)
        for rank in overdue:
            rank = int(rank)
            if rank not in self.suspected:
                self.suspected.add(rank)
                self.suspicions += 1
                if self.registry is not None and self.registry.enabled:
                    self.registry.inc("faults.suspected")
                    self.registry.event(
                        "fault.suspect", time=now, rank=rank
                    )
        system.engine.schedule(self.config.heartbeat_period, self._tick)


class PhaseFaultModel:
    """Drop/delay/duplicate fates in round units for the phase-level
    gossip engines (:mod:`repro.core.gossip`).

    The phase-level engines have no clock — only synchronized rounds —
    so fates are expressed as *delivery-round offsets*: 0 = delivered
    in the round it was sent, ``d`` > 0 = delivered ``d`` rounds late,
    no copies = lost. Retransmission (the stubborn layer's phase-level
    shadow) turns a loss into a delayed delivery after a geometric
    number of retries, each ``retry_rounds`` apart.

    One generator seeded from ``FaultConfig.seed`` drives all fates;
    it is distinct from the engine's sampling RNG, so fault injection
    never perturbs which targets get sampled.
    """

    def __init__(self, config: FaultConfig) -> None:
        self.config = config
        self.rng = np.random.default_rng(config.seed)
        self.drops = 0
        self.delayed = 0
        self.duplicates = 0
        self.retransmits = 0
        self.expired = 0

    @staticmethod
    def create(config: FaultConfig | None) -> "PhaseFaultModel | None":
        """A model when the config has an active fault source, else
        None — the engines then take their original code path."""
        if config is None or not config.active:
            return None
        return PhaseFaultModel(config)

    def fates(self, n: int) -> tuple[np.ndarray, np.ndarray]:
        """Fates for ``n`` messages sent this round.

        Returns ``(offsets, copies)``: ``copies[i]`` in {0, 1, 2} is
        how many deliveries message ``i`` gets (0 = lost); the first
        copy arrives ``offsets[i]`` rounds after the send round, a
        duplicate one round after that.
        """
        cfg = self.config
        rng = self.rng
        offsets = np.zeros(n, dtype=np.int64)
        copies = np.ones(n, dtype=np.int64)
        if cfg.loss_rate > 0.0:
            lost = rng.random(n) < cfg.loss_rate
            n_lost = int(lost.sum())
            if n_lost:
                if cfg.retransmit and cfg.loss_rate < 1.0:
                    # Retries to first success are geometric; each retry
                    # costs retry_rounds of delay.
                    retries = rng.geometric(1.0 - cfg.loss_rate, size=n_lost)
                    if cfg.max_retries is not None:
                        gave_up = retries > cfg.max_retries
                        copies[np.flatnonzero(lost)[gave_up]] = 0
                        self.drops += int(gave_up.sum())
                        retries = np.minimum(retries, cfg.max_retries)
                    offsets[lost] += retries * cfg.retry_rounds
                    self.retransmits += int(retries.sum())
                else:
                    copies[lost] = 0
                    self.drops += n_lost
        delivered = copies > 0
        if cfg.delay_rate > 0.0:
            spiked = delivered & (rng.random(n) < cfg.delay_rate)
            n_spiked = int(spiked.sum())
            if n_spiked:
                p = min(1.0, 1.0 / max(cfg.delay_scale, 1.0))
                offsets[spiked] += rng.geometric(p, size=n_spiked)
                self.delayed += n_spiked
        if cfg.duplicate_rate > 0.0:
            dup = delivered & (rng.random(n) < cfg.duplicate_rate)
            n_dup = int(dup.sum())
            if n_dup:
                copies[dup] = 2
                self.duplicates += n_dup
        return offsets, copies
