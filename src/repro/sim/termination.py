"""Distributed termination detection.

vt sequences its asynchronous protocols (including the gossip inform
stage) with epoch-based termination detection. Two classic algorithms
are provided as substrates:

:class:`SafraDetector`
    Safra's token-ring algorithm (as in Dijkstra's EWD 998): each rank
    keeps a message counter and a color; a token circulates the ring
    accumulating counters. The initiator announces termination when a
    fully white round returns a zero total — sound even though messages
    may overtake the token, because a receipt after the token passed
    turns the rank black and poisons the round.

:class:`DijkstraScholten`
    Diffusing-computation termination for a computation rooted at one
    rank: every application message engages its receiver under a parent
    tree; acknowledgements retract engagements; the root terminates when
    its deficit returns to zero.

Both treat tags starting with ``"__"`` as control traffic, excluded
from the application-message accounting.
"""

from __future__ import annotations

from typing import Callable

from repro.sim.messages import Message
from repro.sim.process import Process, System

__all__ = ["SafraDetector", "DijkstraScholten", "is_control_tag"]

_safra_instances = 0
_ds_instances = 0

WHITE = 0
BLACK = 1


def is_control_tag(tag: str) -> bool:
    """Whether a message tag belongs to a control protocol."""
    return tag.startswith("__")


class SafraDetector:
    """Safra's token-ring termination detector.

    Parameters
    ----------
    system:
        The simulated system to observe (hooks are installed on it).
    on_terminate:
        Called once, with the simulated detection time, when the ring
        confirms global quiescence of application messages.
    token_size:
        Wire size of the circulating token in bytes.
    """

    def __init__(
        self,
        system: System,
        on_terminate: Callable[[float], None],
        token_size: int = 16,
        scope: Callable[[str], bool] | None = None,
    ) -> None:
        global _safra_instances
        _safra_instances += 1
        self._token_tag = f"__safra_token_{_safra_instances}"
        self.system = system
        self.on_terminate = on_terminate
        self.token_size = token_size
        #: Which application tags this detector accounts for (epoch
        #: scoping); None = every non-control message.
        self.scope = scope
        n = system.n_ranks
        self._count = [0] * n  #: sent - received per rank
        self._color = [WHITE] * n
        self._terminated = False
        self.rounds = 0
        system.add_transmit_hook(self._on_transmit)
        system.add_post_execute_hook(self._on_executed)
        system.add_drop_hook(self._on_drop)
        for proc in system.processes:
            proc.register(self._token_tag, self._on_token)

    @property
    def terminated(self) -> bool:
        """Whether termination has been announced."""
        return self._terminated

    def start(self) -> None:
        """Initiate token circulation from rank 0."""
        if self.system.n_ranks == 1:
            # Degenerate ring: decide directly from rank 0's counter.
            self._evaluate_single()
            return
        self._send_token(0, 0, WHITE)

    def cancel(self) -> None:
        """Abandon detection without announcing (stage timeout).

        The ring may be broken — a crashed member cannot forward the
        token — so a timed-out stage cancels the detector; any token
        still circulating is swallowed by the terminated guard.
        """
        self._terminated = True

    # -- message accounting --------------------------------------------------

    def _in_scope(self, tag: str) -> bool:
        if is_control_tag(tag):
            return False
        return self.scope is None or self.scope(tag)

    def _on_transmit(self, msg: Message) -> None:
        if self._terminated or not self._in_scope(msg.tag):
            return
        self._count[msg.src] += 1

    def _on_executed(self, proc: Process, msg: Message) -> None:
        if self._terminated or not self._in_scope(msg.tag):
            return
        self._count[proc.rank] -= 1
        self._color[proc.rank] = BLACK
        if self.system.n_ranks == 1:
            self._evaluate_single()

    def _on_drop(self, msg: Message) -> None:
        """A counted message will never execute: un-count it at the
        sender so the ring's sent-received total can still reach zero."""
        if self._terminated or not self._in_scope(msg.tag):
            return
        self._count[msg.src] -= 1
        if self.system.n_ranks == 1:
            self._evaluate_single()

    # -- token protocol --------------------------------------------------------

    def _send_token(self, from_rank: int, acc: int, color: int) -> None:
        nxt = (from_rank + 1) % self.system.n_ranks
        self.system.processes[from_rank].send(
            nxt, self._token_tag, payload=(acc, color), size=self.token_size
        )

    def _on_token(self, proc: Process, msg: Message) -> None:
        if self._terminated:
            return
        acc, color = msg.payload
        rank = proc.rank
        if rank == 0:
            self.rounds += 1
            total = acc + self._count[0]
            round_white = color == WHITE and self._color[0] == WHITE
            if round_white and total == 0:
                self._announce()
                return
            # Inconclusive: whiten and start a fresh round.
            self._color[0] = WHITE
            self._send_token(0, 0, WHITE)
            return
        # Intermediate rank: fold in local counter and color, then whiten.
        out_color = BLACK if (self._color[rank] == BLACK or color == BLACK) else WHITE
        self._color[rank] = WHITE
        self._send_token(rank, acc + self._count[rank], out_color)

    def _evaluate_single(self) -> None:
        if not self._terminated and self._count[0] == 0:
            self._announce()

    def _announce(self) -> None:
        self._terminated = True
        self.on_terminate(self.system.engine.now)


class DijkstraScholten:
    """Dijkstra–Scholten termination for a diffusing computation.

    Observe a computation rooted at ``root``: the root sends the first
    application messages; every application message engages its receiver
    in a dynamic tree. A rank acknowledges its parent once its handler
    has run and all messages it sent have been acknowledged. When the
    root's own deficit reaches zero the computation has terminated.

    The acknowledgement traffic is simulated (tag ``__ds_ack``), so the
    detection *time* includes the signalling cost, as in a real system.
    """

    def __init__(
        self,
        system: System,
        root: int,
        on_terminate: Callable[[float], None],
        ack_size: int = 8,
    ) -> None:
        global _ds_instances
        _ds_instances += 1
        self._ack_tag = f"__ds_ack_{_ds_instances}"
        self.system = system
        self.root = root
        self.on_terminate = on_terminate
        self.ack_size = ack_size
        n = system.n_ranks
        self._deficit = [0] * n  #: unacknowledged messages sent by each rank
        self._parent: list[int | None] = [None] * n
        self._engaged = [False] * n
        self._engaged[root] = True
        self._terminated = False
        system.add_transmit_hook(self._on_transmit)
        system.add_post_execute_hook(self._on_executed)
        system.add_drop_hook(self._on_drop)
        for proc in system.processes:
            proc.register(self._ack_tag, self._on_ack)

    @property
    def terminated(self) -> bool:
        """Whether the root has detected termination."""
        return self._terminated

    def start(self) -> None:
        """Check for the trivial case (root never sent anything)."""
        self._maybe_finish(self.root)

    def _on_transmit(self, msg: Message) -> None:
        if is_control_tag(msg.tag) or self._terminated:
            return
        self._deficit[msg.src] += 1

    def _on_executed(self, proc: Process, msg: Message) -> None:
        if is_control_tag(msg.tag) or self._terminated:
            return
        rank = proc.rank
        if not self._engaged[rank]:
            # First engagement: the sender becomes this rank's parent;
            # the ack is deferred until this subtree finishes.
            self._engaged[rank] = True
            self._parent[rank] = msg.src
        else:
            # Already engaged: acknowledge immediately.
            proc.send(msg.src, self._ack_tag, size=self.ack_size)
        self._maybe_finish(rank)

    def _on_ack(self, proc: Process, msg: Message) -> None:
        rank = proc.rank
        self._deficit[rank] -= 1
        self._maybe_finish(rank)

    def _on_drop(self, msg: Message) -> None:
        """Balance the deficit for messages the fault layer destroys.

        A dropped application message can never be acknowledged, so its
        sender's deficit is retired directly; a dropped *ack* retires
        the deficit of the rank that was waiting for it.
        """
        if self._terminated:
            return
        if msg.tag == self._ack_tag:
            self._deficit[msg.dst] -= 1
            self._maybe_finish(msg.dst)
            return
        if is_control_tag(msg.tag):
            return
        self._deficit[msg.src] -= 1
        self._maybe_finish(msg.src)

    def _maybe_finish(self, rank: int) -> None:
        """Detach from the parent (or terminate, at the root) once the
        local deficit is zero."""
        if self._terminated or not self._engaged[rank] or self._deficit[rank] != 0:
            return
        if rank == self.root:
            self._terminated = True
            self.on_terminate(self.system.engine.now)
            return
        parent = self._parent[rank]
        self._engaged[rank] = False
        self._parent[rank] = None
        if parent is not None:
            self.system.processes[rank].send(parent, self._ack_tag, size=self.ack_size)
