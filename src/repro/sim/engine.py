"""The discrete-event core: a time-ordered callback queue.

Events are ``(time, sequence, callback, args)`` tuples in a binary heap.
The sequence number makes simultaneous events execute in scheduling
order, which — together with seeded RNG streams — makes every
simulation bit-reproducible.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable

from repro.obs import StatsRegistry
from repro.util.validation import check_nonnegative

__all__ = ["Engine"]


class Engine:
    """A deterministic discrete-event scheduler.

    An optional :class:`~repro.obs.StatsRegistry` receives aggregate
    accounting per :meth:`run` call (events dispatched, simulated time
    advanced, remaining queue depth). Recording happens outside the
    dispatch loop so the per-event hot path is identical with or
    without instrumentation.
    """

    def __init__(self, registry: StatsRegistry | None = None) -> None:
        self._queue: list[tuple[float, int, Callable[..., None], tuple[Any, ...]]] = []
        self._now = 0.0
        self._seq = 0
        self._events_processed = 0
        self._registry = registry

    @property
    def now(self) -> float:
        """Current simulated time (seconds by convention)."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events dispatched so far."""
        return self._events_processed

    @property
    def pending(self) -> int:
        """Number of events still queued."""
        return len(self._queue)

    def peek(self) -> float | None:
        """The next queued event's time, or None when the queue is
        empty — lets deadline-bounded drivers stop *before* dispatching
        an event past their timeout."""
        return self._queue[0][0] if self._queue else None

    def schedule(self, delay: float, callback: Callable[..., None], *args: Any) -> None:
        """Run ``callback(*args)`` after ``delay`` simulated seconds."""
        check_nonnegative("delay", delay)
        heapq.heappush(self._queue, (self._now + delay, self._seq, callback, args))
        self._seq += 1

    def schedule_at(self, when: float, callback: Callable[..., None], *args: Any) -> None:
        """Run ``callback(*args)`` at absolute time ``when`` (>= now)."""
        if when < self._now:
            raise ValueError(f"cannot schedule into the past ({when} < {self._now})")
        heapq.heappush(self._queue, (when, self._seq, callback, args))
        self._seq += 1

    def run(self, until: float | None = None, max_events: int | None = None) -> float:
        """Dispatch events until the queue drains, ``until`` is reached,
        or ``max_events`` have executed. Returns the final time.

        With ``until`` set, events beyond it stay queued and the clock
        advances exactly to ``until``.
        """
        dispatched = 0
        start_time = self._now
        try:
            while self._queue:
                when, _, callback, args = self._queue[0]
                if until is not None and when > until:
                    self._now = until
                    return self._now
                if max_events is not None and dispatched >= max_events:
                    return self._now
                heapq.heappop(self._queue)
                self._now = when
                self._events_processed += 1
                dispatched += 1
                callback(*args)
            if until is not None and until > self._now:
                self._now = until
            return self._now
        finally:
            if self._registry is not None and self._registry.enabled:
                self._registry.inc("engine.runs")
                self._registry.inc("engine.events", dispatched)
                self._registry.add_time("engine.sim_time", self._now - start_time)
                self._registry.gauge("engine.queue_depth", len(self._queue))

    def step(self) -> bool:
        """Dispatch exactly one event; returns False when the queue is empty."""
        if not self._queue:
            return False
        when, _, callback, args = heapq.heappop(self._queue)
        self._now = when
        self._events_processed += 1
        callback(*args)
        return True
