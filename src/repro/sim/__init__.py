"""Discrete-event distributed-system substrate.

The paper's balancers run inside DARMA/vt, an asynchronous many-task
runtime over MPI. This package provides the deterministic simulation
equivalent: logical rank processes exchanging timestamped active
messages over a latency/bandwidth network model, with distributed
termination detection (Safra's token ring and Dijkstra–Scholten) and
binomial-tree reductions. :mod:`repro.runtime` builds the AMT runtime
model on top.
"""

from repro.sim.engine import Engine
from repro.sim.messages import Message
from repro.sim.network import NetworkModel
from repro.sim.process import Process, System
from repro.sim.reductions import allreduce
from repro.sim.rng import RankStreams
from repro.sim.termination import DijkstraScholten, SafraDetector
from repro.sim.trace import Tracer

__all__ = [
    "DijkstraScholten",
    "Engine",
    "Message",
    "NetworkModel",
    "Process",
    "RankStreams",
    "SafraDetector",
    "System",
    "Tracer",
    "allreduce",
]
