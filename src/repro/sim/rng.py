"""Deterministic per-rank random streams.

Each simulated rank draws from its own :class:`numpy.random.Generator`
spawned from one :class:`numpy.random.SeedSequence`, so results are
independent of event interleaving and bit-reproducible for a fixed
master seed — the standard recipe for parallel stochastic simulation.
"""

from __future__ import annotations

import numpy as np

from repro.util.validation import check_positive

__all__ = ["RankStreams"]


class RankStreams:
    """A family of independent per-rank generators."""

    def __init__(self, n_ranks: int, seed: int | None = 0) -> None:
        check_positive("n_ranks", n_ranks)
        self.n_ranks = int(n_ranks)
        self.seed = seed
        root = np.random.SeedSequence(seed)
        self._streams = [np.random.default_rng(s) for s in root.spawn(self.n_ranks)]

    def __getitem__(self, rank: int) -> np.random.Generator:
        return self._streams[rank]

    def __len__(self) -> int:
        return self.n_ranks
