"""Execution tracing — the Projections role for the simulated runtime.

A :class:`Tracer` hooks a :class:`~repro.sim.process.System` and records
message sends and per-rank CPU busy intervals, from which it derives
utilization, per-tag message statistics, and a text Gantt chart — the
standard post-mortem views used to diagnose load imbalance visually
(compare the paper's Fig. 4b narrative: max busy rank vs idle ranks).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import numpy as np

from repro.sim.messages import Message
from repro.sim.process import System
from repro.sim.termination import is_control_tag

__all__ = ["Tracer", "SendRecord"]


@dataclass(frozen=True)
class SendRecord:
    """One traced message send."""

    time: float
    src: int
    dst: int
    tag: str
    size: int


class Tracer:
    """Records sends and busy intervals on one system."""

    def __init__(self, system: System, trace_control: bool = False) -> None:
        self.system = system
        #: Whether to record control traffic (tokens, acks, barriers).
        self.trace_control = bool(trace_control)
        self.sends: list[SendRecord] = []
        #: Per-rank CPU busy intervals ``(start, end)``.
        self.busy: list[list[tuple[float, float]]] = [[] for _ in range(system.n_ranks)]
        system.add_transmit_hook(self._on_transmit)
        system.add_compute_hook(self._on_compute)

    def _on_transmit(self, msg: Message) -> None:
        if not self.trace_control and is_control_tag(msg.tag):
            return
        self.sends.append(SendRecord(self.system.engine.now, msg.src, msg.dst, msg.tag, msg.size))

    def _on_compute(self, rank: int, start: float, end: float) -> None:
        intervals = self.busy[rank]
        # Coalesce back-to-back intervals to keep the trace compact.
        if intervals and abs(intervals[-1][1] - start) < 1e-15:
            intervals[-1] = (intervals[-1][0], end)
        else:
            intervals.append((start, end))

    # -- analysis --------------------------------------------------------------

    def busy_time(self) -> np.ndarray:
        """Total CPU-busy seconds per rank."""
        return np.array(
            [sum(end - start for start, end in iv) for iv in self.busy]
        )

    def utilization(self, until: float | None = None) -> np.ndarray:
        """Busy fraction per rank over ``[0, until]`` (default: now)."""
        horizon = self.system.engine.now if until is None else float(until)
        if horizon <= 0:
            return np.zeros(self.system.n_ranks)
        busy = np.array(
            [
                sum(min(end, horizon) - min(start, horizon) for start, end in iv)
                for iv in self.busy
            ]
        )
        return np.clip(busy / horizon, 0.0, 1.0)

    def messages_by_tag(self) -> dict[str, int]:
        """Send counts per message tag."""
        return dict(Counter(record.tag for record in self.sends))

    def bytes_by_tag(self) -> dict[str, int]:
        """Bytes sent per message tag."""
        totals: Counter[str] = Counter()
        for record in self.sends:
            totals[record.tag] += record.size
        return dict(totals)

    def communication_matrix(self) -> np.ndarray:
        """Bytes sent from each rank to each rank, shape ``(P, P)``."""
        matrix = np.zeros((self.system.n_ranks, self.system.n_ranks))
        for record in self.sends:
            matrix[record.src, record.dst] += record.size
        return matrix

    def gantt(self, width: int = 60, until: float | None = None) -> str:
        """A text Gantt chart: one row per rank, ``#`` = busy, ``.`` = idle."""
        horizon = self.system.engine.now if until is None else float(until)
        if horizon <= 0:
            return "\n".join(f"rank {r:>3} |" + "." * width for r in range(self.system.n_ranks))
        lines = []
        for rank, intervals in enumerate(self.busy):
            cells = ["."] * width
            for start, end in intervals:
                first = int(np.clip(start / horizon * width, 0, width - 1))
                last = int(np.clip(np.ceil(end / horizon * width), first + 1, width))
                for i in range(first, last):
                    cells[i] = "#"
            lines.append(f"rank {rank:>3} |{''.join(cells)}|")
        return "\n".join(lines)
