"""Logical rank processes and the system that hosts them.

A :class:`Process` owns tagged message handlers (vt-style registered
handlers) and a serialized execution model: arriving messages queue in a
mailbox and execute one at a time, each charged the runtime's handler
overhead plus whatever :meth:`Process.compute` time the handler spends.
A :class:`System` wires ``P`` processes to one
:class:`~repro.sim.engine.Engine` and one
:class:`~repro.sim.network.NetworkModel`.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable

from repro.obs import StatsRegistry
from repro.sim.engine import Engine
from repro.sim.messages import Message
from repro.sim.network import NetworkModel
from repro.util.validation import check_nonnegative, check_positive

__all__ = ["Process", "System"]

Handler = Callable[["Process", Message], None]


class Process:
    """One simulated rank with a serialized message scheduler."""

    def __init__(self, system: "System", rank: int) -> None:
        self.system = system
        self.rank = rank
        self._handlers: dict[str, Handler] = {}
        self._mailbox: deque[Message] = deque()
        self._executing = False
        #: Time until which this rank's CPU is occupied.
        self.busy_until = 0.0
        #: Accounting: cumulative compute seconds executed.
        self.compute_time = 0.0
        #: Accounting: messages sent / handler executions.
        self.sent = 0
        self.received = 0

    @property
    def idle(self) -> bool:
        """True when no handler is running or queued on this rank."""
        return not self._executing and not self._mailbox

    def reset(self) -> None:
        """Drop all queued messages and any pending execution (rank
        crash). Queued messages count as dropped so termination
        accounting stays balanced."""
        while self._mailbox:
            self.system._notify_drop(self._mailbox.popleft())
        self._executing = False

    def register(self, tag: str, handler: Handler) -> None:
        """Install a handler for messages with ``tag``."""
        if tag in self._handlers:
            raise ValueError(f"handler already registered for tag {tag!r}")
        self._handlers[tag] = handler

    def send(self, dst: int, tag: str, payload: Any = None, size: int = 64) -> None:
        """Send an active message; delivery time follows the network model."""
        self.sent += 1
        msg = Message(
            src=self.rank,
            dst=dst,
            tag=tag,
            payload=payload,
            size=size,
            send_time=self.system.engine.now,
        )
        self.system.transmit(msg)

    def send_many(
        self, dsts: "list[int] | Any", tag: str, payload: Any = None, size: int = 64
    ) -> None:
        """Fan one payload out to several destinations in one call.

        Equivalent to :meth:`send` per destination, in order, but the
        system batches the message accounting (see
        :meth:`System.transmit_many`).
        """
        now = self.system.engine.now
        msgs = [
            Message(
                src=self.rank,
                dst=int(dst),
                tag=tag,
                payload=payload,
                size=size,
                send_time=now,
            )
            for dst in dsts
        ]
        if not msgs:
            return
        self.sent += len(msgs)
        self.system.transmit_many(msgs)

    def compute(self, duration: float) -> None:
        """Occupy this rank's CPU for ``duration`` seconds."""
        check_nonnegative("duration", duration)
        start = max(self.system.engine.now, self.busy_until)
        self.busy_until = start + duration
        self.compute_time += duration
        for hook in self.system._compute_hooks:
            hook(self.rank, start, self.busy_until)

    def deliver(self, msg: Message) -> None:
        """Called by the system at wire-arrival time; the message queues
        behind any handler currently executing on this rank."""
        self._mailbox.append(msg)
        self._schedule_next()

    def _schedule_next(self) -> None:
        if self._executing or not self._mailbox:
            return
        self._executing = True
        start = max(self.system.engine.now, self.busy_until)
        self.system.engine.schedule_at(start, self._execute)

    def _execute(self) -> None:
        if not self._mailbox:
            # The mailbox was cleared (rank crash) between scheduling
            # and execution; this event is stale.
            self._executing = False
            return
        msg = self._mailbox.popleft()
        self.received += 1
        self.compute(self.system.handler_overhead)
        try:
            handler = self._handlers[msg.tag]
        except KeyError:
            raise KeyError(
                f"rank {self.rank} has no handler for tag {msg.tag!r}"
            ) from None
        handler(self, msg)
        for hook in self.system._post_execute_hooks:
            hook(self, msg)
        self._executing = False
        self._schedule_next()


class System:
    """``P`` processes + engine + network, with message accounting."""

    def __init__(
        self,
        n_ranks: int,
        network: NetworkModel | None = None,
        handler_overhead: float = 2e-7,
        registry: StatsRegistry | None = None,
    ) -> None:
        check_positive("n_ranks", n_ranks)
        check_nonnegative("handler_overhead", handler_overhead)
        #: Optional telemetry sink; when attached, every transmit is
        #: counted per tag (``net.messages.<tag>`` / ``net.bytes.<tag>``)
        #: and per link class, and the engine records run aggregates.
        self.registry = registry
        self.engine = Engine(registry=registry)
        self.network = network or NetworkModel()
        #: Fixed CPU cost charged per handler execution (task creation /
        #: scheduling overhead of the AMT runtime).
        self.handler_overhead = handler_overhead
        self.processes = [Process(self, r) for r in range(int(n_ranks))]
        self.messages_sent = 0
        self.bytes_sent = 0
        #: Per-rank NIC availability: a sender's outgoing bytes serialize,
        #: and concurrent inbound streams contend at the receiver (in-cast).
        self._nic_free = [0.0] * int(n_ranks)
        self._rx_free = [0.0] * int(n_ranks)
        #: Monitors (termination detectors hook in here).
        self._transmit_hooks: list[Callable[[Message], None]] = []
        self._deliver_hooks: list[Callable[[Message], None]] = []
        self._post_execute_hooks: list[Callable[[Process, Message], None]] = []
        self._compute_hooks: list[Callable[[int, float, float], None]] = []
        self._drop_hooks: list[Callable[[Message], None]] = []
        #: Optional fault-injection layer (:class:`repro.sim.faults.FaultyLink`).
        #: None, or a layer whose ``enabled`` is False, leaves the
        #: message path byte-identical to the undecorated system.
        self.faults = None

    @property
    def n_ranks(self) -> int:
        return len(self.processes)

    def add_transmit_hook(self, hook: Callable[[Message], None]) -> None:
        """Observe every message send (for termination detection)."""
        self._transmit_hooks.append(hook)

    def add_deliver_hook(self, hook: Callable[[Message], None]) -> None:
        """Observe every message wire arrival."""
        self._deliver_hooks.append(hook)

    def add_post_execute_hook(self, hook: Callable[[Process, Message], None]) -> None:
        """Observe handler completion (termination detectors hook here)."""
        self._post_execute_hooks.append(hook)

    def add_compute_hook(self, hook: Callable[[int, float, float], None]) -> None:
        """Observe CPU occupancy: ``hook(rank, start, end)`` per compute."""
        self._compute_hooks.append(hook)

    def add_drop_hook(self, hook: Callable[[Message], None]) -> None:
        """Observe every message the fault layer destroys.

        A dropped message was already counted at its sender (the
        transmit hooks ran), so termination detectors subscribe here to
        un-count it — keeping quiescence detection sound under loss.
        """
        self._drop_hooks.append(hook)

    def _notify_drop(self, msg: Message) -> None:
        for hook in self._drop_hooks:
            hook(msg)

    def transmit(self, msg: Message) -> None:
        """Route a message through the network to its destination."""
        self.transmit_many([msg])

    def transmit_many(self, msgs: list[Message]) -> None:
        """Route a burst of messages; identical to :meth:`transmit` per
        message in order, with the counter/registry accounting batched.

        Per-message observable behavior is preserved: transmit hooks run
        once per message in order, and each message's NIC serialization
        chain and arrival event use the same scalar arithmetic as the
        single-message path (so event timestamps are bit-identical).
        """
        if not msgs:
            return
        for msg in msgs:
            if not 0 <= msg.dst < self.n_ranks:
                raise ValueError(f"destination rank {msg.dst} out of range")
        self.messages_sent += len(msgs)
        self.bytes_sent += sum(m.size for m in msgs)
        if self.registry is not None and self.registry.enabled:
            tag_counts: dict[str, int] = {}
            tag_bytes: dict[str, int] = {}
            link_counts: dict[str, int] = {}
            for m in msgs:
                tag_counts[m.tag] = tag_counts.get(m.tag, 0) + 1
                tag_bytes[m.tag] = tag_bytes.get(m.tag, 0) + m.size
                link = self.network.link_class(m.src, m.dst)
                link_counts[link] = link_counts.get(link, 0) + 1
            for tag, count in tag_counts.items():
                self.registry.inc(f"net.messages.{tag}", count)
                self.registry.inc(f"net.bytes.{tag}", tag_bytes[tag])
            for link, count in link_counts.items():
                self.registry.inc(f"net.links.{link}", count)
        # Sender-side NIC serialization: concurrent sends from one rank
        # queue behind each other for their transmission (beta) time; the
        # wire latency (alpha) then overlaps freely. At the destination,
        # concurrent inbound streams contend for the receive NIC (in-cast):
        # a stream completes no earlier than the previous stream's finish
        # plus its own transmission time (pipelined LogGP-style gap).
        now = self.engine.now
        network = self.network
        nic_free = self._nic_free
        rx_free = self._rx_free
        schedule_at = self.engine.schedule_at
        faults = self.faults
        faulty = faults is not None and faults.enabled
        for msg in msgs:
            for hook in self._transmit_hooks:
                hook(msg)
            tx = network.tx_seconds(msg.src, msg.dst, msg.size)
            depart = max(now, nic_free[msg.src]) + tx
            nic_free[msg.src] = depart
            arrival = depart + network.wire_latency(msg.src, msg.dst)
            if faulty:
                # The fault layer decides this message's fate(s): no
                # copies = dropped (the sender's NIC still paid — it
                # cannot know), one = normal, two = duplicated. Extra
                # copies re-run the transmit hooks so termination
                # counters stay balanced with their extra executions.
                # Fault latency is added AFTER the receive-NIC chain:
                # a delay spike holds up only its own message (it is
                # in-network, not queued at the NIC), which is what
                # lets messages inside the reorder window overtake.
                for i, extra in enumerate(faults.fates(msg)):
                    if i:
                        for hook in self._transmit_hooks:
                            hook(msg)
                    rx_done = max(arrival, rx_free[msg.dst] + tx)
                    rx_free[msg.dst] = rx_done
                    schedule_at(
                        rx_done + extra, self._arrive, self.processes[msg.dst], msg
                    )
                continue
            rx_done = max(arrival, rx_free[msg.dst] + tx)
            rx_free[msg.dst] = rx_done
            schedule_at(rx_done, self._arrive, self.processes[msg.dst], msg)

    def _arrive(self, dest: Process, msg: Message) -> None:
        faults = self.faults
        if faults is not None and faults.enabled and faults.blocks_delivery(msg):
            return
        for hook in self._deliver_hooks:
            hook(msg)
        dest.deliver(msg)

    def run(self, until: float | None = None, max_events: int | None = None) -> float:
        """Drive the engine; returns the final simulated time."""
        return self.engine.run(until=until, max_events=max_events)

    def max_busy(self) -> float:
        """The latest CPU-busy time across ranks (phase makespan proxy)."""
        return max(p.busy_until for p in self.processes)
