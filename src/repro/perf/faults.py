"""Fault bench: imbalance degradation versus gossip loss rate.

``repro bench faults`` sweeps the phase-level TemperedLB pipeline over
a grid of gossip loss rates (with and without the stubborn retransmit
layer) and writes ``BENCH_faults.json`` — the degradation envelope the
fault-tolerance docs and the CI fault-matrix job gate against. The
``loss=0`` row runs through the fault layer with every knob at zero
and must match the fault-free balancer exactly (zero-fault
invisibility), which the harness asserts.
"""

from __future__ import annotations

import platform
from typing import Any

import numpy as np

from repro.core.distribution import Distribution
from repro.core.gossip import GossipConfig, run_inform_stage
from repro.core.tempered import TemperedConfig, TemperedLB
from repro.sim.faults import FaultConfig
from repro.workloads import paper_analysis_scenario

__all__ = ["LOSS_RATES", "run_fault_bench", "format_fault_report"]

#: The sweep grid: lossless baseline plus the satellite test's pinned
#: degradation points.
LOSS_RATES = (0.0, 0.01, 0.05, 0.10)

#: (n_tasks, n_loaded_ranks, n_ranks) per scale.
FULL_SCALE = (10_000, 16, 1024)
QUICK_SCALE = (2_000, 8, 256)


def _rebalance(
    dist: Distribution, faults: FaultConfig | None, seed: int
) -> dict[str, Any]:
    lb = TemperedLB(
        TemperedConfig(n_trials=2, n_iters=4, faults=faults)
    )
    result = lb.rebalance(dist, rng=np.random.default_rng(seed))
    return {
        "initial_imbalance": float(result.initial_imbalance),
        "final_imbalance": float(result.final_imbalance),
        "n_migrations": int(result.n_migrations),
    }


def _coverage(
    loads: np.ndarray, average_load: float, faults: FaultConfig | None, seed: int
) -> dict[str, Any]:
    stage = run_inform_stage(
        loads,
        GossipConfig(faults=faults),
        np.random.default_rng(seed),
        average_load=average_load,
    )
    return {
        "coverage": float(stage.knowledge.coverage(stage.underloaded)),
        "messages": int(stage.n_messages),
        "dropped": int(stage.dropped),
        "delayed": int(stage.delayed),
        "duplicated": int(stage.duplicated),
        "retransmits": int(stage.retransmits),
        "expired": int(stage.expired),
    }


def run_fault_bench(
    quick: bool = False, seed: int = 0, fault_seed: int = 0
) -> dict[str, Any]:
    """Sweep loss rates and return the ``BENCH_faults.json`` payload.

    Each row reports the inform-stage coverage and the end-to-end
    refined imbalance at one loss rate, both with the bare lossy link
    and with retransmission switched on (the recovery column).
    """
    n_tasks, n_loaded, n_ranks = QUICK_SCALE if quick else FULL_SCALE
    dist = paper_analysis_scenario(
        n_tasks=n_tasks, n_loaded_ranks=n_loaded, n_ranks=n_ranks, seed=seed
    )
    loads = np.bincount(
        dist.assignment, weights=dist.task_loads, minlength=dist.n_ranks
    )
    baseline = _rebalance(dist, None, seed)
    rows: list[dict[str, Any]] = []
    for loss in LOSS_RATES:
        faults = (
            FaultConfig(loss_rate=loss, seed=fault_seed) if loss > 0.0 else None
        )
        row: dict[str, Any] = {"loss_rate": loss}
        row.update(_coverage(loads, dist.average_load, faults, seed + 1))
        row.update(_rebalance(dist, faults, seed))
        if loss > 0.0:
            recovered = FaultConfig(
                loss_rate=loss, seed=fault_seed, retransmit=True, max_retries=None
            )
            row["final_imbalance_retransmit"] = _rebalance(dist, recovered, seed)[
                "final_imbalance"
            ]
            row["coverage_retransmit"] = _coverage(
                loads, dist.average_load, recovered, seed + 1
            )["coverage"]
        else:
            # Zero-fault invisibility: the lossless row IS the baseline.
            if row["final_imbalance"] != baseline["final_imbalance"]:
                raise AssertionError(
                    "loss=0 run diverged from the fault-free baseline: "
                    f"{row['final_imbalance']} != {baseline['final_imbalance']}"
                )
            row["final_imbalance_retransmit"] = row["final_imbalance"]
            row["coverage_retransmit"] = row["coverage"]
        rows.append(row)
    return {
        "meta": {
            "suite": "faults",
            "quick": bool(quick),
            "seed": int(seed),
            "fault_seed": int(fault_seed),
            "scale": {
                "n_tasks": n_tasks,
                "n_loaded_ranks": n_loaded,
                "n_ranks": n_ranks,
            },
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        "baseline": baseline,
        "rows": rows,
    }


def format_fault_report(payload: dict[str, Any]) -> str:
    """Human-readable degradation table for a :func:`run_fault_bench`
    payload."""
    meta = payload["meta"]
    scale = meta["scale"]
    lines = [
        f"fault bench ({'quick' if meta['quick'] else 'full'} scale: "
        f"{scale['n_tasks']} tasks, {scale['n_ranks']} ranks; "
        f"baseline I = {payload['baseline']['final_imbalance']:.4f})",
        "",
        f"  {'loss':>6}  {'coverage':>8}  {'dropped':>7}  {'final I':>8}  "
        f"{'I (retx)':>8}  {'migrations':>10}",
    ]
    for row in payload["rows"]:
        lines.append(
            f"  {row['loss_rate']:>6.2f}  {row['coverage']:>8.3f}  "
            f"{row['dropped']:>7d}  {row['final_imbalance']:>8.4f}  "
            f"{row['final_imbalance_retransmit']:>8.4f}  "
            f"{row['n_migrations']:>10d}"
        )
    return "\n".join(lines)
