"""Microbenchmarks for the gossip-LB hot paths.

Four timed paths, mirroring where an LB episode actually spends time:

``inform/loop`` vs ``inform/batched``
    One full inform stage (Alg. 1, coalesced) under both engines: the
    per-sender reference loop on boolean knowledge and the
    round-vectorized fast path on packed knowledge. Their ratio is the
    headline speedup of this optimization; both must obey the
    ``f x |senders|`` message model and land statistically equivalent
    coverage.
``transfer/rebuild`` vs ``transfer/incremental``
    One transfer stage (Alg. 2) with CMF recomputation per accepted
    transfer, under both maintenance strategies. Their ratio is the
    headline speedup of the incremental-CMF fast path; both run the
    same seed and propose the same assignment, so the comparison is
    work-for-work.
``refinement/serial`` vs ``refinement/parallel``
    Algorithm 3 with the trial loop serial (spawned streams, one
    worker) vs. parallel on the selected executor backend (the
    ``auto`` resolution rule by default: a process pool wherever a
    second core and ``fork`` exist) — same streams, bit-identical
    output, so the
    ratio is work-for-work. The per-stage ``wall.*`` timers from both
    instrumented runs ride along, and the parallel run's cumulative
    stage walls over its true ``wall.refinement`` span give the
    utilization figure (> 1 means trials overlapped *in time*; whether
    that overlap was real cores or time-slicing shows in the speedup,
    which is bounded by ``meta.cpu_count`` — recorded for exactly that
    reason).
``empire_step``
    A short EMPIRE surrogate run, reported per simulated step — the
    end-to-end figure the ROADMAP's "fast as the hardware allows" goal
    is judged by.

The ``--scale`` ladder adds per-rung cases on top of these:

``inform/sparse`` vs ``inform/sparse-python``
    The fused sparse inform driver (priority-space trim, interned
    shards, optional numba kernels) raced against the pure-Python
    reference driver at the rungs where the reference is tractable.
    Both consume identical RNG and produce bit-identical knowledge, so
    the ratio — ``speedups.inform_sparse_kernel_vs_python`` — is
    work-for-work.
``refinement/<rung>``
    One full Algorithm 3 episode at the rung's rank count: inform +
    CMF + transfer + trial selection, end to end, with the per-stage
    ``wall.*`` timers riding along. The 131k row is the headline "how
    long does a whole LB decision take at BG/Q scale" figure, and its
    subprocess peak RSS is the < 8 GiB acceptance gate.

Default scale is the paper's § V analysis scenario (10^4 tasks on
4096 ranks); ``quick`` drops to a CI-smoke size. Every case reports
the best of ``repeats`` runs (state is rebuilt per run, so repeated
timings are independent). ``profile=True`` additionally runs each
headline case once under :mod:`cProfile` and collects the top-20
cumulative hotspots per case into the payload's ``profiles`` section
(the CLI writes them to ``benchmarks/results/``).
"""

from __future__ import annotations

import multiprocessing
import platform
import resource
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.core.cmf import CMF_UPDATE_INCREMENTAL, CMF_UPDATE_REBUILD
from repro.core.gossip import GossipConfig, run_inform_stage
from repro.core.refinement import iterative_refinement
from repro.core.transfer import TransferConfig, transfer_stage
from repro.obs import StatsRegistry
from repro.util.parallel import EXECUTOR_AUTO, effective_cpu_count, resolve_backend
from repro.workloads.synthetic import paper_analysis_scenario

__all__ = [
    "BenchResult",
    "run_benchmarks",
    "run_scale_ladder",
    "format_report",
    "SCALE_RUNGS",
    "SCALE_RSS_BUDGET_MB",
    "LADDER_MAX_KNOWN",
]

#: The § V analysis scale (n_tasks, n_loaded_ranks, n_ranks).
FULL_SCALE = (10_000, 16, 4096)
#: CI-smoke scale for ``--quick``.
QUICK_SCALE = (2_000, 8, 512)

#: ``bench --scale`` ladder rungs (4k = the § V analysis rank count,
#: 131k = the paper's headline BG/Q run). Each rung times one
#: inform+transfer episode under the limited-information configuration
#: that makes high rank counts tractable (``max_known`` cap, "lowest"
#: trim) and records the peak RSS of a fresh subprocess running it.
SCALE_RUNGS: dict[str, dict[str, int]] = {
    "4k": {"n_ranks": 4_096, "n_loaded": 16, "tasks_full": 10_000, "tasks_quick": 10_000},
    "32k": {"n_ranks": 32_768, "n_loaded": 64, "tasks_full": 500_000, "tasks_quick": 100_000},
    "131k": {"n_ranks": 131_072, "n_loaded": 256, "tasks_full": 2_000_000, "tasks_quick": 500_000},
}

#: Knowledge cap for ladder rungs. 512 entries is deep knowledge for the
#: transfer CMF while keeping every backend's state O(P x cap).
LADDER_MAX_KNOWN = 512

#: Peak-RSS ceiling per rung (MiB), asserted by the committed-bench
#: floor checks and the CI scale-smoke gate. The 131k budget is the
#: acceptance criterion of the scale-ladder milestone (< 8 GiB for a
#: 131,072-rank / 2M-task episode).
SCALE_RSS_BUDGET_MB = {"4k": 2_048, "32k": 4_096, "131k": 8_192}

#: Rungs where the dense packed-bitmap backend / list-based transfer
#: engine are still run as references. At 131k the dense knowledge
#: matrix alone is ~2 GiB and each batched round copies it, so the rung
#: runs the sparse/SoA stack only.
_RUNG_REFERENCE = {"4k": True, "32k": True, "131k": False}

#: Rungs where the pure-Python sparse inform driver is raced against
#: the fused fast path (``GossipConfig.kernel``). The reference driver
#: scales like the fast path times its constant factor, so at 131k it
#: would dominate the whole ladder's wall time for a ratio the 32k rung
#: already establishes; 131k times the fast path only.
_RUNG_KERNEL_RACE = {"4k": True, "32k": True, "131k": False}

#: Full-episode (Algorithm 3) shape per rung: (n_trials, n_iters).
#: Small on purpose — the episode case measures per-iteration cost of
#: the whole inform+transfer+selection loop, not convergence quality,
#: and one 131k iteration is already tens of seconds.
_RUNG_EPISODE = {"4k": (2, 2), "32k": (1, 2), "131k": (1, 2)}


@dataclass
class BenchResult:
    """Best-of-N timing for one benchmark case."""

    name: str
    seconds: float  #: best wall time across repeats
    repeats: int
    extra: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "seconds": self.seconds,
            "repeats": self.repeats,
            **self.extra,
        }


def _time_best(fn: Callable[[], Any], repeats: int) -> tuple[float, Any]:
    """Best wall time of ``repeats`` calls, plus the last return value."""
    best = float("inf")
    value = None
    for _ in range(repeats):
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    return best, value


def _profile_text(fn: Callable[[], Any], top: int = 20) -> str:
    """Run ``fn`` once under :mod:`cProfile`; top-``top`` cumulative rows.

    A failing case still yields a complete listing: the traceback is
    prepended and whatever the profiler captured before the raise
    follows. Profiling is diagnostics — it must never abort the bench
    run or leave its JSON/text artifacts half-written.
    """
    import cProfile
    import io
    import pstats
    import traceback

    prof = cProfile.Profile()
    prof.enable()
    failure = None
    try:
        fn()
    except Exception:
        failure = traceback.format_exc()
    finally:
        prof.disable()
    buf = io.StringIO()
    if failure is not None:
        buf.write("PROFILED CASE FAILED — partial profile below\n")
        buf.write(failure)
        buf.write("\n")
    pstats.Stats(prof, stream=buf).sort_stats("cumulative").print_stats(top)
    return buf.getvalue()


def _peak_rss_mb() -> float:
    """This process's lifetime peak RSS in MiB (``ru_maxrss``)."""
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # ru_maxrss is KiB on Linux, bytes on macOS.
    return peak / 1024.0 if sys.platform != "darwin" else peak / (1024.0 * 1024.0)


def _run_scale_rung(
    name: str, quick: bool, repeats: int, seed: int, profile: bool = False
) -> dict[str, Any]:
    """Time one ladder rung (in-process): stages, kernel race, episode.

    Reference implementations (packed knowledge, list-based transfer,
    the pure-Python sparse inform driver) run alongside the scaling
    stack where they are tractable (``_RUNG_REFERENCE`` /
    ``_RUNG_KERNEL_RACE``), so the rung reports both the cost of the
    stack that ships at that rank count and the ratio against each
    alternative. On top of the per-stage timings, one full
    ``iterative_refinement`` episode (``_RUNG_EPISODE`` shape) times
    the whole LB decision loop end to end with its ``wall.*`` stage
    timers.
    """
    spec = SCALE_RUNGS[name]
    n_ranks = spec["n_ranks"]
    n_tasks = spec["tasks_quick"] if quick else spec["tasks_full"]
    # Inform cost depends on rank count only, never task count, so the
    # full k=10 rounds stay affordable in quick mode — and the quick-CI
    # backend ratio then measures the same saturated-round regime the
    # committed full-scale bench gates.
    rounds = 10
    reps = {"4k": repeats, "32k": min(repeats, 2), "131k": 1}[name]
    dist = paper_analysis_scenario(
        n_tasks=n_tasks,
        n_loaded_ranks=spec["n_loaded"],
        n_ranks=n_ranks,
        seed=seed,
    )
    loads = np.bincount(dist.assignment, weights=dist.task_loads, minlength=n_ranks)
    base = dict(rounds=rounds, max_known=LADDER_MAX_KNOWN, trim_policy="lowest")
    auto_backend = GossipConfig(**base).resolve_knowledge(n_ranks)
    backends = ("packed", "sparse") if _RUNG_REFERENCE[name] else ("sparse",)
    profiles: dict[str, str] = {}

    def make_inform(config: GossipConfig) -> Callable[[], Any]:
        def bench_inform() -> Any:
            return run_inform_stage(
                loads,
                config,
                np.random.default_rng(seed + 1),
                average_load=dist.average_load,
            )

        return bench_inform

    inform_secs: dict[str, float] = {}
    inform_mem: dict[str, float] = {}
    inform_messages: dict[str, int] = {}
    gossip = None
    for backend in backends:
        bench_inform = make_inform(GossipConfig(knowledge=backend, **base))
        secs, stage = _time_best(bench_inform, reps)
        inform_secs[backend] = secs
        inform_messages[backend] = stage.n_messages
        mem = getattr(stage.knowledge, "memory_bytes", None)
        inform_mem[backend] = (mem() / 2**20) if mem is not None else 0.0
        if backend == auto_backend or gossip is None:
            gossip = stage
        if profile and backend == "sparse":
            profiles[f"inform_sparse_{name}"] = _profile_text(bench_inform)

    # The sparse kernel race: fused fast driver (what "auto" ships) vs
    # the pure-Python reference driver. Bit-identical by construction
    # (the dedicated parity tests enforce it down to the RNG stream);
    # the message count doubles as a cheap cross-check here.
    inform_kernel_secs: dict[str, float] = {"fast": inform_secs["sparse"]}
    kernel_equivalent = True
    if _RUNG_KERNEL_RACE[name]:
        secs, stage = _time_best(
            make_inform(GossipConfig(knowledge="sparse", kernel="python", **base)), reps
        )
        inform_kernel_secs["python"] = secs
        kernel_equivalent = stage.n_messages == inform_messages["sparse"]

    engines = ("lists", "soa") if _RUNG_REFERENCE[name] else ("soa",)
    transfer_secs: dict[str, float] = {}
    transfer_counts: dict[str, int] = {}
    for engine in engines:
        config = TransferConfig(engine=engine)

        def bench_transfer(config=config):
            assignment = np.array(dist.assignment, copy=True)
            return transfer_stage(
                assignment,
                dist.task_loads,
                gossip,
                config,
                np.random.default_rng(seed + 2),
            )

        secs, stats = _time_best(bench_transfer, reps)
        transfer_secs[engine] = secs
        transfer_counts[engine] = stats.transfers
        if profile and engine == "soa":
            profiles[f"transfer_soa_{name}"] = _profile_text(bench_transfer)

    # Full-episode case: Algorithm 3 end to end at this rank count —
    # inform + CMF + transfer + trial selection — under the shipping
    # configuration ("auto" backend and kernel). One repeat: episodes
    # are the most expensive cases on the ladder and the per-stage
    # wall timers expose where the time went anyway.
    ep_trials, ep_iters = _RUNG_EPISODE[name]

    def bench_episode() -> StatsRegistry:
        registry = StatsRegistry()
        iterative_refinement(
            dist,
            n_trials=ep_trials,
            n_iters=ep_iters,
            gossip=GossipConfig(knowledge="auto", **base),
            transfer=TransferConfig(),
            rng=np.random.default_rng(seed + 3),
            registry=registry,
        )
        return registry

    episode_secs, episode_registry = _time_best(bench_episode, 1)
    if profile:
        profiles[f"refinement_{name}"] = _profile_text(bench_episode)

    return {
        "scale": name,
        "n_ranks": n_ranks,
        "n_tasks": n_tasks,
        "n_loaded_ranks": spec["n_loaded"],
        "rounds": rounds,
        "max_known": LADDER_MAX_KNOWN,
        "trim_policy": "lowest",
        "repeats": reps,
        "auto_backend": auto_backend,
        "auto_threshold": (
            gossip.auto_threshold if gossip is not None else 0
        ),
        "inform_seconds": inform_secs,
        "inform_kernel_seconds": inform_kernel_secs,
        "kernel_equivalent": kernel_equivalent,
        "inform_messages": inform_messages,
        "knowledge_memory_mb": inform_mem,
        "transfer_seconds": transfer_secs,
        "transfers": transfer_counts,
        "equivalent_transfers": len(set(transfer_counts.values())) <= 1,
        "refinement": {
            "seconds": episode_secs,
            "n_trials": ep_trials,
            "n_iters": ep_iters,
            "stage_walls": {
                k: float(v) for k, v in episode_registry.timers.items()
            },
        },
        "peak_rss_budget_mb": SCALE_RSS_BUDGET_MB[name],
        "profiles": profiles,
    }


def _scale_rung_worker(
    conn, name: str, quick: bool, repeats: int, seed: int, profile: bool = False
) -> None:
    """Spawn target: run one rung and ship the result over a pipe.

    Runs in a fresh process so ``ru_maxrss`` — a process-lifetime
    high-water mark — measures this rung alone, not whatever larger
    rung or suite ran earlier in the parent. Profile texts (when
    requested) travel back over the same pipe as part of the record.
    """
    try:
        payload = _run_scale_rung(name, quick, repeats, seed, profile=profile)
        payload["peak_rss_mb"] = _peak_rss_mb()
        conn.send(payload)
    except BaseException as exc:  # pragma: no cover - surfaced in the parent
        conn.send({"scale": name, "error": repr(exc)})
    finally:
        conn.close()


def run_scale_ladder(
    scale: str,
    quick: bool = False,
    repeats: int = 3,
    seed: int = 0,
    profile: bool = False,
) -> list[dict[str, Any]]:
    """Run the ``--scale`` ladder and return one record per rung.

    ``scale`` is a rung name or ``"all"``. Each rung runs in a spawned
    subprocess so its ``peak_rss_mb`` is a per-rung measurement; if the
    platform cannot spawn, the rung runs in-process and the record is
    flagged ``"subprocess": False`` (its RSS then includes the parent's
    history and is an upper bound).
    """
    if scale == "all":
        rungs = list(SCALE_RUNGS)
    elif scale in SCALE_RUNGS:
        rungs = [scale]
    else:
        raise ValueError(
            f"scale must be one of {[*SCALE_RUNGS, 'all']}, got {scale!r}"
        )
    records = []
    for name in rungs:
        try:
            ctx = multiprocessing.get_context("spawn")
            recv, send = ctx.Pipe(duplex=False)
            proc = ctx.Process(
                target=_scale_rung_worker,
                args=(send, name, quick, repeats, seed, profile),
            )
            proc.start()
            send.close()
            try:
                record = recv.recv()
            except EOFError:
                record = {"scale": name, "error": "rung worker died without a result"}
            finally:
                proc.join()
            record["subprocess"] = True
        except (ImportError, OSError, ValueError):
            record = _run_scale_rung(name, quick, repeats, seed, profile=profile)
            record["peak_rss_mb"] = _peak_rss_mb()
            record["subprocess"] = False
        if "error" in record:
            raise RuntimeError(f"scale rung {name} failed: {record['error']}")
        records.append(record)
    return records


def run_benchmarks(
    quick: bool = False,
    repeats: int = 3,
    seed: int = 0,
    workers: int | None = None,
    executor: str = EXECUTOR_AUTO,
    scale: str | None = None,
    profile: bool = False,
) -> dict[str, Any]:
    """Run every benchmark case and return the ``BENCH_perf.json`` payload.

    ``workers`` overrides the refinement case's parallel worker count
    (default: 2 at quick scale, 4 at full scale); ``executor`` selects
    its backend. The default ``"auto"`` measures the shipping
    resolution rule — the process backend wherever a second core and
    ``fork`` exist, the serial loop where a pool cannot win — and the
    payload records both the requested and the resolved backend.

    ``scale`` additionally runs the rank-count ladder (a rung name or
    ``"all"``; see :func:`run_scale_ladder`): the payload gains a
    ``scale_ladder`` section, per-rung benchmark rows tagged with their
    rung (including one ``refinement/<rung>`` full-episode row and an
    ``inform/sparse-python`` reference row where the race ran), and per
    rung:

    - ``inform_backend_auto_vs_alt_<rung>`` — the ratio that proves
      ``knowledge="auto"`` picks the faster backend at that rank count;
    - ``inform_sparse_kernel_vs_python_<rung>`` — the fused sparse
      driver against the pure-Python reference, with the headline
      ``inform_sparse_kernel_vs_python`` pinned to the 32k rung (the
      largest raced scale).

    ``profile=True`` runs each headline case once more under cProfile
    and returns the top-20 cumulative listings in ``payload["profiles"]``.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    n_tasks, n_loaded, n_ranks = QUICK_SCALE if quick else FULL_SCALE
    dist = paper_analysis_scenario(
        n_tasks=n_tasks, n_loaded_ranks=n_loaded, n_ranks=n_ranks, seed=seed
    )
    loads = np.bincount(
        dist.assignment, weights=dist.task_loads, minlength=dist.n_ranks
    )
    results: list[BenchResult] = []
    profiles: dict[str, str] = {}

    # -- inform stage: per-sender loop reference vs batched fast path -------
    inform_secs: dict[str, float] = {}
    inform = None
    for engine in ("loop", "batched"):

        def bench_inform(engine=engine):
            return run_inform_stage(
                loads,
                GossipConfig(engine=engine),
                np.random.default_rng(seed + 1),
                average_load=dist.average_load,
            )

        secs, stage = _time_best(bench_inform, repeats)
        inform_secs[engine] = secs
        if engine == "batched":
            inform = stage  # feeds the transfer benchmarks below
            if profile:
                profiles["inform_batched"] = _profile_text(bench_inform)
        results.append(
            BenchResult(
                f"inform/{engine}",
                secs,
                repeats,
                {
                    "messages": stage.n_messages,
                    "coverage": float(stage.coverage()),
                    # The stage reports what it actually ran — no
                    # re-derivation that could drift from the selector.
                    "knowledge": stage.knowledge_backend,
                    "auto_threshold": stage.auto_threshold,
                    # f * |senders| messages every round (candidate sets
                    # never run dry at bench scale) — the model both
                    # engines must satisfy for the comparison to be
                    # work-for-work.
                    "message_model_exact": all(
                        m == stage.per_round_senders[i] * GossipConfig().fanout
                        for i, m in enumerate(stage.per_round_messages)
                    ),
                },
            )
        )

    # -- transfer stage: full-rebuild reference vs incremental fast path ----
    transfer_secs: dict[str, float] = {}
    transfer_counts: dict[str, int] = {}
    for mode in (CMF_UPDATE_REBUILD, CMF_UPDATE_INCREMENTAL):
        config = TransferConfig(cmf_update=mode)

        def bench_transfer(config=config):
            assignment = np.array(dist.assignment, copy=True)
            return transfer_stage(
                assignment,
                dist.task_loads,
                inform,
                config,
                np.random.default_rng(seed + 2),
            )

        secs, stats = _time_best(bench_transfer, repeats)
        transfer_secs[mode] = secs
        transfer_counts[mode] = stats.transfers
        if profile and mode == CMF_UPDATE_INCREMENTAL:
            profiles["transfer_incremental"] = _profile_text(bench_transfer)
        results.append(
            BenchResult(
                f"transfer/{mode}",
                secs,
                repeats,
                {
                    "transfers": stats.transfers,
                    "rejections": stats.rejections,
                    "cmf_builds": stats.cmf_builds,
                    "cmf_updates": stats.cmf_updates,
                },
            )
        )

    # -- refinement: serial vs parallel (process-backed) trials -------------
    n_trials, n_iters, default_workers = (2, 2, 2) if quick else (4, 2, 4)
    n_workers = default_workers if workers is None else int(workers)
    refine_secs: dict[str, float] = {}
    wall_timers: dict[str, float] = {}
    parallel_timers: dict[str, float] = {}
    parallel_backend = resolve_backend(executor, n_workers, n_trials)
    cases = (("serial", 1, "serial"), ("parallel", n_workers, executor))
    for label, case_workers, case_executor in cases:

        def bench_refinement(case_workers=case_workers, case_executor=case_executor):
            registry = StatsRegistry()
            iterative_refinement(
                dist,
                n_trials=n_trials,
                n_iters=n_iters,
                rng=np.random.default_rng(seed + 3),
                registry=registry,
                n_workers=case_workers,
                executor=case_executor,
            )
            return registry

        secs, registry = _time_best(bench_refinement, repeats)
        refine_secs[label] = secs
        if profile and label == "serial":
            profiles["refinement_serial"] = _profile_text(bench_refinement)
        timers = {k: float(v) for k, v in registry.timers.items()}
        if label == "serial":
            wall_timers = timers
        else:
            parallel_timers = timers
        results.append(
            BenchResult(
                f"refinement/{label}",
                secs,
                repeats,
                {
                    "n_trials": n_trials,
                    "n_iters": n_iters,
                    "n_workers": case_workers,
                    "executor": resolve_backend(case_executor, case_workers, n_trials),
                },
            )
        )

    # -- EMPIRE surrogate step ---------------------------------------------
    from repro.empire import EmpireConfig, run_empire

    empire_ranks, empire_steps = (32, 12) if quick else (100, 40)
    empire_config = EmpireConfig(
        configuration="tempered",
        n_ranks=empire_ranks,
        n_steps=empire_steps,
        lb_period=empire_steps // 4,
        initial_particles=2_000 if quick else 10_000,
        injection_per_step=20 if quick else 100,
        n_trials=1,
        n_iters=4,
        seed=seed,
    )
    secs, _ = _time_best(lambda: run_empire(empire_config), max(1, repeats - 1))
    results.append(
        BenchResult(
            "empire_step",
            secs / empire_steps,
            max(1, repeats - 1),
            {"ranks": empire_ranks, "steps": empire_steps, "run_seconds": secs},
        )
    )

    speedups = {
        "inform_batched_vs_loop": inform_secs["loop"] / inform_secs["batched"],
        "transfer_incremental_vs_rebuild": (
            transfer_secs[CMF_UPDATE_REBUILD] / transfer_secs[CMF_UPDATE_INCREMENTAL]
        ),
        "refinement_parallel_vs_serial": (
            refine_secs["serial"] / refine_secs["parallel"]
        ),
    }

    # -- rank-count ladder (opt-in via ``scale``) ---------------------------
    ladder: list[dict[str, Any]] = []
    if scale is not None:
        ladder = run_scale_ladder(
            scale, quick=quick, repeats=repeats, seed=seed, profile=profile
        )
        kernel_ratios: dict[str, float] = {}
        for rung in ladder:
            profiles.update(rung.pop("profiles", {}))
            tag = {
                "scale": rung["scale"],
                "n_ranks": rung["n_ranks"],
                "n_tasks": rung["n_tasks"],
            }
            for backend, secs in rung["inform_seconds"].items():
                results.append(
                    BenchResult(
                        f"inform/{backend}",
                        secs,
                        rung["repeats"],
                        {
                            **tag,
                            "knowledge": backend,
                            "messages": rung["inform_messages"][backend],
                            "knowledge_memory_mb": rung["knowledge_memory_mb"][backend],
                        },
                    )
                )
            kernel_secs = rung.get("inform_kernel_seconds", {})
            if "python" in kernel_secs:
                results.append(
                    BenchResult(
                        "inform/sparse-python",
                        kernel_secs["python"],
                        rung["repeats"],
                        {
                            **tag,
                            "knowledge": "sparse",
                            "kernel": "python",
                            "kernel_equivalent": rung.get("kernel_equivalent", True),
                        },
                    )
                )
                kernel_ratios[rung["scale"]] = (
                    kernel_secs["python"] / kernel_secs["fast"]
                )
                speedups[f"inform_sparse_kernel_vs_python_{rung['scale']}"] = (
                    kernel_ratios[rung["scale"]]
                )
            for engine, secs in rung["transfer_seconds"].items():
                results.append(
                    BenchResult(
                        f"transfer/{engine}",
                        secs,
                        rung["repeats"],
                        {
                            **tag,
                            "knowledge": rung["auto_backend"],
                            "engine": engine,
                            "transfers": rung["transfers"][engine],
                        },
                    )
                )
            episode = rung.get("refinement")
            if episode:
                walls = episode["stage_walls"]
                results.append(
                    BenchResult(
                        f"refinement/{rung['scale']}",
                        episode["seconds"],
                        1,
                        {
                            **tag,
                            "n_trials": episode["n_trials"],
                            "n_iters": episode["n_iters"],
                            "knowledge": rung["auto_backend"],
                            "wall_inform": walls.get("wall.inform", 0.0),
                            "wall_transfer": walls.get("wall.transfer", 0.0),
                        },
                    )
                )
            # The gated ladder invariant: whatever backend "auto" picks
            # at this rank count must beat the alternative. Rungs run
            # without a reference backend (131k) contribute timing and
            # RSS data only — there is nothing tractable to race.
            alts = [b for b in rung["inform_seconds"] if b != rung["auto_backend"]]
            if alts:
                speedups[f"inform_backend_auto_vs_alt_{rung['scale']}"] = (
                    rung["inform_seconds"][alts[0]]
                    / rung["inform_seconds"][rung["auto_backend"]]
                )
        # The headline kernel ratio is the largest raced rung (32k when
        # the full ladder runs) — the scale the fused driver exists for.
        if kernel_ratios:
            speedups["inform_sparse_kernel_vs_python"] = kernel_ratios.get(
                "32k", max(kernel_ratios.values())
            )
    # Stage timers are cumulative per trial and measure elapsed time
    # inside each worker (descheduled slices included); wall.refinement
    # is the true span. Their ratio is the utilization of the parallel
    # run: > 1 means trials overlapped in time, and only together with
    # a speedup > 1 does that overlap prove real core parallelism (it
    # can approach n_workers on idle multi-core hardware).
    stage_wall = parallel_timers.get("wall.inform", 0.0) + parallel_timers.get(
        "wall.transfer", 0.0
    )
    refinement_wall = parallel_timers.get("wall.refinement", 0.0)
    return {
        "meta": {
            "quick": quick,
            "repeats": repeats,
            "seed": seed,
            "scale": {"n_tasks": n_tasks, "n_loaded_ranks": n_loaded, "n_ranks": n_ranks},
            "python": platform.python_version(),
            "numpy": np.__version__,
            "platform": platform.platform(),
            # Parallel speedup is bounded by the cores this process may
            # use — anyone reading the refinement ratio needs this.
            "cpu_count": effective_cpu_count(),
        },
        "benchmarks": [r.to_dict() for r in results],
        "speedups": speedups,
        "scale_ladder": ladder,
        "profiles": profiles,
        "wall_timers": wall_timers,
        "refinement_parallel": {
            "executor": parallel_backend,
            "executor_requested": executor,
            "n_workers": n_workers,
            "stage_wall_seconds": stage_wall,
            "wall_seconds": refinement_wall,
            "utilization": (stage_wall / refinement_wall) if refinement_wall else 0.0,
        },
        "equivalent_transfers": (
            transfer_counts[CMF_UPDATE_REBUILD] == transfer_counts[CMF_UPDATE_INCREMENTAL]
        ),
    }


def format_report(payload: dict[str, Any]) -> str:
    """Human-readable digest of a :func:`run_benchmarks` payload.

    Rows are no longer all at one scale: ladder rows carry their own
    rung and knowledge backend, so each line leads with its rung label
    (``meta.scale`` for the classic suite) and the per-row detail
    includes the backend where one applies.
    """
    meta = payload["meta"]
    scale = meta["scale"]
    base_label = f"{scale['n_ranks']}r"
    lines = [
        f"perf bench ({'quick' if meta['quick'] else 'full'} scale: "
        f"{scale['n_tasks']} tasks, {scale['n_ranks']} ranks; "
        f"best of {meta['repeats']})",
        "",
    ]
    width = max(len(b["name"]) for b in payload["benchmarks"])
    label_width = max(
        len(str(b.get("scale", base_label))) for b in payload["benchmarks"]
    )
    for bench in payload["benchmarks"]:
        detail = ", ".join(
            f"{k}={v:.4g}" if isinstance(v, float) else f"{k}={v}"
            for k, v in bench.items()
            if k not in ("name", "seconds", "repeats", "scale")
        )
        label = str(bench.get("scale", base_label))
        lines.append(
            f"  [{label:>{label_width}}] {bench['name']:<{width}}"
            f"  {bench['seconds'] * 1e3:9.2f} ms"
            + (f"  ({detail})" if detail else "")
        )
    lines.append("")
    for name, value in payload["speedups"].items():
        lines.append(f"  speedup {name}: {value:.2f}x")
    for rung in payload.get("scale_ladder", ()):
        mem = rung.get("knowledge_memory_mb", {})
        mem_part = (
            ", knowledge "
            + "/".join(f"{b}={v:.1f}MB" for b, v in sorted(mem.items()))
            if mem
            else ""
        )
        lines.append(
            f"  rung {rung['scale']}: {rung['n_ranks']} ranks, "
            f"{rung['n_tasks']} tasks, auto={rung['auto_backend']}"
            f"{mem_part}, peak RSS {rung['peak_rss_mb']:.0f} MB "
            f"(budget {rung['peak_rss_budget_mb']} MB"
            + ("" if rung.get("subprocess", True) else ", in-process upper bound")
            + ")"
        )
        episode = rung.get("refinement")
        if episode:
            walls = episode.get("stage_walls", {})
            lines.append(
                f"    episode ({episode['n_trials']}x{episode['n_iters']}): "
                f"{episode['seconds']:.2f}s total, "
                f"inform {walls.get('wall.inform', 0.0):.2f}s, "
                f"transfer {walls.get('wall.transfer', 0.0):.2f}s"
            )
    refinement = payload.get("refinement_parallel")
    if refinement and refinement["wall_seconds"]:
        lines.append(
            "  refinement utilization: "
            f"{refinement['stage_wall_seconds']:.2f}s stage walls / "
            f"{refinement['wall_seconds']:.2f}s wall.refinement = "
            f"{refinement['utilization']:.2f} "
            f"({refinement['executor']} x{refinement['n_workers']}, "
            f"{meta.get('cpu_count', '?')} cores)"
        )
    if payload.get("wall_timers"):
        timers = ", ".join(
            f"{k}={v * 1e3:.1f}ms" for k, v in sorted(payload["wall_timers"].items())
        )
        lines.append(f"  stage wall timers (serial refinement): {timers}")
    return "\n".join(lines)
