"""Performance harness: microbenchmarks of the LB pipeline hot paths.

``repro bench`` (see :mod:`repro.cli`) runs :func:`run_benchmarks` and
writes ``BENCH_perf.json`` so every change leaves a perf trajectory to
regress against. See ``docs/performance.md`` for the hot-path map and
how to read the output.
"""

from repro.perf.bench import BenchResult, format_report, run_benchmarks

__all__ = ["BenchResult", "format_report", "run_benchmarks"]
