"""Performance harness: microbenchmarks of the LB pipeline hot paths.

``repro bench`` (see :mod:`repro.cli`) runs :func:`run_benchmarks` and
writes ``BENCH_perf.json`` so every change leaves a perf trajectory to
regress against; ``repro bench faults`` runs :func:`run_fault_bench`
and writes ``BENCH_faults.json``, the imbalance-degradation-vs-loss
table. See ``docs/performance.md`` and ``docs/fault_tolerance.md``.
"""

from repro.perf.bench import (
    SCALE_RSS_BUDGET_MB,
    SCALE_RUNGS,
    BenchResult,
    format_report,
    run_benchmarks,
    run_scale_ladder,
)
from repro.perf.faults import format_fault_report, run_fault_bench

__all__ = [
    "BenchResult",
    "SCALE_RSS_BUDGET_MB",
    "SCALE_RUNGS",
    "format_report",
    "run_benchmarks",
    "run_scale_ladder",
    "format_fault_report",
    "run_fault_bench",
]
