"""Criterion and strategy studies (§ V-B, § V-D reproduction).

The § V analysis tables were produced with the authors' LBAF tool: a
sequential Python simulation applying the inform + transfer stages
iteratively to one synthetic distribution and recording, per iteration,
the number of accepted transfers, rejections, the rejection rate, and
the resulting imbalance. :func:`criterion_study` reproduces exactly
that; :func:`criterion_comparison` pairs the original and relaxed
criteria on the same workload (the third § V-D table).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.base import IterationRecord, LoadBalancer
from repro.core.cmf import CMF_MODIFIED, CMF_ORIGINAL
from repro.core.criteria import CRITERION_ORIGINAL, CRITERION_RELAXED
from repro.core.distribution import Distribution
from repro.core.gossip import GossipConfig
from repro.core.ordering import ORDER_ARBITRARY
from repro.core.refinement import iterative_refinement
from repro.core.transfer import TransferConfig
from repro.util.validation import check_in, check_positive, coerce_rng

__all__ = [
    "CriterionStudy",
    "criterion_study",
    "criterion_comparison",
    "strategy_comparison",
]


@dataclass
class CriterionStudy:
    """Per-iteration history of one criterion on one workload."""

    criterion: str
    initial_imbalance: float
    records: list[IterationRecord] = field(default_factory=list)

    @property
    def final_imbalance(self) -> float:
        """Imbalance after the last iteration."""
        return self.records[-1].imbalance if self.records else self.initial_imbalance

    def imbalances(self) -> list[float]:
        """Iteration-0 imbalance followed by each iteration's imbalance."""
        return [self.initial_imbalance] + [r.imbalance for r in self.records]


def _study_transfer_config(criterion: str, threshold: float, ordering: str) -> TransferConfig:
    """The LBAF semantics used for the § V tables (see transfer.py)."""
    if criterion == CRITERION_ORIGINAL:
        # GrapevineLB: strict criterion, original CMF built once (l.5).
        return TransferConfig(
            criterion=CRITERION_ORIGINAL,
            cmf=CMF_ORIGINAL,
            recompute_cmf=False,
            ordering=ordering,
            threshold=threshold,
            view="shared",
            max_passes=None,
            cascade=True,
        )
    # TemperedLB: relaxed criterion, modified CMF recomputed (l.7, l.25).
    return TransferConfig(
        criterion=CRITERION_RELAXED,
        cmf=CMF_MODIFIED,
        recompute_cmf=True,
        ordering=ordering,
        threshold=threshold,
        view="shared",
        max_passes=None,
        cascade=True,
    )


def criterion_study(
    dist: Distribution,
    criterion: str = CRITERION_RELAXED,
    n_iters: int = 10,
    fanout: int = 6,
    rounds: int = 10,
    threshold: float = 1.0,
    ordering: str = ORDER_ARBITRARY,
    rng: np.random.Generator | int | None = 0,
) -> CriterionStudy:
    """Iterate inform+transfer ``n_iters`` times, recording each iteration.

    Defaults reproduce the § V-B setup: ``k = 10`` gossip rounds,
    ``h = 1.0``, ``f = 6``, ten iterations.
    """
    check_in("criterion", criterion, (CRITERION_ORIGINAL, CRITERION_RELAXED))
    check_positive("n_iters", n_iters)
    rng = coerce_rng(rng)
    refinement = iterative_refinement(
        dist,
        n_trials=1,
        n_iters=n_iters,
        gossip=GossipConfig(fanout=fanout, rounds=rounds),
        transfer=_study_transfer_config(criterion, threshold, ordering),
        rng=rng,
    )
    return CriterionStudy(
        criterion=criterion,
        initial_imbalance=refinement.initial_imbalance,
        records=refinement.records,
    )


def criterion_comparison(
    dist: Distribution,
    n_iters: int = 10,
    seed: int = 0,
    **kwargs: object,
) -> dict[str, CriterionStudy]:
    """Run both criteria on the same workload with identical seeds.

    Reproduces the third § V-D table (criterion 35 vs criterion 37).
    """
    return {
        CRITERION_ORIGINAL: criterion_study(
            dist, CRITERION_ORIGINAL, n_iters=n_iters, rng=seed, **kwargs  # type: ignore[arg-type]
        ),
        CRITERION_RELAXED: criterion_study(
            dist, CRITERION_RELAXED, n_iters=n_iters, rng=seed, **kwargs  # type: ignore[arg-type]
        ),
    }


def strategy_comparison(
    dist: Distribution,
    strategies: dict[str, LoadBalancer],
    seed: int = 0,
) -> dict[str, dict[str, float]]:
    """Apply several strategies to one distribution; summary metrics each.

    Returns ``{name: {initial, final, migrations}}`` with identical input
    state per strategy (the distribution is never mutated).
    """
    out: dict[str, dict[str, float]] = {}
    for name, strategy in strategies.items():
        result = strategy.rebalance(dist, rng=np.random.default_rng(seed))
        out[name] = {
            "initial_imbalance": result.initial_imbalance,
            "final_imbalance": result.final_imbalance,
            "migrations": float(result.n_migrations),
        }
    return out
