"""Declarative experiment sweeps — the LBAF "experiment config" role.

A :class:`SweepSpec` names a grid of workloads x strategies x seeds;
:func:`run_sweep` executes every cell and aggregates per-cell means and
standard deviations of the final imbalance and migration counts. Specs
are plain data (JSON-serializable dicts), so sweeps can be stored next
to their results and rerun bit-identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.core.distribution import Distribution
from repro.core.registry import make_balancer
from repro.workloads import (
    paper_analysis_scenario,
    random_distribution,
    skewed_distribution,
)

__all__ = ["SweepSpec", "run_sweep", "WORKLOAD_GENERATORS"]

WORKLOAD_GENERATORS: dict[str, Callable[..., Distribution]] = {
    "paper": paper_analysis_scenario,
    "skewed": skewed_distribution,
    "random": random_distribution,
}


@dataclass(frozen=True)
class SweepSpec:
    """A grid of experiments.

    ``workloads`` maps a label to ``{"generator": <name>, **params}``;
    ``strategies`` maps a label to ``{"kind": <registry name>, **params}``;
    every combination runs once per seed.
    """

    workloads: dict[str, dict[str, Any]]
    strategies: dict[str, dict[str, Any]]
    seeds: tuple[int, ...] = (0, 1, 2)

    def __post_init__(self) -> None:
        if not self.workloads:
            raise ValueError("spec needs at least one workload")
        if not self.strategies:
            raise ValueError("spec needs at least one strategy")
        if not self.seeds:
            raise ValueError("spec needs at least one seed")
        for label, params in self.workloads.items():
            generator = params.get("generator")
            if generator not in WORKLOAD_GENERATORS:
                raise ValueError(
                    f"workload {label!r}: unknown generator {generator!r}; "
                    f"available: {sorted(WORKLOAD_GENERATORS)}"
                )
        for label, params in self.strategies.items():
            if "kind" not in params:
                raise ValueError(f"strategy {label!r} needs a 'kind'")

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable form."""
        return {
            "workloads": self.workloads,
            "strategies": self.strategies,
            "seeds": list(self.seeds),
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "SweepSpec":
        """Rebuild a spec from :meth:`to_dict` output."""
        return cls(
            workloads=payload["workloads"],
            strategies=payload["strategies"],
            seeds=tuple(payload["seeds"]),
        )


def run_sweep(spec: SweepSpec) -> list[dict[str, Any]]:
    """Execute the grid; one aggregated row per (workload, strategy).

    Each row carries ``initial I``, ``final I`` (mean), ``final I std``,
    ``migrations`` (mean) and the per-seed values under ``raw``.
    """
    rows: list[dict[str, Any]] = []
    for w_label, w_params in spec.workloads.items():
        params = dict(w_params)
        generator = WORKLOAD_GENERATORS[params.pop("generator")]
        for s_label, s_params in spec.strategies.items():
            s_kw = dict(s_params)
            kind = s_kw.pop("kind")
            finals, migrations, initials = [], [], []
            for seed in spec.seeds:
                dist = generator(seed=seed, **params)
                balancer = make_balancer(kind, **s_kw)
                result = balancer.rebalance(dist, rng=np.random.default_rng(seed))
                initials.append(result.initial_imbalance)
                finals.append(result.final_imbalance)
                migrations.append(result.n_migrations)
            rows.append(
                {
                    "workload": w_label,
                    "strategy": s_label,
                    "initial I": float(np.mean(initials)),
                    "final I": float(np.mean(finals)),
                    "final I std": float(np.std(finals)),
                    "migrations": float(np.mean(migrations)),
                    "raw": {"final": finals, "migrations": migrations},
                }
            )
    return rows
