"""LB result reports — the "+LBDebug" role.

:func:`lb_report` renders one :class:`~repro.core.base.LBResult` as a
human-readable diagnostic: before/after statistics, load histograms,
the worst ranks, migration summary, and the per-iteration history for
the gossip strategies. Used by examples and available to downstream
users chasing a balancing regression.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.plot import histogram, sparkline
from repro.core.base import LBResult
from repro.core.distribution import Distribution
from repro.core.metrics import gini, load_statistics, sigma_imbalance

__all__ = ["lb_report"]


def lb_report(dist: Distribution, result: LBResult, top: int = 5) -> str:
    """A multi-section text report for one balancing decision.

    ``dist`` must be the distribution the strategy was invoked on.
    """
    if result.assignment.shape != dist.assignment.shape:
        raise ValueError("result does not belong to this distribution")
    before = dist.rank_loads()
    after = np.bincount(result.assignment, weights=dist.task_loads, minlength=dist.n_ranks)

    lines: list[str] = [f"=== {result.strategy} report ==="]
    lines.append(
        f"tasks: {dist.n_tasks}  ranks: {dist.n_ranks}  "
        f"migrations: {result.n_migrations} "
        f"({100.0 * result.n_migrations / max(dist.n_tasks, 1):.1f}% of tasks)"
    )
    for label, loads in (("before", before), ("after", after)):
        stats = load_statistics(loads)
        lines.append(
            f"{label:>7}: I={stats.imbalance:9.4g}  sigma={sigma_imbalance(loads):7.4g}  "
            f"gini={gini(loads):6.3f}  max={stats.maximum:9.4g}  min={stats.minimum:9.4g}"
        )

    lines.append("\nrank-load histogram before:")
    lines.append(histogram(before, bins=8, width=30))
    lines.append("\nrank-load histogram after:")
    lines.append(histogram(after, bins=8, width=30))

    worst = np.argsort(-after)[:top]
    lines.append(f"\nheaviest {top} ranks after balancing:")
    for rank in worst:
        delta = after[rank] - before[rank]
        lines.append(
            f"  rank {int(rank):>5}: {after[rank]:9.4g}  (was {before[rank]:9.4g}, "
            f"{delta:+9.4g})"
        )

    if result.records:
        imbalances = [r.imbalance for r in result.records]
        lines.append(
            f"\niteration history ({len(result.records)} stages): "
            f"{sparkline(imbalances)}"
        )
        lines.append(
            "  transfers per stage: "
            + " ".join(str(r.transfers) for r in result.records[:16])
            + (" ..." if len(result.records) > 16 else "")
        )
        final_rate = result.records[-1].rejection_rate
        lines.append(f"  final-stage rejection rate: {final_rate:.1f}%")
    if result.extra:
        interesting = {
            k: v for k, v in result.extra.items() if isinstance(v, (int, float, str))
        }
        if interesting:
            lines.append("\nextra: " + ", ".join(f"{k}={v}" for k, v in interesting.items()))
    return "\n".join(lines)
