"""Paper-style table rendering for the § V studies and Fig. 3."""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.core.base import IterationRecord

__all__ = ["format_iteration_table", "format_comparison_table", "format_rows"]


def format_iteration_table(
    records: Sequence[IterationRecord], initial_imbalance: float, title: str = ""
) -> str:
    """Render the § V-B / § V-D per-iteration table.

    Columns: Iteration, Transfers, Rejected, Rejection rate (%), Imbalance.
    Iteration 0 is the initial state (dashes, like the paper).
    """
    header = f"{'Iter':>4}  {'Transfers':>10}  {'Rejected':>10}  {'Rej. rate (%)':>14}  {'Imbalance':>12}"
    lines = []
    if title:
        lines.append(title)
    lines.append(header)
    lines.append("-" * len(header))
    lines.append(f"{0:>4}  {'-':>10}  {'-':>10}  {'-':>14}  {initial_imbalance:>12.4g}")
    for r in records:
        lines.append(
            f"{r.iteration:>4}  {r.transfers:>10}  {r.rejections:>10}  "
            f"{r.rejection_rate:>14.2f}  {r.imbalance:>12.4g}"
        )
    return "\n".join(lines)


def format_comparison_table(
    studies: Mapping[str, "object"], title: str = "Imbalance per iteration"
) -> str:
    """Render the criterion-comparison table (one imbalance column per study).

    ``studies`` maps column label to a :class:`~repro.analysis.experiment.CriterionStudy`.
    """
    labels = list(studies)
    series = {label: studies[label].imbalances() for label in labels}  # type: ignore[attr-defined]
    n_rows = max(len(s) for s in series.values())
    header = f"{'Iter':>4}  " + "  ".join(f"{label:>16}" for label in labels)
    lines = [title, header, "-" * len(header)]
    for i in range(n_rows):
        cells = []
        for label in labels:
            vals = series[label]
            cells.append(f"{vals[i]:>16.4g}" if i < len(vals) else f"{'-':>16}")
        lines.append(f"{i:>4}  " + "  ".join(cells))
    return "\n".join(lines)


def format_rows(
    rows: Sequence[Mapping[str, object]], columns: Sequence[str], title: str = ""
) -> str:
    """Generic fixed-width table (used by the Fig. 2/3 benches)."""
    widths = {c: max(len(c), *(len(_fmt(r.get(c))) for r in rows)) for c in columns}
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(f"{c:>{widths[c]}}" for c in columns)
    lines.append(header)
    lines.append("-" * len(header))
    for r in rows:
        lines.append("  ".join(f"{_fmt(r.get(c)):>{widths[c]}}" for c in columns))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)
