"""Experiment harness — the role LBAF plays in the paper.

:mod:`repro.analysis.experiment` runs strategy/criterion studies and
returns per-iteration tables; :mod:`repro.analysis.tables` renders them
in the paper's format; :mod:`repro.analysis.series` collects the
per-timestep series behind Fig. 4.
"""

from repro.analysis.experiment import (
    CriterionStudy,
    criterion_comparison,
    criterion_study,
    strategy_comparison,
)
from repro.analysis.convergence import (
    ConvergenceSummary,
    analyze_convergence,
    iterations_to_reach,
)
from repro.analysis.io import (
    load_json,
    load_records,
    load_series,
    load_stats,
    save_json,
    save_records,
    save_series,
    save_stats,
    stats_to_csv,
)
from repro.analysis.plot import histogram, sparkline, strip_chart
from repro.analysis.report import lb_report
from repro.analysis.runner import SweepSpec, run_sweep
from repro.analysis.series import PhaseSeries
from repro.analysis.tables import (
    format_comparison_table,
    format_iteration_table,
    format_rows,
)

__all__ = [
    "ConvergenceSummary",
    "CriterionStudy",
    "PhaseSeries",
    "analyze_convergence",
    "iterations_to_reach",
    "criterion_comparison",
    "criterion_study",
    "format_comparison_table",
    "format_iteration_table",
    "format_rows",
    "histogram",
    "lb_report",
    "sparkline",
    "strip_chart",
    "load_json",
    "load_records",
    "load_series",
    "load_stats",
    "save_json",
    "save_records",
    "save_series",
    "save_stats",
    "stats_to_csv",
    "strategy_comparison",
    "SweepSpec",
    "run_sweep",
]
