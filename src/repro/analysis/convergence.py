"""Convergence analysis of iteration histories.

Quantifies what the § V tables show qualitatively: how fast an
imbalance sequence decays, where it stalls, and how many iterations a
target imbalance costs. Works on any imbalance sequence (e.g.
``CriterionStudy.imbalances()`` or ``[r.imbalance for r in result.records]``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.validation import check_positive

__all__ = ["ConvergenceSummary", "analyze_convergence", "iterations_to_reach"]


@dataclass(frozen=True)
class ConvergenceSummary:
    """Decay statistics of an imbalance sequence."""

    initial: float
    final: float
    #: Geometric-mean per-iteration decay factor over the active phase
    #: (1.0 = no progress; 0.1 = losing 90% of the excess per iteration).
    decay_rate: float
    #: First iteration index (1-based) after which relative progress per
    #: iteration stays below ``stall_tol`` — None if it never stalls.
    stalled_at: int | None
    #: Total relative improvement ``1 - final/initial``.
    improvement: float


def analyze_convergence(
    imbalances: np.ndarray | list[float], stall_tol: float = 0.01
) -> ConvergenceSummary:
    """Summarize an imbalance sequence ``[I_0, I_1, ..., I_n]``.

    The decay rate is measured over iterations that made progress; the
    stall point is the first iteration from which every later iteration
    improves by less than ``stall_tol`` relative.
    """
    series = np.asarray(imbalances, dtype=np.float64)
    if series.ndim != 1 or series.size < 2:
        raise ValueError("need a 1-D sequence with at least two entries")
    if (series < 0).any() or not np.isfinite(series).all():
        raise ValueError("imbalances must be finite and non-negative")
    initial, final = float(series[0]), float(series[-1])

    ratios = []
    for a, b in zip(series, series[1:]):
        if a > 0:
            ratios.append(min(b / a, 1.0))
    decay = float(np.exp(np.mean(np.log(np.maximum(ratios, 1e-12))))) if ratios else 1.0

    stalled_at: int | None = None
    for start in range(1, series.size):
        window = series[start - 1 :]
        rel = np.abs(np.diff(window)) / np.maximum(window[:-1], 1e-300)
        if (rel < stall_tol).all():
            stalled_at = start
            break
    improvement = 0.0 if initial == 0 else 1.0 - final / initial
    return ConvergenceSummary(
        initial=initial,
        final=final,
        decay_rate=decay,
        stalled_at=stalled_at,
        improvement=improvement,
    )


def iterations_to_reach(
    imbalances: np.ndarray | list[float], target: float
) -> int | None:
    """First iteration index at which the sequence is at or below
    ``target`` (0 = already there); None if it never gets there."""
    check_positive("target", target)
    series = np.asarray(imbalances, dtype=np.float64)
    hits = np.flatnonzero(series <= target)
    return int(hits[0]) if hits.size else None
