"""Terminal plotting: sparklines, strip charts and histograms.

Keeps the figure benches human-inspectable without a plotting stack:
Fig. 4's series render as unicode sparklines / ASCII strip charts in
the saved artifacts.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

import numpy as np

from repro.util.validation import check_positive

__all__ = ["sparkline", "strip_chart", "histogram"]

_BLOCKS = "▁▂▃▄▅▆▇█"  # ▁▂▃▄▅▆▇█


def _clean(values: Sequence[float]) -> np.ndarray:
    arr = np.asarray(values, dtype=np.float64)
    return arr[~np.isnan(arr)]


def sparkline(values: Sequence[float]) -> str:
    """One-line unicode sparkline; NaN entries render as spaces."""
    arr = np.asarray(values, dtype=np.float64)
    finite = _clean(arr)
    if finite.size == 0:
        return " " * arr.size
    lo, hi = float(finite.min()), float(finite.max())
    span = hi - lo
    chars = []
    for v in arr:
        if math.isnan(v):
            chars.append(" ")
        elif span == 0:
            chars.append(_BLOCKS[0])
        else:
            idx = int((v - lo) / span * (len(_BLOCKS) - 1))
            chars.append(_BLOCKS[idx])
    return "".join(chars)


def strip_chart(
    series: Mapping[str, Sequence[float]],
    width: int = 64,
    height: int = 12,
    logy: bool = False,
) -> str:
    """A multi-series ASCII chart; each series gets a symbol.

    Series are resampled to ``width`` columns; the y-axis is shared
    (optionally log-scaled) and annotated with min/max.
    """
    check_positive("width", width)
    check_positive("height", height)
    if not series:
        raise ValueError("need at least one series")
    symbols = "*o+x@%&#"
    resampled: dict[str, np.ndarray] = {}
    lo, hi = np.inf, -np.inf
    for name, values in series.items():
        arr = np.asarray(values, dtype=np.float64)
        finite = _clean(arr)
        if finite.size == 0:
            continue
        idx = np.linspace(0, arr.size - 1, width).astype(int)
        col = arr[idx]
        if logy:
            col = np.where(col > 0, col, np.nan)
            col = np.log10(col)
        resampled[name] = col
        finite_col = col[~np.isnan(col)]
        if finite_col.size:
            lo = min(lo, float(finite_col.min()))
            hi = max(hi, float(finite_col.max()))
    if not resampled or not np.isfinite(lo):
        return "(no data)"
    span = hi - lo or 1.0
    grid = [[" "] * width for _ in range(height)]
    for k, (name, col) in enumerate(resampled.items()):
        sym = symbols[k % len(symbols)]
        for x, v in enumerate(col):
            if math.isnan(v):
                continue
            y = int((v - lo) / span * (height - 1))
            grid[height - 1 - y][x] = sym
    top_label = f"{10**hi:.3g}" if logy else f"{hi:.3g}"
    bot_label = f"{10**lo:.3g}" if logy else f"{lo:.3g}"
    lines = []
    for row_index, row in enumerate(grid):
        label = top_label if row_index == 0 else (bot_label if row_index == height - 1 else "")
        lines.append(f"{label:>9} |{''.join(row)}|")
    legend = "  ".join(
        f"{symbols[k % len(symbols)]}={name}" for k, name in enumerate(resampled)
    )
    lines.append(" " * 11 + legend + ("  (log y)" if logy else ""))
    return "\n".join(lines)


def histogram(values: Sequence[float], bins: int = 10, width: int = 40) -> str:
    """A horizontal ASCII histogram with counts."""
    check_positive("bins", bins)
    check_positive("width", width)
    arr = _clean(values)
    if arr.size == 0:
        return "(no data)"
    counts, edges = np.histogram(arr, bins=bins)
    peak = counts.max() or 1
    lines = []
    for i, count in enumerate(counts):
        bar = "#" * int(round(count / peak * width))
        lines.append(f"[{edges[i]:>9.3g}, {edges[i+1]:>9.3g}) {bar} {count}")
    return "\n".join(lines)
