"""Per-phase time series collection (the data behind Fig. 4)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

__all__ = ["PhaseSeries"]


@dataclass
class PhaseSeries:
    """Append-only record of per-phase scalar metrics.

    Each call to :meth:`record` appends one phase's values; any metric
    omitted in a phase is stored as ``nan`` so series stay aligned.
    """

    metrics: dict[str, list[float]] = field(default_factory=dict)
    n_phases: int = 0

    def record(self, **values: float) -> None:
        """Append one phase with the given metric values."""
        for key in self.metrics:
            self.metrics[key].append(float(values.pop(key)) if key in values else np.nan)
        for key, value in values.items():
            # New metric: backfill earlier phases with nan.
            self.metrics[key] = [np.nan] * self.n_phases + [float(value)]
        self.n_phases += 1

    def series(self, key: str) -> np.ndarray:
        """One metric as an array of length ``n_phases``."""
        return np.asarray(self.metrics[key], dtype=np.float64)

    def keys(self) -> list[str]:
        """Metric names recorded so far."""
        return list(self.metrics)

    def window(self, key: str, start: int, stop: int) -> np.ndarray:
        """A phase-range slice of one metric."""
        return self.series(key)[start:stop]

    def summary(self) -> dict[str, dict[str, float]]:
        """Mean/min/max per metric, ignoring nan entries."""
        out: dict[str, dict[str, float]] = {}
        for key in self.metrics:
            arr = self.series(key)
            valid = arr[~np.isnan(arr)]
            if valid.size == 0:
                out[key] = {"mean": np.nan, "min": np.nan, "max": np.nan, "sum": 0.0}
            else:
                out[key] = {
                    "mean": float(valid.mean()),
                    "min": float(valid.min()),
                    "max": float(valid.max()),
                    "sum": float(valid.sum()),
                }
        return out

    def to_rows(self) -> list[dict[str, Any]]:
        """One dict per phase (for table rendering or CSV export)."""
        rows = []
        for i in range(self.n_phases):
            row: dict[str, Any] = {"phase": i}
            for key in self.metrics:
                row[key] = self.metrics[key][i]
            rows.append(row)
        return rows
