"""Persistence of experiment results (JSON / CSV).

Lets the benchmark harness and examples write machine-readable results
alongside the human-readable tables: per-phase series, iteration
records, EMPIRE run summaries and telemetry registries round-trip
losslessly (NaN entries are encoded as ``null``).
"""

from __future__ import annotations

import csv
import json
import math
from pathlib import Path
from typing import Any

import numpy as np

from repro.analysis.series import PhaseSeries
from repro.core.base import IterationRecord
from repro.obs import StatsRegistry

__all__ = [
    "save_series",
    "load_series",
    "save_records",
    "load_records",
    "save_stats",
    "load_stats",
    "stats_to_csv",
    "save_json",
    "load_json",
]


def _encode_value(value: float) -> float | None:
    if value is None or (isinstance(value, float) and math.isnan(value)):
        return None
    return float(value)


def save_series(series: PhaseSeries, path: str | Path) -> None:
    """Write a :class:`PhaseSeries` to JSON."""
    payload = {
        "n_phases": series.n_phases,
        "metrics": {
            key: [_encode_value(v) for v in values]
            for key, values in series.metrics.items()
        },
    }
    save_json(payload, path)


def load_series(path: str | Path) -> PhaseSeries:
    """Read a :class:`PhaseSeries` written by :func:`save_series`."""
    payload = load_json(path)
    series = PhaseSeries()
    series.n_phases = int(payload["n_phases"])
    series.metrics = {
        key: [np.nan if v is None else float(v) for v in values]
        for key, values in payload["metrics"].items()
    }
    for key, values in series.metrics.items():
        if len(values) != series.n_phases:
            raise ValueError(f"metric {key!r} has {len(values)} entries, "
                             f"expected {series.n_phases}")
    return series


def save_records(records: list[IterationRecord], path: str | Path) -> None:
    """Write iteration records (the § V table rows) to JSON."""
    payload = [
        {
            "trial": r.trial,
            "iteration": r.iteration,
            "transfers": r.transfers,
            "rejections": r.rejections,
            "imbalance": r.imbalance,
            "gossip_messages": r.gossip_messages,
            "gossip_bytes": r.gossip_bytes,
        }
        for r in records
    ]
    save_json(payload, path)


def load_records(path: str | Path) -> list[IterationRecord]:
    """Read iteration records written by :func:`save_records`."""
    payload = load_json(path)
    return [IterationRecord(**row) for row in payload]


def save_stats(registry: StatsRegistry, path: str | Path) -> None:
    """Write a telemetry registry (counters, gauges, series, timers,
    events) to JSON — the export format of ``python -m repro stats``."""
    save_json(registry.to_dict(), path)


def load_stats(path: str | Path) -> StatsRegistry:
    """Read a registry written by :func:`save_stats`."""
    return StatsRegistry.from_dict(load_json(path))


def stats_to_csv(registry: StatsRegistry, path: str | Path) -> None:
    """Write a registry as one flat CSV.

    Rows are ``kind,name,index,field,value``: scalars (counters, gauges,
    timers) leave ``index``/``field`` empty; each series row emits one
    line per field with its row index; events use their kind as ``name``
    and their record index.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["kind", "name", "index", "field", "value"])
        for kind, mapping in (
            ("counter", registry.counters),
            ("gauge", registry.gauges),
            ("timer", registry.timers),
        ):
            for name in sorted(mapping):
                writer.writerow([kind, name, "", "", mapping[name]])
        for name in sorted(registry.series):
            for index, row in enumerate(registry.series[name]):
                for field, value in row.items():
                    writer.writerow(["series", name, index, field, value])
        for index, event in enumerate(registry.events):
            if event.time is not None:
                writer.writerow(["event", event.kind, index, "time", event.time])
            if event.rank is not None:
                writer.writerow(["event", event.kind, index, "rank", event.rank])
            for field, value in event.fields.items():
                writer.writerow(["event", event.kind, index, field, value])


def save_json(payload: Any, path: str | Path) -> None:
    """Write any JSON-serializable payload, creating parent directories."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def load_json(path: str | Path) -> Any:
    """Read a JSON payload."""
    return json.loads(Path(path).read_text())
