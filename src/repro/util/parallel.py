"""Deterministic parallelism helpers: RNG streams and the trial executor.

TemperedLB's ``n_trials`` are embarrassingly parallel (Alg. 3: each
trial restarts from the same assignment), but sharing one RNG stream
across workers would make results depend on scheduling. The fix is the
standard spawned-streams pattern: derive one child generator per trial
from the parent generator *before* any work starts. The children are a
pure function of the parent's state, so a fixed seed produces the same
per-trial streams — and therefore bit-identical results — whether the
trials then run on one worker or many.

:class:`TrialExecutor` is the execution layer on top of that pattern.
It maps a pure function over per-trial payloads under one of three
backends:

``serial``
    A plain loop in the calling thread. Zero overhead; the baseline.
``thread``
    A :class:`~concurrent.futures.ThreadPoolExecutor`. The trial loop
    is GIL-bound Python/NumPy, so threads only help when the work
    releases the GIL in large kernels — at the paper's § V scale they
    measured *slower* than serial (0.93x). Kept for GIL-releasing
    workloads and as a low-overhead fallback where processes are
    unavailable.
``process``
    A :class:`~concurrent.futures.ProcessPoolExecutor`. Sidesteps the
    GIL entirely: read-only shared state is shipped to each worker
    **once** via the pool initializer (inherited copy-on-write under
    the ``fork`` start method, pickled once per worker under
    ``spawn``), only the small per-trial payloads and outcomes cross
    the IPC boundary, and results return in submission order. This is
    the backend that actually scales with cores.

``auto`` resolves to ``serial`` when there is nothing to run
concurrently — one worker, one payload, or one usable core (a pool on
a single core can only add fork/IPC and time-slicing overhead; the
threaded executor this layer replaced measured 0.93x, and an
oversubscribed process pool measures worse) — else ``process`` where a
process pool can be built cheaply (POSIX ``fork``), else ``thread``.
Every backend calls the same function on the same payloads, so the
choice affects wall time only — never results.
"""

from __future__ import annotations

import multiprocessing
import os
import warnings
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Callable, Sequence

import numpy as np

__all__ = [
    "EXECUTOR_AUTO",
    "EXECUTOR_PROCESS",
    "EXECUTOR_SERIAL",
    "EXECUTOR_THREAD",
    "EXECUTORS",
    "TrialExecutor",
    "effective_cpu_count",
    "resolve_backend",
    "spawn_streams",
]

EXECUTOR_SERIAL = "serial"
EXECUTOR_THREAD = "thread"
EXECUTOR_PROCESS = "process"
EXECUTOR_AUTO = "auto"
#: Valid ``executor=`` values (``auto`` resolves before execution).
EXECUTORS = (EXECUTOR_SERIAL, EXECUTOR_THREAD, EXECUTOR_PROCESS, EXECUTOR_AUTO)


def spawn_streams(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """``n`` independent child generators spawned from ``rng``.

    Spawning advances the parent's spawn key but never consumes from its
    random stream. Falls back to spawning the underlying seed sequence
    on NumPy versions without ``Generator.spawn``.
    """
    if n <= 0:
        return []
    try:
        return list(rng.spawn(n))
    except AttributeError:  # pragma: no cover - numpy < 1.25
        children = rng.bit_generator.seed_seq.spawn(n)  # type: ignore[attr-defined]
        return [np.random.default_rng(child) for child in children]


def effective_cpu_count() -> int:
    """CPUs actually available to this process (affinity-aware).

    ``os.cpu_count()`` reports the machine; a container or cgroup can
    pin the process to fewer cores, and parallel speedup is bounded by
    *that* number. Perf floors and utilization reports key off this.
    """
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _fork_available() -> bool:
    """Whether the cheap copy-on-write process start method exists."""
    try:
        return "fork" in multiprocessing.get_all_start_methods()
    except Exception:  # pragma: no cover - broken multiprocessing build
        return False


def resolve_backend(
    executor: str | None, n_workers: int, n_payloads: int | None = None
) -> str:
    """Resolve an ``executor=`` knob to a concrete backend name.

    ``None`` and ``"auto"`` pick ``serial`` when ``n_workers``, the
    payload count, or :func:`effective_cpu_count` leaves nothing to
    overlap, ``process`` where fork is available, and ``thread``
    otherwise. Explicit backend names pass through unchanged (still
    degrading to ``serial`` when only one payload or worker is in
    play, where a pool could only add overhead — results are identical
    either way).
    """
    if executor is not None and executor not in EXECUTORS:
        raise ValueError(
            f"executor must be one of {EXECUTORS} or None, got {executor!r}"
        )
    effective = min(n_workers, n_payloads) if n_payloads is not None else n_workers
    if effective <= 1:
        return EXECUTOR_SERIAL
    if executor is None or executor == EXECUTOR_AUTO:
        if effective_cpu_count() < 2:
            # A pool of GIL-bound or time-sliced workers on one core is
            # strictly overhead; the serial loop is the fast path.
            return EXECUTOR_SERIAL
        return EXECUTOR_PROCESS if _fork_available() else EXECUTOR_THREAD
    return executor


# -- process-backend plumbing ----------------------------------------------
#
# The shared state travels through the pool initializer, so it crosses
# into each worker exactly once (zero-copy under fork); per-trial
# submissions then carry only (fn, payload). Both the mapped function
# and the payloads must be picklable for the spawn start method.

_WORKER_SHARED: Any = None


def _init_worker(shared: Any) -> None:
    """Pool initializer: stash the read-only shared state per worker."""
    global _WORKER_SHARED
    _WORKER_SHARED = shared
    # Under fork the worker inherits a COW copy of the parent's
    # warn-once set; without this reset a kernel degradation that the
    # parent already warned about would be silent in every worker.
    from repro.core._kernels import reset_numba_warnings

    reset_numba_warnings()


def _invoke_shared(fn: Callable[[Any, Any], Any], payload: Any) -> Any:
    """Per-task trampoline run inside a worker process."""
    return fn(_WORKER_SHARED, payload)


class TrialExecutor:
    """Map a pure ``fn(shared, payload)`` over payloads, preserving order.

    Parameters
    ----------
    executor:
        Backend request (``None``/``"auto"``/``"serial"``/``"thread"``/
        ``"process"``); resolved via :func:`resolve_backend`.
    n_workers:
        Worker cap; the pool never exceeds the payload count.

    The function must be deterministic given ``(shared, payload)`` and
    must not mutate ``shared`` — that is what makes every backend
    return bit-identical results. For the process backend ``fn`` must
    be a module-level (picklable) function and payloads/outcomes must
    pickle; ``shared`` crosses the process boundary once per worker.
    """

    def __init__(self, executor: str | None = None, n_workers: int = 1) -> None:
        if executor is not None and executor not in EXECUTORS:
            raise ValueError(
                f"executor must be one of {EXECUTORS} or None, got {executor!r}"
            )
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        self.requested = executor
        self.n_workers = int(n_workers)

    def backend_for(self, n_payloads: int) -> str:
        """The concrete backend a ``map`` over ``n_payloads`` would use."""
        return resolve_backend(self.requested, self.n_workers, n_payloads)

    def map(
        self,
        fn: Callable[[Any, Any], Any],
        payloads: Sequence[Any],
        shared: Any = None,
    ) -> list[Any]:
        """``[fn(shared, p) for p in payloads]``, possibly in parallel.

        Results always come back in payload order regardless of
        completion order, so callers can merge deterministically.
        """
        payloads = list(payloads)
        backend = self.backend_for(len(payloads))
        workers = min(self.n_workers, len(payloads))
        if backend == EXECUTOR_SERIAL:
            return [fn(shared, payload) for payload in payloads]
        if backend == EXECUTOR_THREAD:
            with ThreadPoolExecutor(max_workers=workers) as pool:
                futures = [pool.submit(fn, shared, p) for p in payloads]
                return [f.result() for f in futures]
        return self._map_process(fn, payloads, shared, workers)

    def _map_process(
        self,
        fn: Callable[[Any, Any], Any],
        payloads: list[Any],
        shared: Any,
        workers: int,
    ) -> list[Any]:
        context = (
            multiprocessing.get_context("fork")
            if _fork_available()
            else multiprocessing.get_context()
        )
        try:
            pool = ProcessPoolExecutor(
                max_workers=workers,
                mp_context=context,
                initializer=_init_worker,
                initargs=(shared,),
            )
        except (OSError, PermissionError) as exc:  # pragma: no cover - sandboxes
            # Environments without working semaphores/pipes cannot host
            # a process pool; degrade to threads. Results are identical
            # by construction, only the wall time differs.
            warnings.warn(
                f"process executor unavailable ({exc}); falling back to threads",
                RuntimeWarning,
                stacklevel=3,
            )
            with ThreadPoolExecutor(max_workers=workers) as tpool:
                futures = [tpool.submit(fn, shared, p) for p in payloads]
                return [f.result() for f in futures]
        with pool:
            futures = [pool.submit(_invoke_shared, fn, p) for p in payloads]
            return [f.result() for f in futures]
