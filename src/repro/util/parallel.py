"""Deterministic parallelism helpers.

TemperedLB's ``n_trials`` are embarrassingly parallel (Alg. 3: each
trial restarts from the same assignment), but sharing one RNG stream
across workers would make results depend on scheduling. The fix is the
standard spawned-streams pattern: derive one child generator per trial
from the parent generator *before* any work starts. The children are a
pure function of the parent's state, so a fixed seed produces the same
per-trial streams — and therefore bit-identical results — whether the
trials then run on one worker or many.
"""

from __future__ import annotations

import numpy as np

__all__ = ["spawn_streams"]


def spawn_streams(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """``n`` independent child generators spawned from ``rng``.

    Spawning advances the parent's spawn key but never consumes from its
    random stream. Falls back to spawning the underlying seed sequence
    on NumPy versions without ``Generator.spawn``.
    """
    if n <= 0:
        return []
    try:
        return list(rng.spawn(n))
    except AttributeError:  # pragma: no cover - numpy < 1.25
        children = rng.bit_generator.seed_seq.spawn(n)  # type: ignore[attr-defined]
        return [np.random.default_rng(child) for child in children]
