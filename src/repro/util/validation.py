"""Argument-validation helpers used across the package.

Every public entry point validates its scalar parameters with these
helpers so misuse fails fast with a uniform error message instead of
surfacing as a numpy broadcasting error deep inside a strategy.
"""

from __future__ import annotations

from typing import Any, Collection

import numpy as np

__all__ = ["check_positive", "check_nonnegative", "check_in", "coerce_rng"]


def check_positive(name: str, value: float) -> None:
    """Raise ``ValueError`` unless ``value`` is a finite number > 0."""
    if not np.isfinite(value) or value <= 0:
        raise ValueError(f"{name} must be a finite positive number, got {value!r}")


def check_nonnegative(name: str, value: float) -> None:
    """Raise ``ValueError`` unless ``value`` is a finite number >= 0."""
    if not np.isfinite(value) or value < 0:
        raise ValueError(f"{name} must be a finite non-negative number, got {value!r}")


def check_in(name: str, value: Any, allowed: Collection[Any]) -> None:
    """Raise ``ValueError`` unless ``value`` is one of ``allowed``."""
    if value not in allowed:
        raise ValueError(f"{name} must be one of {sorted(map(str, allowed))}, got {value!r}")


def coerce_rng(rng: np.random.Generator | int | None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` from a generator, seed, or None."""
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)
