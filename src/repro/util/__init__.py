"""Small shared utilities (argument validation, RNG coercion)."""

from repro.util.validation import (
    check_in,
    check_nonnegative,
    check_positive,
    coerce_rng,
)

__all__ = ["check_in", "check_nonnegative", "check_positive", "coerce_rng"]
