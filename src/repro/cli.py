"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``analyze``
    Run the § V criterion study on a synthetic scenario and print the
    per-iteration table (optionally both criteria side by side).
``empire``
    Run one EMPIRE surrogate configuration and print the Fig. 3-style
    breakdown plus speedups against an SPMD run of the same scenario.
``protocols``
    Measure event-level protocol costs (allreduce, gossip, migration)
    at a given rank count.
``stats``
    Run an instrumented balancer over a time-varying workload and
    summarize the telemetry registry (counters, per-iteration series),
    or summarize a previously exported stats JSON.
``bench``
    Time the inform/transfer/refinement/empire hot paths and write
    ``BENCH_perf.json`` (the repo's perf trajectory; see
    ``docs/performance.md``).
``version``
    Print the package version.

All commands accept ``--json PATH`` to additionally write
machine-readable results.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

import numpy as np

__all__ = ["main", "build_parser"]


def _add_executor_flags(
    p: argparse.ArgumentParser, executor_default: str | None = None
) -> None:
    """``--workers`` / ``--executor``: trial-parallelism knobs.

    Exposed on every subcommand that runs TemperedLB refinement trials
    (and on ``bench``, where they parameterize the refinement case).
    The backend never changes results — per-trial RNG streams make the
    output bit-identical for any worker count — only wall time.
    """
    p.add_argument(
        "--workers",
        type=int,
        default=None,
        help="parallel refinement-trial workers (default: serial trial loop)",
    )
    p.add_argument(
        "--executor",
        choices=["auto", "serial", "thread", "process"],
        default=executor_default,
        help=(
            "trial executor backend (default: auto — process where a "
            "second core and fork exist, else serial)"
        ),
    )


def _add_fault_flags(p: argparse.ArgumentParser, churn: bool = False) -> None:
    """``--loss-rate`` / ``--fault-seed`` (and optionally ``--churn``):
    fault-injection knobs. Loss of 0 (the default) is bit-identical to
    the build without the fault layer."""
    p.add_argument(
        "--loss-rate",
        type=float,
        default=0.0,
        help="per-message gossip drop probability (default 0 = lossless)",
    )
    p.add_argument(
        "--fault-seed",
        type=int,
        default=0,
        help="seed for the fault RNG streams (independent of --seed)",
    )
    if churn:
        p.add_argument(
            "--churn",
            type=str,
            default=None,
            help="membership churn spec: action:rank@time[,...] "
            "(e.g. crash:3@2e-3,restart:3@4e-3)",
        )


def _parse_fault_config(args: argparse.Namespace):
    """A FaultConfig from CLI flags, or None when every knob is off."""
    from repro.sim.faults import FaultConfig, parse_churn

    churn = parse_churn(args.churn) if getattr(args, "churn", None) else ()
    if args.loss_rate <= 0.0 and not churn:
        return None
    return FaultConfig(loss_rate=args.loss_rate, seed=args.fault_seed, churn=churn)


def build_parser() -> argparse.ArgumentParser:
    """The argument parser for the ``repro`` CLI."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="TemperedLB reproduction (CLUSTER 2021) command-line tools",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("analyze", help="§ V criterion iteration study")
    p.add_argument("--criterion", choices=["original", "relaxed", "both"], default="both")
    p.add_argument("--tasks", type=int, default=2500)
    p.add_argument("--loaded-ranks", type=int, default=8)
    p.add_argument("--ranks", type=int, default=512)
    p.add_argument("--iters", type=int, default=10)
    p.add_argument("--seed", type=int, default=3)
    p.add_argument("--json", type=str, default=None)

    p = sub.add_parser("empire", help="EMPIRE surrogate run")
    p.add_argument(
        "--config",
        dest="configuration",
        default="tempered",
        help="spmd | amt | grapevine | greedy | hier | tempered | rcb",
    )
    p.add_argument("--ranks", type=int, default=100)
    p.add_argument("--steps", type=int, default=200)
    p.add_argument("--lb-period", type=int, default=50)
    p.add_argument("--particles", type=int, default=10_000)
    p.add_argument("--trials", type=int, default=1)
    p.add_argument("--iters", type=int, default=6)
    _add_executor_flags(p)
    _add_fault_flags(p)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--json", type=str, default=None)

    p = sub.add_parser("protocols", help="event-level protocol cost measurement")
    p.add_argument("--ranks", type=int, default=64)
    p.add_argument("--fanout", type=int, default=4)
    p.add_argument("--rounds", type=int, default=6)
    p.add_argument(
        "--knowledge",
        choices=["auto", "packed", "sparse"],
        default=None,
        help="event-level knowledge backend (default: packed bitmap; "
        "'auto' switches to sparse at the shared reference-driver "
        "crossover of 32768 ranks — resolve_auto_threshold('python'))",
    )
    _add_fault_flags(p, churn=True)
    p.add_argument("--json", type=str, default=None)

    p = sub.add_parser("sweep", help="run a declarative sweep from a JSON spec file")
    p.add_argument("spec", type=str, help="path to a SweepSpec JSON file")
    p.add_argument("--json", type=str, default=None)

    p = sub.add_parser("trace", help="trace one LB episode and print a Gantt chart")
    p.add_argument("--ranks", type=int, default=16)
    p.add_argument("--tasks-per-rank", type=int, default=6)
    p.add_argument("--width", type=int, default=64)

    p = sub.add_parser("amr", help="run the AMR mini-app mapping study")
    p.add_argument("--ranks", type=int, default=16)
    p.add_argument("--phases", type=int, default=24)
    p.add_argument("--mapping", choices=["sfc", "balancer"], default="balancer")
    p.add_argument("--json", type=str, default=None)

    p = sub.add_parser("stats", help="instrumented run telemetry summary/export")
    p.add_argument(
        "input",
        nargs="?",
        default=None,
        help="existing stats JSON to summarize (omit to run a fresh episode)",
    )
    p.add_argument("--balancer", choices=["tempered", "grapevine"], default="tempered")
    p.add_argument("--tasks", type=int, default=2000)
    p.add_argument("--ranks", type=int, default=64)
    p.add_argument("--phases", type=int, default=4)
    p.add_argument("--trials", type=int, default=2)
    p.add_argument("--iters", type=int, default=4)
    _add_executor_flags(p)
    _add_fault_flags(p)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--json", type=str, default=None)
    p.add_argument("--csv", type=str, default=None)

    p = sub.add_parser(
        "bench", help="benchmark suites -> BENCH_perf.json / BENCH_faults.json"
    )
    p.add_argument(
        "suite",
        nargs="?",
        choices=["perf", "faults"],
        default="perf",
        help="perf = hot-path timings (default); faults = imbalance "
        "degradation vs gossip loss rate",
    )
    p.add_argument(
        "--quick", action="store_true", help="CI-smoke scale instead of the § V scale"
    )
    p.add_argument("--repeats", type=int, default=3, help="best-of-N timing repeats")
    p.add_argument(
        "--scale",
        choices=["4k", "32k", "131k", "all"],
        default=None,
        help="also run the rank-count ladder at this rung (or every rung); "
        "each rung runs in a fresh subprocess and records its peak RSS "
        "(perf suite only)",
    )
    p.add_argument(
        "--profile",
        action="store_true",
        help="run each headline case once under cProfile and write the "
        "top-20 cumulative hotspots per case to benchmarks/results/ "
        "(perf suite only)",
    )
    _add_executor_flags(p, executor_default="auto")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--fault-seed", type=int, default=0)
    p.add_argument(
        "--json",
        type=str,
        default=None,
        help="output path (default BENCH_<suite>.json; '-' to skip writing)",
    )

    p = sub.add_parser(
        "net", help="real-socket runtime: run and analyze loopback episodes"
    )
    netsub = p.add_subparsers(dest="net_command", required=True)
    pr = netsub.add_parser(
        "run", help="run one LB episode over real loopback TCP sockets"
    )
    pr.add_argument("--ranks", type=int, default=64)
    pr.add_argument("--tasks", type=int, default=None,
                    help="task count (default 32 per rank)")
    pr.add_argument("--loaded-ranks", type=int, default=None,
                    help="initially loaded ranks (default ranks/8)")
    pr.add_argument("--seed", type=int, default=0)
    pr.add_argument("--fanout", type=int, default=6)
    pr.add_argument("--rounds", type=int, default=10)
    pr.add_argument("--iters", type=int, default=1,
                    help="inform+transfer iterations per episode")
    pr.add_argument("--workers", type=int, default=1,
                    help="in-process worker shards hosting the rank nodes")
    pr.add_argument("--processes", type=int, default=0,
                    help="shard ranks across N real worker OS processes "
                    "(0 = in-process coroutine workers; sockets are real "
                    "either way)")
    pr.add_argument("--out", type=str, default="net_episode",
                    help="artifact directory (result.json + logs/)")
    pr.add_argument("--no-logs", action="store_true",
                    help="skip per-node JSONL wire logs")
    pr.add_argument("--timeout", type=float, default=300.0,
                    help="wall-clock budget for the episode (seconds)")
    pr.add_argument("--check", action="store_true",
                    help="also run the simulator reference and fail unless "
                    "the results are bit-identical (the CI net-smoke gate)")
    pa = netsub.add_parser(
        "analyze", help="summarize a net episode directory (result + wire logs)"
    )
    pa.add_argument("dir", type=str, help="artifact directory from 'net run'")
    pa.add_argument("--json", type=str, default=None)

    sub.add_parser("version", help="print the package version")
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    handler = {
        "analyze": _cmd_analyze,
        "amr": _cmd_amr,
        "bench": _cmd_bench,
        "empire": _cmd_empire,
        "net": _cmd_net,
        "protocols": _cmd_protocols,
        "stats": _cmd_stats,
        "sweep": _cmd_sweep,
        "trace": _cmd_trace,
        "version": _cmd_version,
    }[args.command]
    return handler(args)


def _cmd_version(args: argparse.Namespace) -> int:
    import repro

    print(repro.__version__)
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.analysis import (
        criterion_comparison,
        criterion_study,
        format_comparison_table,
        format_iteration_table,
    )
    from repro.analysis.io import save_json
    from repro.workloads import paper_analysis_scenario

    dist = paper_analysis_scenario(
        n_tasks=args.tasks,
        n_loaded_ranks=args.loaded_ranks,
        n_ranks=args.ranks,
        seed=args.seed,
    )
    print(
        f"scenario: {args.tasks} tasks on {args.loaded_ranks} of "
        f"{args.ranks} ranks, I0 = {dist.imbalance():.2f}\n"
    )
    if args.criterion == "both":
        studies = criterion_comparison(dist, n_iters=args.iters, seed=args.seed)
        print(
            format_comparison_table(
                {"Criterion 35": studies["original"], "Criterion 37": studies["relaxed"]}
            )
        )
        payload = {
            name: [r.imbalance for r in study.records]
            for name, study in studies.items()
        }
    else:
        study = criterion_study(dist, args.criterion, n_iters=args.iters, rng=args.seed)
        print(
            format_iteration_table(
                study.records, study.initial_imbalance, title=f"criterion: {args.criterion}"
            )
        )
        payload = {args.criterion: [r.imbalance for r in study.records]}
    if args.json:
        save_json(payload, args.json)
    return 0


def _cmd_empire(args: argparse.Namespace) -> int:
    from repro.analysis import format_rows
    from repro.analysis.io import save_json
    from repro.empire import EmpireConfig, run_empire

    base = EmpireConfig(
        configuration=args.configuration,
        n_ranks=args.ranks,
        n_steps=args.steps,
        lb_period=args.lb_period,
        initial_particles=args.particles,
        injection_per_step=max(args.particles // 100, 1),
        n_trials=args.trials,
        n_iters=args.iters,
        n_workers=args.workers,
        executor=args.executor,
        loss_rate=args.loss_rate,
        fault_seed=args.fault_seed,
        seed=args.seed,
    )
    run = run_empire(base)
    rows = [run.breakdown()]
    if args.configuration != "spmd":
        spmd = run_empire(base.with_configuration("spmd"))
        rows.append(spmd.breakdown())
        print(
            f"particle speedup vs SPMD: {spmd.t_particle / run.t_particle:.2f}x, "
            f"total: {spmd.t_total / run.t_total:.2f}x\n"
        )
    print(format_rows(rows, ["Type", "t_n", "t_p", "t_lb", "t_total"]))
    if args.json:
        save_json(rows, args.json)
    return 0


def _cmd_protocols(args: argparse.Namespace) -> int:
    from repro.analysis import format_rows
    from repro.analysis.io import save_json
    from repro.runtime.distributed_gossip import DistributedGossip
    from repro.sim.faults import FaultyLink, HeartbeatFailureDetector
    from repro.sim.process import System
    from repro.sim.reductions import allreduce

    n = args.ranks
    fault_cfg = _parse_fault_config(args)
    sys_ = System(n)
    times: dict[int, float] = {}
    allreduce(
        sys_,
        [1.0] * n,
        combine=lambda a, b: a + b,
        on_complete=lambda rank, v: times.__setitem__(rank, sys_.engine.now),
    )
    sys_.run()

    sys2 = System(n)
    link = detector = None
    if fault_cfg is not None:
        link = FaultyLink(sys2, fault_cfg)
        detector = HeartbeatFailureDetector(sys2, fault_cfg)
    loads = np.ones(n)
    loads[: max(2, n // 16)] = 20.0
    gossip = DistributedGossip(
        sys2,
        loads,
        fanout=args.fanout,
        rounds=args.rounds,
        detector=detector,
        knowledge=args.knowledge,
    ).run()

    rows = [
        {
            "P": n,
            "allreduce (us)": max(times.values()) * 1e6,
            "gossip (us)": gossip.elapsed * 1e6,
            "gossip msgs": gossip.n_messages,
            "coverage": gossip.knowledge.coverage(gossip.underloaded),
        }
    ]
    if link is not None:
        rows[0]["drops"] = link.drops
        rows[0]["crashes"] = link.crashes
        rows[0]["suspected"] = len(detector.suspected) if detector is not None else 0
    print(format_rows(rows, list(rows[0].keys())))
    if args.json:
        save_json(rows, args.json)
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.analysis import format_rows
    from repro.analysis.io import load_json, save_json
    from repro.analysis.runner import SweepSpec, run_sweep

    spec = SweepSpec.from_dict(load_json(args.spec))
    rows = run_sweep(spec)
    printable = [{k: v for k, v in row.items() if k != "raw"} for row in rows]
    print(
        format_rows(
            printable,
            ["workload", "strategy", "initial I", "final I", "final I std", "migrations"],
            title=f"sweep over {len(spec.seeds)} seeds",
        )
    )
    if args.json:
        save_json(rows, args.json)
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.core.tempered import TemperedConfig
    from repro.runtime import AMTRuntime, LBManager
    from repro.sim.trace import Tracer

    n_ranks = args.ranks
    rng = np.random.default_rng(0)
    n_tasks = n_ranks * args.tasks_per_rank
    task_loads = rng.gamma(4.0, 0.002, size=n_tasks)
    assignment = np.zeros(n_tasks, dtype=np.int64)
    runtime = AMTRuntime(n_ranks, task_loads, assignment, task_overhead=1e-5)
    tracer = Tracer(runtime.system)
    phase = runtime.execute_phase()
    episode = LBManager(
        runtime, TemperedConfig(n_trials=1, n_iters=3, fanout=4, rounds=4), seed=1
    ).run_episode()
    runtime.execute_phase()

    print(f"phase 0 imbalanced (I={phase.imbalance():.1f}), LB episode "
          f"({episode.n_migrations} migrations, t_lb={episode.t_lb*1e3:.2f} ms), "
          f"phase 1 balanced (I={episode.final_imbalance:.2f})\n")
    print("per-rank CPU activity (# = busy):")
    print(tracer.gantt(width=args.width))
    print("\nmessages by tag (application traffic only):")
    for tag, count in sorted(tracer.messages_by_tag().items()):
        print(f"  {tag:<20} {count:>6}")
    util = tracer.utilization()
    print(f"\nmean utilization: {util.mean():.2f} "
          f"(min {util.min():.2f}, max {util.max():.2f})")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    from repro.analysis.io import load_stats, save_stats, stats_to_csv
    from repro.obs import StatsRegistry

    if args.input is not None:
        registry = load_stats(args.input)
        print(registry.summary())
        return 0

    from repro.core.distribution import Distribution
    from repro.core.grapevine import GrapevineLB
    from repro.core.tempered import TemperedLB
    from repro.workloads import MovingHotspot

    registry = StatsRegistry()
    if args.balancer == "grapevine":
        lb = GrapevineLB(n_iters=args.iters)
    else:
        lb = TemperedLB(
            n_trials=args.trials,
            n_iters=args.iters,
            n_workers=args.workers,
            executor=args.executor,
            faults=_parse_fault_config(args),
        )
    lb.instrument(registry)

    # A drifting hotspot gives each phase a different imbalance profile,
    # so the per-iteration series shows time-varying behavior.
    hotspot = MovingHotspot(args.tasks, speed=0.02)
    rng = np.random.default_rng(args.seed)
    assignment = rng.integers(0, max(args.ranks // 8, 1), size=args.tasks)
    for phase in range(args.phases):
        dist = Distribution(hotspot.loads(phase), assignment, args.ranks)
        result = lb.rebalance(dist, rng=rng)
        assignment = result.assignment
        print(
            f"phase {phase}: I {result.initial_imbalance:8.3f} -> "
            f"{result.final_imbalance:6.3f}  migrations {result.n_migrations}"
        )
    print()
    print(registry.summary())
    if args.json:
        save_stats(registry, args.json)
    if args.csv:
        stats_to_csv(registry, args.csv)
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.analysis.io import save_json

    if args.suite == "faults":
        from repro.perf import format_fault_report, run_fault_bench

        payload = run_fault_bench(
            quick=args.quick, seed=args.seed, fault_seed=args.fault_seed
        )
        print(format_fault_report(payload))
        out = args.json if args.json is not None else "BENCH_faults.json"
    else:
        from repro.perf import format_report, run_benchmarks

        payload = run_benchmarks(
            quick=args.quick,
            repeats=args.repeats,
            seed=args.seed,
            workers=args.workers,
            executor=args.executor or "auto",
            scale=args.scale,
            profile=args.profile,
        )
        print(format_report(payload))
        # Profile listings go to files, not the committed JSON: they are
        # host-specific flat text, useful next to the run that made them.
        profiles = payload.pop("profiles", {})
        for path in write_profiles(profiles):
            print(f"[profile: {path}]")
        out = args.json if args.json is not None else "BENCH_perf.json"
    if out and out != "-":
        save_json(payload, out)
        print(f"\n[saved to {out}]")
    return 0


def write_profiles(
    profiles: dict[str, str], outdir: "str | None" = None
) -> list:
    """Write per-case profile listings atomically under ``outdir``.

    Each file lands via a same-directory temp name and ``os.replace`` so
    a crash (or a case whose profile text errored upstream) never leaves
    a truncated ``profile_<case>.txt`` behind. Returns the paths written.
    """
    import os
    from pathlib import Path

    if not profiles:
        return []
    out = Path(outdir) if outdir is not None else Path("benchmarks/results")
    out.mkdir(parents=True, exist_ok=True)
    written = []
    for case, text in sorted(profiles.items()):
        path = out / f"profile_{case}.txt"
        tmp = out / f".profile_{case}.txt.tmp"
        try:
            tmp.write_text(text, encoding="utf-8")
            os.replace(tmp, path)
        except BaseException:
            tmp.unlink(missing_ok=True)
            raise
        written.append(path)
    return written


def _cmd_net(args: argparse.Namespace) -> int:
    from repro.net import (
        EpisodeSpec,
        NetOptions,
        run_episode_net,
        run_episode_sim,
        save_result,
    )
    from repro.net.analyze import analyze_episode, format_report

    if args.net_command == "analyze":
        report = analyze_episode(args.dir)
        print(format_report(report))
        if args.json:
            from repro.analysis.io import save_json

            save_json(report, args.json)
        return 0 if report.get("consistent", True) else 1

    from pathlib import Path

    spec = EpisodeSpec.synthetic(
        args.ranks,
        n_tasks=args.tasks,
        n_loaded_ranks=args.loaded_ranks,
        seed=args.seed,
        fanout=args.fanout,
        rounds=args.rounds,
        n_iters=args.iters,
    )
    outdir = Path(args.out)
    log_dir = None if args.no_logs else str(outdir / "logs")
    options = NetOptions(
        workers=args.processes if args.processes > 0 else args.workers,
        processes=args.processes > 0,
        log_dir=log_dir,
        timeout=args.timeout,
    )
    result = run_episode_net(spec, options)
    save_result(outdir / "result.json", spec, result, options)
    mode = (
        f"{args.processes} OS processes" if options.processes
        else f"{options.workers} in-process workers"
    )
    print(
        f"net episode: {spec.n_ranks} ranks over loopback TCP ({mode})\n"
        f"  gossip: {result.n_messages} messages in "
        f"{len(result.per_round_messages)} rounds, "
        f"coverage {result.coverage:.4f}\n"
        f"  transfers: {len(result.moves)} moves\n"
        f"  imbalance: {result.initial_imbalance:.4f} -> "
        f"{result.final_imbalance:.4f}\n"
        f"  artifacts: {outdir / 'result.json'}"
        + (f", {log_dir}/" if log_dir else "")
    )
    if args.check:
        reference = run_episode_sim(spec)
        if reference.to_dict() != result.to_dict():
            print("bit-identity: FAILED — net result diverges from simulator")
            return 1
        print("bit-identity: net == sim (field-for-field)")
    return 0


def _cmd_amr(args: argparse.Namespace) -> int:
    from repro.amr import AMRConfig, AMRSimulation
    from repro.analysis import format_rows
    from repro.analysis.io import save_json

    sim = AMRSimulation(
        AMRConfig(
            n_ranks=args.ranks,
            n_phases=args.phases,
            mapping=args.mapping,
            load_noise=0.5,
        )
    )
    records = sim.run()
    rows = [
        {
            "phase": r.phase,
            "blocks": r.n_blocks,
            "imbalance": r.imbalance,
            "migrations": r.migrations,
        }
        for r in records
        if r.phase % max(args.phases // 8, 1) == 0
    ]
    print(format_rows(rows, ["phase", "blocks", "imbalance", "migrations"],
                      title=f"AMR mapping study ({args.mapping})"))
    if args.json:
        save_json(rows, args.json)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
