"""repro — reproduction of *Optimizing Distributed Load Balancing for
Workloads with Time-Varying Imbalance* (Lifflander et al., CLUSTER 2021).

The package provides:

- :mod:`repro.core` — the paper's contribution: the GrapevineLB and
  TemperedLB gossip-based distributed load balancers, the centralized
  GreedyLB and hierarchical HierLB baselines, transfer criteria, CMF
  variants, and the § V-E task orderings.
- :mod:`repro.sim` — a deterministic discrete-event simulation substrate
  (logical rank processes, network cost model, termination detection,
  tree reductions).
- :mod:`repro.runtime` — an AMT runtime model (phases, instrumentation,
  task migration, event-level asynchronous gossip) built on ``sim``.
- :mod:`repro.empire` — an EMPIRE-like particle-in-cell surrogate
  application with time-varying particle imbalance (the "B-Dot" scenario).
- :mod:`repro.workloads` — synthetic workload generators, including the
  paper's § V-B analysis scenario.
- :mod:`repro.analysis` — the experiment harness that regenerates every
  table and figure of the paper's evaluation.

Quickstart::

    import numpy as np
    from repro import TemperedLB, Distribution
    from repro.workloads import paper_analysis_scenario

    dist = paper_analysis_scenario(seed=42)
    lb = TemperedLB(n_trials=2, n_iters=10)
    result = lb.rebalance(dist, rng=np.random.default_rng(0))
    print(result.final_imbalance)
"""

from repro.core.base import IterationRecord, LBResult, LoadBalancer
from repro.core.distribution import Distribution
from repro.core.grapevine import GrapevineLB
from repro.core.greedy import GreedyLB
from repro.core.hier import HierLB
from repro.core.metrics import LoadStatistics, imbalance, load_statistics
from repro.core.tempered import TemperedConfig, TemperedLB
from repro.obs import StatsRegistry

__version__ = "1.0.0"

__all__ = [
    "Distribution",
    "GrapevineLB",
    "GreedyLB",
    "HierLB",
    "IterationRecord",
    "LBResult",
    "LoadBalancer",
    "LoadStatistics",
    "StatsRegistry",
    "TemperedConfig",
    "TemperedLB",
    "imbalance",
    "load_statistics",
    "__version__",
]
