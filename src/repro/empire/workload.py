"""Per-color load model.

A color's particle-update cost is affine in its content::

    load(color) = cell_cost * cells(color) + particle_cost * particles(color)

The cell term is the fixed sub-mesh work (gather/scatter of fields to
the color boundary); the particle term — push, current deposition,
sorting — dominates wherever the plume is dense, producing the dynamic
imbalance that motivates the paper.
"""

from __future__ import annotations

import numpy as np

from repro.empire.mesh import Mesh2D
from repro.empire.particles import ParticlePopulation
from repro.util.validation import check_nonnegative

__all__ = ["ColorWorkloadModel"]


class ColorWorkloadModel:
    """Maps mesh + particles to per-color loads (seconds of work)."""

    def __init__(
        self,
        seconds_per_particle: float = 1e-4,
        seconds_per_cell: float = 1e-6,
    ) -> None:
        check_nonnegative("seconds_per_particle", seconds_per_particle)
        check_nonnegative("seconds_per_cell", seconds_per_cell)
        self.seconds_per_particle = float(seconds_per_particle)
        self.seconds_per_cell = float(seconds_per_cell)

    def color_loads(self, mesh: Mesh2D, population: ParticlePopulation) -> np.ndarray:
        """Per-color particle-update load, length ``mesh.n_colors``."""
        counts = population.count_per_color(mesh)
        return (
            self.seconds_per_cell * mesh.cells_per_color
            + self.seconds_per_particle * counts
        )

    def loads_from_counts(self, mesh: Mesh2D, counts: np.ndarray) -> np.ndarray:
        """Per-color load from precomputed particle counts."""
        counts = np.asarray(counts)
        if counts.shape != (mesh.n_colors,):
            raise ValueError("need one count per color")
        return (
            self.seconds_per_cell * mesh.cells_per_color
            + self.seconds_per_particle * counts
        )
