"""The conventional approach: synchronous geometric repartitioning.

§ VI-A describes what EMPIRE would do without vt: "infrequently
re-partition the mesh in order to offset the evolving particle
imbalance", and faults it on two counts — it is intrinsically
*synchronous*, and *large volumes of data* must be migrated or
recomputed (connectivity, ghost layers) after every repartition.

This module implements that baseline: weighted recursive coordinate
bisection (RCB — the classic geometric partitioner behind Zoltan's
default) over the color centroids, exposed as a
:class:`~repro.core.base.LoadBalancer` so it can drive the same PIC
loop. Its *cost model* (see :func:`repartition_cost_model`) charges the
full sub-mesh + field data for every moved color plus a global
reconfiguration term — the expensive part the paper's incremental
approach amortizes away.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import LBResult, LoadBalancer
from repro.core.distribution import Distribution
from repro.empire.mesh import Mesh2D
from repro.empire.pic import LBCostModel
from repro.util.validation import check_positive

__all__ = ["rcb_partition", "RCBLB", "repartition_cost_model"]


def rcb_partition(
    points: np.ndarray, weights: np.ndarray, n_parts: int
) -> np.ndarray:
    """Weighted recursive coordinate bisection.

    Recursively splits the point set along its widest coordinate at the
    weighted median, assigning parts proportionally, until ``n_parts``
    parts remain. Returns a part id per point.
    """
    points = np.ascontiguousarray(points, dtype=np.float64)
    weights = np.ascontiguousarray(weights, dtype=np.float64)
    if points.ndim != 2:
        raise ValueError("points must be 2-D (n, dims)")
    if weights.shape != (points.shape[0],):
        raise ValueError("need one weight per point")
    check_positive("n_parts", n_parts)
    out = np.empty(points.shape[0], dtype=np.int64)
    _rcb(points, weights, np.arange(points.shape[0]), 0, int(n_parts), out)
    return out


def _rcb(
    points: np.ndarray,
    weights: np.ndarray,
    index: np.ndarray,
    first_part: int,
    n_parts: int,
    out: np.ndarray,
) -> None:
    if n_parts == 1 or index.size == 0:
        out[index] = first_part
        return
    left_parts = n_parts // 2
    target = left_parts / n_parts  # weight fraction for the left side
    sub = points[index]
    dim = int(np.argmax(sub.max(axis=0) - sub.min(axis=0))) if index.size else 0
    order = index[np.argsort(sub[:, dim], kind="stable")]
    w = weights[order]
    total = w.sum()
    if total <= 0:
        # Degenerate: split by count.
        cut = int(round(index.size * target))
    else:
        cumulative = np.cumsum(w)
        cut = int(np.searchsorted(cumulative, target * total, side="left")) + 1
        cut = min(max(cut, 1), index.size - 1) if index.size > 1 else 0
    left, right = order[:cut], order[cut:]
    _rcb(points, weights, left, first_part, left_parts, out)
    _rcb(points, weights, right, first_part + left_parts, n_parts - left_parts, out)


class RCBLB(LoadBalancer):
    """Geometric repartitioning as a load balancer over mesh colors.

    Holds the mesh geometry (color centroids); ``rebalance`` runs RCB
    with the measured color loads as weights. Each RCB part becomes one
    rank's new sub-domain — communication locality is implicit in the
    geometry, but every repartition reshuffles large data volumes.
    """

    name = "RCB"

    def __init__(self, mesh: Mesh2D) -> None:
        self.mesh = mesh
        self._centers = mesh.color_centers()

    def rebalance(
        self, dist: Distribution, rng: np.random.Generator | int | None = None
    ) -> LBResult:
        if dist.n_tasks != self.mesh.n_colors:
            raise ValueError("distribution does not match the mesh's colors")
        assignment = rcb_partition(self._centers, dist.task_loads, dist.n_ranks)
        return self._make_result(dist, assignment)


def repartition_cost_model() -> LBCostModel:
    """The cost structure of synchronous repartitioning (§ VI-A).

    Versus the incremental AMT migration model: every moved color ships
    its *entire* sub-mesh and field state (an order of magnitude more
    bytes than the particle payload), and the post-partition
    reconfiguration (connectivity rebuild, ghost-layer exchange, solver
    setup) costs a fixed synchronous delay.
    """
    return LBCostModel(
        color_fixed_bytes=4e7,  # 10x the AMT color payload
        bytes_per_particle=2e3,
        rdma_resize_seconds=1.5,  # data transposition + metadata exchange
        sort_op_seconds=1e-6,
    )
