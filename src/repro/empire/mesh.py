"""2-D structured mesh with SPMD decomposition and per-rank coloring.

Mirrors Fig. 1 of the paper: the unit square is block-decomposed onto a
``px x py`` rank grid (the static SPMD decomposition that balances the
FEM field solve), and each rank's block is further subdivided into
``colors_per_rank`` *colors* — the migratable chunks that carry their
sub-mesh and particles. Colors are identified as
``rank * colors_per_rank + local_index``.
"""

from __future__ import annotations

import math

import numpy as np

from repro.util.validation import check_positive

__all__ = ["Mesh2D", "grid_dims"]


def grid_dims(n: int) -> tuple[int, int]:
    """Near-square factorization ``(a, b)`` with ``a*b == n`` and ``a <= b``."""
    check_positive("n", n)
    a = int(math.isqrt(n))
    while a > 1 and n % a != 0:
        a -= 1
    return a, n // a


class Mesh2D:
    """Unit-square mesh: rank blocks, colors, and cell/particle binning."""

    def __init__(
        self,
        n_ranks: int,
        colors_per_rank: int = 24,
        cells_per_color: int = 64,
    ) -> None:
        check_positive("n_ranks", n_ranks)
        check_positive("colors_per_rank", colors_per_rank)
        check_positive("cells_per_color", cells_per_color)
        self.n_ranks = int(n_ranks)
        self.colors_per_rank = int(colors_per_rank)
        self.n_colors = self.n_ranks * self.colors_per_rank
        #: Cells per color (uniform by construction — the mesh is
        #: structured; what varies is the *particle* content).
        self.cells_per_color = int(cells_per_color)
        self.px, self.py = grid_dims(self.n_ranks)
        self.cx, self.cy = grid_dims(self.colors_per_rank)

    # -- ownership ----------------------------------------------------------

    def home_rank_of_color(self, color: np.ndarray | int) -> np.ndarray | int:
        """The SPMD rank whose block contains a color's sub-mesh."""
        return np.asarray(color) // self.colors_per_rank

    def colors_of_rank(self, rank: int) -> np.ndarray:
        """The colors carved from ``rank``'s block."""
        base = rank * self.colors_per_rank
        return np.arange(base, base + self.colors_per_rank)

    def home_assignment(self) -> np.ndarray:
        """Color -> home rank (the initial, unmigrated mapping)."""
        return np.repeat(np.arange(self.n_ranks), self.colors_per_rank)

    def cells_per_rank(self) -> int:
        """Mesh cells per rank (uniform — the FEM work is balanced)."""
        return self.cells_per_color * self.colors_per_rank

    # -- geometric binning ----------------------------------------------------

    def rank_of_position(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """SPMD rank containing each unit-square position."""
        x, y = self._check_positions(x, y)
        i = np.minimum((x * self.px).astype(np.int64), self.px - 1)
        j = np.minimum((y * self.py).astype(np.int64), self.py - 1)
        return j * self.px + i

    def color_of_position(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Color containing each unit-square position (vectorized)."""
        x, y = self._check_positions(x, y)
        xi = x * self.px
        yj = y * self.py
        i = np.minimum(xi.astype(np.int64), self.px - 1)
        j = np.minimum(yj.astype(np.int64), self.py - 1)
        rank = j * self.px + i
        # Local coordinates within the rank block, in [0, 1).
        lx = np.clip(xi - i, 0.0, np.nextafter(1.0, 0.0))
        ly = np.clip(yj - j, 0.0, np.nextafter(1.0, 0.0))
        ci = np.minimum((lx * self.cx).astype(np.int64), self.cx - 1)
        cj = np.minimum((ly * self.cy).astype(np.int64), self.cy - 1)
        local = cj * self.cx + ci
        return rank * self.colors_per_rank + local

    def color_centers(self) -> np.ndarray:
        """Geometric center of every color, shape ``(n_colors, 2)``."""
        centers = np.empty((self.n_colors, 2))
        for rank in range(self.n_ranks):
            i, j = rank % self.px, rank // self.px
            for cj in range(self.cy):
                for ci in range(self.cx):
                    color = rank * self.colors_per_rank + cj * self.cx + ci
                    centers[color, 0] = (i + (ci + 0.5) / self.cx) / self.px
                    centers[color, 1] = (j + (cj + 0.5) / self.cy) / self.py
        return centers

    # -- communication structure ------------------------------------------------

    def color_grid_coords(self) -> np.ndarray:
        """Global lattice coordinates of every color, shape ``(n_colors, 2)``.

        Colors tile a ``(px*cx) x (py*cy)`` lattice; neighbouring lattice
        cells share a halo boundary.
        """
        coords = np.empty((self.n_colors, 2), dtype=np.int64)
        for rank in range(self.n_ranks):
            i, j = rank % self.px, rank // self.px
            for cj in range(self.cy):
                for ci in range(self.cx):
                    color = rank * self.colors_per_rank + cj * self.cx + ci
                    coords[color] = (i * self.cx + ci, j * self.cy + cj)
        return coords

    def neighbor_comm_graph(self, bytes_per_boundary: float = 1.0):
        """Halo-exchange communication graph between adjacent colors.

        Returns a :class:`repro.core.comm.CommGraph` with one edge per
        shared lattice boundary (4-neighbourhood), each of volume
        ``bytes_per_boundary`` — the ghost-layer traffic of Fig. 1's
        decomposition.
        """
        from repro.core.comm import CommGraph

        coords = self.color_grid_coords()
        index = {(int(x), int(y)): c for c, (x, y) in enumerate(coords)}
        src, dst = [], []
        for c, (x, y) in enumerate(coords):
            for nx, ny in ((x + 1, y), (x, y + 1)):
                neighbor = index.get((int(nx), int(ny)))
                if neighbor is not None:
                    src.append(c)
                    dst.append(neighbor)
        volume = np.full(len(src), float(bytes_per_boundary))
        return CommGraph(np.array(src), np.array(dst), volume, self.n_colors)

    @staticmethod
    def _check_positions(x: np.ndarray, y: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if x.shape != y.shape:
            raise ValueError("x and y must have the same shape")
        if x.size and (
            x.min() < 0.0 or x.max() >= 1.0 or y.min() < 0.0 or y.max() >= 1.0
        ):
            raise ValueError("positions must lie in the unit square [0, 1)")
        return x, y
