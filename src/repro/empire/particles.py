"""Particle population: storage, motion, and color binning.

A flat structure-of-arrays container (positions and velocities as
``(n, 2)`` float arrays) with vectorized advancement. Boundaries are
reflecting, as in a bounded plasma device chamber.
"""

from __future__ import annotations

import numpy as np

from repro.empire.mesh import Mesh2D

__all__ = ["ParticlePopulation"]

#: Largest double strictly below 1.0 — positions live in [0, 1).
_SUP = np.nextafter(1.0, 0.0)


class ParticlePopulation:
    """A set of simulation particles on the unit square."""

    def __init__(self, positions: np.ndarray, velocities: np.ndarray) -> None:
        self.positions = np.ascontiguousarray(positions, dtype=np.float64)
        self.velocities = np.ascontiguousarray(velocities, dtype=np.float64)
        if self.positions.ndim != 2 or self.positions.shape[1] != 2:
            raise ValueError("positions must have shape (n, 2)")
        if self.positions.shape != self.velocities.shape:
            raise ValueError("positions and velocities must have the same shape")
        if self.positions.size and (
            self.positions.min() < 0.0 or self.positions.max() >= 1.0
        ):
            raise ValueError("positions must lie in the unit square [0, 1)")

    @classmethod
    def empty(cls) -> "ParticlePopulation":
        return cls(np.empty((0, 2)), np.empty((0, 2)))

    @property
    def count(self) -> int:
        return self.positions.shape[0]

    def advance(self, dt: float) -> None:
        """Move particles by ``dt`` with reflecting boundaries."""
        if dt < 0:
            raise ValueError("dt must be non-negative")
        pos = self.positions + self.velocities * dt
        # Reflect: fold position into [0, 2), mirror the upper half.
        pos = np.mod(pos, 2.0)
        over = pos >= 1.0
        pos[over] = 2.0 - pos[over]
        np.clip(pos, 0.0, _SUP, out=pos)
        self.velocities[over] *= -1.0
        self.positions = pos

    def inject(self, positions: np.ndarray, velocities: np.ndarray) -> None:
        """Append newly created particles."""
        add = ParticlePopulation(positions, velocities)  # validates
        self.positions = np.concatenate([self.positions, add.positions])
        self.velocities = np.concatenate([self.velocities, add.velocities])

    def count_per_color(self, mesh: Mesh2D) -> np.ndarray:
        """Particles per color, length ``mesh.n_colors``."""
        if self.count == 0:
            return np.zeros(mesh.n_colors, dtype=np.int64)
        colors = mesh.color_of_position(self.positions[:, 0], self.positions[:, 1])
        return np.bincount(colors, minlength=mesh.n_colors)
