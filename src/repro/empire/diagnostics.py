"""Physics diagnostics for the PIC surrogates.

Fig. 4a's LB-step spikes include "computing application-specific
(physics) diagnostics on the same interval"; these are those
diagnostics: kinetic energy, total momentum, electrostatic field
energy, and per-rank particle counts — with a recorder that samples
them on an interval, like EMPIRE's diagnostic cadence.
"""

from __future__ import annotations

import numpy as np

from repro.empire.electrostatic import PoissonSolver
from repro.empire.particles import ParticlePopulation
from repro.util.validation import check_positive

__all__ = [
    "kinetic_energy",
    "total_momentum",
    "field_energy",
    "particles_per_rank",
    "DiagnosticsRecorder",
]


def kinetic_energy(population: ParticlePopulation, mass: float = 1.0) -> float:
    """``0.5 m sum |v|^2`` over the population."""
    if population.count == 0:
        return 0.0
    return float(0.5 * mass * np.sum(population.velocities**2))


def total_momentum(population: ParticlePopulation, mass: float = 1.0) -> np.ndarray:
    """``m sum v`` (length-2 vector)."""
    if population.count == 0:
        return np.zeros(2)
    return mass * population.velocities.sum(axis=0)


def field_energy(solver: PoissonSolver, phi: np.ndarray) -> float:
    """``0.5 integral |E|^2`` of the potential's field on the grid."""
    ex, ey = solver.field(phi)
    cell_area = solver.hx * solver.hy
    return float(0.5 * cell_area * np.sum(ex**2 + ey**2))


def particles_per_rank(
    population: ParticlePopulation, mesh, assignment: np.ndarray
) -> np.ndarray:
    """Particles held by each rank under a color assignment."""
    counts = population.count_per_color(mesh)
    n_ranks = int(np.max(assignment)) + 1 if len(assignment) else 0
    return np.bincount(assignment, weights=counts.astype(float), minlength=n_ranks)


class DiagnosticsRecorder:
    """Samples diagnostics every ``interval`` steps into arrays."""

    def __init__(self, interval: int = 10) -> None:
        check_positive("interval", interval)
        self.interval = int(interval)
        self.steps: list[int] = []
        self.kinetic: list[float] = []
        self.momentum: list[np.ndarray] = []
        self.n_particles: list[int] = []

    def maybe_record(self, step: int, population: ParticlePopulation) -> bool:
        """Record if the step is on the cadence; returns whether it did."""
        if step % self.interval != 0:
            return False
        self.steps.append(int(step))
        self.kinetic.append(kinetic_energy(population))
        self.momentum.append(total_momentum(population))
        self.n_particles.append(population.count)
        return True

    def as_arrays(self) -> dict[str, np.ndarray]:
        """The recorded series as numpy arrays."""
        return {
            "steps": np.asarray(self.steps),
            "kinetic": np.asarray(self.kinetic),
            "momentum": np.asarray(self.momentum),
            "n_particles": np.asarray(self.n_particles),
        }
