"""Electrostatic PIC physics: deposition, Poisson solve, field push.

The benchmark runs use the kinematic B-Dot scenario (calibrated to the
paper's imbalance trajectory); this module provides an *actual*
particle-in-cell step for users who want physical dynamics: charges
deposit onto a periodic grid, the Poisson equation is solved by Jacobi
iteration, the electric field accelerates the particles, and the plasma
expands under its own space charge — producing organically time-varying
imbalance rather than a prescribed one.

Units are non-dimensional (unit square, unit-ish charge), as usual for
mini-apps; the point is the *load dynamics*, not quantitative plasma
physics.
"""

from __future__ import annotations

import numpy as np

from repro.empire.particles import ParticlePopulation
from repro.util.validation import check_nonnegative, check_positive, coerce_rng

__all__ = ["PoissonSolver", "ElectrostaticStepper", "ElectrostaticScenario"]

_SUP = np.nextafter(1.0, 0.0)


class PoissonSolver:
    """Jacobi solver for the periodic Poisson equation on a square grid.

    Solves ``laplacian(phi) = -rho`` with periodic boundaries. The
    right-hand side is mean-shifted (a periodic Poisson problem is only
    solvable for zero-mean sources); the solution is the zero-mean
    potential.
    """

    def __init__(self, nx: int, ny: int, sweeps: int = 60) -> None:
        check_positive("nx", nx)
        check_positive("ny", ny)
        check_positive("sweeps", sweeps)
        self.nx = int(nx)
        self.ny = int(ny)
        self.sweeps = int(sweeps)
        self.hx = 1.0 / self.nx
        self.hy = 1.0 / self.ny

    def solve(self, rho: np.ndarray, phi0: np.ndarray | None = None) -> np.ndarray:
        """Return the (approximate) zero-mean potential for ``rho``."""
        rho = np.asarray(rho, dtype=np.float64)
        if rho.shape != (self.ny, self.nx):
            raise ValueError(f"rho must have shape {(self.ny, self.nx)}")
        source = rho - rho.mean()
        phi = np.zeros_like(source) if phi0 is None else np.array(phi0, dtype=np.float64)
        hx2, hy2 = self.hx**2, self.hy**2
        denom = 2.0 * (hx2 + hy2)
        for _ in range(self.sweeps):
            neighbor = hy2 * (np.roll(phi, 1, axis=1) + np.roll(phi, -1, axis=1)) + hx2 * (
                np.roll(phi, 1, axis=0) + np.roll(phi, -1, axis=0)
            )
            phi = (neighbor + hx2 * hy2 * source) / denom
            phi -= phi.mean()
        return phi

    def field(self, phi: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """``E = -grad(phi)`` by periodic central differences."""
        ex = -(np.roll(phi, -1, axis=1) - np.roll(phi, 1, axis=1)) / (2 * self.hx)
        ey = -(np.roll(phi, -1, axis=0) - np.roll(phi, 1, axis=0)) / (2 * self.hy)
        return ex, ey


class ElectrostaticStepper:
    """One PIC step: deposit -> solve -> interpolate -> push."""

    def __init__(
        self,
        nx: int = 64,
        ny: int = 64,
        charge: float = 1.0,
        dt: float = 1.0,
        mobility: float = 2e-4,
        sweeps: int = 60,
    ) -> None:
        check_nonnegative("charge", charge)
        check_positive("dt", dt)
        check_nonnegative("mobility", mobility)
        self.solver = PoissonSolver(nx, ny, sweeps=sweeps)
        self.charge = float(charge)
        self.dt = float(dt)
        #: Velocity change per unit field per step (lumps q/m and dt).
        self.mobility = float(mobility)
        self._phi: np.ndarray | None = None

    def deposit(self, population: ParticlePopulation) -> np.ndarray:
        """Nearest-grid-point charge deposition, shape ``(ny, nx)``."""
        nx, ny = self.solver.nx, self.solver.ny
        if population.count == 0:
            return np.zeros((ny, nx))
        i = np.minimum((population.positions[:, 0] * nx).astype(np.int64), nx - 1)
        j = np.minimum((population.positions[:, 1] * ny).astype(np.int64), ny - 1)
        cell_area = self.solver.hx * self.solver.hy
        rho = np.bincount(j * nx + i, minlength=nx * ny).astype(np.float64)
        return self.charge * rho.reshape(ny, nx) / cell_area / max(population.count, 1)

    def step(self, population: ParticlePopulation) -> None:
        """Advance the plasma one step under its own space charge."""
        if population.count == 0:
            return
        rho = self.deposit(population)
        phi = self.solver.solve(rho, phi0=self._phi)
        self._phi = phi  # warm-start the next solve
        ex, ey = self.solver.field(phi)
        nx, ny = self.solver.nx, self.solver.ny
        i = np.minimum((population.positions[:, 0] * nx).astype(np.int64), nx - 1)
        j = np.minimum((population.positions[:, 1] * ny).astype(np.int64), ny - 1)
        population.velocities[:, 0] += self.mobility * ex[j, i]
        population.velocities[:, 1] += self.mobility * ey[j, i]
        population.advance(self.dt)


class ElectrostaticScenario:
    """A PIC scenario (initialize/step) driven by real space charge.

    Drop-in alternative to :class:`repro.empire.bdot.BDotScenario` for
    :class:`repro.empire.pic.PICSimulation`: a dense plasma blob expands
    under self-repulsion while an emitter keeps injecting, so the load
    distribution spreads and grows without any prescribed drift.
    """

    def __init__(
        self,
        initial_particles: int = 20_000,
        injection_per_step: int = 100,
        blob_center: tuple[float, float] = (0.35, 0.5),
        blob_sigma: float = 0.08,
        thermal_speed: float = 3e-4,
        nx: int = 64,
        ny: int = 64,
        mobility: float = 2e-4,
        seed: int | np.random.Generator | None = 0,
    ) -> None:
        check_positive("initial_particles", initial_particles)
        check_nonnegative("injection_per_step", injection_per_step)
        check_positive("blob_sigma", blob_sigma)
        self.initial_particles = int(initial_particles)
        self.injection_per_step = int(injection_per_step)
        self.blob_center = np.asarray(blob_center, dtype=np.float64)
        self.blob_sigma = float(blob_sigma)
        self.thermal_speed = float(thermal_speed)
        self.stepper = ElectrostaticStepper(nx=nx, ny=ny, mobility=mobility)
        self._rng = coerce_rng(seed)

    def _spawn(self, n: int) -> tuple[np.ndarray, np.ndarray]:
        rng = self._rng
        pos = self.blob_center + rng.normal(0.0, self.blob_sigma, size=(n, 2))
        pos = np.mod(pos, 2.0)
        over = pos >= 1.0
        pos[over] = 2.0 - pos[over]
        np.clip(pos, 0.0, _SUP, out=pos)
        vel = rng.normal(0.0, self.thermal_speed, size=(n, 2))
        return pos, vel

    def initialize(self) -> ParticlePopulation:
        pos, vel = self._spawn(self.initial_particles)
        return ParticlePopulation(pos, vel)

    def step(self, population: ParticlePopulation, step_index: int) -> None:
        self.stepper.step(population)
        if self.injection_per_step:
            pos, vel = self._spawn(self.injection_per_step)
            population.inject(pos, vel)
