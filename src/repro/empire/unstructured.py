"""Unstructured triangular meshes — EMPIRE's real mesh type.

§ VI-A: EMPIRE "utilizes a Finite Element Method (FEM) on unstructured
meshes". This module provides that substrate: a Delaunay triangulation
of the unit square, an SPMD rank decomposition via graph partitioning
of the dual graph (the Zoltan role), and a per-rank coloring into
migratable chunks by recursive partitioning of each rank's sub-dual —
the unstructured analogue of Fig. 1's coloring.

The resulting object is interface-compatible with
:class:`repro.empire.mesh.Mesh2D` where the PIC loop needs it
(``n_ranks``, ``n_colors``, ``home_assignment``, ``cells_per_rank``,
``cells_per_color`` — per-color *array* here — and
``color_of_position``), so :class:`repro.empire.pic.PICSimulation` runs
on it unchanged.
"""

from __future__ import annotations

import numpy as np
from scipy.spatial import Delaunay

from repro.core.comm import CommGraph
from repro.core.graphpart import AdjacencyGraph, grow_partition, refine_partition
from repro.util.validation import check_positive, coerce_rng

__all__ = ["UnstructuredMesh2D"]


class UnstructuredMesh2D:
    """A triangulated unit square, partitioned into ranks and colors."""

    def __init__(
        self,
        n_ranks: int,
        colors_per_rank: int = 8,
        n_points: int = 2000,
        seed: int | np.random.Generator | None = 0,
    ) -> None:
        check_positive("n_ranks", n_ranks)
        check_positive("colors_per_rank", colors_per_rank)
        check_positive("n_points", n_points)
        self.n_ranks = int(n_ranks)
        self.colors_per_rank = int(colors_per_rank)
        rng = coerce_rng(seed)

        # Jittered-grid points + pinned corners: quality triangles with
        # full unit-square coverage.
        side = max(int(np.sqrt(n_points)), 2)
        grid = (np.stack(np.meshgrid(np.arange(side), np.arange(side)), axis=-1)
                .reshape(-1, 2).astype(np.float64) + 0.5) / side
        jitter = rng.uniform(-0.35 / side, 0.35 / side, size=grid.shape)
        corners = np.array([[0.0, 0.0], [0.0, 1.0], [1.0, 0.0], [1.0, 1.0]])
        self.points = np.concatenate([grid + jitter, corners])
        self._tri = Delaunay(self.points)
        self.n_cells = len(self._tri.simplices)
        if self.n_cells < self.n_ranks * self.colors_per_rank:
            raise ValueError(
                f"{self.n_cells} triangles cannot form "
                f"{self.n_ranks}x{self.colors_per_rank} colors; raise n_points"
            )

        # Dual graph: triangles adjacent across shared edges.
        edges = self._dual_edges()
        dual = AdjacencyGraph(self.n_cells, edges)
        # SPMD decomposition (the Zoltan role).
        self.cell_rank = refine_partition(
            dual, grow_partition(dual, self.n_ranks, rng=rng), self.n_ranks
        )
        # Per-rank coloring: partition each rank's sub-dual into chunks.
        self.cell_color = self._color_cells(edges, rng)
        self.n_colors = self.n_ranks * self.colors_per_rank
        #: Triangles per color (unstructured: NOT uniform).
        self.cells_per_color = np.bincount(self.cell_color, minlength=self.n_colors)
        self._color_home = np.repeat(np.arange(self.n_ranks), self.colors_per_rank)

    # -- construction internals ----------------------------------------------

    def _dual_edges(self) -> np.ndarray:
        pairs = []
        for cell, nbrs in enumerate(self._tri.neighbors):
            for nb in nbrs:
                if nb > cell:  # each shared edge once; -1 = boundary
                    pairs.append((cell, int(nb)))
        return np.asarray(pairs, dtype=np.int64)

    def _color_cells(self, edges: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        color = np.full(self.n_cells, -1, dtype=np.int64)
        for rank in range(self.n_ranks):
            cells = np.flatnonzero(self.cell_rank == rank)
            local_index = {int(c): k for k, c in enumerate(cells)}
            mask = np.isin(edges, cells).all(axis=1)
            local_edges = np.array(
                [(local_index[int(a)], local_index[int(b)]) for a, b in edges[mask]],
                dtype=np.int64,
            ).reshape(-1, 2)
            sub = AdjacencyGraph(len(cells), local_edges)
            parts = refine_partition(
                sub, grow_partition(sub, self.colors_per_rank, rng=rng),
                self.colors_per_rank,
            )
            color[cells] = rank * self.colors_per_rank + parts
        return color

    # -- Mesh2D-compatible interface ------------------------------------------

    def home_assignment(self) -> np.ndarray:
        """Color -> home rank (colors are carved inside ranks)."""
        return self._color_home.copy()

    def home_rank_of_color(self, color: np.ndarray | int) -> np.ndarray | int:
        return np.asarray(color) // self.colors_per_rank

    def cells_per_rank(self) -> float:
        """Mean triangles per rank (the SPMD field-work granularity)."""
        return self.n_cells / self.n_ranks

    def color_of_position(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Color containing each position (Delaunay point location)."""
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        simplex = self._tri.find_simplex(np.column_stack([x, y]))
        if (simplex < 0).any():
            # Numerical edge cases on the hull: snap to the nearest
            # triangle by centroid distance.
            missing = np.flatnonzero(simplex < 0)
            centroids = self.cell_centroids()
            for idx in missing:
                d = (centroids[:, 0] - x[idx]) ** 2 + (centroids[:, 1] - y[idx]) ** 2
                simplex[idx] = int(np.argmin(d))
        return self.cell_color[simplex]

    def cell_centroids(self) -> np.ndarray:
        """Triangle centroids, shape ``(n_cells, 2)``."""
        return self.points[self._tri.simplices].mean(axis=1)

    def color_centers(self) -> np.ndarray:
        """Mean centroid of each color's triangles, shape ``(n_colors, 2)``
        (the geometry RCB repartitioning operates on)."""
        centroids = self.cell_centroids()
        centers = np.zeros((self.n_colors, 2))
        for axis in range(2):
            sums = np.bincount(
                self.cell_color, weights=centroids[:, axis], minlength=self.n_colors
            )
            centers[:, axis] = sums / np.maximum(self.cells_per_color, 1)
        return centers

    def neighbor_comm_graph(self, bytes_per_boundary: float = 1.0) -> CommGraph:
        """Halo-exchange graph between adjacent *colors*."""
        edges = self._dual_edges()
        ca, cb = self.cell_color[edges[:, 0]], self.cell_color[edges[:, 1]]
        crossing = ca != cb
        # Aggregate parallel edges between the same color pair.
        pairs: dict[tuple[int, int], float] = {}
        for a, b in zip(ca[crossing], cb[crossing]):
            key = (int(min(a, b)), int(max(a, b)))
            pairs[key] = pairs.get(key, 0.0) + float(bytes_per_boundary)
        if not pairs:
            return CommGraph(np.empty(0), np.empty(0), np.empty(0), self.n_colors)
        src = np.array([k[0] for k in pairs])
        dst = np.array([k[1] for k in pairs])
        vol = np.array(list(pairs.values()))
        return CommGraph(src, dst, vol, self.n_colors)
