"""The B-Dot-like scenario: a drifting, expanding particle plume.

§ VI-B: "the particle load varies dramatically over the course of the
run, but at a rate that allows us to successfully apply the principle of
persistence", and Fig. 4c shows the no-LB imbalance starting near 7 and
decaying toward ~3.3 *because the average rank load grows* as particle
work increases.

The surrogate reproduces those dynamics: a Gaussian plume of plasma
(``emitter_sigma`` controls its footprint, hence the peak-to-average
work ratio — i.e. the imbalance) drifts across the domain with a thermal
spread, while an emitter at the plume's birthplace keeps injecting new
particles every step. Early on the plume concentrates in a minority of
colors (per-rank task-load imbalance ~7, as in Fig. 4b/4c); as the
population grows and spreads, total work rises and relative imbalance
falls — while the hotspot keeps moving, so a one-shot balance decays.
"""

from __future__ import annotations

import numpy as np

from repro.empire.particles import ParticlePopulation
from repro.util.validation import check_nonnegative, check_positive, coerce_rng

__all__ = ["BDotScenario"]

_SUP = np.nextafter(1.0, 0.0)


class BDotScenario:
    """Particle source + motion model for the EMPIRE surrogate."""

    def __init__(
        self,
        initial_particles: int = 40_000,
        injection_per_step: int = 200,
        emitter_center: tuple[float, float] = (0.3, 0.5),
        emitter_sigma: float = 0.18,
        core_sigma: float = 0.03,
        core_fraction: float = 0.27,
        drift_velocity: tuple[float, float] = (1e-3, 1.5e-4),
        thermal_speed: float = 7e-4,
        dt: float = 1.0,
        seed: int | np.random.Generator | None = 0,
    ) -> None:
        check_positive("initial_particles", initial_particles)
        check_nonnegative("injection_per_step", injection_per_step)
        check_positive("emitter_sigma", emitter_sigma)
        check_positive("core_sigma", core_sigma)
        check_nonnegative("core_fraction", core_fraction)
        if core_fraction > 1.0:
            raise ValueError("core_fraction must be in [0, 1]")
        check_nonnegative("thermal_speed", thermal_speed)
        check_positive("dt", dt)
        self.initial_particles = int(initial_particles)
        self.injection_per_step = int(injection_per_step)
        self.emitter_center = np.asarray(emitter_center, dtype=np.float64)
        self.emitter_sigma = float(emitter_sigma)
        #: A dense core inside the halo: the colors it loads approach the
        #: average rank load, which is what defeats the original (strict)
        #: transfer criterion while the relaxed one still drains them.
        self.core_sigma = float(core_sigma)
        self.core_fraction = float(core_fraction)
        self.drift_velocity = np.asarray(drift_velocity, dtype=np.float64)
        self.thermal_speed = float(thermal_speed)
        self.dt = float(dt)
        self._rng = coerce_rng(seed)

    def _spawn(self, n: int) -> tuple[np.ndarray, np.ndarray]:
        """Sample ``n`` plume particles (core+halo blob, drift + thermal v)."""
        rng = self._rng
        n_core = int(round(n * self.core_fraction))
        sigma = np.where(np.arange(n) < n_core, self.core_sigma, self.emitter_sigma)
        pos = self.emitter_center + rng.normal(0.0, 1.0, size=(n, 2)) * sigma[:, None]
        # Reflect into the unit square (same boundary as the mover).
        pos = np.mod(pos, 2.0)
        over = pos >= 1.0
        pos[over] = 2.0 - pos[over]
        np.clip(pos, 0.0, _SUP, out=pos)
        vel = self.drift_velocity + rng.normal(0.0, self.thermal_speed, size=(n, 2))
        return pos, vel

    def initialize(self) -> ParticlePopulation:
        """The population at step 0."""
        pos, vel = self._spawn(self.initial_particles)
        return ParticlePopulation(pos, vel)

    def step(self, population: ParticlePopulation, step_index: int) -> None:
        """Advance one timestep: move everything, then inject new plasma."""
        population.advance(self.dt)
        if self.injection_per_step:
            pos, vel = self._spawn(self.injection_per_step)
            population.inject(pos, vel)
