"""Non-particle (field solve) cost model.

EMPIRE's electromagnetic FEM solve runs SPMD on the static mesh
decomposition and "can be easily balanced" (§ VI-A): every rank owns the
same number of cells, so the per-rank field time is uniform up to a
solver-iteration jitter term. The field solve is *not* migrated with
colors — execution transitions between SPMD and AMT per timestep.
"""

from __future__ import annotations

import numpy as np

from repro.util.validation import check_nonnegative, coerce_rng

__all__ = ["FieldSolveModel"]


class FieldSolveModel:
    """Per-rank, per-step field-solve time."""

    def __init__(
        self,
        seconds_per_cell: float = 2e-5,
        fixed_seconds: float = 0.05,
        jitter: float = 0.01,
        seed: int | np.random.Generator | None = 0,
    ) -> None:
        check_nonnegative("seconds_per_cell", seconds_per_cell)
        check_nonnegative("fixed_seconds", fixed_seconds)
        check_nonnegative("jitter", jitter)
        self.seconds_per_cell = float(seconds_per_cell)
        self.fixed_seconds = float(fixed_seconds)
        self.jitter = float(jitter)
        self._rng = coerce_rng(seed)

    def step_time(self, cells_per_rank: int, n_ranks: int) -> np.ndarray:
        """Per-rank field time for one step (length ``n_ranks``).

        The bulk-synchronous solve makes the step cost the max of these.
        """
        base = self.fixed_seconds + self.seconds_per_cell * cells_per_rank
        if self.jitter == 0.0:
            return np.full(n_ranks, base)
        noise = self._rng.normal(1.0, self.jitter, size=n_ranks)
        return base * np.clip(noise, 0.5, 1.5)
