"""EMPIRE run driver: the five Fig. 2 configurations end to end.

``run_empire(config)`` assembles the mesh, scenario, cost models and the
selected balancer, runs the timestep loop, and returns an
:class:`EmpireRun` with the per-step series plus the Fig. 3 totals
(``t_n``, ``t_p``, ``t_lb``, ``t_total``).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any

import numpy as np

from repro.analysis.series import PhaseSeries
from repro.core.base import LoadBalancer
from repro.core.grapevine import GrapevineLB
from repro.core.greedy import GreedyLB
from repro.core.hier import HierLB
from repro.core.tempered import TemperedConfig, TemperedLB
from repro.empire.bdot import BDotScenario
from repro.empire.fields import FieldSolveModel
from repro.empire.mesh import Mesh2D
from repro.empire.pic import LBCostModel, PICSimulation, default_lb_schedule
from repro.empire.workload import ColorWorkloadModel
from repro.sim.faults import FaultConfig
from repro.util.validation import check_in, check_positive

__all__ = ["EmpireConfig", "EmpireRun", "run_empire", "CONFIGURATION_LABELS"]

#: The five configurations of Fig. 2, by short name, plus the
#: conventional synchronous-repartitioning baseline of § VI-A ("rcb").
CONFIGURATION_LABELS = {
    "spmd": "SPMD (no AMT)",
    "amt": "AMT without LB",
    "grapevine": "AMT w/GrapevineLB",
    "greedy": "AMT w/GreedyLB",
    "hier": "AMT w/HierLB",
    "tempered": "AMT w/TemperedLB",
    "rcb": "SPMD w/RCB repartition",
}


@dataclass(frozen=True)
class EmpireConfig:
    """Parameters for one EMPIRE surrogate run.

    Defaults match the paper's setup where practical: 400 ranks, an
    overdecomposition factor of 24, LB on step 2 and then every 100th
    step. ``n_steps``, particle counts and the TemperedLB trial/iteration
    counts are scaled down from the paper's (1500+ steps, trials=10,
    iters=8 — "although fewer trials would have sufficed", § VI-B) to
    keep a pure-Python reproduction within a sane time budget; the
    benchmarks note the scaling.
    """

    configuration: str = "tempered"
    n_ranks: int = 400
    colors_per_rank: int = 24
    n_steps: int = 600
    lb_period: int = 100
    lb_first_step: int = 2
    initial_particles: int = 40_000
    injection_per_step: int = 200
    amt_overhead: float = 0.23
    n_trials: int = 2
    n_iters: int = 8
    ordering: str = "fewest_migrations"
    fanout: int = 6
    rounds: int = 10
    #: "structured" (the calibrated benchmark mesh) or "unstructured"
    #: (Delaunay triangulation, § VI-A's real mesh type).
    mesh_type: str = "structured"
    #: TemperedLB trial parallelism (None = serial trial loop) and the
    #: executor backend ("serial"/"thread"/"process"/"auto"/None); the
    #: backend changes wall time only, never the refined assignment.
    n_workers: int | None = None
    executor: str | None = None
    #: Gossip fault injection: per-message loss probability on the
    #: inform stage (0 = the historical lossless behavior, bit for
    #: bit) and the fault RNG seed.
    loss_rate: float = 0.0
    fault_seed: int = 0
    seed: int = 0

    def __post_init__(self) -> None:
        check_in("configuration", self.configuration, CONFIGURATION_LABELS)
        check_positive("n_ranks", self.n_ranks)
        check_positive("colors_per_rank", self.colors_per_rank)
        check_positive("n_steps", self.n_steps)
        check_positive("lb_period", self.lb_period)
        check_in("mesh_type", self.mesh_type, ("structured", "unstructured"))
        if not 0.0 <= self.loss_rate <= 1.0:
            raise ValueError(f"loss_rate must be in [0, 1], got {self.loss_rate}")

    @property
    def label(self) -> str:
        return CONFIGURATION_LABELS[self.configuration]

    def with_configuration(self, configuration: str) -> "EmpireConfig":
        """The same run under a different Fig. 2 configuration."""
        return replace(self, configuration=configuration)


@dataclass
class EmpireRun:
    """Result of one EMPIRE surrogate run."""

    config: EmpireConfig
    series: PhaseSeries
    extra: dict[str, Any] = field(default_factory=dict)

    @property
    def t_particle(self) -> float:
        """Total particle-update time (``t_p`` of Fig. 3)."""
        return float(np.nansum(self.series.series("t_particle")))

    @property
    def t_nonparticle(self) -> float:
        """Total non-particle time (``t_n``)."""
        return float(np.nansum(self.series.series("t_nonparticle")))

    @property
    def t_lb(self) -> float:
        """Total LB + migration time (``t_lb``)."""
        return float(np.nansum(self.series.series("t_lb")))

    @property
    def t_total(self) -> float:
        """Total application time (``t_total``)."""
        return float(np.nansum(self.series.series("t_step")))

    def breakdown(self) -> dict[str, float]:
        """The Fig. 3 row for this configuration."""
        return {
            "Type": self.config.label,
            "t_n": self.t_n,
            "t_p": self.t_particle,
            "t_lb": self.t_lb,
            "t_total": self.t_total,
        }

    # Alias matching the paper's symbol.
    @property
    def t_n(self) -> float:
        return self.t_nonparticle


def _make_balancer(config: EmpireConfig) -> LoadBalancer | None:
    name = config.configuration
    if name in ("spmd", "amt"):
        return None
    if name == "grapevine":
        # "A configuration of our TemperedLB that matches the original
        # algorithm" (§ VI-B): same iteration budget, original criterion.
        return GrapevineLB(
            n_iters=config.n_iters, fanout=config.fanout, rounds=config.rounds
        )
    if name == "greedy":
        return GreedyLB()
    if name == "hier":
        return HierLB()
    faults = (
        FaultConfig(loss_rate=config.loss_rate, seed=config.fault_seed)
        if config.loss_rate > 0.0
        else None
    )
    return TemperedLB(
        TemperedConfig(
            n_trials=config.n_trials,
            n_iters=config.n_iters,
            fanout=config.fanout,
            rounds=config.rounds,
            ordering=config.ordering,
            n_workers=config.n_workers,
            executor=config.executor,
            faults=faults,
        )
    )


def run_empire(config: EmpireConfig) -> EmpireRun:
    """Run one configuration of the EMPIRE surrogate."""
    if config.mesh_type == "unstructured":
        from repro.empire.unstructured import UnstructuredMesh2D

        mesh = UnstructuredMesh2D(
            config.n_ranks,
            colors_per_rank=config.colors_per_rank,
            n_points=config.n_ranks * config.colors_per_rank * 15,
            seed=config.seed + 7,
        )
    else:
        mesh = Mesh2D(config.n_ranks, colors_per_rank=config.colors_per_rank)
    scenario = BDotScenario(
        initial_particles=config.initial_particles,
        injection_per_step=config.injection_per_step,
        seed=config.seed,
    )
    mode = "spmd" if config.configuration in ("spmd", "rcb") else "amt"
    if config.configuration == "rcb":
        from repro.empire.repartition import RCBLB, repartition_cost_model

        balancer: LoadBalancer | None = RCBLB(mesh)
        lb_cost = repartition_cost_model()
    else:
        balancer = _make_balancer(config)
        lb_cost = LBCostModel()
    sim = PICSimulation(
        mesh,
        scenario,
        workload=ColorWorkloadModel(),
        fields=FieldSolveModel(seed=config.seed + 1),
        mode=mode,
        balancer=balancer,
        lb_schedule=default_lb_schedule(config.lb_period, config.lb_first_step),
        amt_overhead=config.amt_overhead,
        lb_cost=lb_cost,
        seed=config.seed + 2,
        allow_spmd_repartition=config.configuration == "rcb",
    )
    series = sim.run(config.n_steps)
    return EmpireRun(
        config=config,
        series=series,
        extra={"lb_invocations": sim.lb_invocations},
    )
