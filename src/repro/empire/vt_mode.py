"""EMPIRE on the event-level runtime — the full co-simulation.

The long 400-rank benchmark runs use the analytic per-step cost path
(:mod:`repro.empire.pic`); this module runs the *same application loop*
entirely inside the discrete-event AMT runtime at tractable scales:
every phase executes color tasks on simulated ranks with a tree
barrier, instrumentation feeds the LB manager, and LB episodes run as
real message protocols (statistics all-reduce, asynchronous gossip with
Safra termination, per-color migrations). It is the fidelity anchor the
phase-level cost model is calibrated against (DESIGN.md § 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.series import PhaseSeries
from repro.core.tempered import TemperedConfig
from repro.empire.bdot import BDotScenario
from repro.empire.mesh import Mesh2D
from repro.empire.pic import default_lb_schedule
from repro.empire.workload import ColorWorkloadModel
from repro.runtime.amt import AMTRuntime
from repro.runtime.lbmanager import LBManager
from repro.util.validation import check_positive

__all__ = ["VtEmpireConfig", "VtEmpireResult", "run_vt_empire"]


@dataclass(frozen=True)
class VtEmpireConfig:
    """Parameters for an event-level EMPIRE run (keep scales small:
    every task execution and protocol message is a simulated event)."""

    n_ranks: int = 16
    colors_per_rank: int = 8
    n_steps: int = 40
    lb_period: int = 10
    lb_first_step: int = 2
    initial_particles: int = 4000
    injection_per_step: int = 40
    task_overhead: float = 1e-4
    n_trials: int = 1
    n_iters: int = 3
    fanout: int = 4
    rounds: int = 5
    bytes_per_unit_load: float = 1e7
    balance: bool = True
    seed: int = 0

    def __post_init__(self) -> None:
        check_positive("n_ranks", self.n_ranks)
        check_positive("n_steps", self.n_steps)


@dataclass
class VtEmpireResult:
    """Per-step series plus protocol accounting of an event-level run."""

    series: PhaseSeries
    total_time: float  #: simulated seconds, end to end
    lb_time: float  #: simulated seconds spent in LB episodes
    lb_episodes: int = 0
    gossip_messages: int = 0
    migrations: int = 0


def run_vt_empire(config: VtEmpireConfig | None = None) -> VtEmpireResult:
    """Drive the EMPIRE surrogate through the event-level runtime."""
    config = config or VtEmpireConfig()
    mesh = Mesh2D(config.n_ranks, colors_per_rank=config.colors_per_rank)
    scenario = BDotScenario(
        initial_particles=config.initial_particles,
        injection_per_step=config.injection_per_step,
        seed=config.seed,
    )
    workload = ColorWorkloadModel()
    population = scenario.initialize()
    loads = workload.loads_from_counts(mesh, population.count_per_color(mesh))

    runtime = AMTRuntime(
        config.n_ranks,
        loads,
        mesh.home_assignment(),
        task_overhead=config.task_overhead,
    )
    manager = LBManager(
        runtime,
        TemperedConfig(
            n_trials=config.n_trials,
            n_iters=config.n_iters,
            fanout=config.fanout,
            rounds=config.rounds,
        ),
        seed=config.seed + 1,
        bytes_per_unit_load=config.bytes_per_unit_load,
    )
    schedule = default_lb_schedule(config.lb_period, config.lb_first_step)

    series = PhaseSeries()
    result = VtEmpireResult(series=series, total_time=0.0, lb_time=0.0)
    start = runtime.system.engine.now
    for step in range(config.n_steps):
        if step > 0:
            scenario.step(population, step)
            runtime.set_task_loads(
                workload.loads_from_counts(mesh, population.count_per_color(mesh))
            )
        t_lb = 0.0
        migrations = 0
        if config.balance and step > 0 and schedule(step):
            episode = manager.run_episode()
            t_lb = episode.t_lb
            migrations = episode.n_migrations
            result.lb_episodes += 1
            result.gossip_messages += episode.gossip_messages
            result.migrations += episode.n_migrations
            result.lb_time += episode.t_lb
        phase = runtime.execute_phase()
        series.record(
            t_step=phase.duration + t_lb,
            t_particle=phase.makespan,
            t_lb=t_lb,
            imbalance=phase.imbalance(),
            migrations=float(migrations),
            n_particles=float(population.count),
        )
    result.total_time = runtime.system.engine.now - start
    return result
