"""EMPIRE surrogate: a particle-in-cell mini-app with time-varying imbalance.

EMPIRE (§ VI-A) solves electromagnetic fields with FEM (well balanced by
the static SPMD decomposition) and plasma with PIC particles whose
spatial density is highly non-uniform and evolves over the run (the
"B-Dot" problem). This package reproduces the *load structure*: a 2-D
mesh with an SPMD block decomposition, per-rank coloring into migratable
chunks (overdecomposition factor 24), a drifting/expanding particle
plume, and per-phase costs ``field ~ cells`` and
``particles ~ alpha*cells + beta*count``.
"""

from repro.empire.app import EmpireConfig, EmpireRun, run_empire
from repro.empire.bdot import BDotScenario
from repro.empire.fields import FieldSolveModel
from repro.empire.mesh import Mesh2D
from repro.empire.particles import ParticlePopulation
from repro.empire.pic import PICSimulation
from repro.empire.workload import ColorWorkloadModel

__all__ = [
    "BDotScenario",
    "ColorWorkloadModel",
    "EmpireConfig",
    "EmpireRun",
    "FieldSolveModel",
    "Mesh2D",
    "PICSimulation",
    "ParticlePopulation",
    "run_empire",
]
