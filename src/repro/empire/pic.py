"""The PIC timestep loop: SPMD and AMT execution modes.

Per timestep (matching § VI-A's structure):

1. particles move and new plasma is injected (the B-Dot scenario);
2. *particle update*: per-color loads execute on their assigned ranks —
   pinned to home ranks in SPMD mode, migratable in AMT mode (which
   pays the tasking overhead that makes "AMT without LB" ~23% slower);
3. *non-particle update*: the SPMD field solve, balanced by
   construction;
4. on LB steps (AMT mode with a balancer), the balancer runs on the
   *previous* step's instrumented loads (principle of persistence) and
   its decision + migration cost is charged to the step — the spikes of
   Fig. 4a.

The per-step costs are computed analytically (vectorized over ranks)
rather than event-by-event; the event-level runtime in
:mod:`repro.runtime` validates the same protocol costs at smaller scale
(see DESIGN.md § 5).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.analysis.series import PhaseSeries
from repro.core.base import LBResult, LoadBalancer
from repro.core.distribution import Distribution
from repro.core.metrics import imbalance, lower_bound_max_load
from repro.empire.bdot import BDotScenario
from repro.empire.fields import FieldSolveModel
from repro.empire.mesh import Mesh2D
from repro.empire.workload import ColorWorkloadModel
from repro.util.validation import check_in, check_nonnegative, coerce_rng

__all__ = ["LBCostModel", "PICSimulation", "default_lb_schedule"]


@dataclass(frozen=True)
class LBCostModel:
    """Analytic cost of one LB episode (decision + migration).

    Calibrated so ``t_lb`` is a small fraction of application time with
    migration dominating, as in Fig. 3.
    """

    round_latency: float = 2e-3  #: one async gossip round across the machine
    reduce_latency: float = 1e-3  #: one allreduce / barrier
    message_cpu: float = 2e-6  #: CPU per gossip message handled
    sort_op_seconds: float = 1e-6  #: centralized per-element sort/heap op
    bytes_per_particle: float = 2e3  #: migration payload per particle
    color_fixed_bytes: float = 4e6  #: sub-mesh + metadata per color
    bandwidth: float = 1.2e10  #: per-rank migration bandwidth
    rdma_resize_seconds: float = 0.05  #: post-LB buffer reconfiguration

    def decision_seconds(self, result: LBResult, n_ranks: int, rounds: int) -> float:
        """Time spent deciding (gossip or centralized/hierarchical)."""
        if result.records:
            # Gossip family: each stage is an inform (k async rounds) plus an
            # imbalance-evaluation allreduce; message handling is spread
            # across ranks.
            stages = len(result.records)
            messages = sum(r.gossip_messages for r in result.records)
            return (
                stages * (rounds * self.round_latency + self.reduce_latency)
                + messages * self.message_cpu / max(n_ranks, 1)
            )
        n_tasks = result.assignment.size
        if result.strategy == "GreedyLB":
            # Centralized: gather everything, heap-assign serially at one rank.
            gather = 2 * self.reduce_latency + n_tasks * 16 / self.bandwidth
            serial = n_tasks * max(math.log2(max(n_tasks, 2)), 1.0) * self.sort_op_seconds
            return gather + serial
        if result.strategy == "HierLB":
            levels = result.extra.get("tree_depth", max(int(math.log2(max(n_ranks, 2))), 1))
            per_level = self.reduce_latency + (
                n_tasks / max(n_ranks, 1) * 64 * self.sort_op_seconds
            )
            return levels * per_level
        # Unknown strategy: charge a generic allreduce.
        return self.reduce_latency

    def migration_seconds(
        self,
        moves_mask: np.ndarray,
        old_assignment: np.ndarray,
        new_assignment: np.ndarray,
        color_particles: np.ndarray,
        n_ranks: int,
    ) -> float:
        """Max per-rank (in+out) migration volume over bandwidth."""
        if not moves_mask.any():
            return 0.0
        moved = np.flatnonzero(moves_mask)
        sizes = self.color_fixed_bytes + self.bytes_per_particle * color_particles[moved]
        out_bytes = np.bincount(old_assignment[moved], weights=sizes, minlength=n_ranks)
        in_bytes = np.bincount(new_assignment[moved], weights=sizes, minlength=n_ranks)
        return float((out_bytes + in_bytes).max() / self.bandwidth) + self.rdma_resize_seconds


def default_lb_schedule(period: int = 100, first: int = 2) -> Callable[[int], bool]:
    """The paper's schedule: LB on step 2, then every ``period`` steps."""
    def schedule(step: int) -> bool:
        return step == first or (step > first and step % period == 0)

    return schedule


class PICSimulation:
    """Drive the EMPIRE surrogate for a number of timesteps."""

    def __init__(
        self,
        mesh: Mesh2D,
        scenario: BDotScenario,
        workload: ColorWorkloadModel | None = None,
        fields: FieldSolveModel | None = None,
        mode: str = "spmd",
        balancer: LoadBalancer | None = None,
        lb_schedule: Callable[[int], bool] | None = None,
        amt_overhead: float = 0.23,
        lb_cost: LBCostModel | None = None,
        seed: int | np.random.Generator | None = 0,
        allow_spmd_repartition: bool = False,
        rank_speeds: np.ndarray | None = None,
    ) -> None:
        check_in("mode", mode, ("spmd", "amt"))
        check_nonnegative("amt_overhead", amt_overhead)
        if mode == "spmd" and balancer is not None and not allow_spmd_repartition:
            # Colors are pinned under plain SPMD; the one exception is the
            # conventional synchronous-repartitioning baseline (§ VI-A),
            # which re-decomposes the SPMD mesh itself.
            raise ValueError(
                "SPMD mode cannot load balance (colors are pinned); pass "
                "allow_spmd_repartition=True for the repartitioning baseline"
            )
        self.mesh = mesh
        self.scenario = scenario
        self.workload = workload or ColorWorkloadModel()
        self.fields = fields or FieldSolveModel()
        self.mode = mode
        self.balancer = balancer
        self.lb_schedule = lb_schedule or default_lb_schedule()
        self.amt_overhead = float(amt_overhead)
        self.lb_cost = lb_cost or LBCostModel()
        self.rng = coerce_rng(seed)
        if rank_speeds is None:
            self.rank_speeds = np.ones(mesh.n_ranks)
        else:
            self.rank_speeds = np.ascontiguousarray(rank_speeds, dtype=np.float64)
            if self.rank_speeds.shape != (mesh.n_ranks,):
                raise ValueError("need one speed per rank")
            if self.rank_speeds.min() <= 0:
                raise ValueError("rank speeds must be positive")
        self.assignment = mesh.home_assignment()
        self.population = scenario.initialize()
        self._last_loads: np.ndarray | None = None
        self.lb_invocations = 0

    # -- helpers ------------------------------------------------------------

    def _balancer_rounds(self) -> int:
        config = getattr(self.balancer, "config", None)
        return getattr(config, "rounds", 10) if config is not None else 10

    def _particle_rank_times(self, loads: np.ndarray) -> np.ndarray:
        per_rank = np.bincount(self.assignment, weights=loads, minlength=self.mesh.n_ranks)
        if self.mode == "amt":
            per_rank = per_rank * (1.0 + self.amt_overhead)
        return per_rank / self.rank_speeds

    # -- main loop ------------------------------------------------------------

    def run(self, n_steps: int, series: PhaseSeries | None = None) -> PhaseSeries:
        """Execute ``n_steps`` timesteps, returning the per-step series.

        Series metrics: ``t_step, t_particle, t_nonparticle, t_lb,
        max_load, min_load, avg_load, lower_bound, imbalance,
        n_particles, migrations``.
        """
        series = series or PhaseSeries()
        mesh = self.mesh
        n_ranks = mesh.n_ranks
        for step in range(n_steps):
            if step > 0:
                self.scenario.step(self.population, step)
            counts = self.population.count_per_color(mesh)
            loads = self.workload.loads_from_counts(mesh, counts)

            t_lb = 0.0
            migrations = 0
            if (
                self.balancer is not None
                and self._last_loads is not None
                and self.lb_schedule(step)
            ):
                t_lb, migrations = self._run_lb(counts)

            rank_particle = self._particle_rank_times(loads)
            t_particle = float(rank_particle.max())
            field_times = self.fields.step_time(mesh.cells_per_rank(), n_ranks)
            t_nonparticle = float(field_times.max())

            series.record(
                t_step=t_particle + t_nonparticle + t_lb,
                t_particle=t_particle,
                t_nonparticle=t_nonparticle,
                t_lb=t_lb,
                max_load=float(rank_particle.max()),
                min_load=float(rank_particle.min()),
                avg_load=float(rank_particle.mean()),
                lower_bound=lower_bound_max_load(rank_particle, loads),
                imbalance=imbalance(rank_particle),
                n_particles=float(self.population.count),
                migrations=float(migrations),
            )
            # Instrumentation records *measured durations*: on slow ranks
            # a color looks heavier (cf. AMTRuntime's heterogeneity model).
            self._last_loads = loads / self.rank_speeds[self.assignment]
        return series

    def _run_lb(self, counts: np.ndarray) -> tuple[float, int]:
        """One LB episode on the previous step's instrumented loads."""
        assert self.balancer is not None and self._last_loads is not None
        dist = Distribution(self._last_loads, self.assignment, self.mesh.n_ranks)
        result = self.balancer.rebalance(dist, rng=self.rng)
        moves_mask = result.assignment != self.assignment
        decision = self.lb_cost.decision_seconds(
            result, self.mesh.n_ranks, self._balancer_rounds()
        )
        migration = self.lb_cost.migration_seconds(
            moves_mask, self.assignment, result.assignment, counts, self.mesh.n_ranks
        )
        self.assignment = result.assignment.copy()
        self.lb_invocations += 1
        return decision + migration, int(moves_mask.sum())
