"""repro.obs — instrumentation & telemetry for the gossip LB stack.

The paper's empirical claims are about rates and volumes (per-iteration
transfer acceptance/rejection, ``f*k`` gossip message counts, migration
bytes at commit), so every layer of the reproduction can attach a
:class:`StatsRegistry` and export those quantities:

- :func:`repro.core.gossip.run_inform_stage`,
  :func:`repro.core.transfer.transfer_stage` and
  :func:`repro.core.refinement.iterative_refinement` take a
  ``registry`` keyword;
- :class:`repro.core.base.LoadBalancer.instrument` attaches a registry
  to a strategy object (TemperedLB / GrapevineLB thread it through);
- :class:`repro.sim.engine.Engine`, :class:`repro.sim.process.System`,
  :class:`repro.runtime.amt.AMTRuntime` and
  :class:`repro.runtime.lbmanager.LBManager` accept ``registry=``;
- :func:`repro.analysis.io.save_stats` / ``load_stats`` /
  ``stats_to_csv`` persist a registry, and ``python -m repro stats``
  summarizes an instrumented run.

With no registry attached, instrumentation is skipped entirely (no
recording, no RNG consumption): outputs are identical to an
un-instrumented build. See ``docs/observability.md``.
"""

from repro.obs.events import Event
from repro.obs.registry import NULL_REGISTRY, NullRegistry, StatsRegistry, ensure_registry

__all__ = [
    "Event",
    "NULL_REGISTRY",
    "NullRegistry",
    "StatsRegistry",
    "ensure_registry",
]
