"""The stats registry: counters, gauges, series, timers and events.

:class:`StatsRegistry` is the single sink every instrumented layer
(:mod:`repro.sim`, :mod:`repro.core`, :mod:`repro.runtime`) writes to.
It holds four aggregate kinds plus structured events:

counters
    Monotonically non-decreasing sums (``gossip.messages``,
    ``transfer.accepted``). Increments must be non-negative.
gauges
    Point-in-time values with *high-water-mark* merge semantics: when
    two registries merge, the larger value wins. That keeps
    :meth:`merge` associative and commutative, which matters when
    per-rank registries are combined in reduction trees.
series
    Ordered lists of dict rows — one row per refinement iteration, per
    gossip stage, per LB episode. Merging concatenates.
timers
    Accumulated durations in seconds. Simulated layers add simulated
    seconds (:meth:`add_time`); wall-clock callers can use
    :meth:`timed` with any monotonic ``clock``.
events
    :class:`~repro.obs.events.Event` records (see that module).

Instrumented code takes an optional ``registry`` argument defaulting to
``None``; call sites guard with ``if registry is not None and
registry.enabled`` so an un-instrumented run pays **no** recording cost
and — crucially — consumes no RNG, leaving LB output byte-identical.
:data:`NULL_REGISTRY` (a :class:`NullRegistry`) is the null-object for
code that prefers unconditional attribute access over ``None`` checks.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Callable, Iterator, Mapping

from repro.obs.events import Event

__all__ = ["StatsRegistry", "NullRegistry", "NULL_REGISTRY", "ensure_registry"]


class StatsRegistry:
    """An in-memory sink for instrumentation data."""

    #: False only on :class:`NullRegistry`; hot paths check this once.
    enabled: bool = True

    def __init__(self) -> None:
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        self.series: dict[str, list[dict[str, Any]]] = {}
        self.timers: dict[str, float] = {}
        self.events: list[Event] = []

    # -- recording ---------------------------------------------------------

    def inc(self, name: str, value: float = 1) -> float:
        """Add ``value`` (>= 0) to counter ``name``; returns the new total."""
        if value < 0:
            raise ValueError(f"counter increment must be non-negative, got {value}")
        total = self.counters.get(name, 0) + value
        self.counters[name] = total
        return total

    def gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to ``value`` (last write wins locally)."""
        self.gauges[name] = float(value)

    def observe(self, name: str, **fields: Any) -> None:
        """Append one row of scalars to series ``name``."""
        self.series.setdefault(name, []).append(fields)

    def add_time(self, name: str, seconds: float) -> None:
        """Accumulate ``seconds`` (>= 0) into timer ``name``."""
        if seconds < 0:
            raise ValueError(f"timer increment must be non-negative, got {seconds}")
        self.timers[name] = self.timers.get(name, 0.0) + float(seconds)

    @contextmanager
    def timed(self, name: str, clock: Callable[[], float]) -> Iterator[None]:
        """Accumulate the duration of a ``with`` block into timer ``name``.

        ``clock`` is any monotonic float source — ``time.perf_counter``
        for wall time, ``lambda: engine.now`` for simulated time.
        """
        start = clock()
        try:
            yield
        finally:
            self.add_time(name, clock() - start)

    def event(
        self,
        kind: str,
        time: float | None = None,
        rank: int | None = None,
        **fields: Any,
    ) -> None:
        """Record a structured :class:`~repro.obs.events.Event`."""
        self.events.append(Event(kind=kind, fields=fields, time=time, rank=rank))

    # -- reading -----------------------------------------------------------

    def counter(self, name: str, default: float = 0) -> float:
        """Current value of counter ``name`` (``default`` if never bumped)."""
        return self.counters.get(name, default)

    def series_rows(self, name: str) -> list[dict[str, Any]]:
        """The rows of series ``name`` (empty list if absent)."""
        return self.series.get(name, [])

    def events_of(self, kind: str) -> list[Event]:
        """All recorded events of one kind, in record order."""
        return [e for e in self.events if e.kind == kind]

    # -- combination / serialization ---------------------------------------

    def __getstate__(self) -> dict[str, Any]:
        """Pickle via the JSON snapshot, the registry's stable format.

        Sub-registries cross process boundaries in the parallel-trials
        path (``repro.core.refinement`` with the process executor), so
        the pickle payload is pinned to :meth:`to_dict` /
        :meth:`from_dict` — adding an unpicklable field to the class
        later cannot silently break worker round-trips.
        """
        return self.to_dict()

    def __setstate__(self, state: dict[str, Any]) -> None:
        restored = StatsRegistry.from_dict(state)
        self.counters = restored.counters
        self.gauges = restored.gauges
        self.series = restored.series
        self.timers = restored.timers
        self.events = restored.events

    def merge(self, other: "StatsRegistry") -> "StatsRegistry":
        """Fold ``other`` into this registry; returns ``self``.

        Counters and timers add, gauges take the maximum (high-water
        mark), series and events concatenate — all associative and
        commutative up to series/event ordering, so per-rank registries
        can be reduced in any tree shape.
        """
        for name, value in other.counters.items():
            self.counters[name] = self.counters.get(name, 0) + value
        for name, value in other.timers.items():
            self.timers[name] = self.timers.get(name, 0.0) + value
        for name, value in other.gauges.items():
            current = self.gauges.get(name)
            self.gauges[name] = value if current is None else max(current, value)
        for name, rows in other.series.items():
            self.series.setdefault(name, []).extend(rows)
        self.events.extend(other.events)
        return self

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready snapshot of everything recorded."""
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "series": {name: list(rows) for name, rows in self.series.items()},
            "timers": dict(self.timers),
            "events": [e.to_dict() for e in self.events],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "StatsRegistry":
        """Rebuild a registry from :meth:`to_dict` output."""
        registry = cls()
        registry.counters.update(payload.get("counters", {}))
        registry.gauges.update(payload.get("gauges", {}))
        for name, rows in payload.get("series", {}).items():
            registry.series[name] = [dict(row) for row in rows]
        registry.timers.update(payload.get("timers", {}))
        registry.events = [Event.from_dict(e) for e in payload.get("events", [])]
        return registry

    def summary(self, max_series_rows: int = 5) -> str:
        """A human-readable digest (the ``repro stats`` CLI output)."""
        lines: list[str] = []
        if self.counters:
            lines.append("counters:")
            width = max(len(n) for n in self.counters)
            for name in sorted(self.counters):
                value = self.counters[name]
                shown = int(value) if float(value).is_integer() else value
                lines.append(f"  {name:<{width}}  {shown}")
        if self.gauges:
            lines.append("gauges:")
            width = max(len(n) for n in self.gauges)
            for name in sorted(self.gauges):
                lines.append(f"  {name:<{width}}  {self.gauges[name]:.6g}")
        if self.timers:
            lines.append("timers (s):")
            width = max(len(n) for n in self.timers)
            for name in sorted(self.timers):
                lines.append(f"  {name:<{width}}  {self.timers[name]:.6g}")
        for name in sorted(self.series):
            rows = self.series[name]
            lines.append(f"series {name} ({len(rows)} rows, last {max_series_rows}):")
            for row in rows[-max_series_rows:]:
                cells = ", ".join(
                    f"{k}={v:.4g}" if isinstance(v, float) else f"{k}={v}"
                    for k, v in row.items()
                )
                lines.append(f"  {cells}")
        if self.events:
            lines.append(f"events: {len(self.events)} "
                         f"({', '.join(sorted({e.kind for e in self.events}))})")
        return "\n".join(lines) if lines else "(empty registry)"


class NullRegistry(StatsRegistry):
    """No-op registry: accepts every call, records nothing.

    The null-object default for code that wants unconditional
    ``registry.inc(...)`` calls. Layers on hot paths should still
    prefer the ``registry is not None and registry.enabled`` guard,
    which also skips building the arguments.
    """

    enabled = False

    def inc(self, name: str, value: float = 1) -> float:
        return 0

    def gauge(self, name: str, value: float) -> None:
        pass

    def observe(self, name: str, **fields: Any) -> None:
        pass

    def add_time(self, name: str, seconds: float) -> None:
        pass

    @contextmanager
    def timed(self, name: str, clock: Callable[[], float]) -> Iterator[None]:
        yield

    def event(
        self,
        kind: str,
        time: float | None = None,
        rank: int | None = None,
        **fields: Any,
    ) -> None:
        pass

    def merge(self, other: StatsRegistry) -> StatsRegistry:
        return self


#: Shared null-object instance; never records anything.
NULL_REGISTRY = NullRegistry()


def ensure_registry(registry: StatsRegistry | None) -> StatsRegistry:
    """``registry`` if given, else :data:`NULL_REGISTRY`."""
    return registry if registry is not None else NULL_REGISTRY
