"""Structured event records for the observability layer.

An :class:`Event` is one discrete, schema-bearing occurrence — an LB
episode committing, a refinement run finishing — as opposed to the
monotonic counters and per-iteration series kept by
:class:`~repro.obs.registry.StatsRegistry`. Events carry:

``kind``
    A dotted lowercase identifier (``"lb.rebalance"``,
    ``"lb.episode"``) naming the event schema.
``time``
    Simulated seconds when known (event-level runtime), else ``None``
    (phase-level algorithms run in zero simulated time).
``rank``
    The rank the event is charged to, or ``None`` for global events.
``fields``
    Scalar payload (str/int/float/bool) specific to the kind.

Events serialize losslessly through :meth:`Event.to_dict` /
:meth:`Event.from_dict`, which is what
:func:`repro.analysis.io.save_stats` relies on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

__all__ = ["Event"]

#: Field values an event may carry (kept JSON-trivial on purpose).
Scalar = "str | int | float | bool | None"


@dataclass(frozen=True)
class Event:
    """One structured occurrence recorded by a registry."""

    kind: str
    fields: Mapping[str, Any] = field(default_factory=dict)
    time: float | None = None
    rank: int | None = None

    def __post_init__(self) -> None:
        if not self.kind:
            raise ValueError("event kind must be non-empty")
        for key, value in self.fields.items():
            if value is not None and not isinstance(value, (str, int, float, bool)):
                raise TypeError(
                    f"event field {key!r} must be a scalar, got {type(value).__name__}"
                )

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready representation."""
        payload: dict[str, Any] = {"kind": self.kind, "fields": dict(self.fields)}
        if self.time is not None:
            payload["time"] = float(self.time)
        if self.rank is not None:
            payload["rank"] = int(self.rank)
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Event":
        """Inverse of :meth:`to_dict`."""
        return cls(
            kind=str(payload["kind"]),
            fields=dict(payload.get("fields", {})),
            time=payload.get("time"),
            rank=payload.get("rank"),
        )
