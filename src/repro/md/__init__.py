"""Molecular-dynamics mini-app (the LeanMD workload class).

Menon & Kalé demonstrated GrapevineLB on molecular dynamics; § II lists
MD among the domains with inherent spatial non-uniformity. This package
provides the load structure of a cell-based short-range MD code: space
is cut into cells (the tasks), each cell's force work scales with
``n^2`` in its particle count plus pairwise terms with its neighbours,
and particles drift/diffuse between cells so the hot region moves —
another instance of the paper's "time-varying imbalance", with a
built-in communication graph (ghost-atom exchange between adjacent
cells) for the § VII communication-aware extension.
"""

from repro.md.app import MDConfig, MDSimulation
from repro.md.cells import CellGrid
from repro.md.scenario import DropletScenario

__all__ = ["CellGrid", "DropletScenario", "MDConfig", "MDSimulation"]
