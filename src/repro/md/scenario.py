"""Particle dynamics for the MD mini-app: drifting droplets.

A few dense droplets (clusters) in a dilute background gas. Droplets
drift coherently (their atoms share a drift velocity) and spread by
thermal diffusion; with periodic boundaries the dense regions — and the
``n^2`` force hot spots — sweep across the cell grid over time, slowly
enough for persistence to hold between phases.
"""

from __future__ import annotations

import numpy as np

from repro.util.validation import check_nonnegative, check_positive, coerce_rng

__all__ = ["DropletScenario"]


class DropletScenario:
    """Clustered particles with coherent drift + thermal diffusion."""

    def __init__(
        self,
        n_particles: int = 20_000,
        n_droplets: int = 3,
        droplet_fraction: float = 0.7,
        droplet_sigma: float = 0.05,
        drift_speed: float = 2e-3,
        diffusion: float = 3e-4,
        seed: int | np.random.Generator | None = 0,
    ) -> None:
        check_positive("n_particles", n_particles)
        check_positive("n_droplets", n_droplets)
        if not 0.0 <= droplet_fraction <= 1.0:
            raise ValueError("droplet_fraction must be in [0, 1]")
        check_positive("droplet_sigma", droplet_sigma)
        check_nonnegative("drift_speed", drift_speed)
        check_nonnegative("diffusion", diffusion)
        self.n_particles = int(n_particles)
        self.n_droplets = int(n_droplets)
        self.droplet_fraction = float(droplet_fraction)
        self.droplet_sigma = float(droplet_sigma)
        self.drift_speed = float(drift_speed)
        self.diffusion = float(diffusion)
        self._rng = coerce_rng(seed)
        self.positions = self._initial_positions()
        self.drift = self._initial_drift()

    def _initial_positions(self) -> np.ndarray:
        rng = self._rng
        n_cluster = int(self.n_particles * self.droplet_fraction)
        per = np.full(self.n_droplets, n_cluster // self.n_droplets)
        per[: n_cluster % self.n_droplets] += 1
        parts = []
        self._centers = rng.random((self.n_droplets, 2))
        for center, count in zip(self._centers, per):
            parts.append(rng.normal(center, self.droplet_sigma, size=(count, 2)))
        background = rng.random((self.n_particles - n_cluster, 2))
        parts.append(background)
        pos = np.concatenate(parts)
        self._droplet_of = np.concatenate(
            [np.full(c, k) for k, c in enumerate(per)] + [np.full(len(background), -1)]
        )
        return np.mod(pos, 1.0)

    def _initial_drift(self) -> np.ndarray:
        rng = self._rng
        angles = rng.uniform(0, 2 * np.pi, size=self.n_droplets)
        velocities = self.drift_speed * np.column_stack([np.cos(angles), np.sin(angles)])
        drift = np.zeros((self.n_particles, 2))
        clustered = self._droplet_of >= 0
        drift[clustered] = velocities[self._droplet_of[clustered]]
        return drift

    def step(self) -> None:
        """Advance one phase: coherent drift + diffusion, periodic wrap."""
        noise = self._rng.normal(0.0, self.diffusion, size=self.positions.shape)
        self.positions = np.mod(self.positions + self.drift + noise, 1.0)
        # Guard against the (measure-zero) wrap landing exactly on 1.0.
        np.clip(self.positions, 0.0, np.nextafter(1.0, 0.0), out=self.positions)

    def persistence(self, grid) -> float:
        """Correlation between consecutive phases' cell loads (diagnostic)."""
        before = grid.loads_from_counts(grid.counts(self.positions))
        saved_pos = self.positions.copy()
        saved_state = self._rng.bit_generator.state
        self.step()
        after = grid.loads_from_counts(grid.counts(self.positions))
        self.positions = saved_pos
        self._rng.bit_generator.state = saved_state
        if before.std() == 0 or after.std() == 0:
            return 1.0
        return float(np.corrcoef(before, after)[0, 1])
