"""The MD phase driver: n^2 cell costs under gossip balancing.

Each phase: particles drift/diffuse, per-cell force costs are computed
(quadratic in occupancy — droplet cells dominate), and the configured
balancer runs on schedule against the previous phase's measured loads.
Optionally wraps the balancer with the § VII communication-aware
refinement using the ghost-exchange graph.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.series import PhaseSeries
from repro.core.base import LoadBalancer
from repro.core.comm import CommAwareLB
from repro.core.distribution import Distribution
from repro.core.metrics import imbalance
from repro.md.cells import CellGrid
from repro.md.scenario import DropletScenario
from repro.util.validation import check_positive, coerce_rng

__all__ = ["MDConfig", "MDSimulation"]


@dataclass(frozen=True)
class MDConfig:
    """Parameters for one MD mini-app run."""

    n_ranks: int = 32
    gx: int = 32
    gy: int = 32
    n_phases: int = 40
    lb_period: int = 5
    n_particles: int = 20_000
    comm_aware: bool = False
    seed: int = 0

    def __post_init__(self) -> None:
        check_positive("n_ranks", self.n_ranks)
        check_positive("n_phases", self.n_phases)
        check_positive("lb_period", self.lb_period)


class MDSimulation:
    """Drive the MD mini-app for a number of phases."""

    def __init__(
        self,
        config: MDConfig | None = None,
        balancer: LoadBalancer | None = None,
        scenario: DropletScenario | None = None,
    ) -> None:
        self.config = config or MDConfig()
        cfg = self.config
        self.grid = CellGrid(cfg.gx, cfg.gy)
        self.scenario = scenario or DropletScenario(
            n_particles=cfg.n_particles, seed=cfg.seed
        )
        if balancer is None:
            from repro.core.tempered import TemperedLB

            balancer = TemperedLB(n_trials=1, n_iters=4, fanout=4, rounds=5)
        self.balancer = balancer
        self.assignment = self.grid.home_assignment(cfg.n_ranks)
        self.rng = coerce_rng(cfg.seed + 1)
        self.series = PhaseSeries()
        self._last_loads: np.ndarray | None = None

    def run(self, n_phases: int | None = None) -> PhaseSeries:
        """Execute phases; returns the per-phase series."""
        cfg = self.config
        total = cfg.n_phases if n_phases is None else int(n_phases)
        for phase in range(total):
            if phase > 0:
                self.scenario.step()
            counts = self.grid.counts(self.scenario.positions)
            loads = self.grid.loads_from_counts(counts)

            migrations = 0
            if (
                self.balancer is not None
                and self._last_loads is not None
                and phase % cfg.lb_period == 0
            ):
                migrations = self._rebalance(counts)

            rank_loads = np.bincount(
                self.assignment, weights=loads, minlength=cfg.n_ranks
            )
            graph = self.grid.comm_graph(counts)
            self.series.record(
                imbalance=imbalance(rank_loads),
                makespan=float(rank_loads.max()),
                migrations=float(migrations),
                off_rank_volume=graph.off_rank_volume(self.assignment),
                total_volume=graph.total_volume,
            )
            self._last_loads = loads
        return self.series

    def _rebalance(self, counts: np.ndarray) -> int:
        assert self._last_loads is not None
        cfg = self.config
        dist = Distribution(self._last_loads, self.assignment, cfg.n_ranks)
        balancer: LoadBalancer = self.balancer
        if cfg.comm_aware:
            balancer = CommAwareLB(
                self.grid.comm_graph(counts), inner=self.balancer, imbalance_slack=0.15
            )
        result = balancer.rebalance(dist, rng=self.rng)
        moved = int(np.count_nonzero(result.assignment != self.assignment))
        self.assignment = result.assignment.copy()
        return moved
