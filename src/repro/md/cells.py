"""Cell decomposition for short-range MD.

Space is a periodic unit square cut into a ``gx x gy`` grid of cells —
the "chares"/tasks of a LeanMD-style code. The per-cell force cost is

    load(cell) = self_cost * n^2 / 2 + pair_cost * n * sum(neighbour n) / 2

(half of each pairwise interaction charged to each side), computed
vectorized with periodic shifts. The ghost-exchange communication graph
connects adjacent cells with volume proportional to the boundary atom
counts.
"""

from __future__ import annotations

import numpy as np

from repro.core.comm import CommGraph
from repro.util.validation import check_nonnegative, check_positive

__all__ = ["CellGrid"]

#: The 8-neighbourhood (half listed; symmetric pairs derived).
_HALF_NEIGHBOURS = ((1, 0), (0, 1), (1, 1), (1, -1))


class CellGrid:
    """A periodic 2-D cell grid with force-cost and comm models."""

    def __init__(
        self,
        gx: int,
        gy: int,
        self_cost: float = 1e-6,
        pair_cost: float = 5e-7,
    ) -> None:
        check_positive("gx", gx)
        check_positive("gy", gy)
        check_nonnegative("self_cost", self_cost)
        check_nonnegative("pair_cost", pair_cost)
        self.gx = int(gx)
        self.gy = int(gy)
        self.self_cost = float(self_cost)
        self.pair_cost = float(pair_cost)

    @property
    def n_cells(self) -> int:
        return self.gx * self.gy

    def cell_of_position(self, positions: np.ndarray) -> np.ndarray:
        """Cell index per particle (positions in the unit square)."""
        positions = np.asarray(positions, dtype=np.float64)
        if positions.ndim != 2 or positions.shape[1] != 2:
            raise ValueError("positions must have shape (n, 2)")
        if positions.size and (positions.min() < 0 or positions.max() >= 1.0):
            raise ValueError("positions must lie in [0, 1)")
        ci = np.minimum((positions[:, 0] * self.gx).astype(np.int64), self.gx - 1)
        cj = np.minimum((positions[:, 1] * self.gy).astype(np.int64), self.gy - 1)
        return cj * self.gx + ci

    def counts(self, positions: np.ndarray) -> np.ndarray:
        """Particles per cell."""
        if len(positions) == 0:
            return np.zeros(self.n_cells, dtype=np.int64)
        return np.bincount(self.cell_of_position(positions), minlength=self.n_cells)

    def loads_from_counts(self, counts: np.ndarray) -> np.ndarray:
        """Per-cell force-computation cost (vectorized periodic stencil)."""
        counts = np.asarray(counts, dtype=np.float64)
        if counts.shape != (self.n_cells,):
            raise ValueError("need one count per cell")
        grid = counts.reshape(self.gy, self.gx)
        neighbour_sum = np.zeros_like(grid)
        for dj, di in (
            (0, 1), (0, -1), (1, 0), (-1, 0), (1, 1), (1, -1), (-1, 1), (-1, -1),
        ):
            neighbour_sum += np.roll(np.roll(grid, dj, axis=0), di, axis=1)
        load = (
            self.self_cost * grid * grid / 2.0
            + self.pair_cost * grid * neighbour_sum / 2.0
        )
        return load.reshape(-1)

    def comm_graph(self, counts: np.ndarray, bytes_per_atom: float = 64.0) -> CommGraph:
        """Ghost-exchange graph: adjacent cells trade boundary atoms.

        Edge volume = ``bytes_per_atom * (n_a + n_b)`` for every
        neighbouring cell pair (periodic 8-neighbourhood, each pair once).
        """
        counts = np.asarray(counts, dtype=np.float64)
        if counts.shape != (self.n_cells,):
            raise ValueError("need one count per cell")
        src, dst, vol = [], [], []
        for dj, di in _HALF_NEIGHBOURS:
            for j in range(self.gy):
                for i in range(self.gx):
                    a = j * self.gx + i
                    b = ((j + dj) % self.gy) * self.gx + (i + di) % self.gx
                    if a == b:
                        continue
                    src.append(a)
                    dst.append(b)
                    vol.append(bytes_per_atom * (counts[a] + counts[b]))
        return CommGraph(
            np.asarray(src), np.asarray(dst), np.asarray(vol), self.n_cells
        )

    def home_assignment(self, n_ranks: int) -> np.ndarray:
        """Blocked cell->rank mapping (row blocks of the grid)."""
        check_positive("n_ranks", n_ranks)
        return (np.arange(self.n_cells) * n_ranks) // self.n_cells
