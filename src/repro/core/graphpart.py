"""Graph partitioning: BFS region growth + Kernighan–Lin refinement.

The role Zoltan/ParMetis play in the paper's § I–II discussion: cut a
weighted (dual) graph into balanced, low-cut, mostly contiguous parts.
Used by the unstructured-mesh substrate to build the SPMD decomposition
and the per-rank color chunks. Self-contained CSR-style implementation
(no graph library needed).
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.util.validation import check_positive, coerce_rng

__all__ = ["AdjacencyGraph", "grow_partition", "refine_partition", "edge_cut"]


class AdjacencyGraph:
    """An undirected graph in CSR form with vertex and edge weights."""

    def __init__(
        self,
        n_vertices: int,
        edges: np.ndarray,
        edge_weights: np.ndarray | None = None,
        vertex_weights: np.ndarray | None = None,
    ) -> None:
        check_positive("n_vertices", n_vertices)
        self.n_vertices = int(n_vertices)
        edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
        if edges.size and (edges.min() < 0 or edges.max() >= n_vertices):
            raise ValueError("edge endpoints out of range")
        if edges.size and (edges[:, 0] == edges[:, 1]).any():
            raise ValueError("self-loops are not allowed")
        if edge_weights is None:
            edge_weights = np.ones(len(edges))
        edge_weights = np.asarray(edge_weights, dtype=np.float64)
        if edge_weights.shape != (len(edges),):
            raise ValueError("need one weight per edge")
        if vertex_weights is None:
            vertex_weights = np.ones(n_vertices)
        self.vertex_weights = np.asarray(vertex_weights, dtype=np.float64)
        if self.vertex_weights.shape != (self.n_vertices,):
            raise ValueError("need one weight per vertex")

        # Build CSR: duplicate each undirected edge in both directions.
        src = np.concatenate([edges[:, 0], edges[:, 1]])
        dst = np.concatenate([edges[:, 1], edges[:, 0]])
        w = np.concatenate([edge_weights, edge_weights])
        order = np.argsort(src, kind="stable")
        self._dst = dst[order]
        self._w = w[order]
        counts = np.bincount(src, minlength=self.n_vertices)
        self._offsets = np.concatenate([[0], np.cumsum(counts)])

    def neighbors(self, v: int) -> tuple[np.ndarray, np.ndarray]:
        """``(neighbor ids, edge weights)`` of vertex ``v``."""
        lo, hi = self._offsets[v], self._offsets[v + 1]
        return self._dst[lo:hi], self._w[lo:hi]

    @property
    def total_vertex_weight(self) -> float:
        return float(self.vertex_weights.sum())


def edge_cut(graph: AdjacencyGraph, parts: np.ndarray) -> float:
    """Total weight of edges crossing part boundaries."""
    parts = np.asarray(parts)
    total = 0.0
    for v in range(graph.n_vertices):
        nbrs, weights = graph.neighbors(v)
        crossing = parts[nbrs] != parts[v]
        total += float(weights[crossing].sum())
    return total / 2.0  # each undirected edge visited twice


def grow_partition(
    graph: AdjacencyGraph,
    n_parts: int,
    rng: np.random.Generator | int | None = 0,
) -> np.ndarray:
    """Greedy BFS region growth into ``n_parts`` weight-balanced parts.

    Seeds are spread by farthest-point BFS; parts then take turns (the
    lightest part first) absorbing a frontier vertex, preferring the
    frontier vertex with the strongest connection to the part.
    """
    check_positive("n_parts", n_parts)
    rng = coerce_rng(rng)
    n = graph.n_vertices
    n_parts = min(int(n_parts), n)
    parts = np.full(n, -1, dtype=np.int64)

    seeds = _spread_seeds(graph, n_parts, rng)
    part_weight = np.zeros(n_parts)
    # Per-part frontier heaps of (-connection, tiebreak, vertex).
    frontiers: list[list[tuple[float, int, int]]] = [[] for _ in range(n_parts)]
    counter = 0
    for part, seed in enumerate(seeds):
        parts[seed] = part
        part_weight[part] += graph.vertex_weights[seed]
        for nb, w in zip(*graph.neighbors(seed)):
            heapq.heappush(frontiers[part], (-float(w), counter, int(nb)))
            counter += 1

    assigned = n_parts
    while assigned < n:
        part = int(np.argmin(part_weight))
        vertex = None
        while frontiers[part]:
            _, _, candidate = heapq.heappop(frontiers[part])
            if parts[candidate] == -1:
                vertex = candidate
                break
        if vertex is None:
            # Frontier exhausted (disconnected region): steal the first
            # unassigned vertex to keep every vertex covered.
            unassigned = np.flatnonzero(parts == -1)
            if unassigned.size == 0:
                break
            vertex = int(unassigned[0])
            part_weight[part] += 1e-12  # avoid re-picking an empty island part
        parts[vertex] = part
        part_weight[part] += graph.vertex_weights[vertex]
        for nb, w in zip(*graph.neighbors(vertex)):
            if parts[nb] == -1:
                heapq.heappush(frontiers[part], (-float(w), counter, int(nb)))
                counter += 1
        assigned += 1
    return parts


def _spread_seeds(
    graph: AdjacencyGraph, n_parts: int, rng: np.random.Generator
) -> list[int]:
    """Farthest-point seeding by repeated BFS distance maximization."""
    n = graph.n_vertices
    first = int(rng.integers(0, n))
    seeds = [first]
    dist = _bfs_distance(graph, first)
    for _ in range(n_parts - 1):
        candidate = int(np.argmax(np.where(np.isfinite(dist), dist, -1.0)))
        if candidate in seeds:
            remaining = [v for v in range(n) if v not in seeds]
            candidate = int(rng.choice(remaining))
        seeds.append(candidate)
        dist = np.minimum(dist, _bfs_distance(graph, candidate))
    return seeds


def _bfs_distance(graph: AdjacencyGraph, source: int) -> np.ndarray:
    dist = np.full(graph.n_vertices, np.inf)
    dist[source] = 0.0
    queue = [source]
    while queue:
        nxt = []
        for v in queue:
            for nb in graph.neighbors(v)[0]:
                if dist[nb] == np.inf:
                    dist[nb] = dist[v] + 1
                    nxt.append(int(nb))
        queue = nxt
    return dist


def refine_partition(
    graph: AdjacencyGraph,
    parts: np.ndarray,
    n_parts: int,
    passes: int = 2,
    balance_tol: float = 0.1,
) -> np.ndarray:
    """Kernighan–Lin-style boundary refinement.

    Sweeps boundary vertices; a vertex moves to the neighbouring part
    with the largest positive cut gain, provided the move keeps both
    parts within ``(1 + balance_tol)`` of the average part weight.
    """
    check_positive("passes", passes)
    parts = np.array(parts, dtype=np.int64, copy=True)
    part_weight = np.zeros(n_parts)
    np.add.at(part_weight, parts, graph.vertex_weights)
    limit = (1.0 + balance_tol) * graph.total_vertex_weight / n_parts

    for _ in range(passes):
        moved = 0
        for v in range(graph.n_vertices):
            nbrs, weights = graph.neighbors(v)
            if nbrs.size == 0:
                continue
            home = parts[v]
            # Connection weight to each adjacent part.
            conn: dict[int, float] = {}
            for nb, w in zip(nbrs, weights):
                conn[parts[nb]] = conn.get(parts[nb], 0.0) + float(w)
            internal = conn.get(home, 0.0)
            best_part, best_gain = home, 0.0
            for part, weight in conn.items():
                if part == home:
                    continue
                gain = weight - internal
                if gain > best_gain and part_weight[part] + graph.vertex_weights[v] <= limit:
                    best_part, best_gain = part, gain
            if best_part != home:
                part_weight[home] -= graph.vertex_weights[v]
                part_weight[best_part] += graph.vertex_weights[v]
                parts[v] = best_part
                moved += 1
        if moved == 0:
            break
    return parts
