"""Per-rank partial knowledge of underloaded ranks (the sets ``S^p``).

During the inform stage, every rank accumulates a set of underloaded
ranks it has heard about, together with those ranks' (snapshot) loads.
At 2^12 ranks a Python ``set`` per rank makes the knowledge merge the
bottleneck, so two dense representations are provided:

:class:`KnowledgeBitmap`
    One boolean row per rank (``P x P`` bytes); a merge is a vectorized
    OR. The historical default and the reference representation.

:class:`PackedKnowledgeBitmap`
    The same matrix bit-packed into ``P x ceil(P/8)`` uint8 bytes
    (``np.packbits`` layout, big bit order). Merges are byte-wise ORs,
    set sizes are ``np.bitwise_count`` popcounts, and memory drops 8x
    (4096 ranks: 16.7 MB -> 2.1 MB), opening 2^15-rank experiments.
    This is what the batched gossip engine uses.

Both dense forms still cost O(P^2) bits — 2 GiB packed at 2^17 ranks —
so a third, sparse representation covers the high-rank-count regime:

:class:`SparseKnowledge`
    One sorted ``int32`` id shard per rank. Memory is O(sum |S^p|), so
    under a ``max_known`` cap of c it is ~``4cP`` bytes (131072 ranks,
    c=512: 268 MB vs 2 GiB packed). Rows exchanged by merges are id
    arrays rather than bit rows; the batched gossip engine selects this
    backend automatically at high rank counts (see ``GossipConfig``).

Loads do not change during an inform stage, so ``LOAD^p`` is simply the
global load snapshot restricted to ``S^p`` (see DESIGN.md § 5).
"""

from __future__ import annotations

import numpy as np

from repro.core._kernels import get_gossip_kernels
from repro.util.validation import check_positive

__all__ = ["KnowledgeBitmap", "PackedKnowledgeBitmap", "SparseKnowledge"]


def _coverage_denominator(underloaded: np.ndarray) -> int:
    """``|U|`` for a boolean mask or an array of rank ids."""
    if underloaded.dtype == bool:
        return int(np.count_nonzero(underloaded))
    return len(underloaded)


class KnowledgeBitmap:
    """Knowledge sets ``S^p`` for all ranks as a ``P x P`` boolean matrix.

    ``rows[p, q]`` is True iff rank ``p`` knows rank ``q`` is underloaded.
    """

    __slots__ = ("n_ranks", "rows")

    def __init__(self, n_ranks: int) -> None:
        check_positive("n_ranks", n_ranks)
        self.n_ranks = int(n_ranks)
        self.rows = np.zeros((self.n_ranks, self.n_ranks), dtype=bool)

    def add(self, rank: int, members: np.ndarray | list[int]) -> None:
        """Add ``members`` to ``S^rank``."""
        self.rows[rank, members] = True

    def add_self(self, ranks: np.ndarray) -> None:
        """Seed each rank in ``ranks`` with knowledge of itself (Alg. 1 l.7)."""
        self.rows[ranks, ranks] = True

    def clear(self) -> None:
        """Empty every ``S^p``."""
        self.rows[:] = False

    def merge(self, dst: int, src_row: np.ndarray) -> None:
        """Merge a received knowledge row into ``S^dst`` (Alg. 1 l.16-17)."""
        np.logical_or(self.rows[dst], src_row, out=self.rows[dst])

    def merge_many(self, dsts: np.ndarray, src_row: np.ndarray) -> None:
        """Merge one row into several destinations — a whole fan-out at
        once. OR is idempotent and the row is fixed, so this equals
        :meth:`merge` applied to each destination in turn."""
        self.rows[dsts] |= src_row

    def known(self, rank: int) -> np.ndarray:
        """``S^rank`` as a sorted array of rank ids."""
        return np.flatnonzero(self.rows[rank])

    def knows(self, rank: int, other: int) -> bool:
        """Whether ``rank`` knows ``other`` is underloaded."""
        return bool(self.rows[rank, other])

    def counts(self) -> np.ndarray:
        """``|S^p|`` for every rank ``p``."""
        return self.rows.sum(axis=1)

    def unknown_targets(self, rank: int) -> np.ndarray:
        """``P \\ S^p`` — candidate gossip targets avoiding known ranks
        (Alg. 1 l.20). The sender itself is also excluded."""
        mask = ~self.rows[rank]
        mask[rank] = False
        return np.flatnonzero(mask)

    def discard_members(self, ranks: np.ndarray) -> None:
        """Remove ``ranks`` from every ``S^p`` (column clear).

        Used when membership changes: a crashed or suspected rank must
        stop being a transfer candidate everywhere, even if gossip
        already spread knowledge of it.
        """
        ranks = np.asarray(ranks, dtype=np.int64)
        if ranks.size:
            self.rows[:, ranks] = False

    def coverage(self, underloaded: np.ndarray) -> float:
        """Mean fraction of the underloaded set each rank knows.

        Used by the gossip-convergence analysis: with ``k >= log_f P``
        rounds this approaches 1 with high probability. ``underloaded``
        may be a boolean mask or an array of rank ids; both index the
        same columns.
        """
        n_under = _coverage_denominator(underloaded)
        if n_under == 0:
            return 1.0
        per_rank = self.rows[:, underloaded].sum(axis=1)
        return float(per_rank.mean() / n_under)

    def memory_bytes(self) -> int:
        """Bytes held by the boolean matrix (the ``P^2`` bound)."""
        return int(self.rows.nbytes)


class PackedKnowledgeBitmap:
    """Knowledge sets ``S^p`` bit-packed: ``P x ceil(P/8)`` uint8 bytes.

    Same API and semantics as :class:`KnowledgeBitmap`, but rows are
    ``np.packbits`` bit rows (big bit order: rank ``q`` lives in byte
    ``q >> 3``, bit value ``128 >> (q & 7)``). Methods that exchange
    rows (:meth:`merge`, :meth:`merge_many`) take/return *packed* rows;
    mixing packed and boolean rows is a bug. The :attr:`rows` property
    unpacks the full boolean matrix for analysis/test code — it is a
    read-only copy, never a view.

    Memory is ``P * ceil(P/8)`` bytes plus O(P) object overhead — the
    8x saving that makes 2^15-rank inform stages practical (32768
    ranks: 1 GiB boolean -> 128 MiB packed).
    """

    __slots__ = ("n_ranks", "n_bytes", "packed")

    def __init__(self, n_ranks: int) -> None:
        check_positive("n_ranks", n_ranks)
        self.n_ranks = int(n_ranks)
        self.n_bytes = (self.n_ranks + 7) >> 3
        self.packed = np.zeros((self.n_ranks, self.n_bytes), dtype=np.uint8)

    # -- bit helpers --------------------------------------------------------

    @staticmethod
    def _bits(ids: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """(byte index, bit value) for each rank id, big bit order."""
        ids = np.asarray(ids, dtype=np.int64)
        return ids >> 3, (np.uint8(128) >> (ids & 7).astype(np.uint8))

    def _unpack_row(self, rank: int) -> np.ndarray:
        return np.unpackbits(self.packed[rank], count=self.n_ranks).view(bool)

    # -- KnowledgeBitmap API ------------------------------------------------

    def add(self, rank: int, members: np.ndarray | list[int]) -> None:
        """Add ``members`` to ``S^rank``."""
        members = np.asarray(members, dtype=np.int64)
        if members.size == 0:
            return
        byte, bit = self._bits(members)
        # Several members can land in the same byte; fancy |= would drop
        # all but one, so accumulate with a ufunc scatter.
        np.bitwise_or.at(self.packed[rank], byte, bit)

    def add_self(self, ranks: np.ndarray) -> None:
        """Seed each rank in ``ranks`` with knowledge of itself (Alg. 1 l.7)."""
        ranks = np.asarray(ranks, dtype=np.int64)
        if ranks.size == 0:
            return
        byte, bit = self._bits(ranks)
        self.packed[ranks, byte] |= bit

    def clear(self) -> None:
        """Empty every ``S^p``."""
        self.packed[:] = 0

    def merge(self, dst: int, src_row: np.ndarray) -> None:
        """Merge a received *packed* row into ``S^dst`` (Alg. 1 l.16-17)."""
        self.packed[dst] |= src_row

    def merge_many(self, dsts: np.ndarray, src_row: np.ndarray) -> None:
        """Merge one packed row into several destinations at once."""
        self.packed[dsts] |= src_row

    def known(self, rank: int) -> np.ndarray:
        """``S^rank`` as a sorted array of rank ids."""
        return np.flatnonzero(self._unpack_row(rank))

    def knows(self, rank: int, other: int) -> bool:
        """Whether ``rank`` knows ``other`` is underloaded."""
        other = int(other)
        return bool(self.packed[rank, other >> 3] & (128 >> (other & 7)))

    def counts(self) -> np.ndarray:
        """``|S^p|`` for every rank ``p`` (vectorized popcount)."""
        return np.bitwise_count(self.packed).sum(axis=1, dtype=np.int64)

    def unknown_targets(self, rank: int) -> np.ndarray:
        """``P \\ S^p`` minus self — candidate targets (Alg. 1 l.20)."""
        mask = ~self._unpack_row(rank)
        mask[rank] = False
        return np.flatnonzero(mask)

    def discard_members(self, ranks: np.ndarray) -> None:
        """Remove ``ranks`` from every ``S^p`` (bit-column clear).

        Several discarded ranks can share a byte, so the clear mask is
        accumulated with a ufunc scatter before the single AND pass.
        """
        ranks = np.asarray(ranks, dtype=np.int64)
        if ranks.size == 0:
            return
        byte, bit = self._bits(ranks)
        mask = np.full(self.n_bytes, 0xFF, dtype=np.uint8)
        np.bitwise_and.at(mask, byte, ~bit)
        self.packed &= mask

    def coverage(self, underloaded: np.ndarray) -> float:
        """Mean fraction of the underloaded set each rank knows.

        Computed without unpacking: AND every row with the packed
        underloaded mask and popcount the intersection.
        """
        n_under = _coverage_denominator(underloaded)
        if n_under == 0:
            return 1.0
        if underloaded.dtype == bool:
            mask = np.asarray(underloaded, dtype=bool)
        else:
            mask = np.zeros(self.n_ranks, dtype=bool)
            mask[underloaded] = True
        packed_mask = np.packbits(mask)
        per_rank = np.bitwise_count(self.packed & packed_mask).sum(
            axis=1, dtype=np.int64
        )
        return float(per_rank.mean() / n_under)

    @property
    def rows(self) -> np.ndarray:
        """The full boolean matrix, unpacked on demand (read-only copy).

        Provided so analysis and test code written against
        :class:`KnowledgeBitmap` keeps working; mutations must go
        through the methods, so the copy is marked non-writeable.
        """
        out = np.unpackbits(self.packed, axis=1, count=self.n_ranks).view(bool)
        out.flags.writeable = False
        return out

    def memory_bytes(self) -> int:
        """Bytes held by the packed matrix (the ``P^2/8`` bound)."""
        return int(self.packed.nbytes)


class SparseKnowledge:
    """Knowledge sets ``S^p`` as per-rank sorted ``int32`` id shards.

    Same API and semantics as :class:`KnowledgeBitmap`, but each rank's
    set is a sorted, duplicate-free array of member rank ids instead of
    a row of P bits. Methods that exchange rows (:meth:`merge`,
    :meth:`merge_many`) take sorted id arrays; the :attr:`rows` property
    materializes the boolean matrix for analysis/test code (read-only
    copy — only sensible at small rank counts).

    Shard arrays are treated as immutable: every mutation *replaces* a
    rank's shard, so references handed out earlier (e.g. a gossip
    round's payload snapshot) stay valid. Memory is O(sum |S^p|) plus
    O(P) list overhead — with the inform stage's ``max_known`` cap this
    is what makes 2^17-rank episodes fit in a laptop's RAM (131072
    ranks, cap 512: ~268 MB of shards vs 2 GiB bit-packed).
    """

    __slots__ = ("n_ranks", "shards")

    _ID_DTYPE = np.int32

    def __init__(self, n_ranks: int) -> None:
        check_positive("n_ranks", n_ranks)
        self.n_ranks = int(n_ranks)
        empty = np.empty(0, dtype=self._ID_DTYPE)
        self.shards: list[np.ndarray] = [empty] * self.n_ranks

    def _as_ids(self, members: np.ndarray | list[int]) -> np.ndarray:
        ids = np.asarray(members, dtype=self._ID_DTYPE)
        return ids

    # -- KnowledgeBitmap API ------------------------------------------------

    def add(self, rank: int, members: np.ndarray | list[int]) -> None:
        """Add ``members`` to ``S^rank``."""
        ids = self._as_ids(members)
        if ids.size == 0:
            return
        self.shards[rank] = np.union1d(self.shards[rank], ids)

    def add_self(self, ranks: np.ndarray) -> None:
        """Seed each rank in ``ranks`` with knowledge of itself (Alg. 1 l.7)."""
        ranks = np.asarray(ranks, dtype=np.int64)
        shards = self.shards
        for r in ranks.tolist():
            shard = shards[r]
            if shard.size == 0:
                shards[r] = np.array([r], dtype=self._ID_DTYPE)
            else:
                shards[r] = np.union1d(shard, np.array([r], dtype=self._ID_DTYPE))

    def clear(self) -> None:
        """Empty every ``S^p``."""
        empty = np.empty(0, dtype=self._ID_DTYPE)
        self.shards = [empty] * self.n_ranks

    def merge(self, dst: int, src_ids: np.ndarray) -> None:
        """Merge a received id shard into ``S^dst`` (Alg. 1 l.16-17)."""
        self.add(dst, src_ids)

    def merge_many(self, dsts: np.ndarray, src_ids: np.ndarray) -> None:
        """Merge one id shard into several destinations at once."""
        ids = self._as_ids(src_ids)
        for dst in np.asarray(dsts, dtype=np.int64).tolist():
            self.shards[dst] = np.union1d(self.shards[dst], ids)

    def known(self, rank: int) -> np.ndarray:
        """``S^rank`` as a sorted array of rank ids."""
        return self.shards[rank].astype(np.int64)

    def knows(self, rank: int, other: int) -> bool:
        """Whether ``rank`` knows ``other`` is underloaded."""
        shard = self.shards[rank]
        pos = int(np.searchsorted(shard, other))
        return pos < shard.size and int(shard[pos]) == int(other)

    def counts(self) -> np.ndarray:
        """``|S^p|`` for every rank ``p``."""
        return np.fromiter(
            (s.size for s in self.shards), dtype=np.int64, count=self.n_ranks
        )

    def unknown_targets(self, rank: int) -> np.ndarray:
        """``P \\ S^p`` minus self — candidate targets (Alg. 1 l.20)."""
        mask = np.ones(self.n_ranks, dtype=bool)
        mask[self.shards[rank]] = False
        mask[rank] = False
        return np.flatnonzero(mask)

    def discard_members(self, ranks: np.ndarray) -> None:
        """Remove ``ranks`` from every ``S^p``."""
        ranks = np.asarray(ranks, dtype=self._ID_DTYPE)
        if ranks.size == 0:
            return
        drop = np.unique(ranks)
        shards = self.shards
        for p, shard in enumerate(shards):
            if shard.size == 0:
                continue
            keep = shard[~np.isin(shard, drop, assume_unique=True)]
            if keep.size != shard.size:
                shards[p] = keep

    def coverage(self, underloaded: np.ndarray) -> float:
        """Mean fraction of the underloaded set each rank knows.

        One flat pass: concatenate every shard, test membership against
        the underloaded mask, and segment-sum the hits per rank — via
        the jitted :func:`repro.core._kernels.coverage_hits` kernel
        when numba is installed, the cumulative-sum formulation
        otherwise (identical integer counts either way).
        """
        n_under = _coverage_denominator(underloaded)
        if n_under == 0:
            return 1.0
        if underloaded.dtype == bool:
            mask = np.asarray(underloaded, dtype=bool)
        else:
            mask = np.zeros(self.n_ranks, dtype=bool)
            mask[underloaded] = True
        lens = self.counts()
        if int(lens.sum()) == 0:
            return 0.0
        flat = np.concatenate(self.shards)
        kernels = get_gossip_kernels()
        if kernels is not None:
            per_rank = np.empty(self.n_ranks, dtype=np.int64)
            kernels[2](flat, lens, np.ascontiguousarray(mask), per_rank)
        else:
            hits = np.concatenate(([0], np.cumsum(mask[flat], dtype=np.int64)))
            ends = np.cumsum(lens)
            per_rank = hits[ends] - hits[ends - lens]
        return float(per_rank.mean() / n_under)

    @property
    def rows(self) -> np.ndarray:
        """The full boolean matrix, materialized (read-only copy).

        O(P^2) — for analysis and tests at small rank counts only.
        """
        out = np.zeros((self.n_ranks, self.n_ranks), dtype=bool)
        for p, shard in enumerate(self.shards):
            out[p, shard] = True
        out.flags.writeable = False
        return out

    def memory_bytes(self) -> int:
        """Bytes actually held by the shard arrays.

        Counted per distinct array *object*, not per rank: the fused
        gossip driver interns converged shards, so thousands of ranks
        may reference one physical array. Summing ``nbytes`` per rank
        would report that storage once per referencing rank — at 4k
        ranks / cap 512 that inflated 8 MB of logical entries into the
        benchmark report when the resident footprint was a fraction of
        it.
        """
        seen: set[int] = set()
        total = 0
        for s in self.shards:
            key = id(s)
            if key not in seen:
                seen.add(key)
                total += s.nbytes
        return int(total)
