"""Per-rank partial knowledge of underloaded ranks (the sets ``S^p``).

During the inform stage, every rank accumulates a set of underloaded
ranks it has heard about, together with those ranks' (snapshot) loads.
At 2^12 ranks a Python ``set`` per rank makes the knowledge merge the
bottleneck, so the default representation is a dense boolean bitmap
(one row per rank) where a merge is a vectorized OR. Loads do not
change during an inform stage, so ``LOAD^p`` is simply the global load
snapshot restricted to ``S^p`` (see DESIGN.md § 5).
"""

from __future__ import annotations

import numpy as np

from repro.util.validation import check_positive

__all__ = ["KnowledgeBitmap"]


class KnowledgeBitmap:
    """Knowledge sets ``S^p`` for all ranks as a ``P x P`` boolean matrix.

    ``rows[p, q]`` is True iff rank ``p`` knows rank ``q`` is underloaded.
    """

    __slots__ = ("n_ranks", "rows")

    def __init__(self, n_ranks: int) -> None:
        check_positive("n_ranks", n_ranks)
        self.n_ranks = int(n_ranks)
        self.rows = np.zeros((self.n_ranks, self.n_ranks), dtype=bool)

    def add(self, rank: int, members: np.ndarray | list[int]) -> None:
        """Add ``members`` to ``S^rank``."""
        self.rows[rank, members] = True

    def add_self(self, ranks: np.ndarray) -> None:
        """Seed each rank in ``ranks`` with knowledge of itself (Alg. 1 l.7)."""
        self.rows[ranks, ranks] = True

    def merge(self, dst: int, src_row: np.ndarray) -> None:
        """Merge a received knowledge row into ``S^dst`` (Alg. 1 l.16-17)."""
        np.logical_or(self.rows[dst], src_row, out=self.rows[dst])

    def merge_many(self, dsts: np.ndarray, src_row: np.ndarray) -> None:
        """Merge one row into several destinations — a whole fan-out at
        once. OR is idempotent and the row is fixed, so this equals
        :meth:`merge` applied to each destination in turn."""
        self.rows[dsts] |= src_row

    def known(self, rank: int) -> np.ndarray:
        """``S^rank`` as a sorted array of rank ids."""
        return np.flatnonzero(self.rows[rank])

    def knows(self, rank: int, other: int) -> bool:
        """Whether ``rank`` knows ``other`` is underloaded."""
        return bool(self.rows[rank, other])

    def counts(self) -> np.ndarray:
        """``|S^p|`` for every rank ``p``."""
        return self.rows.sum(axis=1)

    def unknown_targets(self, rank: int) -> np.ndarray:
        """``P \\ S^p`` — candidate gossip targets avoiding known ranks
        (Alg. 1 l.20). The sender itself is also excluded."""
        mask = ~self.rows[rank]
        mask[rank] = False
        return np.flatnonzero(mask)

    def coverage(self, underloaded: np.ndarray) -> float:
        """Mean fraction of the underloaded set each rank knows.

        Used by the gossip-convergence analysis: with ``k >= log_f P``
        rounds this approaches 1 with high probability.
        """
        n_under = int(np.count_nonzero(underloaded)) if underloaded.dtype == bool else len(
            underloaded
        )
        if n_under == 0:
            return 1.0
        if underloaded.dtype == bool:
            per_rank = self.rows[:, underloaded].sum(axis=1)
        else:
            per_rank = self.rows[:, underloaded].sum(axis=1)
        return float(per_rank.mean() / n_under)
