"""Algorithm 2, BUILDCMF — recipient-selection distributions.

An overloaded rank picks the recipient of each candidate transfer by
sampling a cumulative mass function over the underloaded ranks it knows.
A rank's probability mass is proportional to its *known* load headroom
``1 - LOAD^p(i) / l_s``:

``original`` (GrapevineLB)
    ``l_s = l_ave``. Well-defined only while every known load is below
    the average — true at inform time, but violated once the sender's
    own bookkeeping pushes a recipient past the average.

``modified`` (TemperedLB, § V-C)
    ``l_s = max(l_ave, max LOAD^p)``. Keeps every mass non-negative when
    the relaxed criterion lets recipients exceed the average; ranks at
    exactly ``l_s`` get zero mass.

TemperedLB additionally *recomputes* the CMF after every accepted
transfer (Alg. 2 l.7) so the updated knowledge steers later picks; the
original computes it once (l.5).

Recomputing by calling :func:`build_cmf` from scratch costs O(n) per
accepted transfer, which makes Algorithm 2 O(tasks x known_ranks) per
rank per iteration and dominates wall-time at the paper's § V analysis
scale. :class:`IncrementalCMF` maintains the same distribution under
single-recipient load updates in O(log n) via a Fenwick (binary
indexed) tree over the headroom masses, falling back to a full rebuild
only when the scaling factor ``l_s`` itself changes. Its contract with
:func:`build_cmf` is exact: the mass vector, the ``None``/exhausted
condition and the materialized prefix sums are identical
(``tests/core/test_cmf_incremental.py`` proves this property-style).
"""

from __future__ import annotations

import numpy as np

from repro.util.validation import check_in

__all__ = [
    "CMF_ORIGINAL",
    "CMF_MODIFIED",
    "CMF_UPDATE_INCREMENTAL",
    "CMF_UPDATE_REBUILD",
    "CMF_UPDATES",
    "IncrementalCMF",
    "build_cmf",
    "sample_cmf",
]

CMF_ORIGINAL = "original"
CMF_MODIFIED = "modified"

#: CMF maintenance strategies for the transfer stage's recomputation
#: (Alg. 2 l.7): ``incremental`` is the O(log n) fast path, ``rebuild``
#: the pre-optimization full :func:`build_cmf` per accepted transfer.
CMF_UPDATE_INCREMENTAL = "incremental"
CMF_UPDATE_REBUILD = "rebuild"
CMF_UPDATES = (CMF_UPDATE_INCREMENTAL, CMF_UPDATE_REBUILD)


def build_cmf(
    known_loads: np.ndarray, l_ave: float, variant: str = CMF_MODIFIED
) -> np.ndarray | None:
    """Build the CMF ``F`` over known underloaded ranks (Alg. 2 l.21-31).

    Parameters
    ----------
    known_loads:
        ``LOAD^p`` — the sender's current knowledge of each candidate's
        load, aligned with its candidate list.
    l_ave:
        Global average rank load from the statistics all-reduce.
    variant:
        ``"original"`` or ``"modified"``.

    Returns
    -------
    The cumulative masses (last entry 1.0), or ``None`` when no candidate
    has positive mass (e.g. empty candidate list, or every known load at
    or above ``l_s``) — the caller must then stop transferring.
    """
    check_in("cmf", variant, (CMF_ORIGINAL, CMF_MODIFIED))
    loads = np.asarray(known_loads, dtype=np.float64)
    if loads.size == 0:
        return None
    if variant == CMF_ORIGINAL:
        l_s = l_ave
    else:
        l_s = max(l_ave, float(loads.max()))
    if l_s <= 0.0:
        return None
    # Negative masses can only arise in the original variant once a known
    # load exceeds l_ave; clip so such ranks simply receive zero mass.
    masses = np.clip(1.0 - loads / l_s, 0.0, None)
    z = masses.sum()
    if z <= 0.0:
        return None
    cmf = np.cumsum(masses / z)
    cmf[-1] = 1.0  # guard against rounding drift
    return cmf


def sample_cmf(cmf: np.ndarray, rng: np.random.Generator) -> int:
    """Sample a candidate index from a CMF built by :func:`build_cmf`."""
    u = rng.random()
    return int(np.searchsorted(cmf, u, side="right"))


# -- incremental maintenance (the Alg. 2 l.7 fast path) --------------------


def _fenwick_build(values: np.ndarray) -> list[float]:
    """Fenwick tree over ``values`` (1-indexed partial sums), built O(n).

    Node ``i`` holds ``sum(values[i - lowbit(i):i])``, computed as a
    vectorized difference of cumulative sums. Kept as a Python list:
    the point updates and descent are scalar-indexing hot paths, where
    list access beats ndarray item access.
    """
    n = values.size
    if n == 0:
        return [0.0]
    prefix = np.cumsum(values)
    idx = np.arange(1, n + 1)
    low = idx - (idx & -idx)
    nodes = prefix[idx - 1] - np.where(low > 0, prefix[low - 1], 0.0)
    tree = nodes.tolist()
    tree.insert(0, 0.0)
    return tree


def _fenwick_add(tree: list[float], index: int, delta: float) -> None:
    """Add ``delta`` to 0-based ``index``."""
    n = len(tree) - 1
    i = index + 1
    while i <= n:
        tree[i] += delta
        i += i & -i


def _fenwick_search(tree: list[float], target: float) -> int:
    """Smallest 0-based ``i`` whose inclusive prefix sum exceeds ``target``.

    Mirrors ``searchsorted(cumsum, target, side="right")`` over the
    unnormalized masses.
    """
    n = len(tree) - 1
    idx = 0
    bit = 1 << (n.bit_length() - 1) if n else 0
    remaining = target
    while bit:
        nxt = idx + bit
        if nxt <= n and tree[nxt] <= remaining:
            idx = nxt
            remaining -= tree[nxt]
        bit >>= 1
    return idx


class IncrementalCMF:
    """The BUILDCMF distribution under incremental load updates.

    Maintains, for a fixed candidate list, the same headroom masses
    :func:`build_cmf` computes — exactly, element for element — while
    supporting O(log n) single-candidate updates and draws:

    - ``update(idx, new_load)`` adjusts one candidate's known load (the
      effect of one accepted transfer or one nack correction). Only the
      touched mass and the Fenwick tree path change; a full O(n) rebuild
      happens only when ``l_s = max(l_ave, max LOAD^p)`` itself moves
      (a new running maximum, or the old maximum shrinking).
    - ``sample(rng)`` draws a candidate with probability proportional to
      its mass, consuming exactly one uniform — the same RNG cost as
      :func:`sample_cmf` — via Fenwick descent on ``u * total``.
    - ``exhausted`` is True exactly when :func:`build_cmf` would return
      ``None`` for the current loads (no candidate with positive mass).
    - ``materialize()`` returns the prefix array :func:`build_cmf` would
      build, bit-identically (it reruns the same normalized cumsum over
      the identically-maintained masses).

    ``builds`` counts full (re)builds and ``updates`` point updates, so
    the transfer stage can report both costs.
    """

    __slots__ = (
        "loads",
        "l_ave",
        "variant",
        "l_s",
        "masses",
        "total",
        "n_positive",
        "builds",
        "updates",
        "_tree",
        "_max_load",
    )

    def __init__(
        self,
        known_loads: np.ndarray,
        l_ave: float,
        variant: str = CMF_MODIFIED,
        copy: bool = True,
    ) -> None:
        check_in("cmf", variant, (CMF_ORIGINAL, CMF_MODIFIED))
        self.loads = np.array(known_loads, dtype=np.float64, copy=copy)
        self.l_ave = float(l_ave)
        self.variant = variant
        self.builds = 0
        self.updates = 0
        self._rebuild()

    def _rebuild(self) -> None:
        """Recompute masses/total/tree from scratch — build_cmf's O(n)."""
        self.builds += 1
        loads = self.loads
        if loads.size == 0:
            self._max_load = 0.0
            self.l_s = 0.0
            self.masses = np.zeros(0, dtype=np.float64)
            self.total = 0.0
            self.n_positive = 0
            self._tree = None
            return
        self._max_load = float(loads.max())
        if self.variant == CMF_ORIGINAL:
            self.l_s = self.l_ave
        else:
            self.l_s = max(self.l_ave, self._max_load)
        if self.l_s <= 0.0:
            self.masses = np.zeros_like(loads)
            self.total = 0.0
            self.n_positive = 0
            self._tree = None
            return
        # The exact expression build_cmf uses, so masses match bitwise.
        self.masses = np.clip(1.0 - loads / self.l_s, 0.0, None)
        self.total = float(self.masses.sum())
        self.n_positive = int(np.count_nonzero(self.masses))
        self._tree = _fenwick_build(self.masses)

    @property
    def exhausted(self) -> bool:
        """True exactly when :func:`build_cmf` would return ``None``."""
        return self.loads.size == 0 or self.l_s <= 0.0 or self.n_positive == 0

    def update(self, idx: int, new_load: float) -> None:
        """Set candidate ``idx``'s known load, maintaining the masses.

        O(log n) unless ``l_s`` changes (then a full rebuild runs).
        """
        self.updates += 1
        loads = self.loads
        old_load = float(loads[idx])
        new_load = float(new_load)
        loads[idx] = new_load
        if self.variant == CMF_MODIFIED:
            if new_load > self._max_load:
                self._max_load = new_load
                if new_load > self.l_s:
                    self._rebuild()
                    return
            elif old_load == self._max_load and new_load < old_load:
                fresh_max = float(loads.max())
                self._max_load = fresh_max
                if max(self.l_ave, fresh_max) != self.l_s:
                    self._rebuild()
                    return
        if self.l_s <= 0.0 or self._tree is None:
            return  # degenerate distribution: every mass pinned at zero
        old_mass = float(self.masses[idx])
        headroom = 1.0 - new_load / self.l_s
        new_mass = headroom if headroom > 0.0 else 0.0
        if new_mass == old_mass:
            return
        self.masses[idx] = new_mass
        if old_mass == 0.0:
            self.n_positive += 1
        elif new_mass == 0.0:
            self.n_positive -= 1
        delta = new_mass - old_mass
        self.total += delta
        _fenwick_add(self._tree, int(idx), delta)

    def sample(self, rng: np.random.Generator) -> int:
        """Draw a candidate index; one uniform, like :func:`sample_cmf`."""
        if self.exhausted:
            raise ValueError("cannot sample an exhausted CMF")
        u = rng.random()
        target = u * self.total
        idx = _fenwick_search(self._tree, target)
        if idx >= self.masses.size or self.masses[idx] <= 0.0:
            # Accumulated float drift in the tree/total pushed the draw
            # past the last positive mass; resolve against exact sums.
            cmf = np.cumsum(self.masses)
            idx = int(np.searchsorted(cmf, target, side="right"))
            idx = min(idx, self.masses.size - 1)
        return int(idx)

    def materialize(self) -> np.ndarray | None:
        """The prefix array :func:`build_cmf` would return right now."""
        if self.exhausted:
            return None
        z = self.masses.sum()
        cmf = np.cumsum(self.masses / z)
        cmf[-1] = 1.0
        return cmf
