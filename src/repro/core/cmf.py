"""Algorithm 2, BUILDCMF — recipient-selection distributions.

An overloaded rank picks the recipient of each candidate transfer by
sampling a cumulative mass function over the underloaded ranks it knows.
A rank's probability mass is proportional to its *known* load headroom
``1 - LOAD^p(i) / l_s``:

``original`` (GrapevineLB)
    ``l_s = l_ave``. Well-defined only while every known load is below
    the average — true at inform time, but violated once the sender's
    own bookkeeping pushes a recipient past the average.

``modified`` (TemperedLB, § V-C)
    ``l_s = max(l_ave, max LOAD^p)``. Keeps every mass non-negative when
    the relaxed criterion lets recipients exceed the average; ranks at
    exactly ``l_s`` get zero mass.

TemperedLB additionally *recomputes* the CMF after every accepted
transfer (Alg. 2 l.7) so the updated knowledge steers later picks; the
original computes it once (l.5).
"""

from __future__ import annotations

import numpy as np

from repro.util.validation import check_in

__all__ = ["CMF_ORIGINAL", "CMF_MODIFIED", "build_cmf", "sample_cmf"]

CMF_ORIGINAL = "original"
CMF_MODIFIED = "modified"


def build_cmf(
    known_loads: np.ndarray, l_ave: float, variant: str = CMF_MODIFIED
) -> np.ndarray | None:
    """Build the CMF ``F`` over known underloaded ranks (Alg. 2 l.21-31).

    Parameters
    ----------
    known_loads:
        ``LOAD^p`` — the sender's current knowledge of each candidate's
        load, aligned with its candidate list.
    l_ave:
        Global average rank load from the statistics all-reduce.
    variant:
        ``"original"`` or ``"modified"``.

    Returns
    -------
    The cumulative masses (last entry 1.0), or ``None`` when no candidate
    has positive mass (e.g. empty candidate list, or every known load at
    or above ``l_s``) — the caller must then stop transferring.
    """
    check_in("cmf", variant, (CMF_ORIGINAL, CMF_MODIFIED))
    loads = np.asarray(known_loads, dtype=np.float64)
    if loads.size == 0:
        return None
    if variant == CMF_ORIGINAL:
        l_s = l_ave
    else:
        l_s = max(l_ave, float(loads.max()))
    if l_s <= 0.0:
        return None
    # Negative masses can only arise in the original variant once a known
    # load exceeds l_ave; clip so such ranks simply receive zero mass.
    masses = np.clip(1.0 - loads / l_s, 0.0, None)
    z = masses.sum()
    if z <= 0.0:
        return None
    cmf = np.cumsum(masses / z)
    cmf[-1] = 1.0  # guard against rounding drift
    return cmf


def sample_cmf(cmf: np.ndarray, rng: np.random.Generator) -> int:
    """Sample a candidate index from a CMF built by :func:`build_cmf`."""
    u = rng.random()
    return int(np.searchsorted(cmf, u, side="right"))
