"""GrapevineLB — the original Menon & Kalé (SC'13) algorithm (§ IV-B).

Implemented as a preset of the same machinery TemperedLB uses: a single
trial, original strict criterion (Alg. 2 l.35), original CMF built once
per transfer stage (Alg. 2 l.5), arbitrary task order, no negative
acknowledgements. ``n_iters`` defaults to 1 (the original runs its two
stages once per LB invocation) but can be raised to reproduce the § V-B
iteration study, which shows the criterion stalling.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import LBResult, LoadBalancer
from repro.core.cmf import CMF_ORIGINAL
from repro.core.criteria import CRITERION_ORIGINAL
from repro.core.distribution import Distribution
from repro.core.ordering import ORDER_ARBITRARY
from repro.core.tempered import TemperedConfig, TemperedLB

__all__ = ["GrapevineLB"]


class GrapevineLB(LoadBalancer):
    """The original gossip balancer, for baseline comparisons."""

    name = "GrapevineLB"

    def __init__(
        self,
        n_iters: int = 1,
        fanout: int = 6,
        rounds: int = 10,
        threshold: float = 1.0,
        gossip_mode: str = "coalesced",
    ) -> None:
        self.config = TemperedConfig(
            n_trials=1,
            n_iters=n_iters,
            fanout=fanout,
            rounds=rounds,
            threshold=threshold,
            criterion=CRITERION_ORIGINAL,
            cmf=CMF_ORIGINAL,
            recompute_cmf=False,
            ordering=ORDER_ARBITRARY,
            gossip_mode=gossip_mode,
        )
        self._impl = TemperedLB(self.config)
        self._impl.name = self.name  # results and events report the preset's name

    def rebalance(
        self, dist: Distribution, rng: np.random.Generator | int | None = None
    ) -> LBResult:
        self._impl.registry = self.registry  # thread any attached sink through
        result = self._impl.rebalance(dist, rng)
        result.strategy = self.name
        return result
