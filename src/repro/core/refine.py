"""Refinement balancers from the Charm++ suite.

Two incremental centralized strategies that complete the baseline
family (§ II's "suite of load balancers that Charm++ ships"):

:class:`RefineLB`
    Keeps the current mapping and only moves tasks *off overloaded
    ranks* until every rank is within ``threshold`` of the average —
    few migrations, good for mild imbalance.

:class:`GreedyRefineLB`
    GreedyLB's quality with migration awareness: tasks are assigned
    heaviest-first to the least-loaded rank, except that a task stays
    on its current rank whenever that rank's load is within a tolerance
    of the minimum — drastically fewer migrations for near-identical
    makespan.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.core.base import LBResult, LoadBalancer
from repro.core.distribution import Distribution
from repro.util.validation import check_positive

__all__ = ["RefineLB", "GreedyRefineLB"]


class RefineLB(LoadBalancer):
    """Move tasks off overloaded ranks onto the least-loaded ranks."""

    name = "RefineLB"

    def __init__(self, threshold: float = 1.05) -> None:
        check_positive("threshold", threshold)
        if threshold < 1.0:
            raise ValueError("threshold must be >= 1.0")
        self.threshold = float(threshold)

    def rebalance(
        self, dist: Distribution, rng: np.random.Generator | int | None = None
    ) -> LBResult:
        assignment = np.array(dist.assignment, copy=True)
        loads = np.array(dist.rank_loads(), copy=True)
        l_ave = dist.average_load
        limit = self.threshold * l_ave
        # Min-heap of recipients.
        heap = [(float(loads[r]), r) for r in range(dist.n_ranks)]
        heapq.heapify(heap)
        rank_tasks = [list(ts) for ts in dist.rank_tasks()]

        for p in np.argsort(-loads):  # heaviest ranks first
            p = int(p)
            # Consider this rank's tasks lightest-first: moving light
            # tasks first maximizes the chance of landing under the
            # limit without overshooting the recipient.
            tasks = sorted(rank_tasks[p], key=lambda t: dist.task_loads[t])
            idx = 0
            while loads[p] > limit and idx < len(tasks):
                task = tasks[idx]
                idx += 1
                t_load = float(dist.task_loads[task])
                # Pop the current least-loaded recipient (skip stale).
                while True:
                    load_r, r = heapq.heappop(heap)
                    if load_r == loads[r]:
                        break
                if r == p or loads[r] + t_load > limit:
                    heapq.heappush(heap, (float(loads[r]), r))
                    continue
                assignment[task] = r
                loads[p] -= t_load
                loads[r] += t_load
                heapq.heappush(heap, (float(loads[r]), r))
            heapq.heappush(heap, (float(loads[p]), p))
        return self._make_result(dist, assignment)


class GreedyRefineLB(LoadBalancer):
    """LPT assignment that keeps tasks home when home is nearly minimal."""

    name = "GreedyRefineLB"

    def __init__(self, tolerance: float = 0.05) -> None:
        if tolerance < 0:
            raise ValueError("tolerance must be non-negative")
        #: A task stays on its current rank if that rank's running load
        #: is within ``tolerance * average`` of the global minimum.
        self.tolerance = float(tolerance)

    def rebalance(
        self, dist: Distribution, rng: np.random.Generator | int | None = None
    ) -> LBResult:
        order = np.argsort(-dist.task_loads, kind="stable")
        assignment = np.empty_like(dist.assignment)
        loads = np.zeros(dist.n_ranks)
        heap = [(0.0, r) for r in range(dist.n_ranks)]
        heapq.heapify(heap)
        slack = self.tolerance * dist.average_load
        for task in order:
            # Peek the heap minimum (skip stale entries).
            while heap[0][0] != loads[heap[0][1]]:
                heapq.heappop(heap)
            min_load = heap[0][0]
            home = int(dist.assignment[task])
            if loads[home] <= min_load + slack:
                rank = home
            else:
                rank = heapq.heappop(heap)[1]
            assignment[task] = rank
            loads[rank] += float(dist.task_loads[task])
            heapq.heappush(heap, (float(loads[rank]), rank))
        return self._make_result(dist, assignment)
