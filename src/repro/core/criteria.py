"""Algorithm 2, EVALUATECRITERION — original vs. relaxed transfer criteria.

``original`` (Alg. 2 l.35, GrapevineLB)
    Accept iff ``l_x + LOAD(o) < l_ave`` — the recipient must stay strictly
    under the average. § V-B shows this yields ~99-100% rejection after the
    first iteration and traps the imbalance in a local minimum.

``relaxed`` (Alg. 2 l.37, TemperedLB; Lemma 1 / Proposition)
    Accept iff ``LOAD(o) < l^p - l_x`` — equivalently
    ``l_x + LOAD(o) < l^p``: the recipient may exceed the average, but
    never ends up as loaded as the sender was before the transfer. This is
    necessary and sufficient for the objective ``F`` to decrease
    monotonically (paper Lemmas 1 and 2).
"""

from __future__ import annotations

from typing import Callable

from repro.util.validation import check_in

__all__ = [
    "CRITERION_ORIGINAL",
    "CRITERION_RELAXED",
    "CRITERIA",
    "evaluate_criterion",
    "original_criterion",
    "relaxed_criterion",
]

CRITERION_ORIGINAL = "original"
CRITERION_RELAXED = "relaxed"


def original_criterion(l_x: float, task_load: float, l_ave: float, l_p: float) -> bool:
    """GrapevineLB's criterion: recipient stays under the average load."""
    return l_x + task_load < l_ave


def relaxed_criterion(l_x: float, task_load: float, l_ave: float, l_p: float) -> bool:
    """TemperedLB's optimal criterion: ``LOAD(o) < l^p - l_x`` (Lemma 1)."""
    return task_load < l_p - l_x


CRITERIA: dict[str, Callable[[float, float, float, float], bool]] = {
    CRITERION_ORIGINAL: original_criterion,
    CRITERION_RELAXED: relaxed_criterion,
}


def evaluate_criterion(
    name: str, l_x: float, task_load: float, l_ave: float, l_p: float
) -> bool:
    """Dispatch to a named criterion.

    Parameters mirror Alg. 2 l.33: ``l_x`` is the sender's *known* load of
    the candidate recipient, ``task_load`` is ``LOAD(o_x)``, ``l_ave`` the
    global average, ``l_p`` the sender's current load.
    """
    check_in("criterion", name, CRITERIA)
    return CRITERIA[name](l_x, task_load, l_ave, l_p)
