"""TemperedLB — the paper's proposed distributed load balancer.

TemperedLB = GrapevineLB's inform stage + all six § V changes:

1. iterative refinement (``n_iters``) before any transfer executes;
2. multiple trials (``n_trials``) to escape local minima;
3. CMF recomputation as knowledge updates (Alg. 2 l.7);
4. the relaxed, provably optimal transfer criterion (Alg. 2 l.37);
5. the modified CMF compatible with above-average loads (Alg. 2 l.25);
6. a configurable task traversal order (§ V-E; Fig. 4d's winner,
   *Fewest Migrations*, is the default).

Every knob can be overridden, so a suitably configured ``TemperedLB``
also reproduces the original GrapevineLB (see
:class:`repro.core.grapevine.GrapevineLB`).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

import numpy as np

from repro.core.base import LBResult, LoadBalancer
from repro.core.cmf import CMF_MODIFIED, CMF_UPDATE_INCREMENTAL
from repro.core.criteria import CRITERION_RELAXED
from repro.core.distribution import Distribution
from repro.core.gossip import GossipConfig
from repro.core.ordering import ORDER_FEWEST_MIGRATIONS
from repro.core.refinement import iterative_refinement
from repro.core.transfer import TransferConfig
from repro.sim.faults import FaultConfig
from repro.util.parallel import EXECUTORS
from repro.util.validation import check_positive, coerce_rng

__all__ = ["TemperedConfig", "TemperedLB"]


@dataclass(frozen=True)
class TemperedConfig:
    """Full parameterization of the gossip balancer family.

    Defaults match the paper's EMPIRE configuration: 10 trials, 8
    iterations (§ VI-B / Fig. 3 discussion), fanout ``f=6``, ``k=10``
    gossip rounds and threshold ``h=1.0`` (§ V-B), relaxed criterion,
    modified CMF with recomputation, Fewest Migrations ordering.
    """

    n_trials: int = 10
    n_iters: int = 8
    fanout: int = 6
    rounds: int = 10
    threshold: float = 1.0
    criterion: str = CRITERION_RELAXED
    cmf: str = CMF_MODIFIED
    recompute_cmf: bool = True
    cmf_update: str = CMF_UPDATE_INCREMENTAL  #: l.7 maintenance (see cmf.py)
    ordering: str = ORDER_FEWEST_MIGRATIONS
    gossip_mode: str = "coalesced"
    #: Inform-stage engine: "batched" (vectorized rounds on packed
    #: knowledge, the fast path) or "loop" (per-sender reference).
    gossip_engine: str = "batched"
    view: str = "snapshot"  #: transfer-stage load visibility (see transfer.py)
    max_passes: int | None = 1  #: task-list passes per rank per stage
    cascade: bool = False  #: re-process ranks overloaded mid-stage
    nacks: bool = False  #: recipient-side vetoes (Menon's mechanism, § V-A)
    max_known: int | None = None  #: knowledge cap (limited-info gossip)
    trim_policy: str = "random"  #: what the cap keeps (see GossipConfig)
    #: Knowledge backend for the batched inform engine: "auto" /
    #: "packed" / "sparse" (see :class:`~repro.core.gossip.GossipConfig`).
    knowledge: str = "auto"
    #: Sparse inform driver: "auto" (fused fast path), "numba" (fused +
    #: jitted kernels, warns once without numba) or "python" (reference
    #: oracle); bit-identical results either way.
    gossip_kernel: str = "auto"
    #: Transfer-stage engine: "soa" (structure-of-arrays rank state,
    #: default) or "lists" (reference); see TransferConfig.
    transfer_engine: str = "soa"
    #: SoA inner-loop kernel: "python" or "numba" (jitted when numba is
    #: installed, bit-identical fallback otherwise).
    transfer_kernel: str = "python"
    #: Trial-level parallelism: None = historical serial semantics (one
    #: shared RNG stream); >= 1 = that many workers with spawned
    #: per-trial streams (bit-identical for any worker count >= 1).
    n_workers: int | None = None
    #: Trial executor backend: "serial" / "thread" / "process", or
    #: None / "auto" to prefer the process backend (the one that beats
    #: serial on multi-core hosts — threads are GIL-bound here),
    #: degrading to the serial loop where only one core is usable. The
    #: backend never changes results, only wall time.
    executor: str | None = None
    #: Optional fault injection for the inform stage (message loss,
    #: delay spikes, duplication); None or an all-zero config leaves
    #: every result bit-identical to the fault-free balancer.
    faults: "FaultConfig | None" = None

    def __post_init__(self) -> None:
        check_positive("n_trials", self.n_trials)
        check_positive("n_iters", self.n_iters)
        if self.executor is not None and self.executor not in EXECUTORS:
            raise ValueError(
                f"executor must be one of {EXECUTORS} or None, got {self.executor!r}"
            )
        # fanout/rounds/threshold and the categorical knobs are validated
        # by the GossipConfig / TransferConfig they parameterize.
        self.gossip_config()
        self.transfer_config()

    def gossip_config(self) -> GossipConfig:
        """The inform-stage parameters as a :class:`GossipConfig`."""
        return GossipConfig(
            fanout=self.fanout,
            rounds=self.rounds,
            mode=self.gossip_mode,
            engine=self.gossip_engine,
            max_known=self.max_known,
            trim_policy=self.trim_policy,
            knowledge=self.knowledge,
            kernel=self.gossip_kernel,
            faults=self.faults,
        )

    def transfer_config(self) -> TransferConfig:
        """The transfer-stage parameters as a :class:`TransferConfig`."""
        return TransferConfig(
            criterion=self.criterion,
            cmf=self.cmf,
            recompute_cmf=self.recompute_cmf,
            cmf_update=self.cmf_update,
            ordering=self.ordering,
            threshold=self.threshold,
            view=self.view,
            max_passes=self.max_passes,
            cascade=self.cascade,
            nacks=self.nacks,
            engine=self.transfer_engine,
            kernel=self.transfer_kernel,
        )

    def lbaf_variant(self) -> "TemperedConfig":
        """This configuration under the paper's LBAF analysis semantics.

        The § V-B / § V-D tables were produced with the authors' Python
        LBAF tool, whose sequential simulation exposes live proposed
        loads to every rank, retries a rank's task list while it remains
        overloaded, and processes ranks that become overloaded
        mid-stage. See :mod:`repro.core.transfer` for the exact
        semantics of each knob.
        """
        return dataclasses.replace(self, view="shared", max_passes=None, cascade=True)


class TemperedLB(LoadBalancer):
    """The paper's distributed balancer (§ V), phase-level implementation.

    Parameters may be given as a full :class:`TemperedConfig` or as
    keyword overrides of the defaults::

        TemperedLB(n_trials=2, ordering="lightest")
    """

    name = "TemperedLB"

    def __init__(self, config: TemperedConfig | None = None, **overrides: object) -> None:
        if config is not None and overrides:
            raise ValueError("pass either a config object or keyword overrides, not both")
        self.config = config if config is not None else TemperedConfig(**overrides)  # type: ignore[arg-type]

    def rebalance(
        self, dist: Distribution, rng: np.random.Generator | int | None = None
    ) -> LBResult:
        rng = coerce_rng(rng)
        refinement = iterative_refinement(
            dist,
            n_trials=self.config.n_trials,
            n_iters=self.config.n_iters,
            gossip=self.config.gossip_config(),
            transfer=self.config.transfer_config(),
            rng=rng,
            registry=self.registry,
            n_workers=self.config.n_workers,
            executor=self.config.executor,
        )
        return self._make_result(
            dist,
            refinement.best_assignment,
            records=refinement.records,
            gossip_messages=refinement.total_gossip_messages,
            gossip_bytes=refinement.total_gossip_bytes,
        )
