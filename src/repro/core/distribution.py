"""Task-to-rank distributions.

A :class:`Distribution` is the phase-level state every load balancer
operates on: an array of per-task loads (seconds of work measured by the
runtime instrumentation, per the *principle of persistence*) and an array
assigning each task to a rank. Rank loads are derived with a vectorized
``bincount`` and cached until the assignment changes.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.util.validation import check_positive

__all__ = ["Distribution"]


class Distribution:
    """An assignment of weighted tasks to ranks.

    Parameters
    ----------
    task_loads:
        Per-task load (any non-negative unit; the paper uses seconds).
    assignment:
        Integer rank id for each task, in ``[0, n_ranks)``.
    n_ranks:
        Total number of ranks. Ranks may hold zero tasks.
    """

    __slots__ = ("task_loads", "assignment", "n_ranks", "_rank_loads", "_rank_tasks")

    def __init__(
        self,
        task_loads: np.ndarray | Iterable[float],
        assignment: np.ndarray | Iterable[int],
        n_ranks: int,
    ) -> None:
        self.task_loads = np.ascontiguousarray(task_loads, dtype=np.float64)
        self.assignment = np.ascontiguousarray(assignment, dtype=np.int64)
        if self.task_loads.ndim != 1 or self.assignment.ndim != 1:
            raise ValueError("task_loads and assignment must be 1-D")
        if self.task_loads.shape != self.assignment.shape:
            raise ValueError(
                f"task_loads ({self.task_loads.shape}) and assignment "
                f"({self.assignment.shape}) must have the same length"
            )
        check_positive("n_ranks", n_ranks)
        self.n_ranks = int(n_ranks)
        if self.task_loads.size and (
            self.assignment.min() < 0 or self.assignment.max() >= self.n_ranks
        ):
            raise ValueError("assignment entries must lie in [0, n_ranks)")
        if self.task_loads.size and not np.isfinite(self.task_loads).all():
            raise ValueError("task loads must be finite (no NaN/inf)")
        if self.task_loads.size and self.task_loads.min() < 0:
            raise ValueError("task loads must be non-negative")
        self._rank_loads: np.ndarray | None = None
        self._rank_tasks: list[list[int]] | None = None

    # -- basic accessors ---------------------------------------------------

    @property
    def n_tasks(self) -> int:
        """Number of tasks in the distribution."""
        return self.task_loads.size

    def rank_loads(self) -> np.ndarray:
        """Per-rank total load (length ``n_ranks``); cached."""
        if self._rank_loads is None:
            self._rank_loads = np.bincount(
                self.assignment, weights=self.task_loads, minlength=self.n_ranks
            )
        return self._rank_loads

    def rank_tasks(self) -> list[list[int]]:
        """Task ids per rank as a list of lists; cached.

        Task ids within a rank appear in ascending id order, matching the
        "arbitrary" (identifying-index) traversal order of the paper.
        """
        if self._rank_tasks is None:
            buckets: list[list[int]] = [[] for _ in range(self.n_ranks)]
            for task, rank in enumerate(self.assignment):
                buckets[rank].append(task)
            self._rank_tasks = buckets
        return self._rank_tasks

    def tasks_on(self, rank: int) -> np.ndarray:
        """Task ids currently assigned to ``rank``."""
        return np.asarray(self.rank_tasks()[rank], dtype=np.int64)

    @property
    def total_load(self) -> float:
        """Sum of all task loads (conserved by every balancer)."""
        return float(self.task_loads.sum())

    @property
    def average_load(self) -> float:
        """:math:`\\ell_{ave}` — total load divided by the rank count."""
        return self.total_load / self.n_ranks

    @property
    def max_load(self) -> float:
        """:math:`\\ell_{max}` — the heaviest rank's total load."""
        return float(self.rank_loads().max()) if self.n_ranks else 0.0

    def imbalance(self) -> float:
        """Paper Eq. (1): :math:`I = \\ell_{max}/\\ell_{ave} - 1`."""
        ave = self.average_load
        if ave == 0.0:
            return 0.0
        return self.max_load / ave - 1.0

    # -- mutation ----------------------------------------------------------

    def move(self, task: int, dest: int) -> None:
        """Reassign one task, invalidating cached views."""
        if not 0 <= dest < self.n_ranks:
            raise ValueError(f"destination rank {dest} out of range")
        self.assignment[task] = dest
        self._rank_loads = None
        self._rank_tasks = None

    def with_assignment(self, assignment: np.ndarray) -> "Distribution":
        """A new distribution sharing task loads but with a new assignment."""
        return Distribution(self.task_loads, np.array(assignment, copy=True), self.n_ranks)

    def copy(self) -> "Distribution":
        """Deep copy (task loads are shared; they are immutable by convention)."""
        return self.with_assignment(self.assignment)

    # -- comparison / repr ---------------------------------------------------

    def migration_count(self, other_assignment: np.ndarray) -> int:
        """How many tasks moved between this assignment and another."""
        other = np.asarray(other_assignment)
        if other.shape != self.assignment.shape:
            raise ValueError("assignments must have equal length")
        return int(np.count_nonzero(self.assignment != other))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Distribution(n_tasks={self.n_tasks}, n_ranks={self.n_ranks}, "
            f"I={self.imbalance():.4g})"
        )
