"""Algorithm 3 — iterative refinement of the task-rank mapping.

TemperedLB's outer loop: ``n_trials`` independent trials, each running
``n_iters`` inform+transfer iterations from the original assignment. The
proposal with the lowest imbalance across *all* iterations of *all*
trials wins, and only that proposal's transfers are actually executed
(deferred migration, Alg. 3 l.13). Trials restart from the previous
timestep's state so a bad random walk cannot trap the result in a local
minimum (§ V-A).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.base import IterationRecord
from repro.core.distribution import Distribution
from repro.core.gossip import GossipConfig, run_inform_stage
from repro.core.metrics import imbalance
from repro.core.transfer import TransferConfig, transfer_stage
from repro.obs import StatsRegistry
from repro.util.validation import check_positive, coerce_rng

__all__ = ["RefinementResult", "iterative_refinement"]


@dataclass
class RefinementResult:
    """Best proposal found by Algorithm 3, with full iteration history."""

    best_assignment: np.ndarray
    best_imbalance: float
    initial_imbalance: float
    records: list[IterationRecord] = field(default_factory=list)
    total_gossip_messages: int = 0
    total_gossip_bytes: int = 0

    def trial_records(self, trial: int) -> list[IterationRecord]:
        """The iteration rows belonging to one trial."""
        return [r for r in self.records if r.trial == trial]


def iterative_refinement(
    dist: Distribution,
    n_trials: int = 1,
    n_iters: int = 1,
    gossip: GossipConfig | None = None,
    transfer: TransferConfig | None = None,
    rng: np.random.Generator | int | None = None,
    registry: StatsRegistry | None = None,
) -> RefinementResult:
    """Run Algorithm 3 and return the best proposal.

    The input distribution is never mutated. ``l_ave`` is constant across
    iterations (no load is created or destroyed), matching the paper's
    observation in § V-B.

    With a ``registry`` attached, every (trial, iteration) appends one
    row to the ``lb.iteration`` series — the programmatic form of the
    paper's § V-B/§ V-D tables — and the inform/transfer stages record
    their own counters. Instrumentation draws no RNG, so the refined
    assignment is identical with or without it.
    """
    check_positive("n_trials", n_trials)
    check_positive("n_iters", n_iters)
    gossip = gossip or GossipConfig()
    transfer = transfer or TransferConfig()
    rng = coerce_rng(rng)

    l_ave = dist.average_load
    original = dist.assignment
    best_assignment = np.array(original, copy=True)
    initial = dist.imbalance()
    best_imbalance = initial
    result = RefinementResult(
        best_assignment=best_assignment,
        best_imbalance=best_imbalance,
        initial_imbalance=initial,
    )

    instrumented = registry is not None and registry.enabled
    for trial in range(1, int(n_trials) + 1):
        working = np.array(original, copy=True)  # Alg. 3 l.3: reset per trial
        for iteration in range(1, int(n_iters) + 1):
            loads = np.bincount(working, weights=dist.task_loads, minlength=dist.n_ranks)
            inform = run_inform_stage(
                loads, gossip, rng, average_load=l_ave, registry=registry
            )
            stats = transfer_stage(
                working, dist.task_loads, inform, transfer, rng, registry=registry
            )
            loads = np.bincount(working, weights=dist.task_loads, minlength=dist.n_ranks)
            proposal_imbalance = imbalance(loads)
            result.records.append(
                IterationRecord(
                    trial=trial,
                    iteration=iteration,
                    transfers=stats.transfers,
                    rejections=stats.rejections,
                    imbalance=proposal_imbalance,
                    gossip_messages=inform.n_messages,
                    gossip_bytes=inform.bytes_sent,
                )
            )
            result.total_gossip_messages += inform.n_messages
            result.total_gossip_bytes += inform.bytes_sent
            if instrumented:
                registry.inc("lb.iterations")
                registry.observe(
                    "lb.iteration",
                    trial=trial,
                    iteration=iteration,
                    proposed=stats.proposed,
                    accepted=stats.transfers,
                    rejected=stats.rejections,
                    nacked=stats.nacked,
                    rejection_rate=stats.rejection_rate,
                    cmf_builds=stats.cmf_builds,
                    imbalance=proposal_imbalance,
                    gossip_messages=inform.n_messages,
                    gossip_bytes=inform.bytes_sent,
                )
            if proposal_imbalance < result.best_imbalance:
                result.best_imbalance = proposal_imbalance
                result.best_assignment = np.array(working, copy=True)
    if instrumented:
        registry.inc("lb.refinements")
        registry.event(
            "lb.refinement",
            n_trials=int(n_trials),
            n_iters=int(n_iters),
            initial_imbalance=result.initial_imbalance,
            best_imbalance=result.best_imbalance,
            gossip_messages=result.total_gossip_messages,
            gossip_bytes=result.total_gossip_bytes,
        )
    return result
