"""Algorithm 3 — iterative refinement of the task-rank mapping.

TemperedLB's outer loop: ``n_trials`` independent trials, each running
``n_iters`` inform+transfer iterations from the original assignment. The
proposal with the lowest imbalance across *all* iterations of *all*
trials wins, and only that proposal's transfers are actually executed
(deferred migration, Alg. 3 l.13). Trials restart from the previous
timestep's state so a bad random walk cannot trap the result in a local
minimum (§ V-A).

Trials are independent, so they can run concurrently. With
``n_workers`` set, each trial draws from its own spawned RNG stream
(:func:`repro.util.parallel.spawn_streams`) and records into its own
sub-registry; streams are derived from the parent generator before any
work starts, results merge in trial order, and ties on the best
imbalance resolve to the lowest trial index — so the refined assignment
and all recorded statistics are bit-identical for any worker count >= 1
under **any** backend. The ``executor`` knob selects that backend
(``serial`` / ``thread`` / ``process``; see
:class:`repro.util.parallel.TrialExecutor`). The trial loop is
GIL-bound Python/NumPy, so only the process backend — the ``auto``
default where ``fork`` is available — turns extra cores into wall-clock
speedup; the shared read-only inputs (task loads, the original
assignment, the stage configs) ship to each worker once via the pool
initializer, and only the per-trial RNG payloads and
:class:`_TrialOutcome` results cross the IPC boundary.

``n_workers=None`` (the default) keeps the historical serial semantics:
one shared RNG stream consumed trial after trial.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.base import IterationRecord
from repro.core.distribution import Distribution
from repro.core.gossip import GossipConfig, run_inform_stage
from repro.core.metrics import imbalance
from repro.core.transfer import TransferConfig, transfer_stage
from repro.obs import StatsRegistry
from repro.util.parallel import TrialExecutor, spawn_streams
from repro.util.validation import check_positive, coerce_rng

__all__ = ["RefinementResult", "iterative_refinement"]


@dataclass
class RefinementResult:
    """Best proposal found by Algorithm 3, with full iteration history."""

    best_assignment: np.ndarray
    best_imbalance: float
    initial_imbalance: float
    records: list[IterationRecord] = field(default_factory=list)
    total_gossip_messages: int = 0
    total_gossip_bytes: int = 0

    def trial_records(self, trial: int) -> list[IterationRecord]:
        """The iteration rows belonging to one trial."""
        return [r for r in self.records if r.trial == trial]


@dataclass
class _TrialOutcome:
    """One trial's iteration rows and trial-local best proposal.

    Everything here is plain data (dataclass rows, floats, arrays), so
    an outcome pickles losslessly — the process backend ships one back
    per trial.
    """

    records: list[IterationRecord] = field(default_factory=list)
    best_imbalance: float = float("inf")
    best_assignment: np.ndarray | None = None
    gossip_messages: int = 0
    gossip_bytes: int = 0


@dataclass(frozen=True)
class _TrialShared:
    """Read-only inputs every trial needs, shipped to workers once.

    Under the process backend this object crosses into each worker a
    single time via the pool initializer (inherited copy-on-write with
    the ``fork`` start method, pickled once per worker under
    ``spawn``) — per-trial submissions carry only the trial number and
    its RNG stream.
    """

    dist: Distribution
    original: np.ndarray
    l_ave: float
    n_iters: int
    gossip: GossipConfig
    transfer: TransferConfig
    instrumented: bool


def _run_trial(
    trial: int,
    dist: Distribution,
    original: np.ndarray,
    l_ave: float,
    n_iters: int,
    gossip: GossipConfig,
    transfer: TransferConfig,
    rng: np.random.Generator,
    registry: StatsRegistry | None,
) -> _TrialOutcome:
    """Run one trial (Alg. 3 l.3-12) against a private working copy.

    Safe to run concurrently given a private ``rng`` and ``registry``:
    the shared inputs (``dist``, ``original``, configs) are only read.
    """
    instrumented = registry is not None and registry.enabled
    working = np.array(original, copy=True)  # Alg. 3 l.3: reset per trial
    out = _TrialOutcome()
    for iteration in range(1, int(n_iters) + 1):
        loads = np.bincount(working, weights=dist.task_loads, minlength=dist.n_ranks)
        if instrumented:
            with registry.timed("wall.inform", time.perf_counter):
                inform = run_inform_stage(
                    loads, gossip, rng, average_load=l_ave, registry=registry
                )
            with registry.timed("wall.transfer", time.perf_counter):
                stats = transfer_stage(
                    working, dist.task_loads, inform, transfer, rng, registry=registry
                )
        else:
            inform = run_inform_stage(loads, gossip, rng, average_load=l_ave)
            stats = transfer_stage(working, dist.task_loads, inform, transfer, rng)
        loads = np.bincount(working, weights=dist.task_loads, minlength=dist.n_ranks)
        proposal_imbalance = imbalance(loads)
        out.records.append(
            IterationRecord(
                trial=trial,
                iteration=iteration,
                transfers=stats.transfers,
                rejections=stats.rejections,
                imbalance=proposal_imbalance,
                gossip_messages=inform.n_messages,
                gossip_bytes=inform.bytes_sent,
            )
        )
        out.gossip_messages += inform.n_messages
        out.gossip_bytes += inform.bytes_sent
        if instrumented:
            registry.inc("lb.iterations")
            registry.observe(
                "lb.iteration",
                trial=trial,
                iteration=iteration,
                proposed=stats.proposed,
                accepted=stats.transfers,
                rejected=stats.rejections,
                nacked=stats.nacked,
                rejection_rate=stats.rejection_rate,
                cmf_builds=stats.cmf_builds,
                cmf_updates=stats.cmf_updates,
                imbalance=proposal_imbalance,
                gossip_messages=inform.n_messages,
                gossip_bytes=inform.bytes_sent,
            )
        if proposal_imbalance < out.best_imbalance:
            out.best_imbalance = proposal_imbalance
            out.best_assignment = np.array(working, copy=True)
    return out


def _trial_worker(
    shared: _TrialShared, payload: tuple[int, np.random.Generator]
) -> tuple[_TrialOutcome, StatsRegistry | None]:
    """Executor entry point: run one trial against the shared inputs.

    Module-level (and therefore picklable) so every
    :class:`~repro.util.parallel.TrialExecutor` backend — including
    process pools under the ``spawn`` start method — can dispatch it.
    The sub-registry is created *here*, inside the worker, and returned
    with the outcome; the caller merges sub-registries in trial order.
    """
    trial, rng = payload
    registry = StatsRegistry() if shared.instrumented else None
    outcome = _run_trial(
        trial,
        shared.dist,
        shared.original,
        shared.l_ave,
        shared.n_iters,
        shared.gossip,
        shared.transfer,
        rng,
        registry,
    )
    return outcome, registry


def _select_best(result: RefinementResult, outcomes: list[_TrialOutcome]) -> None:
    """Fold trial outcomes into ``result`` in trial order (Alg. 3 l.13).

    The strict ``<`` comparison is the tie-breaking rule: when two
    trials reach an equal best imbalance, the *lowest trial index*
    keeps the win. Outcomes always arrive in trial order (the executor
    preserves submission order), so this rule holds for every backend
    and worker count.
    """
    for out in outcomes:
        result.records.extend(out.records)
        result.total_gossip_messages += out.gossip_messages
        result.total_gossip_bytes += out.gossip_bytes
        if out.best_assignment is not None and out.best_imbalance < result.best_imbalance:
            result.best_imbalance = out.best_imbalance
            result.best_assignment = out.best_assignment


def iterative_refinement(
    dist: Distribution,
    n_trials: int = 1,
    n_iters: int = 1,
    gossip: GossipConfig | None = None,
    transfer: TransferConfig | None = None,
    rng: np.random.Generator | int | None = None,
    registry: StatsRegistry | None = None,
    n_workers: int | None = None,
    executor: str | None = None,
) -> RefinementResult:
    """Run Algorithm 3 and return the best proposal.

    The input distribution is never mutated. ``l_ave`` is constant across
    iterations (no load is created or destroyed), matching the paper's
    observation in § V-B.

    With a ``registry`` attached, every (trial, iteration) appends one
    row to the ``lb.iteration`` series — the programmatic form of the
    paper's § V-B/§ V-D tables — the inform/transfer stages record
    their own counters, and the stages' wall time accumulates into the
    ``wall.inform`` / ``wall.transfer`` / ``wall.refinement`` timers.
    ``wall.inform``/``wall.transfer`` are *cumulative per-trial* stage
    time; ``wall.refinement`` is the true start-to-finish span of this
    call, so under parallel execution the stage timers can legitimately
    exceed it (see ``docs/observability.md``). Instrumentation draws no
    RNG, so the refined assignment is identical with or without it.

    ``n_workers`` / ``executor`` select the execution model:

    - ``n_workers=None, executor=None`` — the historical serial
      semantics: one RNG stream shared across trials.
    - ``n_workers >= 1`` — per-trial spawned streams, dispatched by a
      :class:`~repro.util.parallel.TrialExecutor`. ``executor`` picks
      the backend (``"serial"``, ``"thread"``, ``"process"``, or
      ``None``/``"auto"`` which prefers the process backend); results
      are bit-identical for every backend and worker count, but differ
      from the shared-stream serial walk. Passing ``executor`` alone
      implies ``n_workers=1``.
    """
    check_positive("n_trials", n_trials)
    check_positive("n_iters", n_iters)
    gossip = gossip or GossipConfig()
    transfer = transfer or TransferConfig()
    rng = coerce_rng(rng)

    l_ave = dist.average_load
    original = dist.assignment
    best_assignment = np.array(original, copy=True)
    initial = dist.imbalance()
    result = RefinementResult(
        best_assignment=best_assignment,
        best_imbalance=initial,
        initial_imbalance=initial,
    )

    instrumented = registry is not None and registry.enabled
    wall_start = time.perf_counter()
    if n_workers is None and executor is None:
        outcomes = [
            _run_trial(
                trial, dist, original, l_ave, n_iters, gossip, transfer, rng, registry
            )
            for trial in range(1, int(n_trials) + 1)
        ]
    else:
        if n_workers is None:
            n_workers = 1
        check_positive("n_workers", n_workers)
        streams = spawn_streams(rng, int(n_trials))
        shared = _TrialShared(
            dist=dist,
            original=original,
            l_ave=l_ave,
            n_iters=int(n_iters),
            gossip=gossip,
            transfer=transfer,
            instrumented=instrumented,
        )
        pool = TrialExecutor(executor, min(int(n_workers), int(n_trials)))
        payloads = [(trial + 1, streams[trial]) for trial in range(int(n_trials))]
        pairs = pool.map(_trial_worker, payloads, shared)
        outcomes = [outcome for outcome, _ in pairs]
        if instrumented:
            # Merge in trial order regardless of completion order, so
            # recorded series are identical for any worker count.
            for _, sub in pairs:
                registry.merge(sub)  # type: ignore[arg-type]

    _select_best(result, outcomes)

    if instrumented:
        registry.add_time("wall.refinement", time.perf_counter() - wall_start)
        registry.inc("lb.refinements")
        registry.event(
            "lb.refinement",
            n_trials=int(n_trials),
            n_iters=int(n_iters),
            initial_imbalance=result.initial_imbalance,
            best_imbalance=result.best_imbalance,
            gossip_messages=result.total_gossip_messages,
            gossip_bytes=result.total_gossip_bytes,
        )
    return result
