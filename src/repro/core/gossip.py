"""Algorithm 1 — the inform/gossip stage, phase level.

Underloaded ranks seed knowledge of their own load and gossip it for
``k`` rounds with fanout ``f``. Receivers merge the incoming knowledge
into ``S^p`` and forward it to ranks sampled from ``P \\ S^p``.

Two propagation modes are provided:

``coalesced`` (default)
    A rank that received one or more messages in round ``r`` forwards
    its *merged* knowledge once (``f`` messages) in round ``r+1``. This
    is what practical implementations (Charm++ GrapevineLB, DARMA/vt)
    do and bounds traffic at ``O(P f k)`` messages.

``per_message``
    The literal pseudocode: every received message with ``r < k``
    triggers ``f`` forwards, i.e. up to ``f^k`` messages. Provided for
    fidelity experiments at small scale; guarded by ``max_messages``.

The event-level asynchronous version (messages with latencies, no round
barrier, termination detection) lives in
:mod:`repro.runtime.distributed_gossip`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.knowledge import KnowledgeBitmap
from repro.obs import StatsRegistry
from repro.util.validation import check_in, check_positive, coerce_rng

__all__ = ["GossipConfig", "GossipResult", "GossipExplosionError", "run_inform_stage"]

#: Bytes for one (rank id, load) knowledge entry on the wire.
ENTRY_BYTES = 16
#: Fixed per-message envelope bytes (header, round counter).
HEADER_BYTES = 32


class GossipExplosionError(RuntimeError):
    """Raised when ``per_message`` mode exceeds its message budget."""


@dataclass(frozen=True)
class GossipConfig:
    """Inform-stage parameters (symbols of the paper's notation table)."""

    fanout: int = 6  #: f — gossip fanout factor
    rounds: int = 10  #: k — number of gossip rounds
    mode: str = "coalesced"  #: "coalesced" or "per_message"
    avoid_known: bool = True  #: sample forward targets from P \ S^p (l.20)
    max_messages: int = 2_000_000  #: safety cap for per_message mode
    #: Cap on |S^p| — the limited-information variant of the paper's
    #: § IV-B footnote (O(P) knowledge lists are a scalability pitfall).
    #: None = unlimited.
    max_known: int | None = None
    #: What to keep when the cap is hit: "random" (a uniform subset —
    #: keeps different ranks' knowledge decorrelated, which matters: if
    #: every sender kept the same globally-lowest ranks they would all
    #: dump onto the same recipients) or "lowest" (most headroom, but
    #: correlated across senders).
    trim_policy: str = "random"
    #: Topology awareness (§ I's NUMA/hierarchical networks): ranks are
    #: blocked onto nodes of this size; each gossip message targets a
    #: same-node candidate with probability ``intra_node_bias``. 1 rank
    #: per node = flat topology (the paper's algorithm).
    ranks_per_node: int = 1
    intra_node_bias: float = 0.0

    def __post_init__(self) -> None:
        check_positive("fanout", self.fanout)
        check_positive("rounds", self.rounds)
        check_in("mode", self.mode, ("coalesced", "per_message"))
        check_positive("max_messages", self.max_messages)
        if self.max_known is not None:
            check_positive("max_known", self.max_known)
        check_in("trim_policy", self.trim_policy, ("random", "lowest"))
        check_positive("ranks_per_node", self.ranks_per_node)
        if not 0.0 <= self.intra_node_bias <= 1.0:
            raise ValueError("intra_node_bias must be in [0, 1]")


@dataclass
class GossipResult:
    """Outcome of one inform stage."""

    knowledge: KnowledgeBitmap
    underloaded: np.ndarray  #: boolean mask, True where l^p < l_ave
    load_snapshot: np.ndarray  #: rank loads at inform time
    average_load: float
    n_messages: int = 0
    bytes_sent: int = 0
    inter_node_messages: int = 0  #: messages crossing node boundaries
    rounds_run: int = 0
    per_round_messages: list[int] = field(default_factory=list)

    def coverage(self) -> float:
        """Mean fraction of underloaded ranks known per rank."""
        return self.knowledge.coverage(self.underloaded)


def _sample_targets(
    rng: np.random.Generator,
    candidates: np.ndarray,
    fanout: int,
    sender: int | None = None,
    config: "GossipConfig | None" = None,
) -> np.ndarray:
    """Pick up to ``fanout`` distinct targets from ``candidates``.

    With topology bias configured, each slot draws from the sender's
    same-node candidates with probability ``intra_node_bias`` first,
    falling back to the global pool.
    """
    if candidates.size == 0:
        return candidates
    if candidates.size <= fanout:
        return candidates
    if (
        config is None
        or sender is None
        or config.intra_node_bias == 0.0
        or config.ranks_per_node <= 1
    ):
        return rng.choice(candidates, size=fanout, replace=False)
    node = sender // config.ranks_per_node
    local = candidates[candidates // config.ranks_per_node == node]
    picked: list[int] = []
    for _ in range(fanout):
        use_local = local.size > 0 and rng.random() < config.intra_node_bias
        source = local if use_local else candidates
        available = source[~np.isin(source, picked)] if picked else source
        if available.size == 0:
            available = candidates[~np.isin(candidates, picked)]
            if available.size == 0:
                break
        picked.append(int(rng.choice(available)))
    return np.asarray(picked, dtype=np.int64)


def run_inform_stage(
    rank_loads: np.ndarray,
    config: GossipConfig | None = None,
    rng: np.random.Generator | int | None = None,
    average_load: float | None = None,
    registry: StatsRegistry | None = None,
) -> GossipResult:
    """Execute Algorithm 1 over all ranks and return the gathered knowledge.

    Parameters
    ----------
    rank_loads:
        Current per-rank loads :math:`\\ell^p` (length ``P``).
    config:
        Gossip parameters; defaults to the paper's ``f=6, k=10``.
    rng:
        Seed or generator driving the random target selection.
    average_load:
        :math:`\\ell_{ave}`; computed from ``rank_loads`` when omitted
        (models the constant-size statistics all-reduce).
    registry:
        Optional :class:`~repro.obs.StatsRegistry`; when attached, the
        stage records its message/byte counters, per-stage series and
        knowledge-set sizes. Instrumentation never consumes RNG, so
        results are identical with or without it.
    """
    config = config or GossipConfig()
    rng = coerce_rng(rng)
    loads = np.ascontiguousarray(rank_loads, dtype=np.float64)
    n_ranks = loads.size
    if n_ranks == 0:
        raise ValueError("rank_loads must be non-empty")
    if not np.isfinite(loads).all():
        raise ValueError("rank loads must be finite (no NaN/inf)")
    l_ave = float(loads.mean()) if average_load is None else float(average_load)

    underloaded = loads < l_ave
    know = KnowledgeBitmap(n_ranks)
    result = GossipResult(
        knowledge=know,
        underloaded=underloaded,
        load_snapshot=loads.copy(),
        average_load=l_ave,
    )
    seeds = np.flatnonzero(underloaded)
    if seeds.size == 0:
        if registry is not None and registry.enabled:
            _record_inform_stage(registry, result)
        return result
    know.add_self(seeds)

    if config.mode == "coalesced":
        _run_coalesced(know, seeds, config, rng, result)
    else:
        _run_per_message(know, seeds, config, rng, result)
    if registry is not None and registry.enabled:
        _record_inform_stage(registry, result)
    return result


def _record_inform_stage(registry: StatsRegistry, result: GossipResult) -> None:
    """Account one finished inform stage into a registry."""
    registry.inc("gossip.stages")
    registry.inc("gossip.messages", result.n_messages)
    registry.inc("gossip.bytes", result.bytes_sent)
    registry.inc("gossip.inter_node_messages", result.inter_node_messages)
    known_counts = result.knowledge.counts()
    registry.observe(
        "gossip.stage",
        messages=result.n_messages,
        bytes=result.bytes_sent,
        rounds_run=result.rounds_run,
        underloaded=int(result.underloaded.sum()),
        coverage=float(result.coverage()),
        mean_known=float(known_counts.mean()),
        max_known=int(known_counts.max()),
    )


def _record_send(
    result: GossipResult,
    payload_entries: int,
    sender: int | None = None,
    target: int | None = None,
    config: GossipConfig | None = None,
) -> None:
    result.n_messages += 1
    result.bytes_sent += HEADER_BYTES + ENTRY_BYTES * payload_entries
    result.per_round_messages[-1] += 1
    if sender is not None and target is not None and config is not None:
        if sender // config.ranks_per_node != target // config.ranks_per_node:
            result.inter_node_messages += 1


def _record_sends(
    result: GossipResult,
    payload_entries: int,
    sender: int,
    targets: np.ndarray,
    config: GossipConfig,
) -> None:
    """Account one sender's whole fan-out (same payload to each target)."""
    n = int(targets.size)
    result.n_messages += n
    result.bytes_sent += n * (HEADER_BYTES + ENTRY_BYTES * payload_entries)
    result.per_round_messages[-1] += n
    result.inter_node_messages += int(
        np.count_nonzero(
            targets // config.ranks_per_node != sender // config.ranks_per_node
        )
    )


def _trim_knowledge(
    row: np.ndarray,
    loads: np.ndarray,
    config: GossipConfig,
    rng: np.random.Generator,
) -> None:
    """Enforce the ``max_known`` cap on one knowledge row in place."""
    if config.max_known is None:
        return
    known = np.flatnonzero(row)
    if known.size <= config.max_known:
        return
    if config.trim_policy == "lowest":
        keep = known[np.argsort(loads[known], kind="stable")[: config.max_known]]
    else:
        keep = rng.choice(known, size=config.max_known, replace=False)
    row[:] = False
    row[keep] = True


def _run_coalesced(
    know: KnowledgeBitmap,
    seeds: np.ndarray,
    config: GossipConfig,
    rng: np.random.Generator,
    result: GossipResult,
) -> None:
    n_ranks = know.n_ranks
    all_ranks = np.arange(n_ranks)
    senders = seeds
    initiating = True
    for round_index in range(1, config.rounds + 1):
        result.per_round_messages.append(0)
        result.rounds_run = round_index
        # Snapshot sender rows: a round-r message carries knowledge as of
        # its send time, not knowledge merged later in the same round.
        snapshot = know.rows[senders].copy()
        received = np.zeros(n_ranks, dtype=bool)
        for row, sender in zip(snapshot, senders):
            if initiating and not config.avoid_known:
                candidates = all_ranks[all_ranks != sender]
            elif initiating:
                # Alg. 1 l.10 samples from all of P; we still exclude self.
                candidates = all_ranks[all_ranks != sender]
            else:
                candidates = (
                    know.unknown_targets(sender)
                    if config.avoid_known
                    else all_ranks[all_ranks != sender]
                )
            targets = _sample_targets(rng, candidates, config.fanout, int(sender), config)
            entries = int(row.sum())
            if config.max_known is None:
                # Whole fan-out at once: the payload row is fixed, the
                # targets are distinct and no trim draws RNG, so this is
                # exactly the sequential per-target merge.
                if targets.size:
                    know.merge_many(targets, row)
                    received[targets] = True
                    _record_sends(result, entries, int(sender), targets, config)
            else:
                # Trimming consumes RNG per merge and must interleave
                # with the merges in message order — stay sequential.
                for target in targets:
                    know.merge(int(target), row)
                    _trim_knowledge(know.rows[target], result.load_snapshot, config, rng)
                    received[target] = True
                    _record_send(result, entries, int(sender), int(target), config)
        initiating = False
        senders = np.flatnonzero(received)
        if senders.size == 0:
            break


def _run_per_message(
    know: KnowledgeBitmap,
    seeds: np.ndarray,
    config: GossipConfig,
    rng: np.random.Generator,
    result: GossipResult,
) -> None:
    n_ranks = know.n_ranks
    all_ranks = np.arange(n_ranks)
    # Wave of in-flight messages: (target, payload_row, round_index).
    wave: list[tuple[int, np.ndarray, int]] = []
    result.per_round_messages.append(0)
    result.rounds_run = 1
    for sender in seeds:
        candidates = all_ranks[all_ranks != sender]
        for target in _sample_targets(rng, candidates, config.fanout, int(sender), config):
            payload = know.rows[sender].copy()
            wave.append((int(target), payload, 1))
            _record_send(result, int(payload.sum()), int(sender), int(target), config)
            if result.n_messages > config.max_messages:
                raise GossipExplosionError(
                    f"per_message gossip exceeded {config.max_messages} messages; "
                    "use mode='coalesced' or reduce fanout/rounds"
                )
    while wave:
        next_wave: list[tuple[int, np.ndarray, int]] = []
        result.per_round_messages.append(0)
        for target, payload, round_index in wave:
            know.merge(target, payload)
            _trim_knowledge(know.rows[target], result.load_snapshot, config, rng)
            if round_index < config.rounds:
                result.rounds_run = max(result.rounds_run, round_index + 1)
                candidates = (
                    know.unknown_targets(target)
                    if config.avoid_known
                    else all_ranks[all_ranks != target]
                )
                forwarded = know.rows[target].copy()
                for nxt in _sample_targets(rng, candidates, config.fanout, int(target), config):
                    next_wave.append((int(nxt), forwarded, round_index + 1))
                    _record_send(result, int(forwarded.sum()), int(target), int(nxt), config)
                    if result.n_messages > config.max_messages:
                        raise GossipExplosionError(
                            f"per_message gossip exceeded {config.max_messages} "
                            "messages; use mode='coalesced' or reduce fanout/rounds"
                        )
        wave = next_wave
    if result.per_round_messages and result.per_round_messages[-1] == 0:
        result.per_round_messages.pop()
