"""Algorithm 1 — the inform/gossip stage, phase level.

Underloaded ranks seed knowledge of their own load and gossip it for
``k`` rounds with fanout ``f``. Receivers merge the incoming knowledge
into ``S^p`` and forward it to ranks sampled from ``P \\ S^p``.

Two propagation modes are provided:

``coalesced`` (default)
    A rank that received one or more messages in round ``r`` forwards
    its *merged* knowledge once (``f`` messages) in round ``r+1``. This
    is what practical implementations (Charm++ GrapevineLB, DARMA/vt)
    do and bounds traffic at ``O(P f k)`` messages.

``per_message``
    The literal pseudocode: every received message with ``r < k``
    triggers ``f`` forwards, i.e. up to ``f^k`` messages. Provided for
    fidelity experiments at small scale; guarded by ``max_messages``.

The coalesced mode additionally selects between two *engines*:

``batched`` (default)
    Round-level vectorization on a :class:`PackedKnowledgeBitmap`: all
    of a round's fan-out targets are sampled in one pass (rejection
    sampling in rank-id space while candidate sets are dense, a
    segment-sorted exact sampler once they thin out), and all of a
    round's merges execute as one scatter-OR over the packed round
    matrix. Because the batch reorders RNG draws, results are
    *statistically* equivalent to the loop engine (identical message
    counts under the ``f x |senders|`` model, matched coverage
    distributions) rather than bit-identical.

``loop``
    The per-sender reference loop on a boolean
    :class:`KnowledgeBitmap`, kept as the behavioural oracle.

The event-level asynchronous version (messages with latencies, no round
barrier, termination detection) lives in
:mod:`repro.runtime.distributed_gossip`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core._kernels import get_gossip_kernels, warn_numba_missing
from repro.core.knowledge import KnowledgeBitmap, PackedKnowledgeBitmap, SparseKnowledge
from repro.obs import StatsRegistry
from repro.sim.faults import FaultConfig, PhaseFaultModel
from repro.util.validation import check_in, check_positive, coerce_rng

__all__ = [
    "GossipConfig",
    "GossipResult",
    "GossipExplosionError",
    "run_inform_stage",
    "resolve_auto_threshold",
    "SPARSE_AUTO_MIN_RANKS",
    "SPARSE_AUTO_MIN_RANKS_FAST",
]

#: Bytes for one (rank id, load) knowledge entry on the wire.
ENTRY_BYTES = 16
#: Fixed per-message envelope bytes (header, round counter).
HEADER_BYTES = 32

if hasattr(np, "bitwise_count"):
    _popcount = np.bitwise_count
else:  # pragma: no cover - NumPy < 2.0 fallback
    _POPCOUNT_TABLE = np.array(
        [bin(i).count("1") for i in range(256)], dtype=np.uint8
    )

    def _popcount(x: np.ndarray) -> np.ndarray:
        return _POPCOUNT_TABLE[x]


class GossipExplosionError(RuntimeError):
    """Raised when ``per_message`` mode exceeds its message budget."""


#: Rank count at which ``knowledge="auto"`` switches the batched engine
#: from the packed bitmap (O(P^2) bits — 128 MiB at 2^15, 2 GiB at
#: 2^17) to sparse per-rank id shards (O(cap * P) bytes), when the
#: sparse side runs the *reference* driver (``kernel="python"``).
#: Below the threshold the bit matrix is small enough that packed's
#: vectorized row-OR dominates (measured: ~2.7x over reference sparse
#: at 4k ranks); at 2^15 and beyond the matrix gathers outweigh the
#: shard merges (reference sparse ~1.8x faster at 32k over a full
#: 10-round episode, and the only backend that fits a sane budget at
#: 2^17, where packed would need a 2 GiB matrix plus a same-sized row
#: gather per round). Sparse only pays off once knowledge is capped,
#: so auto additionally requires ``max_known``.
SPARSE_AUTO_MIN_RANKS = 32_768

#: The same crossover under the fused sparse driver (``kernel="auto"``
#: / ``"numba"``): priority-space shards, completeness skips and shard
#: interning collapse the converged rounds to near nothing, which
#: moves the measured packed/sparse crossover (fanout 6, 10 rounds,
#: cap 512, "lowest" trim, 1 CPU) down to the 8k rung — packed/fused
#: wall ratio 0.71x at 4096 ranks, 1.02x at 8192, 1.53x at 16384,
#: 3.55x at 32768. Auto therefore switches at 8192 ranks when the
#: fused driver is selected.
SPARSE_AUTO_MIN_RANKS_FAST = 8_192


def resolve_auto_threshold(kernel: str) -> int:
    """The ``knowledge="auto"`` packed→sparse crossover rank count.

    Single source of truth for every driver that auto-selects a
    backend: the fused sparse driver (``kernel="auto"``/``"numba"``)
    crosses over at :data:`SPARSE_AUTO_MIN_RANKS_FAST`; the per-receiver
    Python reference (``kernel="python"`` — and the event-level
    :class:`repro.runtime.distributed_gossip.DistributedGossip`, whose
    scalar merge path has reference-driver economics) at
    :data:`SPARSE_AUTO_MIN_RANKS`.
    """
    return (
        SPARSE_AUTO_MIN_RANKS
        if kernel == "python"
        else SPARSE_AUTO_MIN_RANKS_FAST
    )


@dataclass(frozen=True)
class GossipConfig:
    """Inform-stage parameters (symbols of the paper's notation table)."""

    fanout: int = 6  #: f — gossip fanout factor
    rounds: int = 10  #: k — number of gossip rounds
    mode: str = "coalesced"  #: "coalesced" or "per_message"
    #: Coalesced-mode execution engine: "batched" (vectorized rounds on
    #: packed knowledge, the fast path) or "loop" (per-sender reference).
    #: Ignored by per_message mode, which is inherently sequential.
    engine: str = "batched"
    avoid_known: bool = True  #: sample forward targets from P \ S^p (l.20)
    max_messages: int = 2_000_000  #: safety cap for per_message mode
    #: Cap on |S^p| — the limited-information variant of the paper's
    #: § IV-B footnote (O(P) knowledge lists are a scalability pitfall).
    #: None = unlimited.
    max_known: int | None = None
    #: What to keep when the cap is hit: "random" (a uniform subset —
    #: keeps different ranks' knowledge decorrelated, which matters: if
    #: every sender kept the same globally-lowest ranks they would all
    #: dump onto the same recipients) or "lowest" (most headroom, but
    #: correlated across senders).
    trim_policy: str = "random"
    #: Topology awareness (§ I's NUMA/hierarchical networks): ranks are
    #: blocked onto nodes of this size; each gossip message targets a
    #: same-node candidate with probability ``intra_node_bias``. 1 rank
    #: per node = flat topology (the paper's algorithm).
    ranks_per_node: int = 1
    intra_node_bias: float = 0.0
    #: Fault injection (:mod:`repro.sim.faults`): per-message loss,
    #: round-unit delay spikes, duplication and optional retransmission
    #: applied to every gossip message. None — or a config with no
    #: active fault source — leaves both engines on their original code
    #: path, bit for bit (zero-fault invisibility). The fault fates
    #: draw from their own seeded generator, never from the engine's
    #: sampling RNG.
    faults: FaultConfig | None = None
    #: Knowledge backend for the batched engine: "packed" (the dense
    #: bit matrix, O(P^2) bits), "sparse" (per-rank sorted id shards,
    #: O(sum |S^p|) — the high-rank-count backend, bit-identical to
    #: packed), or "auto" (sparse once the rank count crosses the
    #: kernel-dependent threshold *and* ``max_known`` caps the shards;
    #: packed otherwise). The loop engine always uses the boolean
    #: reference bitmap.
    knowledge: str = "auto"
    #: Sparse-backend driver: "auto" (the fused driver — shard
    #: interning, equality-skipped merges, jitted scalar kernels where
    #: numba is installed, vectorized NumPy fallbacks where not),
    #: "numba" (the fused driver too, but warns once when numba is
    #: missing — use it to *assert* the compiled build), or "python"
    #: (the per-receiver reference driver, kept as the behavioural
    #: oracle). All three are bit-identical — same targets, same
    #: knowledge, same RNG stream. Packed/dense backends ignore this
    #: knob; their round loop is already fully vectorized.
    kernel: str = "auto"

    def __post_init__(self) -> None:
        check_positive("fanout", self.fanout)
        check_positive("rounds", self.rounds)
        check_in("mode", self.mode, ("coalesced", "per_message"))
        check_in("engine", self.engine, ("batched", "loop"))
        check_positive("max_messages", self.max_messages)
        if self.max_known is not None:
            check_positive("max_known", self.max_known)
        check_in("trim_policy", self.trim_policy, ("random", "lowest"))
        check_positive("ranks_per_node", self.ranks_per_node)
        if not 0.0 <= self.intra_node_bias <= 1.0:
            raise ValueError("intra_node_bias must be in [0, 1]")
        check_in("knowledge", self.knowledge, ("auto", "packed", "sparse"))
        check_in("kernel", self.kernel, ("auto", "python", "numba"))
        if self.knowledge == "sparse":
            if self.mode != "coalesced" or self.engine != "batched":
                raise ValueError(
                    "knowledge='sparse' requires mode='coalesced' and "
                    "engine='batched'"
                )
            if self.intra_node_bias > 0.0:
                raise ValueError(
                    "knowledge='sparse' does not support intra_node_bias"
                )
            if self.faults is not None:
                raise ValueError(
                    "knowledge='sparse' does not support fault injection"
                )

    def resolve_knowledge(self, n_ranks: int) -> str:
        """The batched engine's backend for a given rank count.

        Auto selects sparse only where it is both applicable (no fault
        model or topology bias — those paths are packed-only) and a
        win: a ``max_known`` cap bounds the shards, and the rank count
        is at or past the measured packed/sparse crossover — which
        depends on the sparse driver the ``kernel`` knob selects
        (``SPARSE_AUTO_MIN_RANKS_FAST`` for the fused driver,
        ``SPARSE_AUTO_MIN_RANKS`` for the Python reference).
        """
        if self.knowledge != "auto":
            return self.knowledge
        threshold = resolve_auto_threshold(self.kernel)
        if (
            self.mode == "coalesced"
            and self.engine == "batched"
            and self.max_known is not None
            and self.faults is None
            and self.intra_node_bias == 0.0
            and n_ranks >= threshold
        ):
            return "sparse"
        return "packed"


@dataclass
class GossipResult:
    """Outcome of one inform stage."""

    knowledge: KnowledgeBitmap | PackedKnowledgeBitmap | SparseKnowledge
    underloaded: np.ndarray  #: boolean mask, True where l^p < l_ave
    load_snapshot: np.ndarray  #: rank loads at inform time
    average_load: float
    n_messages: int = 0
    bytes_sent: int = 0
    inter_node_messages: int = 0  #: messages crossing node boundaries
    rounds_run: int = 0
    per_round_messages: list[int] = field(default_factory=list)
    #: Ranks that sent in each round (round 1 = the underloaded seeds);
    #: the f*|senders| message model checks against this. Filled by
    #: both coalesced engines; per_message counts distinct forwarders.
    per_round_senders: list[int] = field(default_factory=list)
    #: Fault-injection accounting (all zero when no fault model ran):
    #: messages lost, delivered late, duplicated, the retransmission
    #: count behind recovered losses, and deliveries that matured after
    #: the final round barrier and were discarded.
    dropped: int = 0
    delayed: int = 0
    duplicated: int = 0
    retransmits: int = 0
    expired: int = 0
    #: Backend the stage actually ran ("packed"/"sparse"/"reference")
    #: and the auto crossover that applied — so callers (bench meta,
    #: CLI reports) never re-derive the selection and drift from it.
    knowledge_backend: str = ""
    auto_threshold: int = 0

    def coverage(self) -> float:
        """Mean fraction of underloaded ranks known per rank."""
        return self.knowledge.coverage(self.underloaded)


def _sample_targets(
    rng: np.random.Generator,
    candidates: np.ndarray,
    fanout: int,
    sender: int | None = None,
    config: "GossipConfig | None" = None,
) -> np.ndarray:
    """Pick up to ``fanout`` distinct targets from ``candidates``.

    With topology bias configured, each slot draws from the sender's
    same-node candidates with probability ``intra_node_bias`` first,
    falling back to the global pool.
    """
    if candidates.size == 0:
        return candidates
    if candidates.size <= fanout:
        return candidates
    if (
        config is None
        or sender is None
        or config.intra_node_bias == 0.0
        or config.ranks_per_node <= 1
    ):
        return rng.choice(candidates, size=fanout, replace=False)
    node = sender // config.ranks_per_node
    local = candidates[candidates // config.ranks_per_node == node]
    picked: list[int] = []
    for _ in range(fanout):
        use_local = local.size > 0 and rng.random() < config.intra_node_bias
        source = local if use_local else candidates
        available = source[~np.isin(source, picked)] if picked else source
        if available.size == 0:
            available = candidates[~np.isin(candidates, picked)]
            if available.size == 0:
                break
        picked.append(int(rng.choice(available)))
    return np.asarray(picked, dtype=np.int64)


def run_inform_stage(
    rank_loads: np.ndarray,
    config: GossipConfig | None = None,
    rng: np.random.Generator | int | None = None,
    average_load: float | None = None,
    registry: StatsRegistry | None = None,
) -> GossipResult:
    """Execute Algorithm 1 over all ranks and return the gathered knowledge.

    Parameters
    ----------
    rank_loads:
        Current per-rank loads :math:`\\ell^p` (length ``P``).
    config:
        Gossip parameters; defaults to the paper's ``f=6, k=10``.
    rng:
        Seed or generator driving the random target selection.
    average_load:
        :math:`\\ell_{ave}`; computed from ``rank_loads`` when omitted
        (models the constant-size statistics all-reduce).
    registry:
        Optional :class:`~repro.obs.StatsRegistry`; when attached, the
        stage records its message/byte counters, per-stage series and
        knowledge-set sizes. Instrumentation never consumes RNG, so
        results are identical with or without it.
    """
    config = config or GossipConfig()
    rng = coerce_rng(rng)
    loads = np.ascontiguousarray(rank_loads, dtype=np.float64)
    n_ranks = loads.size
    if n_ranks == 0:
        raise ValueError("rank_loads must be non-empty")
    if not np.isfinite(loads).all():
        raise ValueError("rank loads must be finite (no NaN/inf)")
    l_ave = float(loads.mean()) if average_load is None else float(average_load)

    underloaded = loads < l_ave
    batched = config.mode == "coalesced" and config.engine == "batched"
    sparse = batched and config.resolve_knowledge(n_ranks) == "sparse"
    know: KnowledgeBitmap | PackedKnowledgeBitmap | SparseKnowledge
    if sparse:
        know = SparseKnowledge(n_ranks)
    elif batched:
        know = PackedKnowledgeBitmap(n_ranks)
    else:
        know = KnowledgeBitmap(n_ranks)
    result = GossipResult(
        knowledge=know,
        underloaded=underloaded,
        load_snapshot=loads.copy(),
        average_load=l_ave,
        knowledge_backend=(
            "sparse" if sparse else "packed" if batched else "reference"
        ),
        auto_threshold=resolve_auto_threshold(config.kernel),
    )
    seeds = np.flatnonzero(underloaded)
    if seeds.size == 0:
        if registry is not None and registry.enabled:
            _record_inform_stage(registry, result)
        return result
    know.add_self(seeds)

    #: None when config.faults has no active fault source — the engines
    #: then never branch on it and run their original code path.
    model = PhaseFaultModel.create(config.faults)
    if config.mode == "per_message":
        if model is not None:
            raise ValueError("fault injection requires mode='coalesced'")
        _run_per_message(know, seeds, config, rng, result)  # type: ignore[arg-type]
    elif sparse:
        if config.kernel == "python":
            _run_coalesced_sparse(know, seeds, config, rng, result)  # type: ignore[arg-type]
        else:
            if config.kernel == "numba":
                warn_numba_missing("the sparse inform kernel")
            _run_coalesced_sparse_fast(know, seeds, config, rng, result)  # type: ignore[arg-type]
    elif batched:
        _run_coalesced_batched(know, seeds, config, rng, result, model)  # type: ignore[arg-type]
    else:
        _run_coalesced(know, seeds, config, rng, result, model)  # type: ignore[arg-type]
    _finalize_rounds(result)
    if model is not None:
        result.dropped = model.drops
        result.delayed = model.delayed
        result.duplicated = model.duplicates
        result.retransmits = model.retransmits
        result.expired = model.expired
        if registry is not None and registry.enabled:
            registry.inc("faults.gossip.dropped", model.drops)
            registry.inc("faults.gossip.delayed", model.delayed)
            registry.inc("faults.gossip.duplicated", model.duplicates)
            registry.inc("faults.gossip.retransmits", model.retransmits)
            registry.inc("faults.gossip.expired", model.expired)
    if registry is not None and registry.enabled:
        _record_inform_stage(registry, result)
    return result


def _finalize_rounds(result: GossipResult) -> None:
    """Unify trailing-round semantics across modes and engines.

    A round in which nobody sent anything did not happen: trailing
    zero-message entries are dropped (``per_message`` always ended its
    wave loop with one; ``coalesced`` left one behind whenever the last
    senders had empty candidate sets) and ``rounds_run`` is the number
    of rounds that actually carried messages.
    """
    while result.per_round_messages and result.per_round_messages[-1] == 0:
        result.per_round_messages.pop()
        if result.per_round_senders:
            result.per_round_senders.pop()
    result.rounds_run = len(result.per_round_messages)


def _record_inform_stage(registry: StatsRegistry, result: GossipResult) -> None:
    """Account one finished inform stage into a registry."""
    registry.inc("gossip.stages")
    registry.inc("gossip.messages", result.n_messages)
    registry.inc("gossip.bytes", result.bytes_sent)
    registry.inc("gossip.inter_node_messages", result.inter_node_messages)
    known_counts = result.knowledge.counts()
    registry.observe(
        "gossip.stage",
        messages=result.n_messages,
        bytes=result.bytes_sent,
        rounds_run=result.rounds_run,
        underloaded=int(result.underloaded.sum()),
        coverage=float(result.coverage()),
        mean_known=float(known_counts.mean()),
        max_known=int(known_counts.max()),
    )


def _record_send(
    result: GossipResult,
    payload_entries: int,
    sender: int | None = None,
    target: int | None = None,
    config: GossipConfig | None = None,
) -> None:
    result.n_messages += 1
    result.bytes_sent += HEADER_BYTES + ENTRY_BYTES * payload_entries
    result.per_round_messages[-1] += 1
    if sender is not None and target is not None and config is not None:
        if sender // config.ranks_per_node != target // config.ranks_per_node:
            result.inter_node_messages += 1


def _record_sends(
    result: GossipResult,
    payload_entries: int,
    sender: int,
    targets: np.ndarray,
    config: GossipConfig,
) -> None:
    """Account one sender's whole fan-out (same payload to each target)."""
    n = int(targets.size)
    result.n_messages += n
    result.bytes_sent += n * (HEADER_BYTES + ENTRY_BYTES * payload_entries)
    result.per_round_messages[-1] += n
    result.inter_node_messages += int(
        np.count_nonzero(
            targets // config.ranks_per_node != sender // config.ranks_per_node
        )
    )


def _trim_knowledge(
    row: np.ndarray,
    loads: np.ndarray,
    config: GossipConfig,
    rng: np.random.Generator,
) -> None:
    """Enforce the ``max_known`` cap on one knowledge row in place."""
    if config.max_known is None:
        return
    known = np.flatnonzero(row)
    if known.size <= config.max_known:
        return
    if config.trim_policy == "lowest":
        keep = known[np.argsort(loads[known], kind="stable")[: config.max_known]]
    else:
        keep = rng.choice(known, size=config.max_known, replace=False)
    row[:] = False
    row[keep] = True


def _run_coalesced(
    know: KnowledgeBitmap,
    seeds: np.ndarray,
    config: GossipConfig,
    rng: np.random.Generator,
    result: GossipResult,
    model: PhaseFaultModel | None = None,
) -> None:
    """Per-sender reference loop (``engine="loop"``).

    With a fault model, a message sent in round ``r`` whose fate is an
    offset ``d`` matures in round ``r+d``: it merges *after* that
    round's payload snapshot (a late message cannot ride the same
    round's sends) and its receiver forwards in round ``r+d+1``.
    Deliveries maturing past round ``k`` are discarded at the stage's
    closing barrier and counted as expired.
    """
    n_ranks = know.n_ranks
    all_ranks = np.arange(n_ranks)
    senders = seeds
    initiating = True
    #: round -> [(target, payload_row)] deliveries still in flight.
    pending: dict[int, list[tuple[int, np.ndarray]]] = {}
    for _round in range(1, config.rounds + 1):
        result.per_round_messages.append(0)
        result.per_round_senders.append(int(senders.size))
        # Snapshot sender rows: in a barrier-synchronized round every
        # rank sends before anything is delivered, so both the payload
        # *and* the P \ S^p candidate set reflect knowledge as of round
        # start, never merges from the same round.
        snapshot = know.rows[senders].copy()
        received = np.zeros(n_ranks, dtype=bool)
        # Mature this round's late deliveries (after the snapshot, so
        # they cannot leak into payloads sent this same round).
        for target, payload in pending.pop(_round, ()):
            know.merge(target, payload)
            _trim_knowledge(know.rows[target], result.load_snapshot, config, rng)
            received[target] = True
        for row, sender in zip(snapshot, senders):
            if initiating:
                # Alg. 1 l.10: the seeding round samples from all of P
                # (minus self) regardless of avoid_known — a seed's
                # knowledge is exactly itself, so P \ S^p and P \ {p}
                # coincide and the two intents collapse to one branch.
                candidates = all_ranks[all_ranks != sender]
            elif config.avoid_known:
                unknown = ~row
                unknown[sender] = False
                candidates = np.flatnonzero(unknown)
            else:
                candidates = all_ranks[all_ranks != sender]
            targets = _sample_targets(rng, candidates, config.fanout, int(sender), config)
            entries = int(row.sum())
            if model is not None:
                # Logical sends are accounted in full; the fault fates
                # then decide which copies reach their target and when.
                _record_sends(result, entries, int(sender), targets, config)
                offsets, copies = model.fates(int(targets.size))
                for t, off, cp in zip(targets, offsets, copies):
                    for copy_index in range(int(cp)):
                        arrive = _round + int(off) + copy_index
                        if arrive == _round:
                            know.merge(int(t), row)
                            _trim_knowledge(
                                know.rows[int(t)], result.load_snapshot, config, rng
                            )
                            received[int(t)] = True
                        elif arrive <= config.rounds:
                            pending.setdefault(arrive, []).append((int(t), row))
                        else:
                            model.expired += 1
            elif config.max_known is None:
                # Whole fan-out at once: the payload row is fixed, the
                # targets are distinct and no trim draws RNG, so this is
                # exactly the sequential per-target merge.
                if targets.size:
                    know.merge_many(targets, row)
                    received[targets] = True
                    _record_sends(result, entries, int(sender), targets, config)
            else:
                # Trimming consumes RNG per merge and must interleave
                # with the merges in message order — stay sequential.
                for target in targets:
                    know.merge(int(target), row)
                    _trim_knowledge(know.rows[target], result.load_snapshot, config, rng)
                    received[target] = True
                    _record_send(result, entries, int(sender), int(target), config)
        initiating = False
        senders = np.flatnonzero(received)
        if senders.size == 0 and not pending:
            break


# ---------------------------------------------------------------------------
# Batched engine (``engine="batched"``): round-level vectorization.
# ---------------------------------------------------------------------------

#: Rejection-sampling wave cap before the exact sampler takes over.
_MAX_REJECTION_WAVES = 8
#: Widest draw matrix one rejection wave may allocate per row; beyond
#: this the wave's dedup sort costs more than the exact sampler.
_MAX_WAVE_WIDTH = 64
#: Candidate density (as 1/_SPARSE_DIVISOR of P) below which the exact
#: sampler beats rejection waves.
_SPARSE_DIVISOR = 64


class _PackedCandidates:
    """Candidate membership over a packed uint8 bit matrix.

    The view interface the batch sampler works against: ``test`` checks
    a matrix of drawn rank ids against each row's candidate set, and
    ``extract`` materializes selected rows as packed bytes for the
    exact sampler. The packed engine's candidate matrix satisfies it
    directly; the sparse engine substitutes a complement view so the
    O(P^2)-bit matrix never exists.
    """

    __slots__ = ("packed",)

    def __init__(self, packed: np.ndarray) -> None:
        self.packed = packed

    def test(self, rows: np.ndarray, draws: np.ndarray) -> np.ndarray:
        bit = np.uint8(128) >> (draws & 7).astype(np.uint8)
        return (self.packed[rows[:, None], draws >> 3] & bit) != 0

    def extract(self, rows: np.ndarray) -> np.ndarray:
        return self.packed[rows].copy()


class _SparseComplementCandidates:
    """Candidate view ``P \\ (S^p u {p})`` over sparse knowledge shards.

    A draw is a candidate iff it is not the sender and not in the
    sender's shard. Shard membership resolves against one flat key
    array ``row * P + id``: the row-major concatenation of sorted
    shards is globally sorted, so a whole wave of (row, draw) pairs is
    one ``searchsorted``. ``extract`` (the exact-sampler path, rare
    and only for thin rows) packs the complement from an all-ones
    template with the shard and self bits cleared.
    """

    __slots__ = ("n_ranks", "senders", "shards", "lens", "flat_keys", "template")

    def __init__(
        self,
        n_ranks: int,
        senders: np.ndarray,
        shards: list[np.ndarray] | None,
        lens: np.ndarray | None,
        flat_keys: np.ndarray | None,
        template: np.ndarray,
    ) -> None:
        self.n_ranks = n_ranks
        self.senders = senders
        self.shards = shards  # None => candidates are all of P minus self
        self.lens = lens
        self.flat_keys = flat_keys
        self.template = template

    def test(self, rows: np.ndarray, draws: np.ndarray) -> np.ndarray:
        ok = draws != self.senders[rows][:, None]
        flat = self.flat_keys
        if flat is not None and flat.size:
            keys = (rows[:, None] * np.int64(self.n_ranks) + draws).ravel()
            pos = np.searchsorted(flat, keys)
            hit = flat[np.minimum(pos, flat.size - 1)] == keys
            ok &= ~hit.reshape(draws.shape)
        return ok

    def extract(self, rows: np.ndarray) -> np.ndarray:
        out = np.repeat(self.template[None, :], rows.size, axis=0)
        idx = np.arange(rows.size)
        if self.shards is not None:
            row_lens = self.lens[rows]
            if int(row_lens.sum()):
                members = np.concatenate(
                    [self.shards[r] for r in rows.tolist()]
                ).astype(np.int64)
                _clear_bits(out, np.repeat(idx, row_lens), members)
        _clear_bits(out, idx, self.senders[rows])
        return out


def _sample_sparse_rows(
    rng: np.random.Generator,
    sel: np.ndarray,
    want: np.ndarray,
    n_ranks: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Exact per-row sampling for thinned-out candidate sets.

    ``sel`` holds the already-extracted packed candidate rows (aligned
    with ``want``). Candidate ids are expanded straight from the
    nonzero bytes — cheap once sets are sparse — keyed with an
    independent uniform each, and each row takes its ``want`` smallest
    keys: a uniform without-replacement sample per row, via one
    argpartition over a padded id matrix. Returns flat ``(local row
    index, rank id)``.
    """
    empty = np.empty(0, dtype=np.int64)
    n_rows = sel.shape[0]
    if n_rows == 0:
        return empty, empty
    nz_r, nz_b = np.nonzero(sel)
    if nz_r.size == 0:
        return empty, empty
    bits = np.unpackbits(sel[nz_r, nz_b, None], axis=1)
    br, bc = np.nonzero(bits)
    rid = nz_r[br]  # row-major nonzero => rid ascending, cid sorted in-row
    cid = nz_b[br] * 8 + bc
    seg_counts = np.bincount(rid, minlength=n_rows)
    take = np.minimum(want, seg_counts)
    take_max = int(take.max())
    if take_max == 0:
        return empty, empty
    # Pad the ragged candidate lists into a (rows, m_max) matrix.
    m_max = int(seg_counts.max())
    seg_starts = np.concatenate(([0], np.cumsum(seg_counts)[:-1]))
    within = np.arange(rid.size) - seg_starts[rid]
    ids = np.full((n_rows, m_max), -1, dtype=np.int64)
    ids[rid, within] = cid
    keys = rng.random((n_rows, m_max))
    keys[ids < 0] = np.inf  # padding never wins
    kth = min(take_max - 1, m_max - 1)
    part = np.argpartition(keys, kth, axis=1)[:, :take_max]
    # Order the selected block by key so a row's first take[i] columns
    # are its take[i] smallest finite keys (padding keys are inf).
    block = np.take_along_axis(keys, part, axis=1)
    part = np.take_along_axis(part, np.argsort(block, axis=1), axis=1)
    accept = np.arange(take_max)[None, :] < take[:, None]
    targets = ids[np.arange(n_rows)[:, None], part][accept]
    row_idx = np.broadcast_to(np.arange(n_rows)[:, None], accept.shape)[accept]
    return row_idx, targets


def _mark_wave_duplicates(draws: np.ndarray) -> np.ndarray:
    """True where ``draws[i, j]`` repeats an earlier draw of row ``i``."""
    idx = np.argsort(draws, axis=1, kind="stable")
    sorted_draws = np.take_along_axis(draws, idx, axis=1)
    dup_sorted = np.zeros(draws.shape, dtype=bool)
    dup_sorted[:, 1:] = sorted_draws[:, 1:] == sorted_draws[:, :-1]
    dup = np.zeros(draws.shape, dtype=bool)
    np.put_along_axis(dup, idx, dup_sorted, axis=1)
    return dup


def _sample_packed_rows(
    rng: np.random.Generator,
    cand: "np.ndarray | _PackedCandidates | _SparseComplementCandidates",
    counts: np.ndarray,
    want: np.ndarray,
    n_ranks: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Sample ``want[i]`` distinct set bits uniformly from each packed
    candidate row ``cand[i]``; returns flat ``(row index, rank id)``.

    ``cand`` is a packed uint8 matrix or a candidate view (``test`` /
    ``extract``); the sparse engine passes a complement view so its
    candidates are never materialized, and because the control flow —
    wave widths, draw shapes, the dense/sparse row split — depends only
    on ``counts``/``want``, both backends consume the identical RNG
    stream and pick identical targets.

    Hybrid fast path: rows with enough candidates draw uniform rank
    ids in vectorized waves and reject misses/duplicates — expected
    ``O(f / density)`` draws per row and *no* candidate
    materialization, which is what keeps the round cost flat as ``P``
    grows. Rows whose candidate sets have thinned out (and the rare
    rows a capped wave budget could not fill) use the exact
    packed-byte sampler instead.
    """
    if isinstance(cand, np.ndarray):
        cand = _PackedCandidates(cand)
    empty = np.empty(0, dtype=np.int64)
    want = np.minimum(want, counts)
    # Rejection pays off while a couple of waves are expected to fill a
    # row; below ~1/_SPARSE_DIVISOR density the exact sampler wins.
    min_count = np.maximum(2 * want, counts.dtype.type(n_ranks // _SPARSE_DIVISOR))
    dense = counts >= min_count
    need_any = want > 0
    dense_rows = np.flatnonzero(dense & need_any)
    sparse_rows = np.flatnonzero(~dense & need_any)

    out_rows: list[np.ndarray] = []
    out_targets: list[np.ndarray] = []

    if dense_rows.size:
        fmax = int(want[dense_rows].max())
        slots = np.full((dense_rows.size, fmax), -1, dtype=np.int64)
        filled = np.zeros(dense_rows.size, dtype=np.int64)
        need = want[dense_rows].copy()
        active = np.arange(dense_rows.size)
        for _ in range(_MAX_REJECTION_WAVES):
            if active.size == 0:
                break
            remaining = need[active] - filled[active]
            density = counts[dense_rows[active]] / n_ranks
            width = int(np.ceil(1.5 * (remaining / density).max()))
            width = min(max(width, 8), _MAX_WAVE_WIDTH)
            draws = rng.integers(0, n_ranks, size=(active.size, width))
            r = dense_rows[active]
            ok = cand.test(r, draws)
            ok &= ~(draws[:, :, None] == slots[active][:, None, :]).any(axis=2)
            ok &= ~_mark_wave_duplicates(draws)
            # Accept each row's first `remaining` valid draws, in draw
            # order — exactly sequential rejection sampling.
            pos = np.where(ok, np.arange(width), width)
            pos.sort(axis=1)
            take_max = int(remaining.max())
            for j in range(take_max):
                pj = pos[:, j]
                acc = (pj < width) & (j < remaining)
                if not acc.any():
                    continue
                rows_j = active[acc]
                slots[rows_j, filled[rows_j]] = draws[acc, pj[acc]]
                filled[rows_j] += 1
            active = active[filled[active] < need[active]]
        if filled.any():
            out_rows.append(np.repeat(dense_rows, filled))
            out_targets.append(slots[slots >= 0])
        if active.size:  # pragma: no cover - probabilistic fallback
            # Clear already-picked bits and finish exactly.
            leftover = dense_rows[active]
            residual = cand.extract(leftover)
            picked_rows = np.repeat(np.arange(active.size), filled[active])
            picked = slots[active][slots[active] >= 0]
            _clear_bits(residual, picked_rows, picked)
            extra_rows, extra_targets = _sample_sparse_rows(
                rng, residual, need[active] - filled[active], n_ranks
            )
            out_rows.append(leftover[extra_rows])
            out_targets.append(extra_targets)

    if sparse_rows.size:
        s_rows, s_targets = _sample_sparse_rows(
            rng, cand.extract(sparse_rows), want[sparse_rows], n_ranks
        )
        out_rows.append(sparse_rows[s_rows])
        out_targets.append(s_targets)

    if not out_rows:
        return empty, empty
    return np.concatenate(out_rows), np.concatenate(out_targets)


def _clear_bits(matrix: np.ndarray, rows: np.ndarray, ids: np.ndarray) -> None:
    """Clear bit ``ids[i]`` in ``matrix[rows[i]]`` (duplicate-safe)."""
    inv = ~(np.uint8(128) >> (ids & 7).astype(np.uint8))
    np.bitwise_and.at(matrix, (rows, ids >> 3), inv)


#: Rows unpacked per trim pass. Trimming used to materialize *every*
#: over-cap row as booleans at once — O(|over| x P) bytes, which at
#: 2^17 ranks is a 16 GiB allocation per round. Fixed-size chunks keep
#: trim memory O(chunk x P) regardless of how many rows are over cap;
#: the "random" policy's key draws split along the same chunk
#: boundaries, and row-chunked ``rng.random`` fills the identical
#: stream as one full-matrix draw, so results are unchanged.
_TRIM_CHUNK_ROWS = 64


def _load_priority(loads: np.ndarray) -> np.ndarray:
    """Rank of each rank under the (load, id) order the "lowest" trim
    keeps: ``priority[q] = position of q in a stable sort by load``.

    A permutation, so per-row selection can use ``argpartition`` on
    integer keys (no ties) instead of a full-width stable argsort,
    while keeping exactly the same survivor set.
    """
    prio = np.empty(loads.size, dtype=np.int64)
    prio[np.argsort(loads, kind="stable")] = np.arange(loads.size)
    return prio


def _trim_rows_packed(
    know: PackedKnowledgeBitmap,
    ranks: np.ndarray,
    loads: np.ndarray,
    config: GossipConfig,
    rng: np.random.Generator,
) -> None:
    """Vectorized ``max_known`` cap for a batch of packed rows.

    The loop engine trims after every merge; here the cap is enforced
    once per round after all of the round's merges — the same cap, a
    statistically equivalent survivor set. Rows are unpacked in
    ``_TRIM_CHUNK_ROWS`` chunks so trim memory stays O(chunk x P).
    """
    cap = config.max_known
    if cap is None or ranks.size == 0:
        return
    counts = _popcount(know.packed[ranks]).sum(axis=1, dtype=np.int64)
    over = ranks[counts > cap]
    if over.size == 0:
        return
    n = know.n_ranks
    lowest = config.trim_policy == "lowest"
    if lowest:
        prio = _load_priority(loads)
    for start in range(0, over.size, _TRIM_CHUNK_ROWS):
        rows = over[start : start + _TRIM_CHUNK_ROWS]
        bools = np.unpackbits(know.packed[rows], axis=1, count=n).view(bool)
        if lowest:
            # Non-members get priority n — worse than any member — so
            # the cap smallest keys are exactly the members lowest in
            # the (load, id) order.
            keys = np.where(bools, prio[None, :], np.int64(n))
            keep = np.argpartition(keys, cap, axis=1)[:, :cap]
        else:
            keys = rng.random(bools.shape)
            keys[~bools] = np.inf
            keep = np.argpartition(keys, cap, axis=1)[:, :cap]
        trimmed = np.zeros(bools.shape, dtype=np.uint8)
        np.put_along_axis(trimmed, keep, 1, axis=1)
        know.packed[rows] = np.packbits(trimmed, axis=1)


def _trim_rows_sparse(
    know: SparseKnowledge,
    ranks: np.ndarray,
    loads: np.ndarray,
    config: GossipConfig,
    rng: np.random.Generator,
    interner: "_ShardInterner | None" = None,
) -> None:
    """``max_known`` cap over sparse shards, bit-identical to the packed
    trim: the same survivor sets, and for the "random" policy the same
    RNG consumption (full-width key rows drawn in the same chunks —
    only the member positions are ever *read*, but the stream must
    match the packed engine draw for draw).

    With an ``interner`` (the fused driver), each trimmed shard is
    canonicalized so ranks that converge onto the same survivor set
    share one array object — the identity the driver's equality-skip
    keys on. Interning never changes a shard's *values*.
    """
    cap = config.max_known
    if cap is None or ranks.size == 0:
        return
    shards = know.shards
    rank_list = ranks.tolist()
    lens = np.fromiter((shards[r].size for r in rank_list), np.int64, ranks.size)
    over = ranks[lens > cap]
    if over.size == 0:
        return
    if config.trim_policy == "lowest":
        prio = _load_priority(loads)
        for r in over.tolist():
            shard = shards[r]
            keep = shard[np.argpartition(prio[shard], cap - 1)[:cap]]
            keep.sort()
            shards[r] = keep if interner is None else interner.canon(keep)
        return
    n = know.n_ranks
    for start in range(0, over.size, _TRIM_CHUNK_ROWS):
        chunk = over[start : start + _TRIM_CHUNK_ROWS]
        keys = rng.random((chunk.size, n))
        for i, r in enumerate(chunk.tolist()):
            shard = shards[r]
            member_keys = keys[i, shard]
            keep = shard[np.argpartition(member_keys, cap - 1)[:cap]]
            keep.sort()
            shards[r] = keep if interner is None else interner.canon(keep)


def _run_coalesced_batched(
    know: PackedKnowledgeBitmap,
    seeds: np.ndarray,
    config: GossipConfig,
    rng: np.random.Generator,
    result: GossipResult,
    model: PhaseFaultModel | None = None,
) -> None:
    """Round-level vectorized engine (``engine="batched"``).

    Per round: build every sender's packed candidate mask, sample the
    whole round's fan-out in one pass, account all messages with array
    reductions, and apply all merges as one sorted scatter-OR
    (``bitwise_or.reduceat`` over the gathered round matrix). The
    gathered sender rows double as the round's send buffer, replacing
    the loop engine's full boolean snapshot copy — at 4096 ranks that
    is 2 MB of packed rows per round instead of 16 MB.
    """
    n_ranks = know.n_ranks
    fanout = config.fanout
    rpn = config.ranks_per_node
    #: All-ones candidate template with the padding bits already clear.
    template = np.packbits(np.ones(n_ranks, dtype=bool))
    pad_mask = template[-1]
    biased = config.intra_node_bias > 0.0 and rpn > 1
    if biased:
        node_of = np.arange(n_ranks) // rpn
        n_nodes = int(node_of[-1]) + 1
        node_masks = np.zeros((n_nodes, know.n_bytes), dtype=np.uint8)
        for node in range(n_nodes):
            node_masks[node] = np.packbits(node_of == node)

    senders = seeds.astype(np.int64)
    initiating = True
    #: round -> [(targets array, payload-row matrix)] late deliveries.
    pending: dict[int, list[tuple[np.ndarray, np.ndarray]]] = {}
    for _round in range(1, config.rounds + 1):
        result.per_round_messages.append(0)
        result.per_round_senders.append(int(senders.size))
        # Gathering the sender rows copies them: this is the round's
        # double buffer — payloads come from `snap`, merges land in
        # `know.packed`, so same-round merges never leak into payloads.
        snap = know.packed[senders]
        entries = _popcount(snap).sum(axis=1, dtype=np.int64)
        if initiating or not config.avoid_known:
            # Alg. 1 l.10: the seeding round samples from all of P
            # (minus self); without avoid_known every round does.
            cand = np.repeat(template[None, :], senders.size, axis=0)
            counts = np.full(senders.size, n_ranks - 1, dtype=np.int64)
        else:
            cand = ~snap
            cand[:, -1] &= pad_mask
            # |P \ S^p \ {p}| without a second popcount: subtract |S^p|
            # (= `entries`, needed for accounting anyway) and the self
            # bit when it is not already a member of S^p.
            knows_self = (
                snap[np.arange(senders.size), senders >> 3]
                & (np.uint8(128) >> (senders & 7).astype(np.uint8))
            ) != 0
            counts = n_ranks - entries - (~knows_self)
        _clear_bits(cand, np.arange(senders.size), senders)

        want = np.minimum(fanout, counts)
        if biased:
            local_cand = cand & node_masks[node_of[senders]]
            local_counts = _popcount(local_cand).sum(axis=1, dtype=np.int64)
            n_local = np.minimum(
                rng.binomial(want, config.intra_node_bias), local_counts
            )
            row_l, tgt_l = _sample_packed_rows(
                rng, local_cand, local_counts, n_local, n_ranks
            )
            # Remove the local picks from the global pool, then fill the
            # remaining slots from it.
            _clear_bits(cand, row_l, tgt_l)
            picked = np.bincount(row_l, minlength=senders.size)
            row_g, tgt_g = _sample_packed_rows(
                rng, cand, counts - picked, want - picked, n_ranks
            )
            row_idx = np.concatenate((row_l, row_g))
            targets = np.concatenate((tgt_l, tgt_g))
        else:
            row_idx, targets = _sample_packed_rows(rng, cand, counts, want, n_ranks)

        if targets.size == 0 and model is None:
            break
        if targets.size:
            # Accounting for the whole round in one pass.
            n = int(targets.size)
            result.n_messages += n
            result.bytes_sent += n * HEADER_BYTES + ENTRY_BYTES * int(
                entries[row_idx].sum()
            )
            result.per_round_messages[-1] = n
            result.inter_node_messages += int(
                np.count_nonzero(targets // rpn != senders[row_idx] // rpn)
            )
        if model is not None:
            # Fault fates split the round's messages into immediate
            # deliveries, future-round deliveries (delay/retransmit)
            # and losses; deliveries maturing this round join the
            # payloads that matured from earlier rounds (popped after
            # the snapshot gather, so they cannot ride this round's
            # sends) in one combined merge pass.
            merge_parts = pending.pop(_round, [])
            if targets.size:
                offsets, copies = model.fates(int(targets.size))
                arrive = _round + offsets
                ok = copies > 0
                dup = copies == 2
                all_arrive = np.concatenate((arrive[ok], arrive[dup] + 1))
                all_t = np.concatenate((targets[ok], targets[dup]))
                all_src = np.concatenate((row_idx[ok], row_idx[dup]))
                now_mask = all_arrive == _round
                if now_mask.any():
                    merge_parts.append((all_t[now_mask], snap[all_src[now_mask]]))
                future = (all_arrive > _round) & (all_arrive <= config.rounds)
                model.expired += int(np.count_nonzero(all_arrive > config.rounds))
                for r in np.unique(all_arrive[future]):
                    sel = future & (all_arrive == r)
                    pending.setdefault(int(r), []).append(
                        (all_t[sel], snap[all_src[sel]])
                    )
            if merge_parts:
                merge_t = np.concatenate([t for t, _ in merge_parts])
                merge_p = np.concatenate([p for _, p in merge_parts])
                order = np.argsort(merge_t, kind="stable")
                t_sorted = merge_t[order]
                p_sorted = merge_p[order]
                receivers, starts = np.unique(t_sorted, return_index=True)
                group_sizes = np.diff(np.append(starts, t_sorted.size))
                for j in range(int(group_sizes.max())):
                    layer = group_sizes > j
                    idx = starts[layer] + j
                    know.packed[t_sorted[idx]] |= p_sorted[idx]
                _trim_rows_packed(know, receivers, result.load_snapshot, config, rng)
            else:
                receivers = np.empty(0, dtype=np.int64)
            initiating = False
            senders = receivers
            if senders.size == 0 and not pending:
                break
            continue
        # All merges at once: group messages by target, then scatter-OR
        # one "j-th message per receiver" layer at a time — each layer
        # touches every receiver at most once, so a plain fancy-indexed
        # |= applies a whole layer in one vectorized pass (grouped-OR
        # via reduceat walks bytes one at a time and is ~10x slower).
        order = np.argsort(targets, kind="stable")
        targets_sorted = targets[order]
        sources_sorted = row_idx[order]
        receivers, starts = np.unique(targets_sorted, return_index=True)
        group_sizes = np.diff(np.append(starts, targets_sorted.size))
        for j in range(int(group_sizes.max())):
            layer = group_sizes > j
            idx = starts[layer] + j
            know.packed[targets_sorted[idx]] |= snap[sources_sorted[idx]]
        _trim_rows_packed(know, receivers, result.load_snapshot, config, rng)
        initiating = False
        senders = receivers
        if senders.size == 0:  # pragma: no cover - targets imply receivers
            break


def _run_coalesced_sparse(
    know: SparseKnowledge,
    seeds: np.ndarray,
    config: GossipConfig,
    rng: np.random.Generator,
    result: GossipResult,
) -> None:
    """Round engine over :class:`SparseKnowledge` shards.

    Structurally the batched engine with the packed candidate matrix
    replaced by a :class:`_SparseComplementCandidates` view: nothing
    O(P) per sender is ever materialized, so round cost scales with
    shard sizes (bounded by ``max_known``) instead of ``P``. Because
    the shared sampler's control flow depends only on ``counts`` /
    ``want`` — identical here by construction — this engine consumes
    the same RNG stream and picks the same targets as the packed
    engine, draw for draw.

    ``config.__post_init__`` guarantees no faults and no intra-node
    bias on this path, so neither is handled here.
    """
    n_ranks = know.n_ranks
    fanout = config.fanout
    rpn = config.ranks_per_node
    template = np.packbits(np.ones(n_ranks, dtype=bool))

    senders = seeds.astype(np.int64)
    initiating = True
    for _round in range(1, config.rounds + 1):
        result.per_round_messages.append(0)
        result.per_round_senders.append(int(senders.size))
        sender_list = senders.tolist()
        # Shard references are the round's payload snapshot: every
        # mutation in SparseKnowledge replaces a shard array rather
        # than writing into it, so same-round merges cannot leak into
        # these payloads (the packed engine copies rows for the same
        # reason).
        snap = [know.shards[s] for s in sender_list]
        lens = np.fromiter((s.size for s in snap), np.int64, senders.size)
        entries = lens
        if initiating or not config.avoid_known:
            counts = np.full(senders.size, n_ranks - 1, dtype=np.int64)
            cand = _SparseComplementCandidates(
                n_ranks, senders, None, None, None, template
            )
        else:
            # Flat keys `row * P + id` over the row-major shard concat
            # are globally sorted (shards are sorted, rows ascend), so
            # membership for a whole wave is one searchsorted.
            if int(lens.sum()):
                flat_keys = np.repeat(
                    np.arange(senders.size, dtype=np.int64) * n_ranks, lens
                ) + np.concatenate(snap).astype(np.int64)
            else:
                flat_keys = np.empty(0, dtype=np.int64)
            self_keys = np.arange(senders.size, dtype=np.int64) * n_ranks + senders
            if flat_keys.size:
                pos = np.searchsorted(flat_keys, self_keys)
                knows_self = (
                    flat_keys[np.minimum(pos, flat_keys.size - 1)] == self_keys
                )
            else:
                knows_self = np.zeros(senders.size, dtype=bool)
            counts = n_ranks - lens - (~knows_self)
            cand = _SparseComplementCandidates(
                n_ranks, senders, snap, lens, flat_keys, template
            )

        want = np.minimum(fanout, counts)
        row_idx, targets = _sample_packed_rows(rng, cand, counts, want, n_ranks)
        if targets.size == 0:
            break
        n = int(targets.size)
        result.n_messages += n
        result.bytes_sent += n * HEADER_BYTES + ENTRY_BYTES * int(
            entries[row_idx].sum()
        )
        result.per_round_messages[-1] = n
        result.inter_node_messages += int(
            np.count_nonzero(targets // rpn != senders[row_idx] // rpn)
        )
        # Merge: group messages by receiver, union each receiver's
        # current shard with all payload shards addressed to it.
        order = np.argsort(targets, kind="stable")
        targets_sorted = targets[order]
        sources_sorted = row_idx[order]
        receivers, starts = np.unique(targets_sorted, return_index=True)
        bounds = np.append(starts, targets_sorted.size)
        src_list = sources_sorted.tolist()
        shards = know.shards
        for i, r in enumerate(receivers.tolist()):
            parts = [shards[r]]
            for j in range(bounds[i], bounds[i + 1]):
                parts.append(snap[src_list[j]])
            merged = np.concatenate(parts)
            if merged.size == 0:
                shards[r] = merged
                continue
            # In-place sort + adjacency dedup == np.unique, minus the
            # ~100us/call overhead that dominates saturated rounds
            # (every rank is a receiver, so this loop runs P times).
            merged.sort()
            keep = np.empty(merged.size, dtype=bool)
            keep[0] = True
            np.not_equal(merged[1:], merged[:-1], out=keep[1:])
            shards[r] = merged[keep]
        _trim_rows_sparse(know, receivers, result.load_snapshot, config, rng)
        initiating = False
        senders = receivers
        if senders.size == 0:  # pragma: no cover - targets imply receivers
            break


# ---------------------------------------------------------------------------
# Fused sparse driver (``kernel="auto"``/``"numba"``): shard interning.
# ---------------------------------------------------------------------------

#: Minimum rows sharing one payload object before the round builds a
#: shared membership bitmap for them. Below this the flat per-row
#: structures are cheaper than a P-sized bitmap.
_DOMINANT_MIN_ROWS = 16


class _ShardInterner:
    """Content-addressed canonical store for shard arrays.

    ``canon`` returns one canonical array per distinct content, so
    ranks whose knowledge sets converge — the steady state of capped
    "lowest"-trim gossip, where every rank settles on the same
    lowest-load members — share a single array object. The fused
    driver then skips whole merges on object identity alone (a payload
    that *is* the receiver's shard cannot add members). A lookup never
    changes values: the canonical is value-equal to the query by
    construction, so interning is invisible to results.

    Contents are bucketed by a cheap fingerprint (size, first, last,
    sum); collisions fall back to an exact compare. The table is
    dropped wholesale when it outgrows ``max_buckets`` — under the
    non-converging "random" trim it would otherwise retain every
    distinct set ever produced. Losing the table only costs future
    skips, never correctness.
    """

    __slots__ = ("buckets", "max_buckets")

    def __init__(self, max_buckets: int) -> None:
        self.buckets: dict[tuple[int, int, int, int], list[np.ndarray]] = {}
        self.max_buckets = max_buckets

    def canon(self, arr: np.ndarray) -> np.ndarray:
        if arr.size == 0:
            return arr
        fp = (arr.size, int(arr[0]), int(arr[-1]), int(arr.sum(dtype=np.int64)))
        bucket = self.buckets.get(fp)
        if bucket is None:
            if len(self.buckets) >= self.max_buckets:
                self.buckets.clear()
            self.buckets[fp] = [arr]
            return arr
        for canonical in bucket:
            if np.array_equal(arr, canonical):
                return canonical
        bucket.append(arr)
        return arr


class _FastSparseCandidates:
    """Membership view for the fused sparse driver.

    Identical answers to :class:`_SparseComplementCandidates`, cheaper
    cost model: rows whose payload is the round's dominant (interned)
    shard object test draws against one shared boolean bitmap of that
    shard, and only the remaining rows pay per-row membership — the
    jitted binary-search kernel when numba is installed, the flat-key
    ``searchsorted`` otherwise.

    When the driver stores shards in priority space (capped "lowest"
    trim; see :func:`_run_coalesced_sparse_fast`), ``enc``/``dec``
    carry the rank->priority permutation and its inverse: draws are
    rank ids, so membership encodes the draw (``enc``) against the
    priority-valued segments, while the dominant bitmap and the exact
    ``extract`` path decode members (``dec``) back to rank ids once.
    Both are ``None`` in id space.
    """

    __slots__ = (
        "n_ranks",
        "senders",
        "snap",
        "lens",
        "template",
        "dom_mask",
        "bitmap",
        "nd_pos",
        "nd_flat",
        "nd_starts",
        "nd_lens",
        "nd_flat_keys",
        "member_kernel",
        "enc",
        "dec",
    )

    def __init__(
        self,
        n_ranks: int,
        senders: np.ndarray,
        snap: list[np.ndarray],
        lens: np.ndarray,
        template: np.ndarray,
        dom_mask: np.ndarray | None,
        bitmap: np.ndarray | None,
        nd_pos: np.ndarray,
        nd_flat: np.ndarray,
        nd_starts: np.ndarray,
        nd_lens: np.ndarray,
        nd_flat_keys: np.ndarray | None,
        member_kernel,
        enc: np.ndarray | None,
        dec: np.ndarray | None,
    ) -> None:
        self.n_ranks = n_ranks
        self.senders = senders
        self.snap = snap
        self.lens = lens
        self.template = template
        self.dom_mask = dom_mask
        self.bitmap = bitmap
        self.nd_pos = nd_pos
        self.nd_flat = nd_flat
        self.nd_starts = nd_starts
        self.nd_lens = nd_lens
        self.nd_flat_keys = nd_flat_keys
        self.member_kernel = member_kernel
        self.enc = enc
        self.dec = dec

    def _hits(self, sub_rows: np.ndarray, sub_draws: np.ndarray) -> np.ndarray:
        """Shard membership for non-dominant rows (compact indices).

        ``sub_draws`` holds rank ids; with ``enc`` set they are mapped
        into the priority-valued segments first — membership of
        ``enc[draw]`` in the encoded shard equals membership of
        ``draw`` in the original, since ``enc`` is a bijection.
        """
        if self.enc is not None:
            sub_draws = self.enc[sub_draws]
        if self.member_kernel is not None:
            hit = np.empty(sub_draws.shape, dtype=np.bool_)
            self.member_kernel(
                self.nd_flat,
                self.nd_starts,
                self.nd_lens,
                sub_rows,
                np.ascontiguousarray(sub_draws),
                hit,
            )
            return hit
        flat = self.nd_flat_keys
        if flat is None or not flat.size:
            return np.zeros(sub_draws.shape, dtype=bool)
        keys = (sub_rows[:, None] * np.int64(self.n_ranks) + sub_draws).ravel()
        pos = np.searchsorted(flat, keys)
        return (flat[np.minimum(pos, flat.size - 1)] == keys).reshape(sub_draws.shape)

    def test(self, rows: np.ndarray, draws: np.ndarray) -> np.ndarray:
        ok = draws != self.senders[rows][:, None]
        if self.bitmap is not None:
            # The bitmap is always rank-indexed (decoded at build time),
            # so dominant rows never pay a per-wave mapping.
            dm = self.dom_mask[rows]
            if dm.any():
                ok[dm] &= ~self.bitmap[draws[dm]]
            ndm = ~dm
        else:
            ndm = np.ones(rows.size, dtype=bool)
        if ndm.any():
            sub = ndm if self.bitmap is not None else slice(None)
            hit = self._hits(self.nd_pos[rows[sub]], draws[sub])
            ok[sub] &= ~hit
        return ok

    def extract(self, rows: np.ndarray) -> np.ndarray:
        # The rare exact-sampler path; identical to the reference view,
        # with encoded members decoded back to rank ids for the bit
        # clears (order does not matter to ``_clear_bits``).
        out = np.repeat(self.template[None, :], rows.size, axis=0)
        idx = np.arange(rows.size)
        row_lens = self.lens[rows]
        if int(row_lens.sum()):
            members = np.concatenate(
                [self.snap[r] for r in rows.tolist()]
            ).astype(np.int64)
            if self.dec is not None:
                members = self.dec[members]
            _clear_bits(out, np.repeat(idx, row_lens), members)
        _clear_bits(out, idx, self.senders[rows])
        return out


def _fast_candidates(
    n_ranks: int,
    senders: np.ndarray,
    snap: list[np.ndarray],
    lens: np.ndarray,
    template: np.ndarray,
    member_kernel,
    enc: np.ndarray | None = None,
    dec: np.ndarray | None = None,
) -> tuple[np.ndarray, _FastSparseCandidates]:
    """Candidate counts and membership view for one fused round.

    Groups sender rows by payload *object* — interning makes equal
    shards identical objects, so converged rounds collapse to one
    dominant group — and gives that group a single shared bitmap.
    ``counts`` is computed exactly as the reference driver does
    (``P - |S^p| - (p not in S^p)``), so the shared sampler sees the
    same inputs and consumes the same RNG stream. ``enc``/``dec``
    flag priority-space shards (see :class:`_FastSparseCandidates`).
    """
    n_rows = int(senders.size)
    groups: dict[int, list[int]] = {}
    for i, s in enumerate(snap):
        groups.setdefault(id(s), []).append(i)
    dom_rows: list[int] | None = None
    if groups:
        best = max(groups.values(), key=len)
        if len(best) >= _DOMINANT_MIN_ROWS:
            dom_rows = best
    knows_self = np.zeros(n_rows, dtype=bool)
    dom_mask = None
    bitmap = None
    if dom_rows is not None:
        dom_shard = snap[dom_rows[0]]
        if dec is not None:
            dom_shard = dec[dom_shard]
        bitmap = np.zeros(n_ranks, dtype=bool)
        bitmap[dom_shard] = True
        dom_mask = np.zeros(n_rows, dtype=bool)
        dom_mask[dom_rows] = True
        knows_self[dom_mask] = bitmap[senders[dom_mask]]
        nd_rows = np.flatnonzero(~dom_mask)
    else:
        nd_rows = np.arange(n_rows)
    nd_pos = np.full(n_rows, -1, dtype=np.int64)
    nd_pos[nd_rows] = np.arange(nd_rows.size)
    nd_lens = lens[nd_rows]
    if int(nd_lens.sum()):
        nd_flat = np.concatenate([snap[i] for i in nd_rows.tolist()])
    else:
        nd_flat = np.empty(0, dtype=SparseKnowledge._ID_DTYPE)
    if nd_rows.size:
        nd_starts = np.concatenate(([0], np.cumsum(nd_lens)[:-1]))
    else:
        nd_starts = np.empty(0, dtype=np.int64)
    nd_flat_keys = None
    if member_kernel is None:
        if nd_flat.size:
            nd_flat_keys = np.repeat(
                np.arange(nd_rows.size, dtype=np.int64) * n_ranks, nd_lens
            ) + nd_flat.astype(np.int64)
        else:
            nd_flat_keys = np.empty(0, dtype=np.int64)
    cand = _FastSparseCandidates(
        n_ranks,
        senders,
        snap,
        lens,
        template,
        dom_mask,
        bitmap,
        nd_pos,
        nd_flat,
        nd_starts,
        nd_lens,
        nd_flat_keys,
        member_kernel,
        enc,
        dec,
    )
    if nd_rows.size:
        knows_self[nd_rows] = cand._hits(
            np.arange(nd_rows.size), senders[nd_rows][:, None]
        )[:, 0]
    counts = n_ranks - lens - (~knows_self)
    return counts, cand


def _run_coalesced_sparse_fast(
    know: SparseKnowledge,
    seeds: np.ndarray,
    config: GossipConfig,
    rng: np.random.Generator,
    result: GossipResult,
) -> None:
    """Fused sparse round engine (``kernel="auto"``/``"numba"``).

    Bit-identical to :func:`_run_coalesced_sparse` — same targets,
    same shard values, same RNG stream — but built around one
    observation: capped "lowest"-trim gossip *converges*. After a few
    rounds most ranks hold the identical knowledge set (the globally
    lowest-priority members), so most of the reference driver's
    per-receiver concat/sort/dedup/argpartition work rebuilds a set
    the receiver already has. Three value-preserving layers exploit
    that:

    - **Priority space** (capped "lowest" trim only): shards are
      stored as sorted *priority* values (``prio[member]``) for the
      stage. The trim's survivor set — the cap lowest members in
      (load, id) order — becomes a plain ``[:cap]`` truncation of the
      sorted union, and a rank whose shard is exactly ``{0..cap-1}``
      is *complete*: no payload can ever displace a member, so its
      merges skip without touching the payloads. Priorities are a
      bijection of rank ids, so sizes, unions and membership answers
      are unchanged; shards decode back to rank ids on exit.
    - **Interning + identity skips**: equal shard contents share one
      array object (:class:`_ShardInterner`), so messages whose
      payload *is* the receiver's shard are no-ops — detected for the
      whole round with one ``reduceat`` — and sender rows sharing the
      round's dominant payload object test sampler draws against one
      shared bitmap (:class:`_FastSparseCandidates`).
    - **Merge kernels**: the remaining real merges run through the
      jitted two-way merge kernel where numba is installed
      (:func:`repro.core._kernels.merge_shards`) and the NumPy
      sort/dedup otherwise.

    The "random" trim draws RNG keys per over-cap row, so it cannot be
    fused or skipped; that path keeps id-space shards and the separate
    :func:`_trim_rows_sparse` pass (identical stream consumption).

    ``config.__post_init__`` guarantees no faults and no intra-node
    bias on this path, so neither is handled here.
    """
    n_ranks = know.n_ranks
    fanout = config.fanout
    rpn = config.ranks_per_node
    template = np.packbits(np.ones(n_ranks, dtype=bool))
    kernels = get_gossip_kernels()
    merge_kernel = kernels[0] if kernels is not None else None
    member_kernel = kernels[1] if kernels is not None else None
    interner = _ShardInterner(max_buckets=max(1024, n_ranks // 4))
    shards = know.shards
    id_dtype = SparseKnowledge._ID_DTYPE
    merge_buf = np.empty(0, dtype=id_dtype)
    cap = config.max_known
    fused_trim = cap is not None and config.trim_policy == "lowest"
    enc: np.ndarray | None = None
    dec: np.ndarray | None = None
    complete: np.ndarray | None = None
    if fused_trim:
        # prio/dec are the permutation pair of _load_priority: loads
        # are fixed for the stage, so both are hoisted out of the
        # rounds, and every shard is re-encoded once on entry.
        dec = np.argsort(result.load_snapshot, kind="stable")
        enc = np.empty(n_ranks, dtype=np.int64)
        enc[dec] = np.arange(n_ranks)
        enc32 = enc.astype(id_dtype)
        complete = np.zeros(n_ranks, dtype=bool)
        for r in range(n_ranks):
            s = shards[r]
            if s.size:
                e = enc32[s]
                e.sort()
                shards[r] = e
                if e.size == cap and e[-1] == cap - 1:
                    complete[r] = True

    senders = seeds.astype(np.int64)
    initiating = True
    for _round in range(1, config.rounds + 1):
        result.per_round_messages.append(0)
        result.per_round_senders.append(int(senders.size))
        sender_list = senders.tolist()
        # Shard references are the round's payload snapshot: every
        # mutation replaces a shard array (interning included), so
        # same-round merges cannot leak into these payloads.
        snap = [shards[s] for s in sender_list]
        lens = np.fromiter((s.size for s in snap), np.int64, senders.size)
        entries = lens
        if initiating or not config.avoid_known:
            counts = np.full(senders.size, n_ranks - 1, dtype=np.int64)
            cand: object = _SparseComplementCandidates(
                n_ranks, senders, None, None, None, template
            )
        else:
            counts, cand = _fast_candidates(
                n_ranks, senders, snap, lens, template, member_kernel, enc, dec
            )

        want = np.minimum(fanout, counts)
        row_idx, targets = _sample_packed_rows(rng, cand, counts, want, n_ranks)
        if targets.size == 0:
            break
        n = int(targets.size)
        result.n_messages += n
        result.bytes_sent += n * HEADER_BYTES + ENTRY_BYTES * int(
            entries[row_idx].sum()
        )
        result.per_round_messages[-1] = n
        result.inter_node_messages += int(
            np.count_nonzero(targets // rpn != senders[row_idx] // rpn)
        )
        # Merge. Complete receivers and receivers whose every payload
        # *is* their own shard object are skipped wholesale (the union
        # cannot change their set); only the rest run a real merge,
        # with the "lowest" trim fused in as a truncation.
        order = np.argsort(targets, kind="stable")
        targets_sorted = targets[order]
        sources_sorted = row_idx[order]
        receivers, starts = np.unique(targets_sorted, return_index=True)
        bounds = np.append(starts, targets_sorted.size)
        recv_list = receivers.tolist()
        own_ids = np.fromiter(
            (id(shards[r]) for r in recv_list), np.int64, receivers.size
        )
        payload_ids = np.fromiter(
            (id(s) for s in snap), np.int64, senders.size
        )[sources_sorted]
        group_sizes = np.diff(bounds)
        is_own = payload_ids == np.repeat(own_ids, group_sizes)
        open_recv = ~np.logical_and.reduceat(is_own, bounds[:-1])
        if complete is not None:
            open_recv &= ~complete[receivers]
        active = np.flatnonzero(open_recv)
        bounds_list = bounds.tolist()
        src_list = sources_sorted.tolist()
        for i in active.tolist():
            r = recv_list[i]
            own = shards[r]
            own_id = id(own)
            parts: list[np.ndarray] = []
            seen = [own_id]
            for j in range(bounds_list[i], bounds_list[i + 1]):
                p = snap[src_list[j]]
                pid = id(p)
                if pid != own_id and pid not in seen:
                    seen.append(pid)
                    parts.append(p)
            if not parts:  # pragma: no cover - filtered by open_recv
                continue
            if own.size == 0 and len(parts) == 1 and (
                not fused_trim or parts[0].size <= cap
            ):
                # Adopting the payload object shares it; shard arrays
                # are immutable-by-replacement, so sharing is safe.
                merged = parts[0]
            elif merge_kernel is not None and len(parts) == 1:
                b = parts[0]
                need = own.size + b.size
                if merge_buf.size < need:
                    merge_buf = np.empty(need, dtype=merge_buf.dtype)
                k = merge_kernel(own, b, merge_buf)
                if fused_trim and k > cap:
                    k = cap
                merged = interner.canon(merge_buf[:k].copy())
            else:
                merged = np.concatenate([own, *parts])
                # In-place sort + adjacency dedup == np.unique, minus
                # the per-call overhead (see the reference driver).
                merged.sort()
                keep = np.empty(merged.size, dtype=bool)
                keep[0] = True
                np.not_equal(merged[1:], merged[:-1], out=keep[1:])
                merged = merged[keep]
                if fused_trim and merged.size > cap:
                    merged = merged[:cap].copy()
                merged = interner.canon(merged)
            shards[r] = merged
            if fused_trim and merged.size == cap and merged[-1] == cap - 1:
                complete[r] = True
        if not fused_trim:
            _trim_rows_sparse(
                know, receivers, result.load_snapshot, config, rng, interner
            )
        initiating = False
        senders = receivers
        if senders.size == 0:  # pragma: no cover - targets imply receivers
            break
    if fused_trim:
        # Decode priority-space shards back to sorted rank ids, one
        # conversion per distinct object. The dict pins the encoded
        # key arrays so object ids cannot be recycled mid-decode.
        decoded: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        for r in range(n_ranks):
            s = shards[r]
            hit = decoded.get(id(s))
            if hit is not None and hit[0] is s:
                shards[r] = hit[1]
                continue
            d = dec[s].astype(id_dtype)
            d.sort()
            decoded[id(s)] = (s, d)
            shards[r] = d


def _run_per_message(
    know: KnowledgeBitmap,
    seeds: np.ndarray,
    config: GossipConfig,
    rng: np.random.Generator,
    result: GossipResult,
) -> None:
    n_ranks = know.n_ranks
    all_ranks = np.arange(n_ranks)
    # Wave of in-flight messages: (target, payload_row, round_index).
    wave: list[tuple[int, np.ndarray, int]] = []
    result.per_round_messages.append(0)
    result.per_round_senders.append(int(seeds.size))
    for sender in seeds:
        candidates = all_ranks[all_ranks != sender]
        for target in _sample_targets(rng, candidates, config.fanout, int(sender), config):
            payload = know.rows[sender].copy()
            wave.append((int(target), payload, 1))
            _record_send(result, int(payload.sum()), int(sender), int(target), config)
            if result.n_messages > config.max_messages:
                raise GossipExplosionError(
                    f"per_message gossip exceeded {config.max_messages} messages; "
                    "use mode='coalesced' or reduce fanout/rounds"
                )
    while wave:
        next_wave: list[tuple[int, np.ndarray, int]] = []
        result.per_round_messages.append(0)
        forwarders: set[int] = set()
        for target, payload, round_index in wave:
            know.merge(target, payload)
            _trim_knowledge(know.rows[target], result.load_snapshot, config, rng)
            if round_index < config.rounds:
                candidates = (
                    know.unknown_targets(target)
                    if config.avoid_known
                    else all_ranks[all_ranks != target]
                )
                sampled = _sample_targets(rng, candidates, config.fanout, int(target), config)
                if sampled.size:
                    forwarders.add(int(target))
                forwarded = know.rows[target].copy()
                for nxt in sampled:
                    next_wave.append((int(nxt), forwarded, round_index + 1))
                    _record_send(result, int(forwarded.sum()), int(target), int(nxt), config)
                    if result.n_messages > config.max_messages:
                        raise GossipExplosionError(
                            f"per_message gossip exceeded {config.max_messages} "
                            "messages; use mode='coalesced' or reduce fanout/rounds"
                        )
        result.per_round_senders.append(len(forwarders))
        wave = next_wave
