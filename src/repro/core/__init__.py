"""The paper's contribution: distributed gossip-based load balancing.

Phase-level implementations of Algorithms 1–6 of the paper plus the
GreedyLB / HierLB baselines. The event-level (message-by-message)
implementation of the inform stage lives in
:mod:`repro.runtime.distributed_gossip`.
"""

from repro.core.base import IterationRecord, LBResult, LoadBalancer
from repro.core.baselines import RandomLB, RotateLB
from repro.core.cmf import CMF_MODIFIED, CMF_ORIGINAL, build_cmf, sample_cmf
from repro.core.comm import CommAwareLB, CommGraph
from repro.core.criteria import (
    CRITERION_ORIGINAL,
    CRITERION_RELAXED,
    evaluate_criterion,
)
from repro.core.distribution import Distribution
from repro.core.gossip import GossipConfig, GossipResult, run_inform_stage
from repro.core.grapevine import GrapevineLB
from repro.core.greedy import GreedyLB
from repro.core.hier import HierLB
from repro.core.knowledge import (
    KnowledgeBitmap,
    PackedKnowledgeBitmap,
    SparseKnowledge,
)
from repro.core.metrics import (
    LoadStatistics,
    imbalance,
    load_statistics,
    objective,
)
from repro.core.ordering import (
    ORDERINGS,
    order_arbitrary,
    order_fewest_migrations,
    order_lightest,
    order_load_intensive,
)
from repro.core.refinement import RefinementResult, iterative_refinement
from repro.core.soa import RankTaskState
from repro.core.tempered import TemperedConfig, TemperedLB
from repro.core.transfer import TransferStats, transfer_stage

__all__ = [
    "CMF_MODIFIED",
    "CMF_ORIGINAL",
    "CRITERION_ORIGINAL",
    "CommAwareLB",
    "CommGraph",
    "CRITERION_RELAXED",
    "Distribution",
    "GossipConfig",
    "GossipResult",
    "GrapevineLB",
    "GreedyLB",
    "HierLB",
    "IterationRecord",
    "KnowledgeBitmap",
    "LBResult",
    "LoadBalancer",
    "LoadStatistics",
    "ORDERINGS",
    "PackedKnowledgeBitmap",
    "RandomLB",
    "RankTaskState",
    "RefinementResult",
    "RotateLB",
    "SparseKnowledge",
    "TemperedConfig",
    "TemperedLB",
    "TransferStats",
    "build_cmf",
    "evaluate_criterion",
    "imbalance",
    "iterative_refinement",
    "load_statistics",
    "objective",
    "order_arbitrary",
    "order_fewest_migrations",
    "order_lightest",
    "order_load_intensive",
    "run_inform_stage",
    "sample_cmf",
    "transfer_stage",
]
