"""Trivial baselines from the Charm++ balancer suite.

Useful as floors/controls in experiments: :class:`RandomLB` scatters
tasks uniformly (what balancing buys over chance), :class:`RotateLB`
shifts every task to the next rank (pure migration churn with zero
balance change — a cost-model probe).
"""

from __future__ import annotations

import numpy as np

from repro.core.base import LBResult, LoadBalancer
from repro.core.distribution import Distribution
from repro.util.validation import coerce_rng

__all__ = ["RandomLB", "RotateLB"]


class RandomLB(LoadBalancer):
    """Uniform random placement, ignoring loads entirely."""

    name = "RandomLB"

    def rebalance(
        self, dist: Distribution, rng: np.random.Generator | int | None = None
    ) -> LBResult:
        rng = coerce_rng(rng)
        assignment = rng.integers(0, dist.n_ranks, size=dist.n_tasks)
        return self._make_result(dist, assignment)


class RotateLB(LoadBalancer):
    """Move every task to the next rank (mod P).

    Leaves the load *distribution* exactly as imbalanced as before while
    migrating 100% of the tasks — the worst possible cost/benefit, which
    makes it a clean probe for migration cost models.
    """

    name = "RotateLB"

    def rebalance(
        self, dist: Distribution, rng: np.random.Generator | int | None = None
    ) -> LBResult:
        assignment = (dist.assignment + 1) % dist.n_ranks
        return self._make_result(dist, assignment)
