"""Load balancer interface and result records.

All strategies — distributed (GrapevineLB, TemperedLB), centralized
(GreedyLB) and hierarchical (HierLB) — implement
:class:`LoadBalancer.rebalance`, taking a :class:`~repro.core.distribution.Distribution`
and returning an :class:`LBResult` with the proposed assignment and the
per-iteration accounting that the paper's § V-B / § V-D tables report.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.core.distribution import Distribution
from repro.core.metrics import imbalance
from repro.obs import StatsRegistry
from repro.util.validation import coerce_rng

__all__ = ["IterationRecord", "LBResult", "LoadBalancer"]


@dataclass(frozen=True)
class IterationRecord:
    """One row of the paper's iteration tables (§ V-B, § V-D)."""

    trial: int
    iteration: int
    transfers: int
    rejections: int
    imbalance: float
    gossip_messages: int = 0
    gossip_bytes: int = 0

    @property
    def rejection_rate(self) -> float:
        """Rejection rate in percent, as printed in the paper's tables."""
        attempts = self.transfers + self.rejections
        return 100.0 * self.rejections / attempts if attempts else 0.0


@dataclass
class LBResult:
    """Outcome of one load-balancing invocation."""

    strategy: str
    assignment: np.ndarray  #: proposed task -> rank mapping
    initial_imbalance: float
    final_imbalance: float
    n_migrations: int  #: tasks whose rank changed vs. the input
    records: list[IterationRecord] = field(default_factory=list)
    extra: dict[str, Any] = field(default_factory=dict)

    @property
    def improvement(self) -> float:
        """Absolute drop in the imbalance metric."""
        return self.initial_imbalance - self.final_imbalance


class LoadBalancer(ABC):
    """Base class for all strategies."""

    #: Human-readable strategy name (matches the paper's configuration labels).
    name: str = "base"

    #: Attached observability sink (see :meth:`instrument`); ``None`` by
    #: default, in which case strategies record nothing and behave
    #: byte-identically to an un-instrumented build.
    registry: StatsRegistry | None = None

    def instrument(self, registry: StatsRegistry | None) -> "LoadBalancer":
        """Attach a :class:`~repro.obs.StatsRegistry` and return ``self``.

        Instrumentation-aware strategies (the gossip family) thread the
        registry through their inform/transfer/refinement stages; every
        strategy records a per-invocation ``lb.rebalance`` event.
        Attaching never changes RNG consumption, so results are
        unaffected. Pass ``None`` to detach.
        """
        self.registry = registry
        return self

    @abstractmethod
    def rebalance(
        self, dist: Distribution, rng: np.random.Generator | int | None = None
    ) -> LBResult:
        """Compute a new assignment for ``dist`` (which is not mutated)."""

    def apply(
        self, dist: Distribution, rng: np.random.Generator | int | None = None
    ) -> tuple[Distribution, LBResult]:
        """Rebalance and return the resulting distribution alongside the result."""
        result = self.rebalance(dist, coerce_rng(rng))
        return dist.with_assignment(result.assignment), result

    def _make_result(
        self,
        dist: Distribution,
        assignment: np.ndarray,
        records: list[IterationRecord] | None = None,
        **extra: Any,
    ) -> LBResult:
        """Assemble an :class:`LBResult`, deriving the summary metrics."""
        final_loads = np.bincount(
            assignment, weights=dist.task_loads, minlength=dist.n_ranks
        )
        result = LBResult(
            strategy=self.name,
            assignment=assignment,
            initial_imbalance=dist.imbalance(),
            final_imbalance=imbalance(final_loads),
            n_migrations=dist.migration_count(assignment),
            records=records or [],
            extra=extra,
        )
        if self.registry is not None and self.registry.enabled:
            self.registry.inc("lb.rebalances")
            self.registry.event(
                "lb.rebalance",
                strategy=self.name,
                initial_imbalance=result.initial_imbalance,
                final_imbalance=result.final_imbalance,
                n_migrations=result.n_migrations,
            )
        return result
