"""Structure-of-arrays rank/task state for the transfer stage.

The reference transfer engine materializes ``rank_tasks`` as a Python
``list[list[int]]`` — one boxed int per task, built and garbage-collected
every stage. At 2^17 ranks / millions of tasks that construction alone
dominates the stage. :class:`RankTaskState` replaces it with a CSR view
over the assignment:

- one stable ``argsort`` of the assignment gives a contiguous int32
  task-id buffer grouped by rank (ascending task id within each rank,
  exactly the naive construction order);
- ``bounds[r]:bounds[r+1]`` delimits rank ``r``'s slice, so ``tasks(r)``
  is an O(1) array view until rank ``r`` is first mutated;
- mutations are sparse: only ranks that actually send or receive tasks
  ever allocate (an override array for senders, an arrival list promoted
  on first read for receivers). Untouched ranks — the vast majority at
  scale — never leave the shared buffer.

The float64 load vector and the int task->rank assignment stay plain
contiguous ndarrays owned by the caller; this class only manages the
inverse (rank->tasks) mapping.
"""

from __future__ import annotations

import numpy as np

__all__ = ["RankTaskState"]


class RankTaskState:
    """CSR rank->task mapping with sparse copy-on-write overrides.

    Semantically equivalent to the ``list[list[int]]`` the reference
    engine builds: ``tasks(r)`` returns rank ``r``'s task ids in the
    same order (ascending construction order plus arrivals in arrival
    order), ``append`` models a task arriving at a recipient, and
    ``set_tasks`` replaces a sender's list after a pass.
    """

    __slots__ = ("n_ranks", "_by_rank", "_bounds", "_override", "_arrivals")

    def __init__(self, assignment: np.ndarray, n_ranks: int) -> None:
        assignment = np.asarray(assignment)
        order = np.argsort(assignment, kind="stable")
        #: int32 halves the buffer vs int64 task ids; 2^31 tasks is far
        #: beyond anything the stage addresses.
        self._by_rank = order.astype(np.int32, copy=False)
        self._bounds = np.searchsorted(
            assignment[order], np.arange(n_ranks + 1)
        )
        self.n_ranks = int(n_ranks)
        self._override: dict[int, np.ndarray] = {}
        self._arrivals: dict[int, list[int]] = {}

    def tasks(self, rank: int) -> np.ndarray:
        """Rank's current task ids (a shared view until first mutation).

        Pending arrivals are promoted into an override array here — on
        read, not on append — so a recipient that is never re-processed
        costs only list appends.
        """
        arr = self._override.get(rank)
        if arr is None:
            arr = self._by_rank[self._bounds[rank] : self._bounds[rank + 1]]
        pend = self._arrivals.pop(rank, None)
        if pend:
            arr = np.concatenate([arr, np.asarray(pend, dtype=arr.dtype)])
            self._override[rank] = arr
        return arr

    def set_tasks(self, rank: int, tasks: np.ndarray) -> None:
        """Replace a rank's task array (after a pass removes accepted)."""
        self._override[rank] = tasks

    def append(self, rank: int, task: int) -> None:
        """Record one task arriving at ``rank`` (O(1) amortized)."""
        self._arrivals.setdefault(rank, []).append(int(task))

    def to_lists(self) -> list[list[int]]:
        """Materialize as the reference ``list[list[int]]`` (tests)."""
        return [
            [int(t) for t in self.tasks(r)] for r in range(self.n_ranks)
        ]
