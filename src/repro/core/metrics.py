"""Imbalance metrics (paper § III-C) and load statistics.

The central quantity is Eq. (1) of the paper::

    I = l_max / l_ave - 1

and the objective function the algorithms minimize (§ V-B)::

    F(D) = I_D - h + 1 = l_max / l_ave - h
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "imbalance",
    "objective",
    "LoadStatistics",
    "load_statistics",
    "lower_bound_max_load",
    "sigma_imbalance",
    "gini",
    "load_quartiles",
    "migration_volume",
]


def imbalance(rank_loads: np.ndarray) -> float:
    """Eq. (1): ``max/mean - 1`` of per-rank loads; 0 for an empty system."""
    loads = np.asarray(rank_loads, dtype=np.float64)
    if loads.size == 0:
        return 0.0
    ave = loads.mean()
    if ave == 0.0:
        return 0.0
    return float(loads.max() / ave - 1.0)


def objective(rank_loads: np.ndarray, h: float = 1.0) -> float:
    """Objective ``F(D) = l_max/l_ave - h`` minimized by the transfer stage.

    ``F(D) >= 0`` is the paper's *sufficient* stopping criterion; the relaxed
    criterion of § V-C guarantees F decreases monotonically while any
    admissible transfer exists.
    """
    loads = np.asarray(rank_loads, dtype=np.float64)
    if loads.size == 0:
        return -h
    ave = loads.mean()
    if ave == 0.0:
        return -h
    return float(loads.max() / ave - h)


def lower_bound_max_load(rank_loads: np.ndarray, task_loads: np.ndarray) -> float:
    """Fig. 4b's "Lower bound (max)": ``max(l_ave, max task load)``.

    No assignment can have a maximum rank load below the average rank load,
    nor below the load of the single heaviest (unsplittable) task.
    """
    loads = np.asarray(rank_loads, dtype=np.float64)
    tasks = np.asarray(task_loads, dtype=np.float64)
    ave = loads.mean() if loads.size else 0.0
    heaviest = tasks.max() if tasks.size else 0.0
    return float(max(ave, heaviest))


def sigma_imbalance(rank_loads: np.ndarray) -> float:
    """Coefficient of variation ``std/mean`` — the secondary imbalance
    measure common in the LB literature. Unlike Eq. (1) it reacts to the
    whole distribution, not just the maximum."""
    loads = np.asarray(rank_loads, dtype=np.float64)
    if loads.size == 0:
        return 0.0
    mean = loads.mean()
    if mean == 0.0:
        return 0.0
    return float(loads.std() / mean)


def gini(rank_loads: np.ndarray) -> float:
    """Gini coefficient of the per-rank loads in [0, 1).

    0 = perfectly even; approaching 1 = all load on one rank. A
    scale-free summary useful for comparing runs with growing totals
    (the Fig. 4c situation, where I falls simply because the average
    rises)."""
    loads = np.sort(np.asarray(rank_loads, dtype=np.float64))
    n = loads.size
    if n == 0:
        return 0.0
    total = loads.sum()
    if total == 0.0:
        return 0.0
    # G = (2 * sum(i * x_i) / (n * sum(x)) ) - (n + 1) / n, i from 1.
    weighted = np.arange(1, n + 1) @ loads
    return float(2.0 * weighted / (n * total) - (n + 1.0) / n)


def load_quartiles(rank_loads: np.ndarray) -> tuple[float, float, float]:
    """(Q1, median, Q3) of per-rank loads — the box-plot summary."""
    loads = np.asarray(rank_loads, dtype=np.float64)
    if loads.size == 0:
        return (0.0, 0.0, 0.0)
    q1, q2, q3 = np.percentile(loads, [25, 50, 75])
    return (float(q1), float(q2), float(q3))


def migration_volume(
    task_loads: np.ndarray,
    before: np.ndarray,
    after: np.ndarray,
    bytes_per_unit_load: float = 1.0,
    fixed_bytes: float = 0.0,
) -> float:
    """Bytes that a proposed remap ships, under the affine size model
    used throughout (``fixed + bytes_per_unit_load * load`` per task)."""
    task_loads = np.asarray(task_loads, dtype=np.float64)
    before = np.asarray(before)
    after = np.asarray(after)
    if not (task_loads.shape == before.shape == after.shape):
        raise ValueError("task_loads, before and after must align")
    moved = before != after
    return float(
        np.count_nonzero(moved) * fixed_bytes
        + bytes_per_unit_load * task_loads[moved].sum()
    )


@dataclass(frozen=True)
class LoadStatistics:
    """Constant-size per-phase statistics exchanged by the initial all-reduce."""

    n_ranks: int
    total: float
    average: float
    maximum: float
    minimum: float
    stddev: float
    imbalance: float

    def __post_init__(self) -> None:
        if self.n_ranks < 0:
            raise ValueError("n_ranks must be non-negative")


def load_statistics(rank_loads: np.ndarray) -> LoadStatistics:
    """Compute the statistics the gossip protocol's all-reduce collects."""
    loads = np.asarray(rank_loads, dtype=np.float64)
    if loads.size == 0:
        return LoadStatistics(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
    return LoadStatistics(
        n_ranks=int(loads.size),
        total=float(loads.sum()),
        average=float(loads.mean()),
        maximum=float(loads.max()),
        minimum=float(loads.min()),
        stddev=float(loads.std()),
        imbalance=imbalance(loads),
    )
